"""N-stage tandem pipelines: vectorized max-plus replay + event oracle.

Generalizes the two-PE testbed of :mod:`repro.simulation.pipeline` to a
chain of ``S`` processing elements, each clocked at its own frequency and
fed through its own FIFO: departures of stage ``k`` are the arrivals of
stage ``k+1``.  Two independent implementations are provided:

* :func:`replay_chain` — one vectorized max-plus scan per stage
  (``cumsum`` + ``np.maximum.accumulate`` + one ``searchsorted`` for the
  backlog profile), O(S·M) total for ``S`` stages and ``M`` items with
  no Python-level per-item work;
* :func:`simulate_chain` — the event-driven oracle on the
  :class:`~repro.simulation.kernel.Simulator` kernel, one
  :class:`~repro.simulation.fifo.Fifo` and
  :class:`~repro.simulation.pe.ProcessingElement` per stage.

The conformance suite (``tests/simulation/test_chain.py``) checks exact
agreement on random topologies including tie-heavy simultaneous-event
traces; the replay is then trusted for million-event scenario grids
(gated ≥ 20x faster in ``benchmarks/test_bench_sim.py``).

Tie semantics match the two-PE testbed: a slot is freed the instant its
consumer finishes, *before* any simultaneous arrival is admitted — in
the event-driven oracle completions run at priority -1 and inter-stage
hand-offs are re-scheduled as priority-0 arrival events at the same
timestamp, in the replay the backlog count uses a relative tie
tolerance.  Both implementations publish the ``sim.chain.*`` metrics
family (runs/items by implementation, per-stage backlog high-water,
overflow and busy-time series), surfaced by ``python -m repro obs
report``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import registry
from repro.obs.tracing import tracer
from repro.simulation.fifo import Fifo
from repro.simulation.kernel import Simulator
from repro.simulation.pe import ProcessingElement
from repro.util.validation import ValidationError, check_integer

__all__ = ["StageStats", "ChainResult", "replay_chain", "simulate_chain"]


@dataclass(frozen=True)
class StageStats:
    """Per-stage FIFO and PE statistics of one chain run.

    Attributes
    ----------
    max_backlog:
        Worst-case occupancy of the stage's FIFO in items (queued plus
        in service — a slot is held until the stage *finishes* an item).
    overflow_count:
        Arrivals that found the FIFO already at capacity (0 when the
        stage is unbounded).
    overflowed:
        True iff ``overflow_count > 0`` (equivalently
        ``max_backlog > capacity``).
    busy_seconds:
        Total time the stage's PE spent executing.
    utilization:
        Busy fraction of the stage over ``[0, last completion]``.
    """

    max_backlog: int
    overflow_count: int
    overflowed: bool
    busy_seconds: float
    utilization: float


@dataclass(frozen=True)
class ChainResult:
    """Outcome of one N-stage chain run.

    Attributes
    ----------
    stage_stats:
        One :class:`StageStats` per stage, in flow order.
    departures:
        ``(stages, items)`` array of completion times: row ``k`` holds
        the times items leave stage ``k`` (and, for ``k+1 < stages``,
        enter the next FIFO).
    """

    stage_stats: tuple[StageStats, ...]
    departures: np.ndarray

    @property
    def stages(self) -> int:
        """Number of processing elements in the chain."""
        return len(self.stage_stats)

    @property
    def completion_times(self) -> np.ndarray:
        """Per-item completion times at the last stage (flow order)."""
        return self.departures[-1]

    @property
    def makespan(self) -> float:
        """Completion time of the last item at the last stage."""
        return float(self.departures[-1, -1])

    @property
    def max_backlogs(self) -> tuple[int, ...]:
        """Per-stage worst-case FIFO occupancy, in flow order."""
        return tuple(s.max_backlog for s in self.stage_stats)

    @property
    def overflowed(self) -> bool:
        """True if any stage's FIFO ever exceeded its capacity."""
        return any(s.overflowed for s in self.stage_stats)


def _validate_chain(
    arrivals, demands, frequencies, capacities
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[int | None]]:
    arrivals = np.asarray(arrivals, dtype=float)
    demands = np.asarray(demands, dtype=float)
    if demands.ndim == 1:
        demands = demands[np.newaxis, :]
    if arrivals.ndim != 1 or demands.ndim != 2 or demands.shape[1] != arrivals.size:
        raise ValidationError(
            "arrivals must be 1-D and demands (stages, items) with matching items"
        )
    if arrivals.size == 0:
        raise ValidationError("chain needs at least one item")
    if np.any(np.diff(arrivals) < 0):
        raise ValidationError("arrivals must be non-decreasing (in-order stream)")
    if np.any(demands <= 0) or not np.all(np.isfinite(demands)):
        raise ValidationError("demands must be positive and finite")
    stages = demands.shape[0]
    try:
        frequencies = np.broadcast_to(
            np.asarray(frequencies, dtype=float), (stages,)
        ).copy()
    except ValueError as exc:
        raise ValidationError(
            f"frequencies must be a scalar or one per stage ({stages})"
        ) from exc
    if np.any(frequencies <= 0) or not np.all(np.isfinite(frequencies)):
        raise ValidationError("frequencies must be positive and finite")
    if capacities is None:
        caps: list[int | None] = [None] * stages
    elif isinstance(capacities, int):
        caps = [check_integer(capacities, "capacity", minimum=1)] * stages
    else:
        caps = list(capacities)
        if len(caps) != stages:
            raise ValidationError(
                f"capacities must have one entry per stage ({stages}), "
                f"got {len(caps)}"
            )
        caps = [
            None if c is None else check_integer(c, "capacity", minimum=1)
            for c in caps
        ]
    return arrivals, demands, frequencies, caps


def _publish_chain_metrics(
    impl: str, stats: list[StageStats], items: int
) -> None:
    """Report one chain run into the ``sim.chain.*`` metrics family."""
    registry.counter("sim.chain.runs", impl=impl).inc(1)
    registry.counter("sim.chain.items", impl=impl).inc(items * len(stats))
    for k, s in enumerate(stats):
        registry.gauge("sim.chain.high_water", stage=k).set_max(s.max_backlog)
        registry.counter("sim.chain.overflows", stage=k).inc(s.overflow_count)
        registry.counter("sim.chain.busy_seconds", stage=k).add(s.busy_seconds)


def replay_chain(
    arrivals: np.ndarray,
    demands: np.ndarray,
    frequencies,
    *,
    capacities=None,
) -> ChainResult:
    """Vectorized max-plus replay of an N-stage tandem pipeline.

    Parameters
    ----------
    arrivals:
        Times items enter the first stage's FIFO (non-decreasing).
    demands:
        Per-stage cycle demands, shape ``(stages, items)`` (a 1-D array
        is treated as a single stage).
    frequencies:
        Per-stage clock in Hz — a scalar (all stages alike) or a
        length-``stages`` sequence.
    capacities:
        Per-stage FIFO capacities: ``None`` (all unbounded), one int
        (all stages alike), or a per-stage sequence of int-or-``None``.

    Each stage is the single-server recursion
    ``done_i = max(enter_i, done_{i-1}) + demand_i / F`` solved by one
    ``cumsum`` + ``np.maximum.accumulate`` scan (see
    :func:`~repro.simulation.pipeline.replay_pipeline`); the departures
    of stage ``k`` are the arrivals of stage ``k+1``, so the whole chain
    is ``S`` scans — O(S·M) with no Python-level per-item work.
    """
    arrivals, demands, frequencies, caps = _validate_chain(
        arrivals, demands, frequencies, capacities
    )
    stages, items = demands.shape
    with tracer.span("sim.chain", impl="replay", stages=stages, items=items):
        departures = np.empty((stages, items))
        stats: list[StageStats] = []
        enter = arrivals
        index = np.arange(items)
        for k in range(stages):
            service = demands[k] / frequencies[k]
            cum = np.cumsum(service)
            done = cum + np.maximum.accumulate(enter - cum + service)
            # ties free the slot before simultaneous arrivals (relative
            # tolerance — see replay_pipeline for the long-trace rationale)
            tol = 1e-12 * np.maximum(1.0, np.abs(enter))
            finished = np.searchsorted(done, enter + tol, side="right")
            backlog = index - finished + 1
            max_backlog = max(int(backlog.max()), 0)
            cap = caps[k]
            overflow_count = (
                int(np.count_nonzero(backlog > cap)) if cap is not None else 0
            )
            busy = float(cum[-1])
            horizon = float(done[-1])
            stats.append(
                StageStats(
                    max_backlog=max_backlog,
                    overflow_count=overflow_count,
                    overflowed=overflow_count > 0,
                    busy_seconds=busy,
                    utilization=min(busy, horizon) / horizon if horizon > 0 else 0.0,
                )
            )
            departures[k] = done
            enter = done
        _publish_chain_metrics("replay", stats, items)
    return ChainResult(stage_stats=tuple(stats), departures=departures)


def simulate_chain(
    arrivals: np.ndarray,
    demands: np.ndarray,
    frequencies,
    *,
    capacities=None,
) -> ChainResult:
    """Event-driven oracle for :func:`replay_chain` (same signature).

    Runs the chain on the discrete-event kernel with one FIFO + PE pair
    per stage.  External arrivals are bulk-loaded with
    :meth:`~repro.simulation.kernel.Simulator.schedule_sorted`; stage
    hand-offs are separate priority-0 events so that every completion at
    a timestamp (priority -1) frees its slot before any simultaneous
    arrival is admitted — the tie rule the replay encodes with its
    tolerance.  All handlers are per-*stage* cursor callables: items
    traverse every stage in FIFO order, so no per-item closures are
    needed.
    """
    arrivals, demands, frequencies, caps = _validate_chain(
        arrivals, demands, frequencies, capacities
    )
    stages, items = demands.shape
    sim = Simulator()
    fifos: list[Fifo[int]] = [
        Fifo(caps[k], name=f"chain.stage{k}") for k in range(stages)
    ]
    pes = [
        ProcessingElement(f"chain.stage{k}", float(frequencies[k]))
        for k in range(stages)
    ]
    completions = np.zeros((stages, items))
    done_cursors = [0] * stages  # next item index to complete, per stage
    push_cursors = [0] * stages  # next item index to arrive, per stage

    def try_start(k: int) -> None:
        fifo, pe = fifos[k], pes[k]
        if fifo.queued == 0 or not pe.is_idle_at(sim.now):
            return
        index = fifo.start_service()
        done = pe.start(sim.now, float(demands[k, index]))
        sim.schedule(done, completes[k], priority=-1)

    def arrive(k: int) -> None:
        fifo = fifos[k]
        fifo.push(push_cursors[k])
        push_cursors[k] += 1
        try_start(k)

    def complete(k: int) -> None:
        i = done_cursors[k]
        completions[k, i] = sim.now
        done_cursors[k] = i + 1
        fifos[k].finish_service()
        if k + 1 < stages:
            # hand-off as a fresh priority-0 event: every simultaneous
            # completion (priority -1) runs first and frees its slot
            sim.schedule(sim.now, arrivals_by_stage[k + 1])
        try_start(k)

    arrivals_by_stage = [
        (lambda k=k: arrive(k)) for k in range(stages)
    ]
    completes = [(lambda k=k: complete(k)) for k in range(stages)]

    def external(index: int) -> None:
        arrive(0)

    sim.schedule_sorted(arrivals, external)
    with tracer.span(
        "sim.chain", impl="event-driven", stages=stages, items=items
    ):
        sim.run()
        stats: list[StageStats] = []
        for k in range(stages):
            busy = pes[k].busy_time
            horizon = float(completions[k, -1])
            stats.append(
                StageStats(
                    max_backlog=fifos[k].max_occupancy,
                    overflow_count=fifos[k].overflow_count,
                    overflowed=fifos[k].overflow_count > 0,
                    busy_seconds=busy,
                    utilization=min(busy, horizon) / horizon if horizon > 0 else 0.0,
                )
            )
        _publish_chain_metrics("event-driven", stats, items)
    return ChainResult(stage_stats=tuple(stats), departures=completions)
