"""Processing-element model for the transaction-level simulation.

A PE executes work items sequentially at a fixed clock frequency: an item
demanding ``c`` cycles occupies the PE for ``c / F`` seconds.  The model
matches the paper's assumption that each decoder subtask receives the full
capacity of its PE (no scheduler on the PE itself).
"""

from __future__ import annotations

from repro.util.validation import ValidationError, check_non_negative, check_positive

__all__ = ["ProcessingElement"]


class ProcessingElement:
    """A single work-conserving processor at a fixed clock frequency.

    Tracks cumulative busy time so experiments can report utilization.
    """

    def __init__(self, name: str, frequency: float):
        if not isinstance(name, str) or not name:
            raise ValidationError("PE name must be a non-empty string")
        self.name = name
        self.frequency = check_positive(frequency, "frequency")
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.items_processed = 0

    def service_time(self, cycles: float) -> float:
        """Wall-clock time to execute *cycles* at this PE's frequency."""
        check_non_negative(cycles, "cycles")
        return cycles / self.frequency

    def is_idle_at(self, time: float) -> bool:
        """True if the PE has no work in flight at *time*."""
        return time >= self.busy_until - 1e-15

    def start(self, time: float, cycles: float) -> float:
        """Begin executing an item of *cycles* at *time* (the PE must be
        idle); returns the completion time."""
        if not self.is_idle_at(time):
            raise ValidationError(
                f"PE {self.name!r} is busy until {self.busy_until!r} at {time!r}"
            )
        duration = self.service_time(cycles)
        self.busy_until = time + duration
        self.busy_time += duration
        self.items_processed += 1
        return self.busy_until

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` spent executing."""
        check_positive(horizon, "horizon")
        return min(self.busy_time, horizon) / horizon

    def publish_metrics(self) -> None:
        """Report this PE's busy time and throughput into the metrics
        registry, labeled by the PE's name (once per run — the per-item
        bookkeeping above stays allocation-free)."""
        from repro.obs.metrics import registry

        registry.counter("sim.pe.busy_seconds", pe=self.name).add(self.busy_time)
        registry.counter("sim.pe.items", pe=self.name).inc(self.items_processed)
