"""Transaction-level simulation of the two-PE streaming architecture.

This is the testbed of the paper's Figure 7: macroblocks leave PE1 at known
times (the clip generator's front-end recursion), enter the FIFO of size
``b`` in front of PE2, and PE2 — clocked at frequency ``F`` — consumes them
in order.  A macroblock's slot is freed when PE2 *finishes* it.

Two independent implementations are provided:

* :func:`simulate_pipeline` — event-driven, on the
  :class:`~repro.simulation.kernel.Simulator` kernel, using the
  :class:`~repro.simulation.fifo.Fifo` and
  :class:`~repro.simulation.pe.ProcessingElement` models;
* :func:`replay_pipeline` — a closed-form vectorized replay of the same
  single-server recursion.

They must agree exactly; the test-suite cross-checks them, so the fast
replay can be trusted for the 14-clip sweeps.  Both report overflow with
the same semantics: an *overflow* is an arrival that finds the buffer
already holding ``capacity`` items (slots are freed the instant the
consumer finishes, before simultaneous arrivals), so ``overflowed`` is
equivalent to ``max_backlog > capacity`` and ``overflow_count`` counts
the offending arrivals in both implementations.

The N-stage generalization (tandem pipelines with per-stage frequencies
and FIFOs) lives in :mod:`repro.simulation.chain`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import registry
from repro.obs.tracing import tracer
from repro.simulation.fifo import Fifo
from repro.simulation.kernel import Simulator
from repro.simulation.pe import ProcessingElement
from repro.util.validation import ValidationError, check_integer, check_positive

__all__ = ["PipelineResult", "simulate_pipeline", "replay_pipeline"]


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one pipeline run.

    Attributes
    ----------
    max_backlog:
        Worst-case FIFO occupancy in items (macroblocks).
    overflowed:
        True if the occupancy ever exceeded the buffer capacity.
    overflow_count:
        Number of arrivals that found the buffer already at capacity
        (0 for unbounded buffers; both implementations count arrivals,
        so the statistic is comparable across them).
    completion_times:
        Per-item completion times at PE2 (decode order).
    consumer_utilization:
        Busy fraction of PE2 over the makespan.
    """

    max_backlog: int
    overflowed: bool
    overflow_count: int
    completion_times: np.ndarray
    consumer_utilization: float

    @property
    def makespan(self) -> float:
        """Completion time of the last item."""
        return float(self.completion_times[-1])

    def normalized_backlog(self, capacity: int) -> float:
        """``max_backlog / capacity`` — the y-axis of the paper's Figure 7."""
        check_integer(capacity, "capacity", minimum=1)
        return self.max_backlog / capacity


def _validate_inputs(arrivals: np.ndarray, demands: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    arrivals = np.asarray(arrivals, dtype=float)
    demands = np.asarray(demands, dtype=float)
    if arrivals.ndim != 1 or demands.ndim != 1 or arrivals.size != demands.size:
        raise ValidationError("arrivals and demands must be equal-length 1-D arrays")
    if arrivals.size == 0:
        raise ValidationError("pipeline needs at least one item")
    if np.any(np.diff(arrivals) < 0):
        raise ValidationError("arrivals must be non-decreasing (in-order stream)")
    if np.any(demands <= 0):
        raise ValidationError("demands must be positive")
    return arrivals, demands


def simulate_pipeline(
    arrivals: np.ndarray,
    demands: np.ndarray,
    frequency: float,
    *,
    capacity: int | None = None,
) -> PipelineResult:
    """Event-driven simulation of the FIFO + PE2 stage.

    Arrivals are bulk-loaded through
    :meth:`~repro.simulation.kernel.Simulator.schedule_sorted` and both
    the arrival and completion handlers are shared index-cursor
    callables, so a run allocates O(1) closures instead of one per item
    — the difference between minutes and seconds on million-event traces
    (gated by ``benchmarks/test_bench_sim.py``).

    Parameters
    ----------
    arrivals:
        Times items enter the FIFO (non-decreasing; PE1 output order).
    demands:
        PE2 cycle demand per item.
    frequency:
        PE2 clock in Hz.
    capacity:
        FIFO capacity in items; ``None`` = unbounded (statistics only).
    """
    arrivals, demands = _validate_inputs(arrivals, demands)
    check_positive(frequency, "frequency")
    sim = Simulator()
    fifo: Fifo[int] = Fifo(capacity, name="PE2.fifo")
    pe2 = ProcessingElement("PE2", frequency)
    completions = np.zeros(arrivals.size)
    done_cursor = 0  # items complete in FIFO order, so one cursor suffices

    def try_start() -> None:
        if fifo.queued == 0 or not pe2.is_idle_at(sim.now):
            return
        index = fifo.start_service()
        done = pe2.start(sim.now, float(demands[index]))
        # completions precede simultaneous arrivals: the slot is free the
        # instant processing ends, matching the replay's accounting
        sim.schedule(done, complete, priority=-1)

    def complete() -> None:
        nonlocal done_cursor
        completions[done_cursor] = sim.now
        done_cursor += 1
        fifo.finish_service()
        try_start()

    def arrive(index: int) -> None:
        fifo.push(index)
        try_start()

    sim.schedule_sorted(arrivals, arrive)
    with tracer.span(
        "sim.pipeline", impl="event-driven", items=int(arrivals.size), frequency=frequency
    ):
        sim.run()
        fifo.publish_metrics()
        pe2.publish_metrics()
    makespan = float(completions[-1]) if completions[-1] > 0 else float(arrivals[-1])
    return PipelineResult(
        max_backlog=fifo.max_occupancy,
        overflowed=fifo.overflow_count > 0,
        overflow_count=fifo.overflow_count,
        completion_times=completions,
        consumer_utilization=pe2.utilization(makespan) if makespan > 0 else 0.0,
    )


def replay_pipeline(
    arrivals: np.ndarray,
    demands: np.ndarray,
    frequency: float,
    *,
    capacity: int | None = None,
) -> PipelineResult:
    """Closed-form replay of :func:`simulate_pipeline`.

    Completion times follow the single-server recursion
    ``done_i = max(arrive_i, done_{i-1}) + demand_i / F``.  Unrolled, that
    is the max-plus scan ``done_i = S_i + max_{j<=i}(arrive_j − S_{j-1})``
    with ``S_i`` the cumulative service time — one ``cumsum`` plus one
    ``np.maximum.accumulate``, no Python-level loop.  The maximal backlog
    is the largest ``i − j + 1`` such that item ``j`` is still occupying
    its slot (``done_j > arrive_i``) when item ``i`` arrives; ``done`` is
    monotone, so each count is one ``np.searchsorted``.  Ties (an item
    completing the instant another arrives) free the slot first, matching
    the event-driven kernel's completion priority; the tie tolerance is
    *relative* to the arrival time, so late arrivals in long traces — where
    an absolute epsilon would vanish under the float spacing — compare the
    same way early ones do.

    Overflow accounting matches :func:`simulate_pipeline` arrival for
    arrival: ``overflow_count`` is the number of arrivals whose occupancy
    exceeded *capacity*, and ``overflowed`` is true iff that count is
    nonzero (equivalently ``max_backlog > capacity``).
    """
    arrivals, demands = _validate_inputs(arrivals, demands)
    check_positive(frequency, "frequency")
    with tracer.span(
        "sim.pipeline", impl="replay", items=int(arrivals.size), frequency=frequency
    ):
        service = demands / frequency
        cum = np.cumsum(service)
        done = cum + np.maximum.accumulate(arrivals - cum + service)
        # items finished by each arrival (ties count as finished, as above)
        tol = 1e-12 * np.maximum(1.0, np.abs(arrivals))
        finished = np.searchsorted(done, arrivals + tol, side="right")
        backlog = np.arange(arrivals.size) - finished + 1
        max_backlog = max(int(backlog.max()), 0)
        overflow_count = (
            int(np.count_nonzero(backlog > capacity)) if capacity is not None else 0
        )
        makespan = float(done[-1])
        busy = float(cum[-1])
        # metric publication stays inside the span so profile self-time
        # attribution matches the event-driven path
        registry.gauge("sim.fifo.high_water", fifo="PE2.fifo").set_max(max_backlog)
        registry.counter("sim.fifo.pushed", fifo="PE2.fifo").inc(int(arrivals.size))
        registry.counter("sim.fifo.overflows", fifo="PE2.fifo").inc(overflow_count)
        registry.counter("sim.pe.busy_seconds", pe="PE2").add(busy)
        registry.counter("sim.pe.items", pe="PE2").inc(int(arrivals.size))
    return PipelineResult(
        max_backlog=max_backlog,
        overflowed=overflow_count > 0,
        overflow_count=overflow_count,
        completion_times=done,
        consumer_utilization=min(busy, makespan) / makespan if makespan > 0 else 0.0,
    )
