"""FIFO buffer with occupancy statistics.

The buffer between PE1 and PE2 (Figure 5) holds partially decoded
macroblocks.  Capacity is counted in items (macroblocks, matching the
paper's ``b = 1620`` = one frame); an item occupies a slot from the moment
it arrives until its consumer *finishes* processing it.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

from repro.util.validation import ValidationError, check_integer

__all__ = ["Fifo"]

T = TypeVar("T")


class Fifo(Generic[T]):
    """Bounded FIFO recording its worst-case occupancy.

    Overflows are *recorded*, not dropped: the paper sizes the consumer's
    clock so overflow never happens; the statistic tells us whether the
    guarantee held.  Pass ``capacity=None`` for an unbounded buffer.
    """

    def __init__(self, capacity: int | None, *, name: str = "fifo"):
        if capacity is not None:
            capacity = check_integer(capacity, "capacity", minimum=1)
        self.capacity = capacity
        self.name = name
        self._items: deque[T] = deque()
        self._in_service = 0
        self.max_occupancy = 0
        self.overflow_count = 0
        self.total_pushed = 0

    @property
    def occupancy(self) -> int:
        """Items currently occupying slots (queued + in service)."""
        return len(self._items) + self._in_service

    @property
    def queued(self) -> int:
        """Items waiting (not yet started by the consumer)."""
        return len(self._items)

    def push(self, item: T) -> None:
        """Insert at the tail; records an overflow if capacity is exceeded."""
        self._items.append(item)
        self.total_pushed += 1
        occ = self.occupancy
        if occ > self.max_occupancy:
            self.max_occupancy = occ
        if self.capacity is not None and occ > self.capacity:
            self.overflow_count += 1

    def start_service(self) -> T:
        """Remove the head for processing; its slot stays occupied until
        :meth:`finish_service`."""
        if not self._items:
            raise ValidationError("cannot start service on an empty FIFO")
        self._in_service += 1
        return self._items.popleft()

    def finish_service(self) -> None:
        """Release the slot of an item whose processing completed."""
        if self._in_service <= 0:
            raise ValidationError("finish_service without a matching start_service")
        self._in_service -= 1

    def publish_metrics(self) -> None:
        """Report this buffer's statistics into the metrics registry.

        Called once per simulation run (not per push, which is the hot
        path): a backlog high-water gauge plus pushed/overflow counters,
        labeled by the buffer's name.
        """
        from repro.obs.metrics import registry

        registry.gauge("sim.fifo.high_water", fifo=self.name).set_max(self.max_occupancy)
        registry.counter("sim.fifo.pushed", fifo=self.name).inc(self.total_pushed)
        registry.counter("sim.fifo.overflows", fifo=self.name).inc(self.overflow_count)

    def __len__(self) -> int:
        return self.occupancy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"Fifo(occupancy={self.occupancy}/{cap}, max={self.max_occupancy})"
