"""Transaction-level simulation substrate (paper Figures 5 and 7).

A small discrete-event kernel (with O(n) bulk loading of pre-sorted
event arrays) plus FIFO and processing-element models; the two-PE
pipeline testbed and its N-stage tandem generalization, each in both
event-driven and closed-form vectorized-replay form (cross-validated
against each other); and seeded open-system workload generators
(Poisson/constant/uniform arrivals, long-task fractions, heterogeneous
client mixes) whose traces feed the simulators and the workload-curve
extraction alike.
"""

from repro.simulation.kernel import Simulator
from repro.simulation.fifo import Fifo
from repro.simulation.pe import ProcessingElement
from repro.simulation.pipeline import PipelineResult, simulate_pipeline, replay_pipeline
from repro.simulation.chain import (
    ChainResult,
    StageStats,
    replay_chain,
    simulate_chain,
)
from repro.simulation.workloads import (
    ARRIVAL_MODELS,
    ClientProfile,
    GeneratedWorkload,
    WorkloadSpec,
    generate_workload,
    scenario_grid,
)

__all__ = [
    "Simulator",
    "Fifo",
    "ProcessingElement",
    "PipelineResult",
    "simulate_pipeline",
    "replay_pipeline",
    "ChainResult",
    "StageStats",
    "replay_chain",
    "simulate_chain",
    "ARRIVAL_MODELS",
    "ClientProfile",
    "GeneratedWorkload",
    "WorkloadSpec",
    "generate_workload",
    "scenario_grid",
]
