"""Transaction-level simulation substrate (paper Figures 5 and 7).

A small discrete-event kernel plus FIFO and processing-element models, and
the two-PE pipeline testbed in both event-driven and closed-form-replay
form (cross-validated against each other).
"""

from repro.simulation.kernel import Simulator
from repro.simulation.fifo import Fifo
from repro.simulation.pe import ProcessingElement
from repro.simulation.pipeline import PipelineResult, simulate_pipeline, replay_pipeline

__all__ = [
    "Simulator",
    "Fifo",
    "ProcessingElement",
    "PipelineResult",
    "simulate_pipeline",
    "replay_pipeline",
]
