"""A minimal discrete-event simulation kernel.

The paper's experiments run on a SystemC transaction-level model; this
kernel provides the same semantics in a few dozen lines: time-stamped
events in a priority queue, executed in order, each free to schedule
further events.  Determinism is guaranteed by a (time, sequence) ordering —
events at equal times run in scheduling order.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

from repro.util.validation import ValidationError, check_non_negative

__all__ = ["Simulator"]


class Simulator:
    """Event-driven simulation core.

    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [2.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, int, Callable[[], None]]] = []
        self._sequence = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-executed events."""
        return len(self._queue)

    def schedule(self, time: float, action: Callable[[], None], *, priority: int = 0) -> None:
        """Schedule *action* at absolute *time* (>= now).

        Events at the same time run in ascending *priority*, then scheduling
        order — e.g. resource releases can be given a negative priority so
        they precede simultaneous arrivals.
        """
        check_non_negative(time, "time")
        if time < self._now - 1e-12:
            raise ValidationError(
                f"cannot schedule into the past: time={time!r} < now={self._now!r}"
            )
        heapq.heappush(self._queue, (time, priority, self._sequence, action))
        self._sequence += 1

    def schedule_in(self, delay: float, action: Callable[[], None], *, priority: int = 0) -> None:
        """Schedule *action* to run *delay* seconds from now."""
        check_non_negative(delay, "delay")
        self.schedule(self._now + delay, action, priority=priority)

    def run(self, until: float = math.inf) -> None:
        """Execute events in time order until the queue drains or the next
        event would be after *until* (time then stops at *until* if any
        events remain, at the last executed event otherwise)."""
        if self._running:
            raise ValidationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            while self._queue:
                time, _prio, _seq, action = self._queue[0]
                if time > until:
                    self._now = until
                    return
                heapq.heappop(self._queue)
                self._now = time
                action()
        finally:
            self._running = False
