"""A minimal discrete-event simulation kernel.

The paper's experiments run on a SystemC transaction-level model; this
kernel provides the same semantics in a few dozen lines: time-stamped
events in a priority queue, executed in order, each free to schedule
further events.  Determinism is guaranteed by a (time, priority,
sequence) ordering — events at equal times run in ascending priority,
then scheduling order.

Two scheduling paths exist: :meth:`Simulator.schedule` pushes one event
onto the heap (O(log n)), and :meth:`Simulator.schedule_sorted`
bulk-loads a pre-sorted event array as a constant-memory lazy cursor —
the fast path for million-event traces whose arrival times are known up
front, where n individual heap pushes into an n-entry heap (and the
per-event closure each usually carries) dominate run time and peak
memory.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Sequence

import numpy as np

from repro.util.validation import ValidationError, check_non_negative

__all__ = ["Simulator"]


class Simulator:
    """Event-driven simulation core.

    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [2.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple] = []
        self._sequence = 0
        self._running = False
        self._deferred = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-executed events (materialized heap
        entries plus events of bulk-loaded batches not yet reached)."""
        return len(self._queue) + self._deferred

    def schedule(self, time: float, action: Callable[[], None], *, priority: int = 0) -> None:
        """Schedule *action* at absolute *time* (>= now).

        Events at the same time run in ascending *priority*, then scheduling
        order — e.g. resource releases can be given a negative priority so
        they precede simultaneous arrivals.
        """
        check_non_negative(time, "time")
        if time < self._now - 1e-12:
            raise ValidationError(
                f"cannot schedule into the past: time={time!r} < now={self._now!r}"
            )
        heapq.heappush(self._queue, (time, priority, self._sequence, action, ()))
        self._sequence += 1

    def schedule_in(self, delay: float, action: Callable[[], None], *, priority: int = 0) -> None:
        """Schedule *action* to run *delay* seconds from now."""
        check_non_negative(delay, "delay")
        self.schedule(self._now + delay, action, priority=priority)

    def schedule_sorted(
        self,
        times: Sequence[float],
        action: Callable[[int], None],
        *,
        priority: int = 0,
        start_index: int = 0,
    ) -> int:
        """Bulk-load one event per entry of the non-decreasing *times*.

        The i-th event calls ``action(start_index + i)`` at ``times[i]``.
        The batch is validated vectorially and held as a lazy cursor:
        only the batch's *next* event is materialized in the heap, and
        firing it re-arms the cursor with the one after.  The heap
        therefore stays at its dynamic-event size instead of growing by
        the whole trace — pushes and pops stay O(log m) in the small live
        set ``m``, and peak memory is O(1) per batch rather than one heap
        entry (plus the usual per-event closure) per item.  End to end
        this is severalfold faster than per-event :meth:`schedule` on
        million-event traces (gated in ``benchmarks/test_bench_sim.py``).

        A contiguous sequence range is reserved for the whole batch up
        front, so tie-breaking among equal-time, equal-priority events is
        *identical* to having scheduled the batch eagerly — events
        scheduled after this call sort after the batch's events at the
        same (time, priority).  Returns the number of events loaded.
        """
        arr = np.asarray(times, dtype=float)
        if arr.ndim != 1:
            raise ValidationError("schedule_sorted times must be a 1-D array")
        n = arr.size
        if n == 0:
            return 0
        # NaN fails every comparison, so the monotonicity check rejects it
        if not (arr[0] >= self._now - 1e-12 and arr[0] >= 0.0):
            raise ValidationError(
                f"schedule_sorted times must start at or after now: "
                f"times[0]={arr[0]!r}, now={self._now!r}"
            )
        if not bool(np.all(arr[1:] >= arr[:-1])):
            raise ValidationError("schedule_sorted times must be non-decreasing")
        if math.isinf(arr[-1]):
            raise ValidationError("schedule_sorted times must be finite")
        base = self._sequence
        self._sequence = base + n
        batch = arr.tolist()
        queue = self._queue

        def fire(index: int) -> None:
            nxt = index + 1
            if nxt < n:
                self._deferred -= 1
                heapq.heappush(
                    queue, (batch[nxt], priority, base + nxt, fire, (nxt,))
                )
            action(start_index + index)

        self._deferred += n - 1
        heapq.heappush(queue, (batch[0], priority, base, fire, (0,)))
        return n

    def run(self, until: float = math.inf) -> None:
        """Execute events in time order until the queue drains or the next
        event would be after *until* (time then stops at *until* if any
        events remain, at the last executed event otherwise)."""
        if self._running:
            raise ValidationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            while self._queue:
                time, _prio, _seq, action, args = self._queue[0]
                if time > until:
                    self._now = until
                    return
                heapq.heappop(self._queue)
                self._now = time
                action(*args)
        finally:
            self._running = False
