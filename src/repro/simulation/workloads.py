"""Open-system workload generators for the simulation engine.

The paper's testbed replays *closed* traces (the clip generator's PE1
output); checking the analytic bounds over much wider scenario grids
needs *open-system* arrival models in the style of the absim simulator:
Poisson, constant, and uniform inter-arrival processes, a configurable
fraction of long tasks, and weighted heterogeneous client mixes.  This
module provides those as seeded, fully vectorized samplers — one
:class:`WorkloadSpec` describes a scenario, :meth:`WorkloadSpec.generate`
draws the whole ``(arrivals, demands)`` trace with numpy batch calls (no
Python-level per-item loop), and the resulting
:class:`GeneratedWorkload` feeds the simulators
(:func:`~repro.simulation.chain.replay_chain`,
:func:`~repro.simulation.pipeline.simulate_pipeline`) and the workload
curve extraction
(:meth:`~repro.core.workload.WorkloadCurve.from_demand_stream` via
:meth:`GeneratedWorkload.demand_chunks`) alike, so analysis bounds and
simulated backlogs can be compared on the same generated trace.

Determinism: all sampling goes through ``np.random.default_rng`` (PCG64)
with an explicit seed and a fixed draw order (gaps, then client
assignment, then demand noise, then the long-task mask), so the same
seed yields a byte-identical trace on any worker, process, or platform.
Scenario grids derive per-point seeds with
:func:`repro.util.seeding.derive_seed`, the same fold the parallel
runner and the analysis service use.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.obs.metrics import registry
from repro.obs.tracing import tracer
from repro.util.seeding import derive_seed
from repro.util.validation import ValidationError, check_integer, check_positive

__all__ = [
    "ARRIVAL_MODELS",
    "ClientProfile",
    "WorkloadSpec",
    "GeneratedWorkload",
    "generate_workload",
    "scenario_grid",
]

#: Supported inter-arrival models (absim's poisson/constant plus uniform).
ARRIVAL_MODELS = ("poisson", "constant", "uniform")


@dataclass(frozen=True)
class ClientProfile:
    """One client class of a heterogeneous open-system mix.

    Attributes
    ----------
    name:
        Label of the class (recorded in scenario manifests).
    weight:
        Relative share of items this class emits (absim's
        ``demandWeight``); normalized over the mix.
    demand_scale:
        Multiplier on the base per-item demand for this class.
    """

    name: str
    weight: float
    demand_scale: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValidationError("client name must be a non-empty string")
        check_positive(self.weight, "weight")
        check_positive(self.demand_scale, "demand_scale")


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one open-system scenario.

    Attributes
    ----------
    model:
        Inter-arrival model: ``"poisson"`` (exponential gaps),
        ``"constant"`` (fixed gaps), or ``"uniform"`` (gaps uniform on
        ``[0, 2·mean]`` — same mean, bursty).
    items:
        Number of items to emit.
    mean_interarrival:
        Mean gap between arrivals, in seconds.
    demand_mean:
        Mean per-item demand, in consumer cycles.
    demand_spread:
        Relative half-width of the uniform demand noise: each base
        demand is ``demand_mean · U[1−s, 1+s]``; 0 = deterministic.
        Must be < 1 so demands stay positive.
    long_task_fraction:
        Probability that an item is a *long task* (absim's knob).
    long_task_factor:
        Demand multiplier applied to long tasks.
    clients:
        Optional heterogeneous client mix; items are assigned by
        weighted choice and scaled by the class's ``demand_scale``.
        Empty = one homogeneous client.
    stage_scales:
        Per-stage demand multipliers: ``generate`` emits a
        ``(len(stage_scales), items)`` demand matrix for
        :func:`~repro.simulation.chain.replay_chain`; the default is a
        single stage.
    """

    model: str = "poisson"
    items: int = 10_000
    mean_interarrival: float = 1.0
    demand_mean: float = 1.0
    demand_spread: float = 0.0
    long_task_fraction: float = 0.0
    long_task_factor: float = 10.0
    clients: tuple[ClientProfile, ...] = ()
    stage_scales: tuple[float, ...] = (1.0,)

    def __post_init__(self) -> None:
        if self.model not in ARRIVAL_MODELS:
            raise ValidationError(
                f"unknown arrival model {self.model!r} "
                f"(known: {', '.join(ARRIVAL_MODELS)})"
            )
        check_integer(self.items, "items", minimum=1)
        check_positive(self.mean_interarrival, "mean_interarrival")
        check_positive(self.demand_mean, "demand_mean")
        if not 0.0 <= self.demand_spread < 1.0:
            raise ValidationError("demand_spread must be in [0, 1)")
        if not 0.0 <= self.long_task_fraction <= 1.0:
            raise ValidationError("long_task_fraction must be in [0, 1]")
        check_positive(self.long_task_factor, "long_task_factor")
        if not self.stage_scales:
            raise ValidationError("stage_scales needs at least one stage")
        for scale in self.stage_scales:
            check_positive(scale, "stage_scale")

    @property
    def stages(self) -> int:
        """Number of demand rows :meth:`generate` emits."""
        return len(self.stage_scales)

    @property
    def arrival_rate(self) -> float:
        """Long-run arrival rate in items per second."""
        return 1.0 / self.mean_interarrival

    def generate(self, seed: int) -> "GeneratedWorkload":
        """Draw the scenario's full trace with the given *seed*.

        Vectorized end to end — gap sampling, client assignment, demand
        noise, and the long-task mask are each one numpy batch call —
        and byte-deterministic in *seed* (PCG64 with a fixed draw
        order).
        """
        seed = check_integer(seed, "seed", minimum=0)
        rng = np.random.default_rng(seed)
        n = self.items
        with tracer.span(
            "sim.workload.generate", model=self.model, items=n, stages=self.stages
        ):
            if self.model == "poisson":
                gaps = rng.exponential(self.mean_interarrival, n)
            elif self.model == "uniform":
                gaps = rng.uniform(0.0, 2.0 * self.mean_interarrival, n)
            else:  # constant
                gaps = np.full(n, self.mean_interarrival)
            arrivals = np.cumsum(gaps)

            if self.clients:
                weights = np.array([c.weight for c in self.clients])
                client_index = rng.choice(
                    len(self.clients), size=n, p=weights / weights.sum()
                )
                scales = np.array([c.demand_scale for c in self.clients])[
                    client_index
                ]
            else:
                client_index = np.zeros(n, dtype=np.int64)
                scales = 1.0

            if self.demand_spread > 0.0:
                noise = rng.uniform(
                    1.0 - self.demand_spread, 1.0 + self.demand_spread, n
                )
            else:
                noise = 1.0
            base = np.broadcast_to(
                np.asarray(self.demand_mean * scales * noise, dtype=float), (n,)
            )

            if self.long_task_fraction > 0.0:
                is_long = rng.random(n) < self.long_task_fraction
                base = np.where(is_long, base * self.long_task_factor, base)
            else:
                is_long = np.zeros(n, dtype=bool)

            demands = np.asarray(self.stage_scales)[:, np.newaxis] * base
            registry.counter("sim.workload.items", model=self.model).inc(n)
        return GeneratedWorkload(
            spec=self,
            seed=seed,
            arrivals=arrivals,
            demands=demands,
            client_index=client_index,
            is_long=is_long,
        )


@dataclass(frozen=True)
class GeneratedWorkload:
    """One generated open-system trace, ready for simulation or analysis.

    Attributes
    ----------
    spec:
        The :class:`WorkloadSpec` that produced the trace.
    seed:
        The seed it was drawn with.
    arrivals:
        ``(items,)`` non-decreasing arrival times in seconds.
    demands:
        ``(stages, items)`` per-stage cycle demands — feed it to
        :func:`~repro.simulation.chain.replay_chain` as-is, or a single
        row to the two-PE pipeline.
    client_index:
        ``(items,)`` index into ``spec.clients`` (all zeros for a
        homogeneous mix).
    is_long:
        ``(items,)`` long-task mask.
    """

    spec: WorkloadSpec
    seed: int
    arrivals: np.ndarray
    demands: np.ndarray
    client_index: np.ndarray = field(repr=False, default=None)
    is_long: np.ndarray = field(repr=False, default=None)

    @property
    def items(self) -> int:
        """Number of items in the trace."""
        return int(self.arrivals.size)

    def stage_demands(self, stage: int = 0) -> np.ndarray:
        """The demand row of one *stage* (0-based, flow order)."""
        stage = check_integer(stage, "stage", minimum=0)
        if stage >= self.demands.shape[0]:
            raise ValidationError(
                f"stage {stage} out of range (chain has {self.demands.shape[0]})"
            )
        return self.demands[stage]

    def demand_chunks(self, chunk_size: int, *, stage: int = 0):
        """Yield one stage's demands in consecutive chunks.

        The bounded-memory feed for
        :meth:`~repro.core.workload.WorkloadCurve.from_demand_stream`
        (pass ``total=workload.items`` alongside).
        """
        chunk_size = check_integer(chunk_size, "chunk_size", minimum=1)
        row = self.stage_demands(stage)
        for start in range(0, row.size, chunk_size):
            yield row[start : start + chunk_size]

    def utilization(self, frequency: float, *, stage: int = 0) -> float:
        """Offered long-run load of one *stage* at *frequency* (Hz)."""
        check_positive(frequency, "frequency")
        span = float(self.arrivals[-1]) if self.arrivals[-1] > 0 else 1.0
        return float(self.stage_demands(stage).sum()) / (frequency * span)


def generate_workload(spec: WorkloadSpec, *, seed: int) -> GeneratedWorkload:
    """Functional alias for :meth:`WorkloadSpec.generate` (runner tasks
    pickle module-level callables by reference)."""
    return spec.generate(seed)


def scenario_grid(
    base: WorkloadSpec, axes: dict[str, list], *, base_seed: int = 0
) -> list[tuple[WorkloadSpec, int]]:
    """Cross-product scenario grid with derived per-point seeds.

    *axes* maps :class:`WorkloadSpec` field names to candidate values;
    the cartesian product is enumerated in a deterministic order (axes
    key-sorted, values in given order) and each point gets
    ``derive_seed(base_seed, index)`` — the same chunking-independent
    fold the parallel runner applies, so a grid fanned out over
    :func:`repro.runner.run_many` draws identical traces no matter how
    the points are scheduled.  Returns ``(spec, seed)`` pairs.
    """
    names = sorted(axes)
    for name in names:
        if name not in WorkloadSpec.__dataclass_fields__:
            raise ValidationError(f"unknown WorkloadSpec field {name!r}")
        if not axes[name]:
            raise ValidationError(f"axis {name!r} has no values")
    points: list[tuple[WorkloadSpec, int]] = []
    shape = [len(axes[name]) for name in names]
    total = int(np.prod(shape)) if names else 1
    for index in range(total):
        remainder = index
        overrides = {}
        for name, size in zip(reversed(names), reversed(shape)):
            overrides[name] = axes[name][remainder % size]
            remainder //= size
        points.append(
            (replace(base, **overrides), derive_seed(base_seed, index))
        )
    return points
