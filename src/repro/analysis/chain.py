"""Multi-node streaming-architecture analysis.

The paper's Figure 5 is a two-node instance of the general platform-based
streaming architecture of Chakraborty/Künzli/Thiele (DATE 2003): a chain of
processing elements connected by FIFOs, each node consuming the stream its
predecessor emits.  This module composes the per-node results into a chain
analysis:

* each node converts the incoming *event* arrival curve to cycles via its
  workload curve (Figure 4), takes its service curve, and yields backlog
  and delay bounds plus the *output* event curve via the delay-shift bound
  ``ᾱ'(Δ) <= ᾱ(Δ + D)`` (FIFO order: everything leaving in a window of
  length Δ entered within Δ plus the node's worst-case delay D);
* the end-to-end delay is the tighter of (a) the sum of per-hop delays and
  (b) the horizontal deviation against the convolution of the per-node
  service curves normalized to a common cycle domain — for homogeneous
  chains (b) is the classical "pay bursts only once" improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.backlog import backlog_bound_events
from repro.analysis.conversion import arrival_events_to_cycles
from repro.core.workload import WorkloadCurve
from repro.curves.bounds import delay_bound as _horizontal
from repro.curves.compact import compact_upper
from repro.curves.curve import PiecewiseLinearCurve, _stamp
from repro.obs.tracing import tracer
from repro.perf.batch import convolve_reduce
from repro.util.validation import ValidationError

__all__ = ["ProcessingNode", "NodeReport", "ChainReport", "StreamingChain"]


@dataclass(frozen=True)
class ProcessingNode:
    """One PE of the chain.

    Parameters
    ----------
    name:
        Node label (e.g. ``"PE2"``).
    service:
        Cycle-based lower service curve ``β(Δ)`` (e.g.
        :func:`repro.curves.service.full_processor`).
    gamma_u:
        Upper workload curve of the task running on this node — the
        events→cycles conversion of Figure 4.
    """

    name: str
    service: PiecewiseLinearCurve
    gamma_u: WorkloadCurve

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValidationError("node name must be a non-empty string")
        if not isinstance(self.service, PiecewiseLinearCurve):
            raise ValidationError("service must be a PiecewiseLinearCurve")
        if not isinstance(self.gamma_u, WorkloadCurve) or self.gamma_u.kind != "upper":
            raise ValidationError("gamma_u must be an upper WorkloadCurve")


@dataclass(frozen=True)
class NodeReport:
    """Per-node analysis results."""

    name: str
    backlog_events: float
    delay: float
    output_curve: PiecewiseLinearCurve
    utilization: float


@dataclass(frozen=True)
class ChainReport:
    """Whole-chain results."""

    nodes: tuple[NodeReport, ...]

    @property
    def sum_of_delays(self) -> float:
        """Sum of per-node delay bounds (the naive end-to-end bound)."""
        return sum(n.delay for n in self.nodes)

    @property
    def total_buffer_events(self) -> float:
        """Sum of per-node backlog bounds — total buffering the chain
        needs."""
        return sum(n.backlog_events for n in self.nodes)

    def node(self, name: str) -> NodeReport:
        """Look up one node's report."""
        for n in self.nodes:
            if n.name == name:
                return n
        raise KeyError(f"no node named {name!r}")


class StreamingChain:
    """A feed-forward chain of processing nodes.

    >>> chain = StreamingChain([ProcessingNode("PE1", beta1, g1),
    ...                         ProcessingNode("PE2", beta2, g2)])
    >>> report = chain.analyze(alpha_events)

    *max_segments*/*max_error* optionally bound the curves the analysis
    iterates on (see :mod:`repro.curves.compact`): the arrival curve
    propagated hop to hop is compacted **up** after each node (a valid,
    slightly pessimistic arrival bound) and the tandem service
    convolution runs with a **lower**-direction budget (a valid, slightly
    pessimistic service bound), so per-hop curve growth — and with it the
    per-hop kernel cost — stays O(budget) over arbitrarily long chains.
    All reported bounds remain sound; they can only grow.
    """

    def __init__(
        self,
        nodes: list[ProcessingNode],
        *,
        max_segments: int | None = None,
        max_error: float | None = None,
    ):
        nodes = list(nodes)
        if not nodes:
            raise ValidationError("chain needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ValidationError("node names must be unique")
        self.nodes = nodes
        if max_segments is not None:
            max_segments = int(max_segments)
        self.max_segments = max_segments
        self.max_error = max_error

    def analyze(self, alpha_events: PiecewiseLinearCurve) -> ChainReport:
        """Propagate the event stream through the chain.

        Per node: event backlog (eq. (7)), delay (horizontal deviation of
        the cycle-converted arrival curve against the service), and the
        output event curve via the delay-shift bound ``ᾱ'(Δ) = ᾱ(Δ + D)``.
        Raises on an unstable node (long-run demand exceeding service).
        """
        reports: list[NodeReport] = []
        alpha = alpha_events
        with tracer.span("chain.analyze", nodes=len(self.nodes)):
            for node in self.nodes:
                with tracer.span("chain.node", node=node.name):
                    cycles_in = arrival_events_to_cycles(alpha, node.gamma_u)
                    if cycles_in.final_slope > node.service.final_slope + 1e-9:
                        raise ValidationError(
                            f"node {node.name!r} is unstable: demand rate "
                            f"{cycles_in.final_slope:g} exceeds service rate "
                            f"{node.service.final_slope:g}"
                        )
                    backlog = backlog_bound_events(alpha, node.service, node.gamma_u)
                    delay = _horizontal(cycles_in, node.service)
                    out_events = _shift_time(alpha, delay)
                    if self.max_segments is not None or self.max_error is not None:
                        # compacting the propagated arrival curve *up* keeps
                        # every downstream bound valid (only pessimism grows)
                        out_events = compact_upper(
                            out_events,
                            max_segments=self.max_segments,
                            max_error=self.max_error,
                        ).curve
                    utilization = cycles_in.final_slope / node.service.final_slope
                reports.append(
                    NodeReport(
                        name=node.name,
                        backlog_events=backlog,
                        delay=delay,
                        output_curve=out_events,
                        utilization=utilization,
                    )
                )
                alpha = out_events
        return ChainReport(tuple(reports))

    def end_to_end_delay(self, alpha_events: PiecewiseLinearCurve) -> float:
        """End-to-end delay bound: the tighter of the per-hop sum and the
        tandem (pay-bursts-only-once) bound.

        The tandem bound evaluates the first node's cycle-domain arrival
        curve against the min-plus convolution of all service curves, each
        normalized to the first node's cycle domain by the conservative
        per-event rate ratio ``γ₁-rate / γᵢ-WCET``-style factor.  For a
        homogeneous chain (same γ on every node) this recovers the
        classical tandem result; for strongly heterogeneous stages the
        normalization can be loose, which is why the minimum with the
        per-hop sum is returned — both are valid bounds.
        """
        with tracer.span("chain.end_to_end_delay", nodes=len(self.nodes)):
            return self._end_to_end_delay(alpha_events)

    def _end_to_end_delay(self, alpha_events: PiecewiseLinearCurve) -> float:
        report = self.analyze(alpha_events)
        first = self.nodes[0]
        cycles_in = arrival_events_to_cycles(alpha_events, first.gamma_u)
        ref_rate = first.gamma_u.long_run_rate
        betas = []
        for node in self.nodes:
            # conservative normalization: a cycle of node i serves at least
            # 1/wcet_i events, each demanding at most ref-rate first-node
            # cycles; under-estimating service keeps the bound sound
            scale = ref_rate / node.gamma_u.per_activation_bound
            betas.append(node.service * scale if scale != 1.0 else node.service)
        # min-plus convolution is associative: the balanced convolve_reduce
        # batches each tree level and shares the memoized pair kernels
        if self.max_segments is not None or self.max_error is not None:
            combined = convolve_reduce(
                betas,
                max_segments=self.max_segments,
                max_error=self.max_error,
                direction="lower",
            )
        else:
            combined = convolve_reduce(betas)
        try:
            tandem = _horizontal(cycles_in, combined)
        except Exception:
            # the conservative normalization can under-estimate a fast
            # heterogeneous stage so far that the tandem system looks
            # unstable; the per-hop sum is still a valid bound
            tandem = float("inf")
        return min(tandem, report.sum_of_delays)


def _shift_time(curve: PiecewiseLinearCurve, shift: float) -> PiecewiseLinearCurve:
    """The delay-shift output bound ``g(Δ) = f(Δ + shift)``.

    Sound for FIFO nodes: every event leaving in a window of length Δ
    entered within a window of length ``Δ + D`` where ``D`` bounds the
    node's delay.  Exact PWL construction: breakpoints move left by
    *shift* (clipped at 0).
    """
    if shift < 0:
        raise ValidationError("shift must be >= 0")
    if shift == 0.0:
        return curve
    xs_old = curve.breakpoints
    kept = np.flatnonzero(xs_old > shift)
    # reuse the kept breakpoints' exact values and slopes: re-evaluating at
    # (x − shift) + shift rounds across breakpoints and can corrupt the
    # assigned slopes (including the asymptotic one)
    xs = np.concatenate(([0.0], xs_old[kept] - shift))
    ys = np.concatenate(([float(curve(shift))], curve.values_at_breakpoints[kept]))
    first = np.searchsorted(xs_old, shift, side="right") - 1
    slopes = curve.slopes[np.concatenate(([first], kept))]
    out = PiecewiseLinearCurve(xs, ys, slopes).simplified()
    if curve.is_concave:
        # a left-shifted concave curve stays concave (the cut-off prefix
        # only enlarges the burst); stamping keeps budgeted chains on the
        # concave fast paths
        return _stamp(out, "concave")
    return out
