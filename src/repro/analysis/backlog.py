"""Backlog bounds for a PE fed through a FIFO (paper eqs. (6) and (7)).

Cycle domain (eq. (6), the DATE'03 framework's form):

.. math::

    B \\le \\sup_{Δ \\ge 0} \\{ α(Δ) - β(Δ) \\}

with ``α`` in cycles (events scaled by ``w`` or converted through ``γ^u``).

Event domain (eq. (7), the paper's refinement):

.. math::

    \\bar B \\le \\sup_{Δ \\ge 0} \\{ \\bar α(Δ) - γ^{u-1}(β(Δ)) \\}

which bounds the number of *events* (macroblocks) in the buffer — the
quantity an item-granular FIFO actually constrains.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.workload import WorkloadCurve
from repro.curves.bounds import backlog_bound as _vertical_deviation
from repro.curves.curve import EPS_REL, PiecewiseLinearCurve
from repro.curves.minplus import UnboundedCurveError
from repro.analysis.conversion import arrival_events_to_cycles, scale_arrival_by_wcet
from repro.perf.batch import evaluate_at_many
from repro.perf.instrument import instrumented
from repro.util.validation import ValidationError

__all__ = [
    "backlog_bound_cycles_wcet",
    "backlog_bound_cycles_curves",
    "backlog_bound_events",
    "backlog_bound_events_many",
    "candidate_deltas",
]


def candidate_deltas(
    alpha: PiecewiseLinearCurve, beta: PiecewiseLinearCurve
) -> np.ndarray:
    """Window lengths at which a sup over ``Δ`` of a difference of these
    curves can be attained: all breakpoints plus left-limit probes."""
    bps = np.concatenate((alpha.breakpoints, beta.breakpoints))
    probes = bps - EPS_REL * np.maximum(1.0, np.abs(bps))
    cands = np.concatenate(([0.0], bps, probes[probes >= 0.0]))
    return np.unique(cands)


def backlog_bound_cycles_wcet(
    alpha_events: PiecewiseLinearCurve, wcet: float, beta: PiecewiseLinearCurve
) -> float:
    """Eq. (6) with the WCET scaling ``α = w·ᾱ`` — the baseline bound, in
    cycles."""
    return _vertical_deviation(scale_arrival_by_wcet(alpha_events, wcet), beta)


def backlog_bound_cycles_curves(
    alpha_events: PiecewiseLinearCurve,
    gamma_u: WorkloadCurve,
    beta: PiecewiseLinearCurve,
) -> float:
    """Eq. (6) with the workload-curve conversion ``α = γ^u(ᾱ)`` — tighter
    than the WCET scaling whenever consecutive events cannot all be
    worst-case, still in cycles."""
    return _vertical_deviation(arrival_events_to_cycles(alpha_events, gamma_u), beta)


@instrumented("backlog.bound_events")
def backlog_bound_events(
    alpha_events: PiecewiseLinearCurve,
    beta: PiecewiseLinearCurve,
    gamma_u: WorkloadCurve,
    *,
    deltas: np.ndarray | None = None,
) -> float:
    """Eq. (7): maximum number of events backlogged in front of the PE.

    Raises :class:`~repro.curves.minplus.UnboundedCurveError` if the
    long-run demand rate (events/s × cycles/event) exceeds the long-run
    service rate.

    *deltas* optionally supplies a precomputed candidate grid: a
    frequency sweep probes the same arrival curve against many
    zero-latency service curves ``F·Δ``, whose only breakpoint is 0, so
    ``candidate_deltas(alpha, β_F)`` is the same array for every ``F``
    and can be hoisted out of the sweep loop (it must cover
    :func:`candidate_deltas` of the actual pair to stay exact).
    """
    if gamma_u.kind != "upper":
        raise ValidationError("backlog bound needs an upper workload curve")
    demand_rate = alpha_events.final_slope * gamma_u.long_run_rate
    if demand_rate > beta.final_slope + 1e-9:
        raise UnboundedCurveError(
            f"event backlog unbounded: demand rate {demand_rate:g} cycles/s "
            f"exceeds service rate {beta.final_slope:g}"
        )
    if deltas is None:
        deltas = candidate_deltas(alpha_events, beta)
    arrived, served_cycles = evaluate_at_many([alpha_events, beta], deltas)
    served_events = gamma_u.pseudo_inverse(served_cycles)
    return float(np.max(arrived - served_events))


@instrumented("backlog.bound_events_many")
def backlog_bound_events_many(
    alpha_events: PiecewiseLinearCurve,
    betas,
    gamma_u: WorkloadCurve,
) -> list[float]:
    """Eq. (7) against several service curves at once.

    The batched form of a frequency sweep (``β(Δ) = F·Δ`` for many ``F``):
    the arrival side is evaluated once on the union candidate grid, each
    service curve then costs one batch evaluation plus one memoized
    ``γ^{u-1}`` lookup.  Returns bounds aligned with *betas*.
    """
    if gamma_u.kind != "upper":
        raise ValidationError("backlog bound needs an upper workload curve")
    betas = list(betas)
    out: list[float] = []
    for beta in betas:
        out.append(backlog_bound_events(alpha_events, beta, gamma_u))
    return out
