"""System-level performance analysis combining workload curves with
Network Calculus (paper §3.2): domain conversion (Figure 4), backlog bounds
(eqs. (6)–(7)), minimum PE frequency (eqs. (8)–(10)), buffer sizing and
delay bounds.
"""

from repro.analysis.conversion import (
    arrival_events_to_cycles,
    service_cycles_to_events,
    scale_arrival_by_wcet,
)
from repro.analysis.backlog import (
    backlog_bound_cycles_wcet,
    backlog_bound_cycles_curves,
    backlog_bound_events,
    candidate_deltas,
)
from repro.analysis.frequency import (
    FrequencyBound,
    FrequencySweepEvaluator,
    minimum_frequency_bisect,
    minimum_frequency_curves,
    minimum_frequency_dense,
    minimum_frequency_wcet,
    verify_service_constraint,
)
from repro.analysis.buffer_sizing import (
    BufferBound,
    minimum_buffer_curves,
    minimum_buffer_wcet,
    buffer_frequency_tradeoff,
)
from repro.analysis.delay import delay_bound_curves, delay_bound_wcet
from repro.analysis.energy import PowerModel, dvs_savings
from repro.analysis.chain import ProcessingNode, NodeReport, ChainReport, StreamingChain

__all__ = [
    "arrival_events_to_cycles",
    "service_cycles_to_events",
    "scale_arrival_by_wcet",
    "backlog_bound_cycles_wcet",
    "backlog_bound_cycles_curves",
    "backlog_bound_events",
    "candidate_deltas",
    "FrequencyBound",
    "FrequencySweepEvaluator",
    "minimum_frequency_bisect",
    "minimum_frequency_curves",
    "minimum_frequency_dense",
    "minimum_frequency_wcet",
    "verify_service_constraint",
    "BufferBound",
    "minimum_buffer_curves",
    "minimum_buffer_wcet",
    "buffer_frequency_tradeoff",
    "delay_bound_curves",
    "delay_bound_wcet",
    "PowerModel",
    "dvs_savings",
    "ProcessingNode",
    "NodeReport",
    "ChainReport",
    "StreamingChain",
]
