"""Minimum PE clock frequency against FIFO overflow (paper eqs. (8)–(10)).

For a PE fully dedicated to one stream (service ``β(Δ) = F·Δ``) behind a
FIFO of ``b`` items, overflow is excluded iff (eq. (8))

.. math::

    β(Δ) \\ge γ^u(\\barα(Δ) - b) \\quad \\forall Δ \\ge 0

yielding the workload-curve frequency bound (eq. (9))

.. math::

    F^γ_{min} = \\max_{Δ > 0} \\Big\\{ \\frac{γ^u(\\barα(Δ) - b)}{Δ} \\Big\\}

and, with the single-value characterization ``γ^u_w(k) = w·k``, the
baseline (eq. (10))

.. math::

    F^w_{min} = \\max_{Δ > 0} \\Big\\{ \\frac{w·(\\barα(Δ) - b)}{Δ} \\Big\\}

The paper's headline result is ``F^γ_min ≈ 340 MHz`` vs ``F^w_min ≈
710 MHz`` for the MPEG-2 decoder's PE2 at ``b = 1620`` macroblocks (one
frame): over 50 % saving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.workload import WorkloadCurve
from repro.curves.curve import PiecewiseLinearCurve
from repro.obs.metrics import registry
from repro.perf.instrument import instrumented
from repro.util.validation import ValidationError, check_integer, check_positive

__all__ = [
    "FrequencyBound",
    "FrequencySweepEvaluator",
    "minimum_frequency_curves",
    "minimum_frequency_wcet",
    "minimum_frequency_sweep",
    "minimum_frequency_bisect",
    "minimum_frequency_dense",
    "verify_service_constraint",
]

#: Metrics counter incremented by every eq. (8) feasibility evaluation —
#: the unit the bisection-vs-dense benchmark gate counts.
VERIFY_CALLS_METRIC = "frequency.verify_calls"


@dataclass(frozen=True)
class FrequencyBound:
    """A minimum-frequency result: the bound and its critical window."""

    frequency: float
    critical_delta: float
    method: str

    def savings_over(self, other: "FrequencyBound") -> float:
        """Relative saving ``1 − self/other`` (e.g. γ-bound vs WCET-bound)."""
        if other.frequency <= 0:
            raise ValidationError("cannot compare against a zero-frequency bound")
        return 1.0 - self.frequency / other.frequency


def _sup_candidates(alpha_events: PiecewiseLinearCurve) -> np.ndarray:
    """Δ candidates for the eq. (9)/(10) supremum.

    For a staircase ``ᾱ``, between jumps the numerator is constant while
    ``1/Δ`` decreases, so the sup over each plateau is at its left end —
    the jump points themselves (plus the final-slope tail, where the ratio
    is monotone towards the long-run rate, covered by a far-out probe).
    """
    bps = alpha_events.breakpoints
    cands = bps[bps > 0.0]
    if cands.size == 0:
        cands = np.array([1.0])
    if alpha_events.final_slope > 0:
        # probe the linear tail
        cands = np.append(cands, float(bps[-1]) * 4.0 + 1.0)
    return np.unique(cands)


def _best_ratio(ratios: np.ndarray, deltas: np.ndarray) -> tuple[float, float]:
    """Supremum of the ratio sweep and the (first) window attaining it.

    Matches the scalar loop's semantics: zero ratios never win, and ties
    keep the earliest Δ.
    """
    if ratios.size == 0 or float(np.max(ratios)) <= 0.0:
        return 0.0, math.inf
    i = int(np.argmax(ratios))
    return float(ratios[i]), float(deltas[i])


@instrumented("frequency.minimum_curves")
def minimum_frequency_curves(
    alpha_events: PiecewiseLinearCurve,
    gamma_u: WorkloadCurve,
    buffer_size: int,
) -> FrequencyBound:
    """Eq. (9): minimum frequency with the workload-curve characterization.

    Vectorized: all candidate windows are evaluated in one batch — the
    arrival counts, the ``γ^u`` lookups, and the ratio supremum are single
    array operations.
    """
    if gamma_u.kind != "upper":
        raise ValidationError("frequency bound needs an upper workload curve")
    check_integer(buffer_size, "buffer_size", minimum=1)
    deltas = _sup_candidates(alpha_events)
    excess = np.ceil(alpha_events(deltas) - 1e-9).astype(np.int64) - buffer_size
    mask = excess > 0
    ratios = gamma_u(excess[mask]) / deltas[mask]
    best, best_delta = _best_ratio(ratios, deltas[mask])
    return FrequencyBound(best, best_delta, "workload-curves")


@instrumented("frequency.minimum_wcet")
def minimum_frequency_wcet(
    alpha_events: PiecewiseLinearCurve,
    wcet: float,
    buffer_size: int,
) -> FrequencyBound:
    """Eq. (10): minimum frequency with the single-value WCET
    characterization (``γ^u_w(k) = w·k``); vectorized over the candidate
    windows like :func:`minimum_frequency_curves`."""
    check_positive(wcet, "wcet")
    check_integer(buffer_size, "buffer_size", minimum=1)
    deltas = _sup_candidates(alpha_events)
    excess = alpha_events(deltas) - buffer_size
    mask = excess > 0
    ratios = wcet * excess[mask] / deltas[mask]
    best, best_delta = _best_ratio(ratios, deltas[mask])
    return FrequencyBound(best, best_delta, "wcet")


@instrumented("frequency.sweep")
def minimum_frequency_sweep(
    alpha_events: PiecewiseLinearCurve,
    gamma_u: WorkloadCurve,
    wcet: float,
    buffer_sizes,
) -> list[tuple[FrequencyBound, FrequencyBound]]:
    """Both bounds, eq. (9) and eq. (10), for every buffer size at once.

    The batched form of the buffer-size ablation: the candidate windows and
    arrival counts are computed once and shared across the whole sweep;
    each buffer size then costs one ``γ^u`` batch lookup and two argmax
    reductions.  Returns ``[(f_gamma, f_wcet), ...]`` aligned with
    *buffer_sizes*.
    """
    if gamma_u.kind != "upper":
        raise ValidationError("frequency bound needs an upper workload curve")
    check_positive(wcet, "wcet")
    sizes = [check_integer(b, "buffer_size", minimum=1) for b in buffer_sizes]
    deltas = _sup_candidates(alpha_events)
    arrived = alpha_events(deltas)
    counts = np.ceil(arrived - 1e-9).astype(np.int64)
    out: list[tuple[FrequencyBound, FrequencyBound]] = []
    for b in sizes:
        excess_int = counts - b
        mask = excess_int > 0
        ratios = gamma_u(excess_int[mask]) / deltas[mask]
        fg = FrequencyBound(*_best_ratio(ratios, deltas[mask]), "workload-curves")
        excess = arrived - b
        mask = excess > 0
        ratios = wcet * excess[mask] / deltas[mask]
        fw = FrequencyBound(*_best_ratio(ratios, deltas[mask]), "wcet")
        out.append((fg, fw))
    return out


def verify_service_constraint(
    alpha_events: PiecewiseLinearCurve,
    gamma_u: WorkloadCurve,
    buffer_size: int,
    frequency: float,
    *,
    tolerance: float = 1e-6,
) -> bool:
    """Check eq. (8) directly: ``F·Δ >= γ^u(ᾱ(Δ) − b)`` at every candidate
    window (sound for staircase ``ᾱ``).

    Every call counts one evaluation into the obs registry
    (``frequency.verify_calls``); search strategies are compared by this
    counter.
    """
    check_positive(frequency, "frequency")
    check_integer(buffer_size, "buffer_size", minimum=1)
    registry.counter(VERIFY_CALLS_METRIC).inc()
    deltas = _sup_candidates(alpha_events)
    excess = np.ceil(alpha_events(deltas) - 1e-9).astype(np.int64) - buffer_size
    mask = excess > 0
    if not np.any(mask):
        return True
    demanded = gamma_u(excess[mask])
    return bool(np.all(frequency * deltas[mask] >= demanded * (1.0 - tolerance)))


class FrequencySweepEvaluator:
    """Warm-started evaluation of the eq. (8)–(10) family over one arrival
    context.

    A frequency/backlog sweep evaluates many ``(buffer_size, frequency)``
    points against the *same* arrival curve.  This class hoists everything
    that does not depend on the grid point: the candidate windows
    (:func:`_sup_candidates`), the arrival counts over them, an optional
    conservative compaction of the arrival curve
    (:func:`repro.curves.compact.compact_upper` — pointwise >=, so every
    derived bound stays valid), and, per distinct buffer size, the
    ``γ^u`` cycle demands.  A feasibility check then costs one vectorized
    comparison; :meth:`bisect` needs ~20 of them where a dense scan needs
    hundreds.

    The compaction applied here (``max_segments``/``max_error``) is
    reported in :attr:`compaction`; with both ``None`` the evaluator
    reproduces :func:`minimum_frequency_curves` /
    :func:`minimum_frequency_wcet` bit-identically.
    """

    def __init__(
        self,
        alpha_events: PiecewiseLinearCurve,
        gamma_u: WorkloadCurve,
        *,
        wcet: float | None = None,
        max_segments: int | None = None,
        max_error: float | None = None,
        backend: str | None = None,
    ):
        if gamma_u.kind != "upper":
            raise ValidationError("frequency bound needs an upper workload curve")
        from repro.curves.backends import use_backend

        #: Min-plus kernel backend the evaluator's curve algebra runs
        #: under (``None`` inherits the process-wide active backend).
        self.backend = backend
        self.compaction = None
        if max_segments is not None or max_error is not None:
            from repro.curves.compact import compact_upper

            with use_backend(backend):
                self.compaction = compact_upper(
                    alpha_events, max_segments=max_segments, max_error=max_error
                )
            alpha_events = self.compaction.curve
        self.alpha = alpha_events
        self.gamma_u = gamma_u
        self.wcet = wcet
        self.deltas = _sup_candidates(alpha_events)
        self._arrived = alpha_events(self.deltas)
        self._counts = np.ceil(self._arrived - 1e-9).astype(np.int64)
        # per-buffer-size (deltas, demanded cycles) — the γ^u lookups are
        # shared by every frequency probed at that buffer size
        self._per_buffer: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._backlog_deltas: np.ndarray | None = None

    def _demands(self, buffer_size: int) -> tuple[np.ndarray, np.ndarray]:
        buffer_size = check_integer(buffer_size, "buffer_size", minimum=1)
        cached = self._per_buffer.get(buffer_size)
        if cached is None:
            excess = self._counts - buffer_size
            mask = excess > 0
            cached = (self.deltas[mask], self.gamma_u(excess[mask]))
            self._per_buffer[buffer_size] = cached
        return cached

    def verify(
        self, buffer_size: int, frequency: float, *, tolerance: float = 1e-6
    ) -> bool:
        """Eq. (8) feasibility at one grid point (counted like
        :func:`verify_service_constraint`, computed from the warm state)."""
        check_positive(frequency, "frequency")
        registry.counter(VERIFY_CALLS_METRIC).inc()
        deltas, demanded = self._demands(buffer_size)
        if deltas.size == 0:
            return True
        return bool(np.all(frequency * deltas >= demanded * (1.0 - tolerance)))

    def bound_curves(self, buffer_size: int) -> FrequencyBound:
        """Eq. (9) from the warm state (same semantics as
        :func:`minimum_frequency_curves`)."""
        deltas, demanded = self._demands(buffer_size)
        best, best_delta = _best_ratio(demanded / deltas, deltas)
        return FrequencyBound(best, best_delta, "workload-curves")

    def bound_wcet(self, buffer_size: int) -> FrequencyBound:
        """Eq. (10) from the warm state (same semantics as
        :func:`minimum_frequency_wcet`)."""
        if self.wcet is None:
            raise ValidationError("evaluator was built without a wcet")
        check_integer(buffer_size, "buffer_size", minimum=1)
        excess = self._arrived - buffer_size
        mask = excess > 0
        ratios = self.wcet * excess[mask] / self.deltas[mask]
        best, best_delta = _best_ratio(ratios, self.deltas[mask])
        return FrequencyBound(best, best_delta, "wcet")

    def upper_bracket(self, buffer_size: int) -> float:
        """A provably feasible frequency: ``max γ-demand / min window``
        dominates the eq. (9) supremum ratio, so eq. (8) holds there."""
        deltas, demanded = self._demands(buffer_size)
        if deltas.size == 0:
            return 0.0
        return float(np.max(demanded) / np.min(deltas))

    def backlog_events(self, frequency: float) -> float:
        """Eq. (7) event backlog behind the zero-latency service ``F·Δ``.

        The candidate window grid depends only on the arrival side (the
        service curve's sole breakpoint is 0), so it is computed once and
        reused for every frequency of the sweep.
        """
        from repro.analysis.backlog import backlog_bound_events, candidate_deltas
        from repro.curves.backends import use_backend
        from repro.curves.service import rate_latency

        beta = rate_latency(float(frequency), 0.0)
        with use_backend(self.backend):
            if self._backlog_deltas is None:
                self._backlog_deltas = candidate_deltas(self.alpha, beta)
            return backlog_bound_events(
                self.alpha, beta, self.gamma_u, deltas=self._backlog_deltas
            )

    @instrumented("frequency.bisect")
    def bisect(
        self,
        buffer_size: int,
        *,
        rel_tol: float = 1e-4,
        f_hi: float | None = None,
        tolerance: float = 1e-6,
    ) -> FrequencyBound:
        """Eq. (9) by bisection on the monotone eq. (8) feasibility.

        ``F·Δ >= γ^u(ᾱ(Δ) − b)`` holds for every ``F`` above the true
        minimum and fails below it, so feasibility search brackets
        ``F_min`` without ever materializing the ratio sweep: the bracket
        ``[0, f_hi]`` (seeded by :meth:`upper_bracket` when *f_hi* is not
        given) halves until its width is below ``rel_tol`` of the result.
        The returned frequency is a feasible point within ``rel_tol`` (+
        the *tolerance* slack of the oracle) of ``F_min``; the critical
        window is attributed from the warm demand table.
        """
        deltas, demanded = self._demands(buffer_size)
        if deltas.size == 0:
            return FrequencyBound(0.0, math.inf, "bisection")
        hi = float(f_hi) if f_hi is not None else self.upper_bracket(buffer_size)
        check_positive(hi, "f_hi")
        guard = 0
        while not self.verify(buffer_size, hi, tolerance=tolerance):
            hi *= 2.0
            guard += 1
            if guard > 60:
                raise ValidationError("bisection failed to bracket a feasible F")
        lo = 0.0
        while hi - lo > rel_tol * hi:
            mid = 0.5 * (lo + hi)
            if self.verify(buffer_size, mid, tolerance=tolerance):
                hi = mid
            else:
                lo = mid
        critical = float(deltas[int(np.argmax(demanded / deltas))])
        return FrequencyBound(hi, critical, "bisection")

    @instrumented("frequency.dense")
    def dense(
        self,
        buffer_size: int,
        *,
        n_grid: int = 512,
        f_lo: float | None = None,
        f_hi: float | None = None,
        tolerance: float = 1e-6,
    ) -> FrequencyBound:
        """Eq. (9) by a naive dense frequency scan — the baseline the
        bisection is gated against.

        Probes *n_grid* equispaced frequencies over ``[f_lo, f_hi]``
        (defaults: the :meth:`upper_bracket` and 1/1024 of it) with one
        eq. (8) evaluation each — a scan that does not exploit
        monotonicity — and returns the smallest feasible grid point.
        """
        check_integer(n_grid, "n_grid", minimum=2)
        deltas, demanded = self._demands(buffer_size)
        if deltas.size == 0:
            return FrequencyBound(0.0, math.inf, "dense")
        hi = float(f_hi) if f_hi is not None else self.upper_bracket(buffer_size)
        lo = float(f_lo) if f_lo is not None else hi / 1024.0
        check_positive(hi, "f_hi")
        if not 0.0 < lo < hi:
            raise ValidationError("need 0 < f_lo < f_hi")
        best = math.inf
        for freq in np.linspace(lo, hi, n_grid):
            if self.verify(buffer_size, float(freq), tolerance=tolerance):
                best = min(best, float(freq))
        if not math.isfinite(best):
            raise ValidationError("no feasible frequency on the dense grid")
        critical = float(deltas[int(np.argmax(demanded / deltas))])
        return FrequencyBound(best, critical, "dense")


def minimum_frequency_bisect(
    alpha_events: PiecewiseLinearCurve,
    gamma_u: WorkloadCurve,
    buffer_size: int,
    *,
    rel_tol: float = 1e-4,
    f_hi: float | None = None,
    tolerance: float = 1e-6,
    max_segments: int | None = None,
    max_error: float | None = None,
) -> FrequencyBound:
    """Eq. (9) by monotone feasibility bisection (see
    :meth:`FrequencySweepEvaluator.bisect`).

    One-shot convenience wrapper; sweeps should hold a
    :class:`FrequencySweepEvaluator` so the candidate windows, the
    optional arrival compaction (``max_segments``/``max_error``), and the
    per-buffer ``γ^u`` demands are reused across grid points.
    """
    ev = FrequencySweepEvaluator(
        alpha_events, gamma_u, max_segments=max_segments, max_error=max_error
    )
    return ev.bisect(buffer_size, rel_tol=rel_tol, f_hi=f_hi, tolerance=tolerance)


def minimum_frequency_dense(
    alpha_events: PiecewiseLinearCurve,
    gamma_u: WorkloadCurve,
    buffer_size: int,
    *,
    n_grid: int = 512,
    f_lo: float | None = None,
    f_hi: float | None = None,
    tolerance: float = 1e-6,
) -> FrequencyBound:
    """Eq. (9) by a naive dense frequency scan (see
    :meth:`FrequencySweepEvaluator.dense`) — kept as the benchmark
    baseline for :func:`minimum_frequency_bisect`."""
    ev = FrequencySweepEvaluator(alpha_events, gamma_u)
    return ev.dense(
        buffer_size, n_grid=n_grid, f_lo=f_lo, f_hi=f_hi, tolerance=tolerance
    )
