"""Minimum PE clock frequency against FIFO overflow (paper eqs. (8)–(10)).

For a PE fully dedicated to one stream (service ``β(Δ) = F·Δ``) behind a
FIFO of ``b`` items, overflow is excluded iff (eq. (8))

.. math::

    β(Δ) \\ge γ^u(\\barα(Δ) - b) \\quad \\forall Δ \\ge 0

yielding the workload-curve frequency bound (eq. (9))

.. math::

    F^γ_{min} = \\max_{Δ > 0} \\Big\\{ \\frac{γ^u(\\barα(Δ) - b)}{Δ} \\Big\\}

and, with the single-value characterization ``γ^u_w(k) = w·k``, the
baseline (eq. (10))

.. math::

    F^w_{min} = \\max_{Δ > 0} \\Big\\{ \\frac{w·(\\barα(Δ) - b)}{Δ} \\Big\\}

The paper's headline result is ``F^γ_min ≈ 340 MHz`` vs ``F^w_min ≈
710 MHz`` for the MPEG-2 decoder's PE2 at ``b = 1620`` macroblocks (one
frame): over 50 % saving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.workload import WorkloadCurve
from repro.curves.curve import PiecewiseLinearCurve
from repro.perf.instrument import instrumented
from repro.util.validation import ValidationError, check_integer, check_positive

__all__ = [
    "FrequencyBound",
    "minimum_frequency_curves",
    "minimum_frequency_wcet",
    "minimum_frequency_sweep",
    "verify_service_constraint",
]


@dataclass(frozen=True)
class FrequencyBound:
    """A minimum-frequency result: the bound and its critical window."""

    frequency: float
    critical_delta: float
    method: str

    def savings_over(self, other: "FrequencyBound") -> float:
        """Relative saving ``1 − self/other`` (e.g. γ-bound vs WCET-bound)."""
        if other.frequency <= 0:
            raise ValidationError("cannot compare against a zero-frequency bound")
        return 1.0 - self.frequency / other.frequency


def _sup_candidates(alpha_events: PiecewiseLinearCurve) -> np.ndarray:
    """Δ candidates for the eq. (9)/(10) supremum.

    For a staircase ``ᾱ``, between jumps the numerator is constant while
    ``1/Δ`` decreases, so the sup over each plateau is at its left end —
    the jump points themselves (plus the final-slope tail, where the ratio
    is monotone towards the long-run rate, covered by a far-out probe).
    """
    bps = alpha_events.breakpoints
    cands = bps[bps > 0.0]
    if cands.size == 0:
        cands = np.array([1.0])
    if alpha_events.final_slope > 0:
        # probe the linear tail
        cands = np.append(cands, float(bps[-1]) * 4.0 + 1.0)
    return np.unique(cands)


def _best_ratio(ratios: np.ndarray, deltas: np.ndarray) -> tuple[float, float]:
    """Supremum of the ratio sweep and the (first) window attaining it.

    Matches the scalar loop's semantics: zero ratios never win, and ties
    keep the earliest Δ.
    """
    if ratios.size == 0 or float(np.max(ratios)) <= 0.0:
        return 0.0, math.inf
    i = int(np.argmax(ratios))
    return float(ratios[i]), float(deltas[i])


@instrumented("frequency.minimum_curves")
def minimum_frequency_curves(
    alpha_events: PiecewiseLinearCurve,
    gamma_u: WorkloadCurve,
    buffer_size: int,
) -> FrequencyBound:
    """Eq. (9): minimum frequency with the workload-curve characterization.

    Vectorized: all candidate windows are evaluated in one batch — the
    arrival counts, the ``γ^u`` lookups, and the ratio supremum are single
    array operations.
    """
    if gamma_u.kind != "upper":
        raise ValidationError("frequency bound needs an upper workload curve")
    check_integer(buffer_size, "buffer_size", minimum=1)
    deltas = _sup_candidates(alpha_events)
    excess = np.ceil(alpha_events(deltas) - 1e-9).astype(np.int64) - buffer_size
    mask = excess > 0
    ratios = gamma_u(excess[mask]) / deltas[mask]
    best, best_delta = _best_ratio(ratios, deltas[mask])
    return FrequencyBound(best, best_delta, "workload-curves")


@instrumented("frequency.minimum_wcet")
def minimum_frequency_wcet(
    alpha_events: PiecewiseLinearCurve,
    wcet: float,
    buffer_size: int,
) -> FrequencyBound:
    """Eq. (10): minimum frequency with the single-value WCET
    characterization (``γ^u_w(k) = w·k``); vectorized over the candidate
    windows like :func:`minimum_frequency_curves`."""
    check_positive(wcet, "wcet")
    check_integer(buffer_size, "buffer_size", minimum=1)
    deltas = _sup_candidates(alpha_events)
    excess = alpha_events(deltas) - buffer_size
    mask = excess > 0
    ratios = wcet * excess[mask] / deltas[mask]
    best, best_delta = _best_ratio(ratios, deltas[mask])
    return FrequencyBound(best, best_delta, "wcet")


@instrumented("frequency.sweep")
def minimum_frequency_sweep(
    alpha_events: PiecewiseLinearCurve,
    gamma_u: WorkloadCurve,
    wcet: float,
    buffer_sizes,
) -> list[tuple[FrequencyBound, FrequencyBound]]:
    """Both bounds, eq. (9) and eq. (10), for every buffer size at once.

    The batched form of the buffer-size ablation: the candidate windows and
    arrival counts are computed once and shared across the whole sweep;
    each buffer size then costs one ``γ^u`` batch lookup and two argmax
    reductions.  Returns ``[(f_gamma, f_wcet), ...]`` aligned with
    *buffer_sizes*.
    """
    if gamma_u.kind != "upper":
        raise ValidationError("frequency bound needs an upper workload curve")
    check_positive(wcet, "wcet")
    sizes = [check_integer(b, "buffer_size", minimum=1) for b in buffer_sizes]
    deltas = _sup_candidates(alpha_events)
    arrived = alpha_events(deltas)
    counts = np.ceil(arrived - 1e-9).astype(np.int64)
    out: list[tuple[FrequencyBound, FrequencyBound]] = []
    for b in sizes:
        excess_int = counts - b
        mask = excess_int > 0
        ratios = gamma_u(excess_int[mask]) / deltas[mask]
        fg = FrequencyBound(*_best_ratio(ratios, deltas[mask]), "workload-curves")
        excess = arrived - b
        mask = excess > 0
        ratios = wcet * excess[mask] / deltas[mask]
        fw = FrequencyBound(*_best_ratio(ratios, deltas[mask]), "wcet")
        out.append((fg, fw))
    return out


def verify_service_constraint(
    alpha_events: PiecewiseLinearCurve,
    gamma_u: WorkloadCurve,
    buffer_size: int,
    frequency: float,
    *,
    tolerance: float = 1e-6,
) -> bool:
    """Check eq. (8) directly: ``F·Δ >= γ^u(ᾱ(Δ) − b)`` at every candidate
    window (sound for staircase ``ᾱ``)."""
    check_positive(frequency, "frequency")
    check_integer(buffer_size, "buffer_size", minimum=1)
    deltas = _sup_candidates(alpha_events)
    excess = np.ceil(alpha_events(deltas) - 1e-9).astype(np.int64) - buffer_size
    mask = excess > 0
    if not np.any(mask):
        return True
    demanded = gamma_u(excess[mask])
    return bool(np.all(frequency * deltas[mask] >= demanded * (1.0 - tolerance)))
