"""Minimum PE clock frequency against FIFO overflow (paper eqs. (8)–(10)).

For a PE fully dedicated to one stream (service ``β(Δ) = F·Δ``) behind a
FIFO of ``b`` items, overflow is excluded iff (eq. (8))

.. math::

    β(Δ) \\ge γ^u(\\barα(Δ) - b) \\quad \\forall Δ \\ge 0

yielding the workload-curve frequency bound (eq. (9))

.. math::

    F^γ_{min} = \\max_{Δ > 0} \\Big\\{ \\frac{γ^u(\\barα(Δ) - b)}{Δ} \\Big\\}

and, with the single-value characterization ``γ^u_w(k) = w·k``, the
baseline (eq. (10))

.. math::

    F^w_{min} = \\max_{Δ > 0} \\Big\\{ \\frac{w·(\\barα(Δ) - b)}{Δ} \\Big\\}

The paper's headline result is ``F^γ_min ≈ 340 MHz`` vs ``F^w_min ≈
710 MHz`` for the MPEG-2 decoder's PE2 at ``b = 1620`` macroblocks (one
frame): over 50 % saving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.workload import WorkloadCurve
from repro.curves.curve import PiecewiseLinearCurve
from repro.util.validation import ValidationError, check_integer, check_positive

__all__ = [
    "FrequencyBound",
    "minimum_frequency_curves",
    "minimum_frequency_wcet",
    "verify_service_constraint",
]


@dataclass(frozen=True)
class FrequencyBound:
    """A minimum-frequency result: the bound and its critical window."""

    frequency: float
    critical_delta: float
    method: str

    def savings_over(self, other: "FrequencyBound") -> float:
        """Relative saving ``1 − self/other`` (e.g. γ-bound vs WCET-bound)."""
        if other.frequency <= 0:
            raise ValidationError("cannot compare against a zero-frequency bound")
        return 1.0 - self.frequency / other.frequency


def _sup_candidates(alpha_events: PiecewiseLinearCurve) -> np.ndarray:
    """Δ candidates for the eq. (9)/(10) supremum.

    For a staircase ``ᾱ``, between jumps the numerator is constant while
    ``1/Δ`` decreases, so the sup over each plateau is at its left end —
    the jump points themselves (plus the final-slope tail, where the ratio
    is monotone towards the long-run rate, covered by a far-out probe).
    """
    bps = alpha_events.breakpoints
    cands = [float(x) for x in bps if x > 0.0]
    if not cands:
        cands = [1.0]
    if alpha_events.final_slope > 0:
        cands.append(float(bps[-1]) * 4.0 + 1.0)  # probe the linear tail
    return np.array(sorted(set(cands)))


def minimum_frequency_curves(
    alpha_events: PiecewiseLinearCurve,
    gamma_u: WorkloadCurve,
    buffer_size: int,
) -> FrequencyBound:
    """Eq. (9): minimum frequency with the workload-curve characterization."""
    if gamma_u.kind != "upper":
        raise ValidationError("frequency bound needs an upper workload curve")
    check_integer(buffer_size, "buffer_size", minimum=1)
    best = 0.0
    best_delta = math.inf
    for delta in _sup_candidates(alpha_events):
        excess = int(math.ceil(float(alpha_events(delta)) - 1e-9)) - buffer_size
        if excess <= 0:
            continue
        ratio = float(gamma_u(excess)) / delta
        if ratio > best:
            best = ratio
            best_delta = float(delta)
    return FrequencyBound(best, best_delta, "workload-curves")


def minimum_frequency_wcet(
    alpha_events: PiecewiseLinearCurve,
    wcet: float,
    buffer_size: int,
) -> FrequencyBound:
    """Eq. (10): minimum frequency with the single-value WCET
    characterization (``γ^u_w(k) = w·k``)."""
    check_positive(wcet, "wcet")
    check_integer(buffer_size, "buffer_size", minimum=1)
    best = 0.0
    best_delta = math.inf
    for delta in _sup_candidates(alpha_events):
        excess = float(alpha_events(delta)) - buffer_size
        if excess <= 0:
            continue
        ratio = wcet * excess / delta
        if ratio > best:
            best = ratio
            best_delta = float(delta)
    return FrequencyBound(best, best_delta, "wcet")


def verify_service_constraint(
    alpha_events: PiecewiseLinearCurve,
    gamma_u: WorkloadCurve,
    buffer_size: int,
    frequency: float,
    *,
    tolerance: float = 1e-6,
) -> bool:
    """Check eq. (8) directly: ``F·Δ >= γ^u(ᾱ(Δ) − b)`` at every candidate
    window (sound for staircase ``ᾱ``)."""
    check_positive(frequency, "frequency")
    check_integer(buffer_size, "buffer_size", minimum=1)
    for delta in _sup_candidates(alpha_events):
        excess = int(math.ceil(float(alpha_events(delta)) - 1e-9)) - buffer_size
        if excess <= 0:
            continue
        if frequency * delta < float(gamma_u(excess)) * (1.0 - tolerance):
            return False
    return True
