"""Energy and power implications of the frequency bounds.

The paper's introduction motivates tighter characterization with "cost and
power consumption": an over-provisioned clock wastes power quadratically
(dynamic CMOS power ``P ∝ C·V²·F`` with supply voltage scaling roughly
linearly in frequency gives the classical cubic model ``P ∝ F³``; energy
per unit work then scales as ``F²``).  This module turns the
``F^γ_min``-vs-``F^w_min`` gap into the power/energy savings a designer
would quote.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.frequency import FrequencyBound
from repro.util.validation import ValidationError, check_in_range, check_positive

__all__ = ["PowerModel", "dvs_savings"]


@dataclass(frozen=True)
class PowerModel:
    """Dynamic-power model ``P(F) = coefficient · F^exponent``.

    ``exponent = 3`` is the classical voltage-frequency-scaled CMOS model;
    ``exponent = 1`` models frequency scaling at fixed voltage.
    """

    exponent: float = 3.0
    coefficient: float = 1.0

    def __post_init__(self) -> None:
        check_in_range(self.exponent, "exponent", 1.0, 4.0)
        check_positive(self.coefficient, "coefficient")

    def power(self, frequency: float) -> float:
        """Dissipated power at *frequency* (arbitrary units unless the
        coefficient is calibrated)."""
        check_positive(frequency, "frequency")
        return self.coefficient * frequency**self.exponent

    def energy_per_second_of_work(self, frequency: float) -> float:
        """Energy to deliver one second worth of cycles at *frequency*
        relative to running continuously: equals :meth:`power` here since
        the PE is fully dedicated (paper's assumption)."""
        return self.power(frequency)


@dataclass(frozen=True)
class DvsSavings:
    """Power/energy savings from clocking at the γ bound instead of the
    WCET bound."""

    f_gamma: float
    f_wcet: float
    power_saving: float
    frequency_saving: float

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"frequency {self.frequency_saving * 100:.1f}% lower, "
            f"power {self.power_saving * 100:.1f}% lower"
        )


def dvs_savings(
    f_gamma: FrequencyBound | float,
    f_wcet: FrequencyBound | float,
    *,
    model: PowerModel | None = None,
) -> DvsSavings:
    """Savings from provisioning the PE at ``F^γ_min`` instead of
    ``F^w_min``.

    With the default cubic model, the paper's >50 % frequency saving
    becomes an ~88 % power saving — the number that actually matters for
    the battery.
    """
    model = model if model is not None else PowerModel()
    fg = f_gamma.frequency if isinstance(f_gamma, FrequencyBound) else float(f_gamma)
    fw = f_wcet.frequency if isinstance(f_wcet, FrequencyBound) else float(f_wcet)
    check_positive(fg, "f_gamma")
    check_positive(fw, "f_wcet")
    if fg > fw:
        raise ValidationError("f_gamma must not exceed f_wcet")
    return DvsSavings(
        f_gamma=fg,
        f_wcet=fw,
        power_saving=1.0 - model.power(fg) / model.power(fw),
        frequency_saving=1.0 - fg / fw,
    )
