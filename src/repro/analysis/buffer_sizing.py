"""Buffer sizing: the dual of the frequency problem.

Given a PE frequency ``F``, the smallest FIFO that never overflows is the
event-domain backlog bound of eq. (7) with ``β(Δ) = F·Δ``:

.. math::

    b_{min} = \\sup_{Δ \\ge 0} \\{ \\barα(Δ) - γ^{u-1}(F·Δ) \\}

(the same expression the paper's "How should the buffers be sized?" design
question calls for).  With the WCET characterization
``γ^{u-1}_w(e) = ⌊e/w⌋``, the classical — looser — size falls out of the
same formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.backlog import backlog_bound_events
from repro.core.workload import WorkloadCurve
from repro.curves.curve import PiecewiseLinearCurve
from repro.curves.service import full_processor
from repro.util.validation import check_positive

__all__ = ["BufferBound", "minimum_buffer_curves", "minimum_buffer_wcet", "buffer_frequency_tradeoff"]


@dataclass(frozen=True)
class BufferBound:
    """Minimum buffer size (in items) guaranteeing no overflow."""

    items: int
    method: str


def minimum_buffer_curves(
    alpha_events: PiecewiseLinearCurve,
    gamma_u: WorkloadCurve,
    frequency: float,
) -> BufferBound:
    """Smallest safe FIFO with the workload-curve characterization."""
    check_positive(frequency, "frequency")
    bound = backlog_bound_events(alpha_events, full_processor(frequency), gamma_u)
    return BufferBound(int(math.ceil(bound - 1e-9)), "workload-curves")


def minimum_buffer_wcet(
    alpha_events: PiecewiseLinearCurve,
    wcet: float,
    frequency: float,
) -> BufferBound:
    """Smallest safe FIFO with the WCET characterization (uses the linear
    curve ``γ^u_w(k) = w·k``, whose pseudo-inverse is ``⌊e/w⌋``)."""
    check_positive(wcet, "wcet")
    check_positive(frequency, "frequency")
    linear = WorkloadCurve.from_constant("upper", wcet, horizon=16)
    bound = backlog_bound_events(alpha_events, full_processor(frequency), linear)
    return BufferBound(int(math.ceil(bound - 1e-9)), "wcet")


def buffer_frequency_tradeoff(
    alpha_events: PiecewiseLinearCurve,
    gamma_u: WorkloadCurve,
    frequencies,
) -> list[tuple[float, int]]:
    """``(frequency, b_min)`` pairs across a frequency sweep — the design
    space curve a system architect trades buffer RAM against clock speed
    on."""
    out: list[tuple[float, int]] = []
    for f in frequencies:
        out.append((float(f), minimum_buffer_curves(alpha_events, gamma_u, float(f)).items))
    return out
