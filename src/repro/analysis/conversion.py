"""Event ↔ cycle domain conversion via workload curves (paper Figure 4).

Arrival curves count *events*; service curves count processor *cycles*.
Before eq. (6) can subtract them they must share a unit.  The paper's
baseline scales the event curve by a constant ``w`` (the WCET); the
contribution converts with the workload curve instead:

* events → cycles: ``α(Δ) = γ^u(ᾱ(Δ))`` — the worst-case cycles the
  ``ᾱ(Δ)`` events of any Δ-window may demand;
* cycles → events: ``β̄(Δ) = γ^{u⁻1}(β(Δ))`` — the number of events
  *guaranteed* processable with the cycles served in any Δ-window.

Both conversions are conservative by the Galois property of the
pseudo-inverse (§2.1).
"""

from __future__ import annotations

import numpy as np

from repro.core.workload import WorkloadCurve
from repro.curves.curve import PiecewiseLinearCurve
from repro.util.validation import ValidationError

__all__ = [
    "arrival_events_to_cycles",
    "service_cycles_to_events",
    "scale_arrival_by_wcet",
]


def _require_upper(gamma_u: WorkloadCurve) -> None:
    if gamma_u.kind != "upper":
        raise ValidationError("conversion needs an upper workload curve")


def arrival_events_to_cycles(
    alpha_events: PiecewiseLinearCurve, gamma_u: WorkloadCurve
) -> PiecewiseLinearCurve:
    """Cycle-based arrival curve ``γ^u(ᾱ(Δ))``.

    ``ᾱ`` must be integer-valued (a staircase); the composition is a
    staircase with the same breakpoints.  A non-integer event curve (e.g. a
    leaky bucket) is first rounded up to the next integer staircase on its
    breakpoints, which keeps the result an upper bound but may coarsen a
    linear tail — prefer staircase arrival curves for exact conversion.
    """
    _require_upper(gamma_u)
    xs = alpha_events.breakpoints
    counts = np.ceil(alpha_events(xs) - 1e-9).astype(np.int64)
    values = gamma_u(np.maximum(counts, 0)).astype(float)
    values = np.maximum(values, 1e-12)  # curve representation needs > 0
    slopes = np.zeros(xs.size)
    if alpha_events.final_slope > 0:
        # conservative tail: event rate times the per-event worst cost of
        # the curve's long tail (additive extension slope), plus one event
        # of slack absorbed by the ceil above
        slopes[-1] = alpha_events.final_slope * gamma_u.long_run_rate
    return PiecewiseLinearCurve(xs, values, slopes)


def service_cycles_to_events(
    beta_cycles: PiecewiseLinearCurve, gamma_u: WorkloadCurve, deltas
) -> np.ndarray:
    """Event-based service ``γ^{u⁻1}(β(Δ))`` evaluated at *deltas*.

    Returned as guaranteed event counts (integers) rather than a curve:
    the composition has a breakpoint wherever ``β`` crosses a ``γ^u``
    level, which is dense for high-rate service curves; bounds evaluate it
    pointwise instead.
    """
    _require_upper(gamma_u)
    deltas = np.asarray(deltas, dtype=float)
    return gamma_u.pseudo_inverse(beta_cycles(deltas))


def scale_arrival_by_wcet(
    alpha_events: PiecewiseLinearCurve, wcet: float
) -> PiecewiseLinearCurve:
    """The baseline conversion ``α = w·ᾱ`` used by eq. (10)."""
    if wcet <= 0:
        raise ValidationError("wcet must be positive")
    return alpha_events * wcet
