"""Delay bounds for a stream through a PE, in the event domain.

The worst-case time an event spends between arriving in the FIFO and
leaving the PE is the horizontal deviation between the *cycle-demand* of
the arrived events and the service:

.. math::

    D \\le \\sup_{Δ \\ge 0} \\inf \\{ d \\ge 0 : β(Δ + d) \\ge γ^u(\\barα(Δ)) \\}

i.e. by ``Δ + D`` the PE must have served every cycle the first ``ᾱ(Δ)``
events can demand.  With the WCET scaling this degrades to the classical
``w·ᾱ`` bound; the workload-curve version is tighter by exactly the
mechanism of eq. (7).
"""

from __future__ import annotations

from repro.analysis.conversion import arrival_events_to_cycles, scale_arrival_by_wcet
from repro.core.workload import WorkloadCurve
from repro.curves.bounds import delay_bound as _horizontal_deviation
from repro.curves.curve import PiecewiseLinearCurve
from repro.util.validation import ValidationError, check_positive

__all__ = ["delay_bound_curves", "delay_bound_wcet"]


def delay_bound_curves(
    alpha_events: PiecewiseLinearCurve,
    gamma_u: WorkloadCurve,
    beta: PiecewiseLinearCurve,
) -> float:
    """Worst-case event delay with the workload-curve conversion."""
    if gamma_u.kind != "upper":
        raise ValidationError("delay bound needs an upper workload curve")
    return _horizontal_deviation(arrival_events_to_cycles(alpha_events, gamma_u), beta)


def delay_bound_wcet(
    alpha_events: PiecewiseLinearCurve,
    wcet: float,
    beta: PiecewiseLinearCurve,
) -> float:
    """Worst-case event delay with the WCET scaling — the baseline."""
    check_positive(wcet, "wcet")
    return _horizontal_deviation(scale_arrival_by_wcet(alpha_events, wcet), beta)
