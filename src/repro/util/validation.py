"""Argument validation helpers.

All public constructors in :mod:`repro` validate their inputs eagerly and
raise :class:`ValidationError` (a subclass of ``ValueError``) with a message
naming the offending argument.  Centralizing the checks keeps the domain code
free of repetitive ``if``/``raise`` boilerplate and guarantees consistent
error wording, which the test-suite relies on.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ValidationError",
    "check_positive",
    "check_non_negative",
    "check_integer",
    "check_monotone",
    "check_array_1d",
    "check_in_range",
    "check_probability",
]


class ValidationError(ValueError):
    """Raised when a public API receives an invalid argument."""


def check_positive(value: float, name: str) -> float:
    """Return *value* if it is a finite number strictly greater than zero.

    Raises
    ------
    ValidationError
        If *value* is not a real number, is not finite, or is ``<= 0``.
    """
    value = _as_real(value, name)
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Return *value* if it is a finite number greater than or equal to zero."""
    value = _as_real(value, name)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_integer(value: int, name: str, *, minimum: int | None = None) -> int:
    """Return *value* coerced to ``int`` if it is integral.

    Floats are accepted only when they carry an exact integer value
    (``3.0`` is fine, ``3.5`` is not).  If *minimum* is given the value must
    be at least that large.
    """
    if isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got bool {value!r}")
    if isinstance(value, (int, np.integer)):
        result = int(value)
    elif isinstance(value, (float, np.floating)):
        if not math.isfinite(value) or value != int(value):
            raise ValidationError(f"{name} must be an integer, got {value!r}")
        result = int(value)
    else:
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    if minimum is not None and result < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {result}")
    return result


def check_monotone(values: Sequence[float], name: str, *, strict: bool = False) -> np.ndarray:
    """Return *values* as a 1-D float array, verifying it is non-decreasing.

    With ``strict=True`` the sequence must be strictly increasing.
    """
    arr = check_array_1d(values, name)
    if arr.size >= 2:
        diffs = np.diff(arr)
        if strict:
            if not np.all(diffs > 0):
                raise ValidationError(f"{name} must be strictly increasing")
        elif not np.all(diffs >= 0):
            raise ValidationError(f"{name} must be non-decreasing")
    return arr


def check_array_1d(values: Iterable[float], name: str) -> np.ndarray:
    """Return *values* as a 1-D ``float64`` array of finite entries."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must contain only finite values")
    return arr


def check_in_range(value: float, name: str, low: float, high: float) -> float:
    """Return *value* if ``low <= value <= high``."""
    value = _as_real(value, name)
    if not (low <= value <= high):
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return *value* if it is a valid probability in ``[0, 1]``."""
    return check_in_range(value, name, 0.0, 1.0)


def _as_real(value: float, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
        raise ValidationError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not math.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return value
