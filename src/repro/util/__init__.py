"""Shared utilities: argument validation, staircase sequences, text reports.

These helpers are deliberately dependency-light (numpy only) and are used by
every other subpackage.  Nothing in here is specific to the paper; it is the
plumbing that keeps the domain code readable.
"""

from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_integer,
    check_monotone,
    check_array_1d,
    ValidationError,
)
from repro.util.staircase import (
    cumulative_envelope_max,
    cumulative_envelope_min,
    sliding_window_max_sum,
    sliding_window_min_sum,
    is_non_decreasing,
    is_strictly_increasing,
    make_k_grid,
)
from repro.util.report import TextTable, ascii_bar_chart, ascii_xy_plot, format_quantity

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_integer",
    "check_monotone",
    "check_array_1d",
    "ValidationError",
    "cumulative_envelope_max",
    "cumulative_envelope_min",
    "sliding_window_max_sum",
    "sliding_window_min_sum",
    "is_non_decreasing",
    "is_strictly_increasing",
    "make_k_grid",
    "TextTable",
    "ascii_bar_chart",
    "ascii_xy_plot",
    "format_quantity",
]
