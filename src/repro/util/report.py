"""Plain-text rendering of tables and simple charts.

The experiment harnesses (one per paper figure/table) print their results
through these helpers so benchmark output is human-comparable against the
paper without any plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

from repro.util.validation import ValidationError

__all__ = ["TextTable", "ascii_bar_chart", "ascii_xy_plot", "format_quantity"]

_SI_PREFIXES = [(1e9, "G"), (1e6, "M"), (1e3, "k")]


def format_quantity(value: float, unit: str = "", *, digits: int = 3) -> str:
    """Format *value* with an SI prefix, e.g. ``format_quantity(3.4e8, 'Hz')
    == '340 MHz'``."""
    if value != value:  # NaN
        return "nan"
    sign = "-" if value < 0 else ""
    mag = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if mag >= scale:
            return f"{sign}{_sig(mag / scale, digits)} {prefix}{unit}".rstrip()
    return f"{sign}{_sig(mag, digits)} {unit}".rstrip()


def _sig(x: float, digits: int) -> str:
    if x == 0:
        return "0"
    text = f"{x:.{digits}g}"
    return text


class TextTable:
    """Fixed-width text table with a header row.

    >>> t = TextTable(["clip", "backlog"])
    >>> t.add_row(["1", "0.83"])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], *, title: str | None = None):
        if not headers:
            raise ValidationError("headers must be non-empty")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Sequence[object]) -> None:
        """Append a row; cells are str()-ified. Must match header width."""
        row = [_cell(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValidationError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table as a string with aligned columns."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    max_value: float | None = None,
    title: str | None = None,
) -> str:
    """Horizontal bar chart, one row per (label, value).

    *max_value* fixes the scale (useful to show values normalized against a
    bound, e.g. backlog/buffer-size against 1.0); defaults to the data max.
    """
    if len(labels) != len(values):
        raise ValidationError("labels and values must have equal length")
    if not labels:
        raise ValidationError("chart needs at least one row")
    scale = max_value if max_value is not None else max(values)
    if scale <= 0:
        scale = 1.0
    label_w = max(len(str(lab)) for lab in labels)
    lines = [title] if title else []
    for lab, val in zip(labels, values):
        filled = int(round(min(max(val, 0.0), scale) / scale * width))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{str(lab).rjust(label_w)} |{bar}| {val:.3f}")
    return "\n".join(lines)


def ascii_xy_plot(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 70,
    height: int = 20,
    title: str | None = None,
) -> str:
    """Scatter multiple y-series against common x on a character grid.

    Each series is drawn with its own glyph (first letter of the name, or a
    cycling symbol).  Meant for eyeballing curve shapes (e.g. Figure 2/6) in
    benchmark logs, not for precision.
    """
    xs = list(x)
    if not xs:
        raise ValidationError("x must be non-empty")
    if not series:
        raise ValidationError("series must be non-empty")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValidationError(f"series {name!r} length mismatch with x")
    x_lo, x_hi = min(xs), max(xs)
    all_y = [v for ys in series.values() for v in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    glyphs = "uloxw*+#@%"
    legend = []
    for idx, (name, ys) in enumerate(series.items()):
        glyph = glyphs[idx % len(glyphs)]
        legend.append(f"{glyph}={name}")
        for xv, yv in zip(xs, ys):
            col = int((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = height - 1 - int((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[row][col] = glyph
    lines = [title] if title else []
    lines.append(f"y: [{y_lo:.4g}, {y_hi:.4g}]   " + "  ".join(legend))
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(f"x: [{x_lo:.4g}, {x_hi:.4g}]")
    return "\n".join(lines)
