"""Integer-domain staircase and sliding-window helpers.

Workload curves (paper, Definition 1) are sequences indexed by the number of
consecutive task activations ``k``.  Extracting them from a trace requires,
for every window length ``k``, the maximum (or minimum) sum of per-event
demands over all length-``k`` windows.  The helpers here implement that with
cumulative sums so each window length costs O(n) vectorized work.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.perf.cache import digest_of, kernel_cache
from repro.perf.instrument import instrumented
from repro.util.validation import ValidationError, check_integer

__all__ = [
    "sliding_window_max_sum",
    "sliding_window_min_sum",
    "cumulative_envelope_max",
    "cumulative_envelope_min",
    "cumulative_envelope_minmax",
    "streaming_envelope_minmax",
    "is_non_decreasing",
    "is_strictly_increasing",
    "make_k_grid",
]


def sliding_window_max_sum(values: Sequence[float], k: int) -> float:
    """Maximum sum over all contiguous windows of length *k* in *values*.

    Implements ``max_j sum(values[j:j+k])`` — the inner maximization of the
    paper's upper workload curve (eq. (1)) for a single ``k``.  Routed
    through the memoized :func:`cumulative_envelope_minmax` kernel, so
    single-``k`` probes during a sweep that has already extracted (or
    probed) the same trace are cache hits instead of fresh ``cumsum``
    passes.

    Raises
    ------
    ValidationError
        If ``k < 1`` or ``k`` exceeds the trace length.
    """
    arr = np.asarray(values, dtype=float)
    k = check_integer(k, "k", minimum=1)
    if k > arr.size:
        raise ValidationError(f"window length k={k} exceeds trace length {arr.size}")
    return float(cumulative_envelope_minmax(arr, np.array([k], dtype=np.int64))[1][0])


def sliding_window_min_sum(values: Sequence[float], k: int) -> float:
    """Minimum sum over all contiguous windows of length *k* in *values*.

    Implements ``min_j sum(values[j:j+k])`` — the inner minimization of the
    paper's lower workload curve (eq. (2)) for a single ``k``.  Memoized
    like :func:`sliding_window_max_sum`; the min and max probes of the same
    ``(values, k)`` share one cache entry.
    """
    arr = np.asarray(values, dtype=float)
    k = check_integer(k, "k", minimum=1)
    if k > arr.size:
        raise ValidationError(f"window length k={k} exceeds trace length {arr.size}")
    return float(cumulative_envelope_minmax(arr, np.array([k], dtype=np.int64))[0][0])


def cumulative_envelope_max(values: Sequence[float], k_values: Sequence[int]) -> np.ndarray:
    """Vector of :func:`sliding_window_max_sum` evaluated at each ``k``.

    ``k_values`` must be sorted, positive, and bounded by ``len(values)``.
    Returns a float array of the same length as ``k_values``.
    """
    return cumulative_envelope_minmax(values, k_values)[1]


def cumulative_envelope_min(values: Sequence[float], k_values: Sequence[int]) -> np.ndarray:
    """Vector of :func:`sliding_window_min_sum` evaluated at each ``k``."""
    return cumulative_envelope_minmax(values, k_values)[0]


def cumulative_envelope_minmax(
    values: Sequence[float], k_values: Sequence[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Both envelopes, ``(min_sums, max_sums)``, in one pass over the windows.

    This is the per-``k`` extraction kernel behind
    :meth:`repro.core.workload.WorkloadCurve.from_trace`: the window-sum
    differences are computed once and reduced under ``min`` and ``max``
    simultaneously, so extracting a :class:`~repro.core.workload
    .WorkloadCurvePair` costs one sweep instead of two.  Results are
    memoized by content digest of ``(values, k_values)`` — the second curve
    of a pair, and any re-extraction during a sweep, is a cache hit.
    """
    arr = np.asarray(values, dtype=float)
    ks = _check_k_values(k_values, arr.size)
    key = ("staircase.envelope_minmax", digest_of(arr, ks))
    lo, hi = kernel_cache.get_or_compute(key, lambda: _envelope_minmax(arr, ks))
    return lo.copy(), hi.copy()


@instrumented("staircase.envelope_minmax")
def _envelope_minmax(arr: np.ndarray, ks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    csum = np.concatenate(([0.0], np.cumsum(arr)))
    lo = np.empty(ks.size, dtype=float)
    hi = np.empty(ks.size, dtype=float)
    # one reusable buffer: the window-sum vector shrinks as k grows, so the
    # largest (k = ks[0]) allocation is made once and sliced thereafter
    buf = np.empty(csum.size - int(ks[0]), dtype=float)
    for i, k in enumerate(ks):
        diffs = np.subtract(csum[k:], csum[:-k], out=buf[: csum.size - k])
        lo[i] = diffs.min()
        hi[i] = diffs.max()
    return lo, hi


def streaming_envelope_minmax(
    chunks: Iterable[Sequence[float]],
    k_values: Sequence[int],
    *,
    total: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Both envelopes of a chunked demand stream, bit-identical to
    :func:`cumulative_envelope_minmax` on the concatenated array.

    Folds the stream with bounded memory: the prefix-sum sequence is
    continued across chunk boundaries by seeding each chunk's ``cumsum``
    with the running total (so every prefix sum is the *same float* the
    one-shot kernel computes), and only the trailing ``k_max = k_values[-1]``
    prefix sums are retained to form the cross-boundary windows.  Peak
    memory is ``O(chunk + k_max + len(k_values))`` regardless of the trace
    length — multi-million-event traces extract without ever materializing
    the full demand array.

    The stream is consumed once and cannot be content-addressed without
    materializing it, so unlike the one-shot kernel this path is *not*
    memoized.

    Parameters
    ----------
    chunks:
        Iterable of 1-D demand chunks (empty chunks are allowed).
    k_values:
        Strictly increasing positive window lengths.
    total:
        Optional expected event count; when given, the stream length is
        verified against it.

    Raises
    ------
    ValidationError
        On malformed ``k_values``, non-finite demands, a window length
        exceeding the stream, or a stream/total mismatch.
    """
    ks = np.asarray(k_values, dtype=np.int64)
    if ks.ndim != 1 or ks.size == 0:
        raise ValidationError("k_values must be a non-empty 1-D sequence")
    if np.any(ks < 1):
        raise ValidationError("k_values must be >= 1")
    if np.any(np.diff(ks) <= 0):
        raise ValidationError("k_values must be strictly increasing")
    if total is not None:
        total = check_integer(total, "total", minimum=1)
        if ks[-1] > total:
            raise ValidationError(f"k_values must not exceed trace length {total}")
    return _streaming_minmax(chunks, ks, total)


@instrumented(
    "staircase.streaming_minmax",
    attrs=lambda chunks, ks, total: {"grid": int(ks.size), "k_max": int(ks[-1])},
)
def _streaming_minmax(
    chunks: Iterable[Sequence[float]], ks: np.ndarray, total: int | None
) -> tuple[np.ndarray, np.ndarray]:
    k_max = int(ks[-1])
    lo = np.full(ks.size, np.inf)
    hi = np.full(ks.size, -np.inf)
    # trailing prefix sums csum[max(0, m - k_max) .. m]; csum[0] = 0.0
    tail = np.zeros(1)
    seen = 0
    for chunk in chunks:
        arr = np.asarray(chunk, dtype=float)
        if arr.ndim != 1:
            raise ValidationError("stream chunks must be 1-D sequences")
        if arr.size == 0:
            continue
        if not np.all(np.isfinite(arr)):
            raise ValidationError("demands must be finite")
        # ext[i] = csum[base + i]; seeding with csum[seen] reproduces the
        # one-shot cumsum's sequential float additions exactly
        new = np.cumsum(np.concatenate((tail[-1:], arr)))
        ext = np.concatenate((tail[:-1], new))
        base = seen - (tail.size - 1)
        seen += arr.size
        for i, k in enumerate(ks):
            if k > seen:
                break
            # window endpoints new to this chunk: e in [max(k, prev+1), seen]
            e0 = max(int(k), seen - arr.size + 1)
            ends = ext[e0 - base : seen + 1 - base]
            starts = ext[e0 - int(k) - base : seen + 1 - int(k) - base]
            diffs = ends - starts
            lo[i] = min(lo[i], float(diffs.min()))
            hi[i] = max(hi[i], float(diffs.max()))
        if ext.size > k_max + 1:
            ext = ext[-(k_max + 1) :]
        tail = ext
    if seen == 0:
        raise ValidationError("demand stream is empty")
    if total is not None and seen != total:
        raise ValidationError(f"stream yielded {seen} events, expected {total}")
    if k_max > seen:
        raise ValidationError(f"k_values must not exceed trace length {seen}")
    return lo, hi


def is_non_decreasing(values: Iterable[float]) -> bool:
    """True if the sequence never decreases."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    return bool(arr.size < 2 or np.all(np.diff(arr) >= 0))


def is_strictly_increasing(values: Iterable[float]) -> bool:
    """True if each element is strictly greater than its predecessor."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    return bool(arr.size < 2 or np.all(np.diff(arr) > 0))


def make_k_grid(n: int, *, dense_limit: int = 2048, growth: float = 1.05) -> np.ndarray:
    """Window lengths ``1..n``, dense up to *dense_limit* then geometric.

    Extracting a workload curve at every ``k`` of a long trace is O(n^2); for
    traces beyond *dense_limit* events we evaluate every ``k`` up to the
    limit, then sample geometrically (ratio *growth*) and always include
    ``n`` itself.

    Conservativeness between sampled ``k``:  *linear* interpolation between
    exact samples is sound only in special cases — for an upper curve the
    chord must lie at or above the true curve, which holds exactly where
    the curve is *convex* between the two samples (upper workload curves
    are subadditive and typically concave-ish, so the chord usually
    *under*-estimates and is NOT a valid bound); dually, interpolating a
    lower curve is sound only where the curve is *concave* there.  For
    this reason :class:`repro.core.workload.WorkloadCurve` never
    interpolates: between grid points it steps to the *next* sampled value
    (upper) or holds the *previous* one (lower), which is conservative for
    any non-decreasing curve regardless of its shape — a sparse grid can
    only loosen the bound, never invalidate it.
    """
    n = check_integer(n, "n", minimum=1)
    dense_limit = check_integer(dense_limit, "dense_limit", minimum=1)
    if growth <= 1.0:
        raise ValidationError(f"growth must be > 1, got {growth!r}")
    if n <= dense_limit:
        return np.arange(1, n + 1, dtype=np.int64)
    ks = list(range(1, dense_limit + 1))
    k = float(dense_limit)
    while True:
        k *= growth
        ki = int(np.ceil(k))
        if ki >= n:
            break
        ks.append(ki)
    ks.append(n)
    return np.array(sorted(set(ks)), dtype=np.int64)


def _check_k_values(k_values: Sequence[int], n: int) -> np.ndarray:
    ks = np.asarray(k_values, dtype=np.int64)
    if ks.ndim != 1 or ks.size == 0:
        raise ValidationError("k_values must be a non-empty 1-D sequence")
    if np.any(ks < 1):
        raise ValidationError("k_values must be >= 1")
    if np.any(ks > n):
        raise ValidationError(f"k_values must not exceed trace length {n}")
    if np.any(np.diff(ks) <= 0):
        raise ValidationError("k_values must be strictly increasing")
    return ks
