"""Deterministic per-task seed derivation, shared across execution layers.

Both the parallel runner (:mod:`repro.runner.pool` — serial fallback and
worker pool alike) and the analysis service (:mod:`repro.service`) promise
the same reproducibility contract: task *i* of a run with base seed *s*
observes exactly the same RNG state no matter which worker, process, or
queue position executes it.  That only holds if every layer derives the
per-task seed the same way, so the derivation lives here, in one place,
and the layers import it instead of keeping private copies.

The fold is a ``blake2b`` digest of ``"{base}:{index}"`` — independent of
chunking, worker assignment, and submission order.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "reseed"]


def derive_seed(base: int | None, index: int) -> int | None:
    """Per-task seed: a blake2b fold of ``(base, index)``, independent of
    chunking and worker assignment (None stays None — no reseeding)."""
    if base is None:
        return None
    digest = hashlib.blake2b(f"{base}:{index}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def reseed(seed: int | None) -> None:
    """Reseed the global RNGs (``random`` + numpy legacy) for one task.

    ``None`` is a no-op, matching :func:`derive_seed`'s passthrough."""
    if seed is None:
        return
    random.seed(seed)
    try:
        import numpy as np

        np.random.seed(seed % 2**32)
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        pass
