"""Priority assignment beyond rate-monotonic.

RM is optimal for implicit deadlines, but with constrained deadlines or
workload-curve interference the optimal fixed-priority order can differ.
This module provides:

* deadline-monotonic ordering (optimal for constrained deadlines under the
  classical model);
* Audsley's optimal priority assignment (OPA), driven by either the classic
  or the workload-curve response-time test — if *any* fixed-priority order
  is feasible under the chosen test, OPA finds one.
"""

from __future__ import annotations

import math
from typing import Literal

from repro.scheduling.task import PeriodicTask, TaskSet
from repro.util.validation import ValidationError

__all__ = ["deadline_monotonic", "audsley_assignment"]


def deadline_monotonic(task_set: TaskSet) -> list[PeriodicTask]:
    """Tasks ordered by increasing relative deadline (highest priority
    first)."""
    return sorted(task_set, key=lambda t: (t.deadline, t.period, t.name))


def _lowest_priority_feasible(
    candidate: PeriodicTask, others: list[PeriodicTask], method: str
) -> bool:
    """Is *candidate* schedulable at the lowest priority below *others*?

    Evaluates the response time of *candidate* with every other task as
    higher-priority interference.
    """
    # solve the response-time recurrence of the candidate with every other
    # task as higher-priority interference (the order among them is
    # irrelevant — the foundation of Audsley's argument)
    own = candidate.demand_upper(1) if method == "workload-curves" else candidate.wcet
    r = own
    for _ in range(10_000):
        interference = 0.0
        for hp in others:
            arrivals = max(1, math.ceil(r / hp.period - 1e-9))
            if method == "workload-curves":
                interference += hp.demand_upper(arrivals)
            else:
                interference += arrivals * hp.wcet
        total = own + interference
        if total > candidate.deadline + 1e-12:
            return False
        if abs(total - r) <= 1e-12 * max(1.0, abs(total)):
            return True
        r = total
    raise ValidationError("response-time recurrence failed to converge")


def audsley_assignment(
    task_set: TaskSet, *, method: Literal["classic", "workload-curves"] = "workload-curves"
) -> list[PeriodicTask] | None:
    """Audsley's optimal priority assignment.

    Returns a feasible priority order (highest first) under the chosen
    response-time test, or ``None`` if no fixed-priority order is feasible.
    OPA's classical argument carries over to the workload-curve test
    because the interference bound ``γᵘ(⌈r/T⌉)`` of a higher-priority task
    does not depend on the relative order *among* the higher-priority
    tasks.
    """
    if method not in ("classic", "workload-curves"):
        raise ValidationError(f"unknown method {method!r}")
    unassigned = list(task_set)
    order_low_to_high: list[PeriodicTask] = []
    while unassigned:
        placed = False
        for candidate in sorted(unassigned, key=lambda t: -t.deadline):
            others = [t for t in unassigned if t is not candidate]
            if _lowest_priority_feasible(candidate, others, method):
                order_low_to_high.append(candidate)
                unassigned.remove(candidate)
                placed = True
                break
        if not placed:
            return None
    return list(reversed(order_low_to_high))
