"""Schedulability analysis with workload curves (paper §3.1) plus the
substrate it rests on: the periodic task model, Lehoczky's exact RMS test,
response-time analysis, EDF demand bounds, and a discrete-event preemptive
scheduler simulator used to validate the analytic verdicts.
"""

from repro.scheduling.task import PeriodicTask, TaskSet
from repro.scheduling.rms import (
    RMSAnalysis,
    scheduling_points,
    cumulative_demand_classic,
    cumulative_demand_curves,
    rms_test_classic,
    rms_test_curves,
    liu_layland_bound,
    liu_layland_test,
)
from repro.scheduling.response_time import (
    ResponseTimeResult,
    response_times_classic,
    response_times_curves,
)
from repro.scheduling.edf import (
    EDFAnalysis,
    demand_bound_classic,
    demand_bound_curves,
    edf_test_classic,
    edf_test_curves,
)
from repro.scheduling.generator import uunifast, random_task_set, random_variable_task_set
from repro.scheduling.priority import deadline_monotonic, audsley_assignment
from repro.scheduling.sensitivity import demand_scaling_factor, frequency_scaling_factor
from repro.scheduling.simulator import (
    CompletedJob,
    SimulationResult,
    simulate,
    wcet_demands,
)

__all__ = [
    "PeriodicTask",
    "TaskSet",
    "RMSAnalysis",
    "scheduling_points",
    "cumulative_demand_classic",
    "cumulative_demand_curves",
    "rms_test_classic",
    "rms_test_curves",
    "liu_layland_bound",
    "liu_layland_test",
    "ResponseTimeResult",
    "response_times_classic",
    "response_times_curves",
    "EDFAnalysis",
    "demand_bound_classic",
    "demand_bound_curves",
    "edf_test_classic",
    "edf_test_curves",
    "uunifast",
    "random_task_set",
    "random_variable_task_set",
    "deadline_monotonic",
    "audsley_assignment",
    "demand_scaling_factor",
    "frequency_scaling_factor",
    "CompletedJob",
    "SimulationResult",
    "simulate",
    "wcet_demands",
]
