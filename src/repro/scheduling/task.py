"""Periodic task model for schedulability analysis (paper §3.1).

A :class:`PeriodicTask` carries the classical parameters (period, WCET,
deadline) plus, optionally, a :class:`~repro.core.workload.WorkloadCurve`
pair describing the variability of its execution demand across consecutive
activations.  A :class:`TaskSet` orders tasks rate-monotonically and
provides the aggregate quantities the tests need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.workload import WorkloadCurve, WorkloadCurvePair
from repro.util.validation import ValidationError, check_non_negative, check_positive

__all__ = ["PeriodicTask", "TaskSet"]


@dataclass(frozen=True)
class PeriodicTask:
    """A periodic task.

    Parameters
    ----------
    name:
        Identifier used in reports.
    period:
        Activation period ``T_i`` (also the relative deadline, as in
        Lehoczky's formulation used by the paper).
    wcet:
        Worst-case execution time ``C_i`` of a single activation.
    curves:
        Optional workload-curve pair.  When present, ``γ^u(1)`` must not
        exceed *wcet* (the single-activation bound can only be tighter) and
        the upper curve is used by the improved tests of eq. (4).
    deadline:
        Relative deadline; defaults to the period.  Must satisfy
        ``0 < deadline <= period`` for the RMS tests here.
    offset:
        Release offset of the first job (phased task sets).  The analytic
        tests ignore offsets — the synchronous release (critical instant)
        they assume dominates every phasing — but the simulator honours
        them, so phased schedules can be compared against the bounds.
    """

    name: str
    period: float
    wcet: float
    curves: WorkloadCurvePair | None = None
    deadline: float | None = None
    offset: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValidationError("task name must be a non-empty string")
        check_positive(self.period, "period")
        check_positive(self.wcet, "wcet")
        if self.deadline is None:
            object.__setattr__(self, "deadline", float(self.period))
        else:
            check_positive(self.deadline, "deadline")
            if self.deadline > self.period + 1e-12:
                raise ValidationError(
                    "deadline must not exceed the period (constrained-deadline "
                    "model required by the Lehoczky test)"
                )
        if self.wcet > self.deadline:
            raise ValidationError("wcet must not exceed the deadline")
        check_non_negative(self.offset, "offset")
        if self.curves is not None:
            if not isinstance(self.curves, WorkloadCurvePair):
                raise ValidationError("curves must be a WorkloadCurvePair")
            if self.curves.wcet > self.wcet + 1e-9:
                raise ValidationError(
                    f"workload curve gamma_u(1)={self.curves.wcet:g} exceeds "
                    f"declared wcet={self.wcet:g}"
                )

    @property
    def utilization(self) -> float:
        """Classical utilization ``C_i / T_i``."""
        return self.wcet / self.period

    @property
    def long_run_utilization(self) -> float:
        """Utilization using the workload curve's long-run rate (average
        demand per activation over the curve horizon) instead of WCET; equals
        :attr:`utilization` when no curves are attached."""
        if self.curves is None:
            return self.utilization
        return self.curves.upper.long_run_rate / self.period

    def demand_upper(self, activations: int) -> float:
        """Worst-case demand of *activations* consecutive jobs: ``γ^u(k)``
        when curves are attached, else ``k·C_i``."""
        if activations < 0:
            raise ValidationError("activations must be >= 0")
        if activations == 0:
            return 0.0
        if self.curves is not None:
            return float(self.curves.upper(activations))
        return activations * self.wcet


class TaskSet:
    """A set of periodic tasks ordered rate-monotonically.

    Tasks are sorted by increasing period (ties broken by declared order);
    index 0 is the highest priority, matching the paper's labelling
    ``T_1 <= T_2 <= ... <= T_n``.
    """

    def __init__(self, tasks: Iterable[PeriodicTask]):
        tasks = list(tasks)
        if not tasks:
            raise ValidationError("task set must contain at least one task")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ValidationError("task names must be unique")
        order = sorted(range(len(tasks)), key=lambda i: (tasks[i].period, i))
        self._tasks = tuple(tasks[i] for i in order)

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[PeriodicTask]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> PeriodicTask:
        return self._tasks[index]

    @property
    def tasks(self) -> tuple[PeriodicTask, ...]:
        """Tasks in rate-monotonic priority order."""
        return self._tasks

    @property
    def total_utilization(self) -> float:
        """Sum of classical (WCET-based) utilizations."""
        return sum(t.utilization for t in self._tasks)

    @property
    def total_long_run_utilization(self) -> float:
        """Sum of long-run (workload-curve averaged) utilizations."""
        return sum(t.long_run_utilization for t in self._tasks)

    def hyperperiod(self) -> float:
        """Least common multiple of the periods (exact for rational periods
        representable as multiples of 1e-9)."""
        scale = 10**9
        result = 1
        for t in self._tasks:
            p = round(t.period * scale)
            if abs(p - t.period * scale) > 1e-3:
                raise ValidationError(
                    f"period {t.period!r} is not representable for an exact "
                    "hyperperiod; round your periods"
                )
            result = result * p // math.gcd(result, p)
        return result / scale

    def by_name(self, name: str) -> PeriodicTask:
        """Look up a task by its name."""
        for t in self._tasks:
            if t.name == name:
                return t
        raise KeyError(f"no task named {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskSet({', '.join(t.name for t in self._tasks)})"
