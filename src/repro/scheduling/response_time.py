"""Response-time analysis for fixed-priority scheduling.

The classical recurrence (Joseph & Pandya / Audsley)

.. math::

    R_i = C_i + \\sum_{j < i} \\lceil R_i / T_j \\rceil · C_j

iterated to a fixed point gives the worst-case response time of task
``τ_i`` under preemptive fixed priorities.  As with the Lehoczky test, each
higher-priority interference term ``C_j·⌈R/T_j⌉`` can be replaced by the
workload curve ``γ^u_j(⌈R/T_j⌉)``, which is never larger and often strictly
smaller, giving tighter response times — the response-time counterpart of
the paper's eq. (4) (not spelled out in the paper but an immediate
consequence of Definition 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.scheduling.rms import _arrivals
from repro.scheduling.task import TaskSet
from repro.util.validation import ValidationError

__all__ = ["ResponseTimeResult", "response_times_classic", "response_times_curves"]


@dataclass(frozen=True)
class ResponseTimeResult:
    """Worst-case response times, one per task in priority order.

    ``math.inf`` marks tasks whose recurrence diverged past the deadline
    (unschedulable).
    """

    response_times: tuple[float, ...]
    method: str

    @property
    def schedulable(self) -> bool:
        """True if every response time is finite (converged within its
        task's deadline)."""
        return all(math.isfinite(r) for r in self.response_times)


def _solve_recurrence(task_set: TaskSet, i: int, own_demand: float, interference) -> float:
    deadline = task_set[i].deadline
    r = own_demand
    for _ in range(10_000):
        total = own_demand + interference(r)
        if total > deadline + 1e-12:
            return math.inf
        if abs(total - r) <= 1e-12 * max(1.0, abs(total)):
            return total
        r = total
    raise ValidationError("response-time recurrence failed to converge")


def response_times_classic(task_set: TaskSet) -> ResponseTimeResult:
    """WCET-based worst-case response times."""
    results = []
    for i in range(len(task_set)):
        def interference(r: float, i: int = i) -> float:
            return sum(
                task_set[j].wcet * _arrivals(r, task_set[j].period) for j in range(i)
            )

        results.append(_solve_recurrence(task_set, i, task_set[i].wcet, interference))
    return ResponseTimeResult(tuple(results), "classic")


def response_times_curves(task_set: TaskSet) -> ResponseTimeResult:
    """Workload-curve-based worst-case response times.

    Interference of each higher-priority task over a window ``r`` is
    ``γ^u_j(⌈r/T_j⌉)``; the task's own contribution is ``γ^u_i(1)`` (its
    WCET).  Tasks without curves contribute the classic term.
    """
    results = []
    for i in range(len(task_set)):
        own = task_set[i].demand_upper(1)

        def interference(r: float, i: int = i) -> float:
            return sum(
                task_set[j].demand_upper(_arrivals(r, task_set[j].period))
                for j in range(i)
            )

        results.append(_solve_recurrence(task_set, i, own, interference))
    return ResponseTimeResult(tuple(results), "workload-curves")
