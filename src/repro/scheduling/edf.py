"""EDF schedulability via demand-bound functions.

Baruah's processor-demand criterion: a constrained-deadline periodic task
set is EDF-schedulable iff for every interval length ``t``

.. math::

    \\sum_i dbf_i(t) \\le t, \\qquad
    dbf_i(t) = \\max\\big(0, \\lfloor (t - D_i)/T_i \\rfloor + 1\\big)·C_i

The paper positions Baruah's demand-bound characterization as *orthogonal*
to workload curves and notes both "can be easily combined into a powerful
analytical framework" — this module is that combination: the per-task term
``n·C_i`` is replaced by ``γ^u_i(n)``, bounding the demand of the ``n``
jobs that lie fully inside the interval by the curve instead of n times
the WCET.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.scheduling.task import PeriodicTask, TaskSet
from repro.util.validation import check_positive

__all__ = [
    "EDFAnalysis",
    "demand_bound_classic",
    "demand_bound_curves",
    "edf_test_classic",
    "edf_test_curves",
]


@dataclass(frozen=True)
class EDFAnalysis:
    """Result of the processor-demand test.

    ``max_load`` is ``max_t Σ dbf_i(t) / t`` over the checked points;
    ``critical_t`` the interval achieving it.
    """

    max_load: float
    critical_t: float
    method: str

    @property
    def schedulable(self) -> bool:
        """True iff the demand never exceeds the interval length."""
        return self.max_load <= 1.0 + 1e-12


def _full_jobs(t: float, task: PeriodicTask) -> int:
    """Jobs of *task* with both release and deadline inside ``[0, t]``."""
    if t < task.deadline - 1e-12:
        return 0
    return int(math.floor((t - task.deadline) / task.period + 1e-9)) + 1


def demand_bound_classic(task: PeriodicTask, t: float) -> float:
    """``dbf_i(t)`` with the WCET characterization."""
    return _full_jobs(t, task) * task.wcet


def demand_bound_curves(task: PeriodicTask, t: float) -> float:
    """``dbf_i(t)`` bounding the jobs' total demand with ``γ^u_i``."""
    return task.demand_upper(_full_jobs(t, task))


def _check_points(task_set: TaskSet, horizon: float) -> list[float]:
    points: set[float] = set()
    for task in task_set:
        d = task.deadline
        while d <= horizon + 1e-9:
            points.add(d)
            d += task.period
    return sorted(points)


def _edf_test(task_set: TaskSet, dbf, method: str, horizon: float | None) -> EDFAnalysis:
    if horizon is None:
        horizon = task_set.hyperperiod()
        # Soundness beyond one hyperperiod H: each task's demand satisfies
        # dbf_i(t + H) <= dbf_i(t) + demand(n_i(H)) with n_i(H) = H/T_i jobs
        # (additive extension of γ^u; exact n·C_i for the classic method).
        # Hence if the per-hyperperiod demand exceeds H the load diverges,
        # and otherwise checking deadlines within H suffices by induction.
        if method == "workload-curves":
            per_hp = sum(
                task.demand_upper(round(horizon / task.period)) for task in task_set
            )
        else:
            per_hp = sum(
                round(horizon / task.period) * task.wcet for task in task_set
            )
        if per_hp > horizon + 1e-9:
            return EDFAnalysis(per_hp / horizon, math.inf, method)
    else:
        horizon = check_positive(horizon, "horizon")
    worst = 0.0
    worst_t = horizon
    for t in _check_points(task_set, horizon):
        load = sum(dbf(task, t) for task in task_set) / t
        if load > worst:
            worst = load
            worst_t = t
    return EDFAnalysis(worst, worst_t, method)


def edf_test_classic(task_set: TaskSet, *, horizon: float | None = None) -> EDFAnalysis:
    """Processor-demand test with WCET characterization.  *horizon* defaults
    to the hyperperiod (sufficient for synchronous periodic sets with
    utilization <= 1)."""
    return _edf_test(task_set, demand_bound_classic, "classic", horizon)


def edf_test_curves(task_set: TaskSet, *, horizon: float | None = None) -> EDFAnalysis:
    """Processor-demand test with workload-curve characterization — never
    more pessimistic than :func:`edf_test_classic`."""
    return _edf_test(task_set, demand_bound_curves, "workload-curves", horizon)
