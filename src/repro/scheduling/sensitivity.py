"""Sensitivity analysis: how much demand headroom does a design have?

Given a schedulable task set, the *demand scaling factor* of a task is the
largest multiplier on its execution demand (WCET and workload curves alike)
that keeps the set schedulable — the designer-facing number when a codec
gains a feature or a core is down-clocked.  Computed by binary search over
the chosen schedulability test; the workload-curve test typically admits
substantially more scaling than the classic one (the whole point of the
paper).
"""

from __future__ import annotations

from typing import Literal

from repro.core.workload import WorkloadCurvePair
from repro.scheduling.rms import rms_test_classic, rms_test_curves
from repro.scheduling.task import PeriodicTask, TaskSet
from repro.util.validation import ValidationError, check_positive

__all__ = ["demand_scaling_factor", "frequency_scaling_factor"]


def _scaled_set(task_set: TaskSet, name: str, factor: float) -> TaskSet | None:
    tasks = []
    for t in task_set:
        if t.name != name:
            tasks.append(t)
            continue
        wcet = t.wcet * factor
        if wcet > t.deadline:
            return None
        curves = None
        if t.curves is not None:
            curves = WorkloadCurvePair(
                t.curves.upper.scale(factor), t.curves.lower.scale(factor)
            )
        tasks.append(PeriodicTask(t.name, t.period, wcet, curves=curves, deadline=t.deadline))
    return TaskSet(tasks)


def demand_scaling_factor(
    task_set: TaskSet,
    task_name: str,
    *,
    method: Literal["classic", "workload-curves"] = "workload-curves",
    precision: float = 1e-4,
    upper_limit: float = 64.0,
) -> float:
    """Largest demand multiplier on *task_name* keeping the set RM-schedulable.

    Returns 0 if the set is unschedulable already at factor → 0 (i.e. the
    other tasks alone overload the processor under the chosen test).
    """
    task_set.by_name(task_name)  # raises KeyError for unknown names
    check_positive(precision, "precision")
    test = rms_test_curves if method == "workload-curves" else rms_test_classic
    if method not in ("classic", "workload-curves"):
        raise ValidationError(f"unknown method {method!r}")

    def feasible(factor: float) -> bool:
        scaled = _scaled_set(task_set, task_name, factor)
        return scaled is not None and test(scaled).schedulable

    if not feasible(precision):
        return 0.0
    lo, hi = precision, precision
    while feasible(hi) and hi < upper_limit:
        lo, hi = hi, hi * 2
    if hi >= upper_limit and feasible(upper_limit):
        return upper_limit
    while hi - lo > precision:
        mid = 0.5 * (lo + hi)
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return lo


def frequency_scaling_factor(
    task_set: TaskSet,
    *,
    method: Literal["classic", "workload-curves"] = "workload-curves",
    precision: float = 1e-4,
) -> float:
    """Largest uniform demand multiplier on *all* tasks keeping the set
    schedulable — equivalently, the factor by which the processor could be
    slowed down (the DVS headroom of the whole design).

    For the exact RMS test this equals ``1 / L`` (the Lehoczky load is
    positively homogeneous in the demands), which the implementation uses
    directly.
    """
    if method == "workload-curves":
        load = rms_test_curves(task_set).load
    elif method == "classic":
        load = rms_test_classic(task_set).load
    else:
        raise ValidationError(f"unknown method {method!r}")
    return 1.0 / load
