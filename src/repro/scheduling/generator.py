"""Random task-set generation for evaluation and fuzzing.

The standard experimental methodology of the schedulability literature:

* **UUniFast** (Bini & Buttazzo) draws `n` per-task utilizations summing
  exactly to a target `U` without bias;
* periods are drawn log-uniformly (decades matter, not absolute values);
* optionally, each task gets a two-mode demand profile with workload
  curves, with a configurable heavy/light cost ratio and heavy-activation
  bound — the variable-demand population this paper is about.
"""

from __future__ import annotations

import math
import numpy as np

from repro.core.analytical import two_mode_curves
from repro.scheduling.task import PeriodicTask, TaskSet
from repro.util.validation import ValidationError, check_integer, check_positive

__all__ = ["uunifast", "random_task_set", "random_variable_task_set"]


def uunifast(n: int, total_utilization: float, rng: np.random.Generator) -> np.ndarray:
    """UUniFast: `n` utilizations summing to *total_utilization*, uniformly
    distributed over the simplex."""
    n = check_integer(n, "n", minimum=1)
    check_positive(total_utilization, "total_utilization")
    utilizations = np.empty(n)
    remaining = total_utilization
    for i in range(n - 1):
        next_remaining = remaining * rng.random() ** (1.0 / (n - 1 - i))
        utilizations[i] = remaining - next_remaining
        remaining = next_remaining
    utilizations[-1] = remaining
    return utilizations


def _log_uniform_periods(
    n: int, rng: np.random.Generator, low: float, high: float
) -> np.ndarray:
    return np.exp(rng.uniform(math.log(low), math.log(high), n))


def random_task_set(
    n: int,
    total_utilization: float,
    rng: np.random.Generator,
    *,
    period_range: tuple[float, float] = (1.0, 100.0),
) -> TaskSet:
    """A random implicit-deadline periodic task set with the given total
    WCET utilization (UUniFast + log-uniform periods)."""
    low, high = period_range
    check_positive(low, "period_range low")
    if high <= low:
        raise ValidationError("period_range must satisfy low < high")
    utils = uunifast(n, total_utilization, rng)
    # periods rounded to a microsecond-like grid so exact hyperperiods exist
    periods = np.round(_log_uniform_periods(n, rng, low, high), 6)
    periods = np.maximum(periods, low)
    tasks = []
    for i, (u, p) in enumerate(zip(utils, periods)):
        wcet = max(u * p, 1e-9)
        if wcet > p:  # a single task may not exceed its period
            wcet = p
        tasks.append(PeriodicTask(f"t{i}", float(p), float(wcet)))
    return TaskSet(tasks)


def random_variable_task_set(
    n: int,
    total_utilization: float,
    rng: np.random.Generator,
    *,
    period_range: tuple[float, float] = (1.0, 100.0),
    heavy_ratio_range: tuple[float, float] = (2.0, 8.0),
    heavy_every_range: tuple[int, int] = (2, 6),
    k_max: int = 256,
    with_metadata: bool = False,
) -> TaskSet | tuple[TaskSet, dict[str, tuple[int, float]]]:
    """Like :func:`random_task_set`, but every task has *variable* demand:
    at most one heavy activation (cost = WCET) in every ``m`` consecutive,
    the rest light, with workload curves attached.

    The declared WCET utilization is the task's *worst-case* utilization;
    the long-run utilization is substantially lower — exactly the
    population on which the paper's tests outperform the classic ones.

    With ``with_metadata=True`` also returns ``{name: (m, e_light)}`` so a
    simulation can replay admissible worst-case demand patterns.
    """
    base = random_task_set(n, total_utilization, rng, period_range=period_range)
    lo_r, hi_r = heavy_ratio_range
    if not (1.0 < lo_r <= hi_r):
        raise ValidationError("heavy_ratio_range must satisfy 1 < low <= high")
    lo_m, hi_m = heavy_every_range
    check_integer(lo_m, "heavy_every low", minimum=2)
    tasks = []
    metadata: dict[str, tuple[int, float]] = {}
    for t in base:
        ratio = rng.uniform(lo_r, hi_r)
        m = int(rng.integers(lo_m, hi_m + 1))
        e_heavy = t.wcet
        e_light = e_heavy / ratio
        curves = two_mode_curves(
            lambda k, m=m: min(k, 1 + (k - 1) // m),
            lambda k, m=m: k // m,
            e_heavy,
            e_light,
            k_max=k_max,
        )
        tasks.append(PeriodicTask(t.name, t.period, t.wcet, curves=curves))
        metadata[t.name] = (m, e_light)
    task_set = TaskSet(tasks)
    if with_metadata:
        return task_set, metadata
    return task_set
