"""Discrete-event simulator for preemptive uniprocessor scheduling.

Validates the analytic tests: jobs are released periodically, each with a
per-job demand drawn from a caller-supplied generator (so variable execution
demand — the paper's subject — can be replayed or synthesized), and executed
preemptively under rate-monotonic fixed priorities or EDF.

The simulator is exact for piecewise-constant demand: between consecutive
events (release or completion) the processor serves the single
highest-priority ready job, so state advances in closed form — no time
quantization is involved.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Literal, Mapping

from repro.obs.metrics import registry
from repro.obs.tracing import tracer
from repro.scheduling.task import TaskSet
from repro.util.validation import ValidationError, check_positive

__all__ = ["CompletedJob", "SimulationResult", "simulate", "wcet_demands"]

DemandGenerator = Callable[[int], float]
"""Maps a job index (0-based per task) to that job's execution demand."""


@dataclass(frozen=True)
class CompletedJob:
    """One executed job: identity, timing, and outcome."""

    task_name: str
    index: int
    release: float
    demand: float
    completion: float
    absolute_deadline: float

    @property
    def response_time(self) -> float:
        """Completion minus release."""
        return self.completion - self.release

    @property
    def met_deadline(self) -> bool:
        """True if the job finished by its absolute deadline."""
        return self.completion <= self.absolute_deadline + 1e-9


@dataclass
class SimulationResult:
    """Outcome of a simulation run."""

    jobs: list[CompletedJob]
    horizon: float
    busy_time: float

    @property
    def utilization(self) -> float:
        """Fraction of the horizon the processor was busy."""
        return self.busy_time / self.horizon

    def jobs_of(self, task_name: str) -> list[CompletedJob]:
        """Completed jobs of one task, in release order."""
        return [j for j in self.jobs if j.task_name == task_name]

    def _decided(self, jobs: list[CompletedJob]) -> list[CompletedJob]:
        """Jobs whose verdict the horizon can decide: finished jobs, plus
        unfinished ones whose absolute deadline lies within the horizon
        (those have certainly missed).  Unfinished jobs with deadlines
        beyond the horizon are boundary artifacts and excluded."""
        return [
            j
            for j in jobs
            if math.isfinite(j.completion) or j.absolute_deadline <= self.horizon + 1e-9
        ]

    def max_response_time(self, task_name: str) -> float:
        """Worst observed response time of *task_name* over decided jobs
        (0 if none)."""
        times = [j.response_time for j in self._decided(self.jobs_of(task_name))]
        return max(times) if times else 0.0

    def deadline_misses(self, task_name: str | None = None) -> int:
        """Number of missed deadlines among decided jobs, optionally
        restricted to one task."""
        jobs = self.jobs if task_name is None else self.jobs_of(task_name)
        return sum(not j.met_deadline for j in self._decided(jobs))


def wcet_demands(task_set: TaskSet) -> dict[str, DemandGenerator]:
    """Demand generators that charge every job its task's WCET — the
    classical worst-case assumption."""
    return {t.name: (lambda _i, c=t.wcet: c) for t in task_set}


@dataclass(order=True)
class _ReadyJob:
    sort_key: tuple
    task_name: str = field(compare=False)
    index: int = field(compare=False)
    release: float = field(compare=False)
    demand: float = field(compare=False)
    remaining: float = field(compare=False)
    absolute_deadline: float = field(compare=False)


def simulate(
    task_set: TaskSet,
    horizon: float,
    *,
    demands: Mapping[str, DemandGenerator] | None = None,
    policy: Literal["fixed", "edf"] = "fixed",
) -> SimulationResult:
    """Simulate *task_set* preemptively over ``[0, horizon)``.

    Parameters
    ----------
    task_set:
        Tasks; each task releases its first job at its offset (0 by
        default — the synchronous critical instant) and re-releases every
        period.
    horizon:
        Simulation length.  Jobs still incomplete at the horizon are
        reported with ``completion = inf``.
    demands:
        Per-task demand generators (job index → demand); defaults to
        :func:`wcet_demands`.  A generated demand must be positive and, for
        a meaningful comparison with analysis, not exceed the task's WCET
        (checked).
    policy:
        ``"fixed"`` — rate-monotonic fixed priorities (task-set order);
        ``"edf"`` — earliest absolute deadline first.
    """
    check_positive(horizon, "horizon")
    if policy not in ("fixed", "edf"):
        raise ValidationError(f"unknown policy {policy!r}")
    with tracer.span(
        "sched.simulate", policy=policy, horizon=horizon, tasks=len(list(task_set))
    ):
        result = _simulate(task_set, horizon, demands=demands, policy=policy)
    registry.counter("sched.runs", policy=policy).inc()
    registry.counter("sched.jobs", policy=policy).inc(len(result.jobs))
    registry.counter("sched.deadline_misses", policy=policy).inc(result.deadline_misses())
    registry.counter("sched.busy_seconds", policy=policy).add(result.busy_time)
    return result


def _simulate(
    task_set: TaskSet,
    horizon: float,
    *,
    demands: Mapping[str, DemandGenerator] | None,
    policy: Literal["fixed", "edf"],
) -> SimulationResult:
    gens = dict(wcet_demands(task_set))
    if demands is not None:
        unknown = set(demands) - {t.name for t in task_set}
        if unknown:
            raise ValidationError(f"demand generators for unknown tasks: {sorted(unknown)}")
        gens.update(demands)

    priority_index = {t.name: i for i, t in enumerate(task_set)}

    def sort_key(task_name: str, release: float, abs_deadline: float, index: int):
        if policy == "fixed":
            return (priority_index[task_name], release, index)
        return (abs_deadline, priority_index[task_name], index)

    # pre-compute releases within the horizon (honouring offsets)
    releases: list[tuple[float, str, int]] = []
    for t in task_set:
        k = 0
        r = t.offset
        while r < horizon - 1e-12:
            releases.append((r, t.name, k))
            k += 1
            r = t.offset + k * t.period
    releases.sort()

    ready: list[_ReadyJob] = []
    completed: list[CompletedJob] = []
    busy = 0.0
    now = 0.0
    rel_pos = 0

    def push_release(pos: int) -> int:
        while pos < len(releases) and releases[pos][0] <= now + 1e-12:
            r, name, idx = releases[pos]
            task = task_set.by_name(name)
            demand = float(gens[name](idx))
            if demand <= 0:
                raise ValidationError(f"demand generator for {name!r} returned {demand!r}")
            if demand > task.wcet + 1e-9:
                raise ValidationError(
                    f"generated demand {demand:g} for {name!r} exceeds wcet {task.wcet:g}"
                )
            abs_dl = r + task.deadline
            heapq.heappush(
                ready,
                _ReadyJob(sort_key(name, r, abs_dl, idx), name, idx, r, demand, demand, abs_dl),
            )
            pos += 1
        return pos

    rel_pos = push_release(rel_pos)
    while now < horizon - 1e-12:
        if not ready:
            if rel_pos >= len(releases):
                break
            now = releases[rel_pos][0]
            rel_pos = push_release(rel_pos)
            continue
        job = ready[0]
        next_release = releases[rel_pos][0] if rel_pos < len(releases) else math.inf
        finish = now + job.remaining
        # run the current highest-priority job until it finishes or the next
        # release re-decides the heap top — preemption falls out naturally
        step_end = min(finish, next_release, horizon)
        busy += step_end - now
        job.remaining -= step_end - now
        now = step_end
        if job.remaining <= 1e-12:
            heapq.heappop(ready)
            completed.append(
                CompletedJob(job.task_name, job.index, job.release, job.demand, now, job.absolute_deadline)
            )
        rel_pos = push_release(rel_pos)

    # jobs unfinished at the horizon
    for job in ready:
        completed.append(
            CompletedJob(job.task_name, job.index, job.release, job.demand, math.inf, job.absolute_deadline)
        )
    completed.sort(key=lambda j: (j.release, priority_index[j.task_name]))
    return SimulationResult(completed, horizon, busy)
