"""Rate-monotonic schedulability tests (paper §3.1, eqs. (3)–(5)).

Lehoczky, Sha & Ding's exact RMS condition: with

.. math::

    W_i(t) = \\sum_{j=1}^{i} C_j \\lceil t/T_j \\rceil, \\qquad
    L_i = \\min_{0 < t \\le T_i} W_i(t)/t, \\qquad
    L = \\max_i L_i

task ``τ_i`` is RM-schedulable iff ``L_i <= 1`` and the set iff ``L <= 1``.
The minimum over ``t`` is attained on the finite set of *scheduling points*
``{ l·T_j : j <= i, l = 1..floor(T_i/T_j) }``.

The paper's improvement (eq. (4)) replaces the per-task term
``C_j·⌈t/T_j⌉`` by ``γ^u_j(⌈t/T_j⌉)`` — the workload curve evaluated at the
number of arrivals — which is never larger (eq. (5)), hence
``L̃_i <= L_i`` and the improved test is at least as permissive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.scheduling.task import TaskSet
from repro.util.validation import ValidationError

__all__ = [
    "RMSAnalysis",
    "scheduling_points",
    "cumulative_demand_classic",
    "cumulative_demand_curves",
    "rms_test_classic",
    "rms_test_curves",
    "liu_layland_bound",
    "liu_layland_test",
]


@dataclass(frozen=True)
class RMSAnalysis:
    """Result of an RMS schedulability test.

    Attributes
    ----------
    per_task_load:
        ``L_i`` for each task in priority order.
    load:
        ``L = max_i L_i``.
    schedulable_tasks:
        Per-task verdict ``L_i <= 1``.
    schedulable:
        Whole-set verdict ``L <= 1``.
    critical_points:
        For each task, the scheduling point ``t`` achieving ``L_i``.
    method:
        ``"classic"`` (eq. (3)) or ``"workload-curves"`` (eq. (4)).
    """

    per_task_load: tuple[float, ...]
    critical_points: tuple[float, ...]
    method: str

    @property
    def load(self) -> float:
        """The set-level load factor ``L``."""
        return max(self.per_task_load)

    @property
    def schedulable_tasks(self) -> tuple[bool, ...]:
        """Per-task verdicts ``L_i <= 1``."""
        return tuple(load <= 1.0 + 1e-12 for load in self.per_task_load)

    @property
    def schedulable(self) -> bool:
        """Whole-set verdict ``L <= 1``."""
        return self.load <= 1.0 + 1e-12


def scheduling_points(task_set: TaskSet, i: int) -> list[float]:
    """The Lehoczky scheduling points for task index *i* (0-based):
    ``{ l·T_j : j <= i, l = 1..floor(D_i/T_j) } ∪ {D_i}`` — the finite set
    on which the minimum of ``W_i(t)/t`` over ``(0, D_i]`` is attained
    (``W_i`` is a right-continuous staircase; between arrivals ``W_i(t)/t``
    decreases, so candidates are arrival instants and the deadline itself).
    With implicit deadlines (``D_i = T_i``) this is Lehoczky's original
    set; constrained deadlines simply shorten the horizon."""
    if not 0 <= i < len(task_set):
        raise ValidationError(f"task index {i} out of range")
    d_i = task_set[i].deadline
    points: set[float] = {d_i}
    for j in range(i + 1):
        t_j = task_set[j].period
        for l in range(1, math.floor(d_i / t_j + 1e-9) + 1):
            points.add(l * t_j)
    return sorted(points)


def _arrivals(t: float, period: float) -> int:
    """Number of arrivals of a task with *period* in ``[0, t]`` (critical
    instant convention): ``⌈t/T⌉`` with an epsilon guard for exact
    multiples."""
    return max(1, math.ceil(t / period - 1e-9))


def cumulative_demand_classic(task_set: TaskSet, i: int, t: float) -> float:
    """``W_i(t) = Σ_{j<=i} C_j·⌈t/T_j⌉`` — paper eq. (3)."""
    return sum(
        task_set[j].wcet * _arrivals(t, task_set[j].period) for j in range(i + 1)
    )


def cumulative_demand_curves(task_set: TaskSet, i: int, t: float) -> float:
    """``W̃_i(t) = Σ_{j<=i} γ^u_j(⌈t/T_j⌉)`` — paper eq. (4).

    Tasks without attached curves fall back to the classic term (equivalent
    to a linear curve ``k·C_j``).
    """
    return sum(
        task_set[j].demand_upper(_arrivals(t, task_set[j].period)) for j in range(i + 1)
    )


def _rms_test(task_set: TaskSet, demand, method: str) -> RMSAnalysis:
    loads: list[float] = []
    crits: list[float] = []
    for i in range(len(task_set)):
        best = math.inf
        best_t = task_set[i].period
        for t in scheduling_points(task_set, i):
            ratio = demand(task_set, i, t) / t
            if ratio < best:
                best = ratio
                best_t = t
        loads.append(best)
        crits.append(best_t)
    return RMSAnalysis(tuple(loads), tuple(crits), method)


def rms_test_classic(task_set: TaskSet) -> RMSAnalysis:
    """Lehoczky's exact test with the WCET-only characterization
    (paper eq. (3))."""
    return _rms_test(task_set, cumulative_demand_classic, "classic")


def rms_test_curves(task_set: TaskSet) -> RMSAnalysis:
    """The workload-curve-improved test (paper eq. (4)).

    By eq. (5) the resulting loads satisfy ``L̃_i <= L_i`` for every task,
    so any set schedulable under :func:`rms_test_classic` stays schedulable
    here, and sets with heavy demand variability may become schedulable
    only here.
    """
    return _rms_test(task_set, cumulative_demand_curves, "workload-curves")


def liu_layland_bound(n: int) -> float:
    """The Liu & Layland utilization bound ``n·(2^{1/n} − 1)`` — the
    classical sufficient (not necessary) RM condition."""
    if n < 1:
        raise ValidationError("n must be >= 1")
    return n * (2.0 ** (1.0 / n) - 1.0)


def liu_layland_test(task_set: TaskSet) -> bool:
    """Sufficient utilization-based test: ``U <= n(2^{1/n} − 1)``."""
    return task_set.total_utilization <= liu_layland_bound(len(task_set)) + 1e-12
