"""Typed events and per-type execution-time intervals (paper §2.1).

A task ``τ`` is triggered by a sequence of events ``[E_1, E_2, ...]``; each
event carries a *type* ``t`` from a finite set ``T``, and each type imposes an
execution requirement bounded by the interval ``[bcet(t), wcet(t)]`` (the SPI
model of Ziegenbein et al., which the paper builds on).  This module provides:

* :class:`ExecutionInterval` — a validated ``[bcet, wcet]`` pair,
* :class:`ExecutionProfile` — the map from event-type name to interval,
* :class:`Event` — one activation: a type name plus optional timestamp and
  optional *measured* demand (used for trace-based curve extraction, §2.1
  last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.util.validation import ValidationError, check_non_negative, check_positive

__all__ = ["ExecutionInterval", "ExecutionProfile", "Event"]


@dataclass(frozen=True)
class ExecutionInterval:
    """Execution-requirement interval ``[bcet, wcet]`` in processor cycles.

    The paper requires ``[bcet(t), wcet(t)] ⊂ R_{>0}``; we therefore insist on
    ``0 < bcet <= wcet``.
    """

    bcet: float
    wcet: float

    def __post_init__(self) -> None:
        check_positive(self.bcet, "bcet")
        check_positive(self.wcet, "wcet")
        if self.bcet > self.wcet:
            raise ValidationError(
                f"bcet ({self.bcet}) must not exceed wcet ({self.wcet})"
            )

    @property
    def spread(self) -> float:
        """Absolute variability ``wcet - bcet``."""
        return self.wcet - self.bcet

    @property
    def ratio(self) -> float:
        """Variability ratio ``wcet / bcet`` (>= 1)."""
        return self.wcet / self.bcet

    def contains(self, demand: float) -> bool:
        """True if *demand* lies within the interval (inclusive)."""
        return self.bcet <= demand <= self.wcet

    def scaled(self, factor: float) -> "ExecutionInterval":
        """Interval with both bounds multiplied by *factor* (> 0)."""
        check_positive(factor, "factor")
        return ExecutionInterval(self.bcet * factor, self.wcet * factor)


@dataclass(frozen=True)
class Event:
    """A single task activation.

    Parameters
    ----------
    type_name:
        The event type ``t ∈ T`` triggering the task.
    timestamp:
        Optional arrival time (seconds).  Workload curves themselves are
        timing-free (paper: "not based on any form of event timing"), but
        traces used with arrival curves need timestamps.
    demand:
        Optional measured execution demand in cycles for this particular
        activation.  When present it must be positive; trace-based curve
        extraction can use measured demands instead of the per-type
        worst/best-case interval.
    """

    type_name: str
    timestamp: float | None = None
    demand: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.type_name, str) or not self.type_name:
            raise ValidationError("type_name must be a non-empty string")
        if self.timestamp is not None:
            check_non_negative(self.timestamp, "timestamp")
        if self.demand is not None:
            check_positive(self.demand, "demand")


class ExecutionProfile:
    """Map from event-type name to its :class:`ExecutionInterval`.

    This is the static characterization the paper assumes known for each
    type (analogous to the SPI model's per-mode intervals).

    >>> profile = ExecutionProfile({"a": (2, 4), "b": (1, 3), "c": (1, 5)})
    >>> profile.wcet("a")
    4.0
    """

    def __init__(self, intervals: Mapping[str, ExecutionInterval | tuple[float, float]]):
        if not intervals:
            raise ValidationError("profile needs at least one event type")
        self._intervals: dict[str, ExecutionInterval] = {}
        for name, interval in intervals.items():
            if not isinstance(name, str) or not name:
                raise ValidationError("event type names must be non-empty strings")
            if isinstance(interval, tuple):
                interval = ExecutionInterval(*interval)
            if not isinstance(interval, ExecutionInterval):
                raise ValidationError(
                    f"interval for type {name!r} must be ExecutionInterval or (bcet, wcet)"
                )
            self._intervals[name] = interval

    # -- mapping-ish protocol -------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._intervals

    def __iter__(self) -> Iterator[str]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __getitem__(self, name: str) -> ExecutionInterval:
        try:
            return self._intervals[name]
        except KeyError:
            raise KeyError(f"unknown event type {name!r}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExecutionProfile):
            return NotImplemented
        return self._intervals == other._intervals

    # -- queries ---------------------------------------------------------------
    @property
    def type_names(self) -> tuple[str, ...]:
        """All event-type names, in insertion order."""
        return tuple(self._intervals)

    def wcet(self, name: str) -> float:
        """Worst-case execution time of type *name*."""
        return self[name].wcet

    def bcet(self, name: str) -> float:
        """Best-case execution time of type *name*."""
        return self[name].bcet

    @property
    def wcet_max(self) -> float:
        """The global WCET ``max_t wcet(t)`` — the classical single-value
        characterization the paper improves upon."""
        return max(iv.wcet for iv in self._intervals.values())

    @property
    def bcet_min(self) -> float:
        """The global BCET ``min_t bcet(t)``."""
        return min(iv.bcet for iv in self._intervals.values())

    def interval(self, name: str) -> ExecutionInterval:
        """The ``[bcet, wcet]`` interval of type *name*."""
        return self[name]

    def scaled(self, factor: float) -> "ExecutionProfile":
        """Profile with every interval scaled by *factor* (models running the
        same task on a processor with different cycles-per-operation cost)."""
        return ExecutionProfile(
            {name: iv.scaled(factor) for name, iv in self._intervals.items()}
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(
            f"{name}=[{iv.bcet:g},{iv.wcet:g}]" for name, iv in self._intervals.items()
        )
        return f"ExecutionProfile({body})"
