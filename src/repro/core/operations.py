"""Curve algebra beyond the instance methods: closures and envelopes.

Trace-derived workload curves are sub-additive (upper) / super-additive
(lower) by construction, but curves assembled by hand or combined across
sources may not be.  The closures here tighten such curves to the best
consistent bound without losing soundness:

* the **sub-additive closure** of an upper curve is the tightest upper curve
  below it satisfying ``γ(a+b) <= γ(a) + γ(b)``;
* the **super-additive closure** of a lower curve is the tightest lower
  curve above it satisfying ``γ(a+b) >= γ(a) + γ(b)``.

Both preserve validity: any demand sequence bounded by the original curve is
bounded by its closure.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.workload import WorkloadCurve, WorkloadCurvePair
from repro.util.validation import ValidationError, check_integer

__all__ = [
    "subadditive_closure",
    "superadditive_closure",
    "envelope_upper",
    "envelope_lower",
    "merge_pairs",
    "concavify_upper",
]


def subadditive_closure(curve: WorkloadCurve, *, k_max: int | None = None) -> WorkloadCurve:
    """Tightest sub-additive upper curve dominated by *curve* on ``1..k_max``.

    Computed by fixed-point iteration of
    ``γ(k) ← min(γ(k), min_{0<i<k} γ(i) + γ(k−i))`` on the dense grid
    (O(k_max²) per sweep; curves in this package are short enough that a
    single sweep in increasing ``k`` converges because updated prefixes are
    reused immediately).
    """
    if curve.kind != "upper":
        raise ValidationError("subadditive closure applies to upper curves")
    k_max = curve.horizon if k_max is None else check_integer(k_max, "k_max", minimum=1)
    dense = curve.to_dense(k_max)
    vals = np.concatenate(([0.0], dense.values))
    for k in range(2, k_max + 1):
        splits = vals[1:k] + vals[k - 1 : 0 : -1]
        best = splits.min()
        if best < vals[k]:
            vals[k] = best
    return WorkloadCurve("upper", np.arange(1, k_max + 1, dtype=np.int64), vals[1:])


def superadditive_closure(curve: WorkloadCurve, *, k_max: int | None = None) -> WorkloadCurve:
    """Tightest super-additive lower curve dominating *curve* on ``1..k_max``.

    Dual of :func:`subadditive_closure`:
    ``γ(k) ← max(γ(k), max_{0<i<k} γ(i) + γ(k−i))``.
    """
    if curve.kind != "lower":
        raise ValidationError("superadditive closure applies to lower curves")
    k_max = curve.horizon if k_max is None else check_integer(k_max, "k_max", minimum=1)
    dense = curve.to_dense(k_max)
    vals = np.concatenate(([0.0], dense.values))
    for k in range(2, k_max + 1):
        splits = vals[1:k] + vals[k - 1 : 0 : -1]
        best = splits.max()
        if best > vals[k]:
            vals[k] = best
    return WorkloadCurve("lower", np.arange(1, k_max + 1, dtype=np.int64), vals[1:])


def envelope_upper(curves: Iterable[WorkloadCurve]) -> WorkloadCurve:
    """Pointwise maximum of several upper curves — the multi-trace envelope
    (Figure 6 combines 14 clips this way)."""
    return _envelope(curves, "upper")


def envelope_lower(curves: Iterable[WorkloadCurve]) -> WorkloadCurve:
    """Pointwise minimum of several lower curves."""
    return _envelope(curves, "lower")


def _envelope(curves: Iterable[WorkloadCurve], kind: str) -> WorkloadCurve:
    curves = list(curves)
    if not curves:
        raise ValidationError("envelope needs at least one curve")
    result = curves[0]
    if result.kind != kind:
        raise ValidationError(f"expected {kind} curves")
    for curve in curves[1:]:
        result = result.max_with(curve) if kind == "upper" else result.min_with(curve)
    return result


def merge_pairs(pairs: Sequence[WorkloadCurvePair]) -> WorkloadCurvePair:
    """Envelope over several :class:`WorkloadCurvePair` (multi-clip merge)."""
    if not pairs:
        raise ValidationError("merge needs at least one pair")
    result = pairs[0]
    for pair in pairs[1:]:
        result = result.merge(pair)
    return result


def concavify_upper(curve: WorkloadCurve, *, k_max: int | None = None) -> WorkloadCurve:
    """Upper concave hull of an upper curve on ``0..k_max``.

    The hull dominates the curve everywhere, so it remains a *valid* (but
    possibly looser) upper bound; its value is that linear interpolation
    between grid points becomes sound, giving a compact piecewise-linear
    representation suitable for export to continuous-domain tooling.
    """
    if curve.kind != "upper":
        raise ValidationError("concavification applies to upper curves")
    k_max = curve.horizon if k_max is None else check_integer(k_max, "k_max", minimum=1)
    dense = curve.to_dense(k_max)
    xs = np.concatenate(([0], dense.k_values)).astype(float)
    ys = np.concatenate(([0.0], dense.values))
    hull_idx = _upper_hull_indices(xs, ys)
    hull_x = xs[hull_idx]
    hull_y = ys[hull_idx]
    ks = np.arange(1, k_max + 1, dtype=np.int64)
    vals = np.interp(ks.astype(float), hull_x, hull_y)
    return WorkloadCurve("upper", ks, vals)


def _upper_hull_indices(xs: np.ndarray, ys: np.ndarray) -> list[int]:
    """Indices of the upper concave hull (monotone chain, keeping turns that
    preserve concavity)."""
    hull: list[int] = []
    for i in range(xs.size):
        while len(hull) >= 2:
            x1, y1 = xs[hull[-2]], ys[hull[-2]]
            x2, y2 = xs[hull[-1]], ys[hull[-1]]
            x3, y3 = xs[i], ys[i]
            # drop the middle point if it lies below the chord (convex turn)
            if (y2 - y1) * (x3 - x2) <= (y3 - y2) * (x2 - x1):
                hull.pop()
            else:
                break
        hull.append(i)
    return hull
