"""Event traces and the partial-demand sums ``γ_b(j, k)``, ``γ_w(j, k)``.

The paper (§2.1, Figure 1) defines, for an event sequence ``[E_1, E_2, ...]``:

.. math::

    γ_w(j, k) = \\sum_{i=j}^{j+k-1} wcet(type(E_i)), \\qquad
    γ_b(j, k) = \\sum_{i=j}^{j+k-1} bcet(type(E_i))

i.e. the worst/best-case demand of the ``k`` events starting at the ``j``-th
(1-indexed, as in the paper).  Workload curves are the envelopes of these
sums over all window positions ``j`` (see :mod:`repro.core.workload`).

:class:`EventTrace` stores a finite trace with optional timestamps and
optional *measured* per-event demands, and provides both the definitional
per-window sums and vectorized demand arrays for envelope extraction.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.events import Event, ExecutionProfile
from repro.util.validation import ValidationError, check_integer

__all__ = ["EventTrace"]


class EventTrace:
    """A finite sequence of typed events triggering one task.

    Parameters
    ----------
    events:
        Iterable of :class:`~repro.core.events.Event`.  Either all events
        carry a timestamp or none do; timestamps must be non-decreasing.
    profile:
        Optional :class:`~repro.core.events.ExecutionProfile`.  Required for
        the definitional (per-type interval based) demand sums; every event
        type appearing in the trace must be covered and any measured demand
        must lie within its type's interval.
    """

    def __init__(self, events: Iterable[Event], profile: ExecutionProfile | None = None):
        events = list(events)
        if not events:
            raise ValidationError("trace must contain at least one event")
        for i, ev in enumerate(events):
            if not isinstance(ev, Event):
                raise ValidationError(f"events[{i}] is not an Event")
        has_ts = [ev.timestamp is not None for ev in events]
        if any(has_ts) and not all(has_ts):
            raise ValidationError("either all events carry timestamps or none do")
        if all(has_ts):
            ts = np.array([ev.timestamp for ev in events], dtype=float)
            if np.any(np.diff(ts) < 0):
                raise ValidationError("timestamps must be non-decreasing")
            self._timestamps: np.ndarray | None = ts
        else:
            self._timestamps = None
        self._events = tuple(events)
        self._types = tuple(ev.type_name for ev in events)
        self._profile = profile
        if profile is not None:
            missing = sorted(set(self._types) - set(profile.type_names))
            if missing:
                raise ValidationError(
                    f"profile does not cover event types: {', '.join(missing)}"
                )
            for i, ev in enumerate(events):
                if ev.demand is not None and not profile[ev.type_name].contains(ev.demand):
                    raise ValidationError(
                        f"events[{i}] demand {ev.demand} outside "
                        f"[{profile[ev.type_name].bcet}, {profile[ev.type_name].wcet}] "
                        f"for type {ev.type_name!r}"
                    )
        has_demand = [ev.demand is not None for ev in events]
        self._all_measured = all(has_demand)

    # -- constructors ------------------------------------------------------------
    @classmethod
    def from_type_names(
        cls,
        type_names: Sequence[str],
        profile: ExecutionProfile,
        *,
        timestamps: Sequence[float] | None = None,
    ) -> "EventTrace":
        """Build a trace from a plain sequence of type names.

        >>> profile = ExecutionProfile({"a": (2, 4), "b": (1, 3)})
        >>> trace = EventTrace.from_type_names("abab", profile)
        """
        names = list(type_names)
        if timestamps is not None and len(timestamps) != len(names):
            raise ValidationError("timestamps length must match type_names length")
        events = [
            Event(name, timestamp=None if timestamps is None else float(timestamps[i]))
            for i, name in enumerate(names)
        ]
        return cls(events, profile)

    @classmethod
    def from_demands(
        cls,
        demands: Sequence[float],
        *,
        timestamps: Sequence[float] | None = None,
        type_name: str = "job",
    ) -> "EventTrace":
        """Build a measured trace where each event's demand was observed.

        This is the §2.1 "analysis of event traces" mode used by the MPEG-2
        case study: the curves extracted from such a trace are guaranteed for
        this trace (class of traces) only.
        """
        demands = list(demands)
        if not demands:
            raise ValidationError("demands must be non-empty")
        if timestamps is not None and len(timestamps) != len(demands):
            raise ValidationError("timestamps length must match demands length")
        events = [
            Event(
                type_name,
                timestamp=None if timestamps is None else float(timestamps[i]),
                demand=float(d),
            )
            for i, d in enumerate(demands)
        ]
        return cls(events, None)

    # -- basic accessors -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    @property
    def events(self) -> tuple[Event, ...]:
        """The events, in order."""
        return self._events

    @property
    def type_names(self) -> tuple[str, ...]:
        """Per-event type names, in order."""
        return self._types

    @property
    def profile(self) -> ExecutionProfile | None:
        """The execution profile, if one was attached."""
        return self._profile

    @property
    def timestamps(self) -> np.ndarray | None:
        """Array of arrival times, or ``None`` for an untimed trace."""
        return None if self._timestamps is None else self._timestamps.copy()

    @property
    def has_measured_demands(self) -> bool:
        """True if every event carries an observed demand."""
        return self._all_measured

    def type_counts(self) -> dict[str, int]:
        """Number of occurrences of each event type in the trace."""
        counts: dict[str, int] = {}
        for name in self._types:
            counts[name] = counts.get(name, 0) + 1
        return counts

    # -- demand vectors -------------------------------------------------------------
    def _require_profile(self) -> ExecutionProfile:
        if self._profile is None:
            raise ValidationError(
                "this operation needs an execution profile; attach one at "
                "construction or use measured demands"
            )
        return self._profile

    def worst_case_demands(self) -> np.ndarray:
        """Per-event worst-case demand ``wcet(type(E_i))`` (needs a profile)."""
        profile = self._require_profile()
        return np.array([profile.wcet(name) for name in self._types], dtype=float)

    def best_case_demands(self) -> np.ndarray:
        """Per-event best-case demand ``bcet(type(E_i))`` (needs a profile)."""
        profile = self._require_profile()
        return np.array([profile.bcet(name) for name in self._types], dtype=float)

    def measured_demands(self) -> np.ndarray:
        """Per-event observed demands (every event must carry one)."""
        if not self._all_measured:
            raise ValidationError("trace does not carry measured demands for every event")
        return np.array([ev.demand for ev in self._events], dtype=float)

    # -- the paper's γ_w / γ_b -------------------------------------------------------
    def gamma_w(self, j: int, k: int) -> float:
        """Worst-case demand of events ``E_j .. E_{j+k-1}`` (1-indexed).

        ``γ_w(j, 0) = 0`` for every ``j``, matching the paper's convention.
        """
        return self._window_sum(self.worst_case_demands(), j, k)

    def gamma_b(self, j: int, k: int) -> float:
        """Best-case demand of events ``E_j .. E_{j+k-1}`` (1-indexed)."""
        return self._window_sum(self.best_case_demands(), j, k)

    def gamma_measured(self, j: int, k: int) -> float:
        """Observed demand of events ``E_j .. E_{j+k-1}`` (1-indexed)."""
        return self._window_sum(self.measured_demands(), j, k)

    def _window_sum(self, demands: np.ndarray, j: int, k: int) -> float:
        j = check_integer(j, "j", minimum=1)
        k = check_integer(k, "k", minimum=0)
        if k == 0:
            return 0.0
        if j + k - 1 > len(self._events):
            raise ValidationError(
                f"window [j={j}, j+k-1={j + k - 1}] exceeds trace length {len(self._events)}"
            )
        return float(np.sum(demands[j - 1 : j - 1 + k]))

    # -- slicing / composition ---------------------------------------------------------
    def subtrace(self, start: int, stop: int) -> "EventTrace":
        """Events ``start..stop-1`` (0-indexed, half-open) as a new trace."""
        start = check_integer(start, "start", minimum=0)
        stop = check_integer(stop, "stop", minimum=start + 1)
        if stop > len(self._events):
            raise ValidationError(f"stop={stop} exceeds trace length {len(self._events)}")
        return EventTrace(self._events[start:stop], self._profile)

    def concatenate(self, other: "EventTrace") -> "EventTrace":
        """This trace followed by *other* (profiles must agree if both set).

        Timestamps are preserved only when the concatenation stays
        non-decreasing; mixing timed and untimed traces drops timestamps.
        """
        if self._profile is not None and other._profile is not None:
            if self._profile != other._profile:
                raise ValidationError("cannot concatenate traces with different profiles")
        profile = self._profile or other._profile
        if (
            self._timestamps is not None
            and other._timestamps is not None
            and other._timestamps[0] >= self._timestamps[-1]
        ):
            events = self._events + other._events
        else:
            events = tuple(
                Event(ev.type_name, timestamp=None, demand=ev.demand)
                for ev in self._events + other._events
            )
        return EventTrace(events, profile)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        timed = "timed" if self._timestamps is not None else "untimed"
        return f"EventTrace(n={len(self._events)}, {timed}, types={sorted(set(self._types))})"
