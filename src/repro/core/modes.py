"""Multi-mode analytical workload curves.

The paper builds on the SPI model (Ziegenbein et al.) and Wolf's behavioral
intervals, where "processes can have different modes with different
intervals for execution times", and derives curves for the two-mode polling
task analytically (§2.2).  This module generalizes that construction to an
arbitrary finite set of modes: given, for every mode ``m``, a per-activation
cost and guaranteed bounds on how many of any ``k`` consecutive activations
may (upper) / must (lower) run in that mode, the extremal assignment yields
valid workload curves:

* upper: assign activations to the *most expensive* modes first, each up to
  its ``n_max`` bound, until ``k`` activations are placed;
* lower: give every mode its ``n_min`` mandatory activations, then fill the
  remainder with the *cheapest* admissible mode.

With two modes this reduces exactly to
:func:`repro.core.analytical.two_mode_curves`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.workload import WorkloadCurve, WorkloadCurvePair
from repro.util.validation import ValidationError, check_integer, check_positive

__all__ = ["ModeSpec", "multi_mode_curves"]

CountBound = Callable[[int], int]


@dataclass(frozen=True)
class ModeSpec:
    """One execution mode of a task.

    Parameters
    ----------
    name:
        Mode label.
    cost:
        Cycles demanded by one activation in this mode.
    n_max:
        ``n_max(k)`` — upper bound on activations of this mode in any ``k``
        consecutive activations.  ``None`` means unconstrained (up to ``k``).
    n_min:
        ``n_min(k)`` — guaranteed minimum.  ``None`` means 0.
    """

    name: str
    cost: float
    n_max: CountBound | None = None
    n_min: CountBound | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValidationError("mode name must be a non-empty string")
        check_positive(self.cost, "cost")

    def max_count(self, k: int) -> int:
        """Evaluated, clipped upper count bound."""
        if self.n_max is None:
            return k
        value = check_integer(self.n_max(k), f"n_max({k}) of mode {self.name!r}")
        if value < 0:
            raise ValidationError(f"n_max of mode {self.name!r} must be >= 0")
        return min(value, k)

    def min_count(self, k: int) -> int:
        """Evaluated, clipped lower count bound."""
        if self.n_min is None:
            return 0
        value = check_integer(self.n_min(k), f"n_min({k}) of mode {self.name!r}")
        if value < 0:
            raise ValidationError(f"n_min of mode {self.name!r} must be >= 0")
        return min(value, k)


def _upper_demand(modes: Sequence[ModeSpec], k: int) -> float:
    """Most expensive admissible assignment of k activations."""
    remaining = k
    demand = 0.0
    for mode in sorted(modes, key=lambda m: -m.cost):
        take = min(remaining, mode.max_count(k))
        demand += take * mode.cost
        remaining -= take
        if remaining == 0:
            return demand
    raise ValidationError(
        f"count bounds admit only {k - remaining} of {k} activations; "
        "the mode set must cover every activation (leave one mode "
        "unconstrained or make the n_max bounds sum to >= k)"
    )


def _lower_demand(modes: Sequence[ModeSpec], k: int) -> float:
    """Cheapest admissible assignment of k activations."""
    mandatory = [(m, m.min_count(k)) for m in modes]
    total_min = sum(c for _m, c in mandatory)
    if total_min > k:
        raise ValidationError(
            f"n_min bounds require {total_min} activations in a window of {k}"
        )
    demand = sum(m.cost * c for m, c in mandatory)
    remaining = k - total_min
    # fill the remainder with the cheapest modes that still have headroom
    for mode, taken in sorted(mandatory, key=lambda mc: mc[0].cost):
        if remaining == 0:
            break
        headroom = mode.max_count(k) - taken
        take = min(remaining, max(headroom, 0))
        demand += take * mode.cost
        remaining -= take
    if remaining > 0:
        raise ValidationError(
            "count bounds admit fewer activations than the window length"
        )
    return demand


def multi_mode_curves(modes: Sequence[ModeSpec], *, k_max: int = 64) -> WorkloadCurvePair:
    """Workload curves of a multi-mode task (see module docstring).

    Requirements checked per ``k``: the ``n_max`` bounds must admit ``k``
    activations in total, the ``n_min`` bounds must not demand more than
    ``k``, and both bound families must be monotone in ``k`` (otherwise the
    construction is not a valid envelope).
    """
    modes = list(modes)
    if not modes:
        raise ValidationError("at least one mode is required")
    names = [m.name for m in modes]
    if len(set(names)) != len(names):
        raise ValidationError("mode names must be unique")
    k_max = check_integer(k_max, "k_max", minimum=1)
    ks = np.arange(1, k_max + 1, dtype=np.int64)
    upper = np.array([_upper_demand(modes, int(k)) for k in ks])
    lower = np.array([_lower_demand(modes, int(k)) for k in ks])
    for mode in modes:
        maxes = [mode.max_count(int(k)) for k in ks]
        mins = [mode.min_count(int(k)) for k in ks]
        if any(b < a for a, b in zip(maxes, maxes[1:])):
            raise ValidationError(f"n_max of mode {mode.name!r} must be monotone in k")
        if any(b < a for a, b in zip(mins, mins[1:])):
            raise ValidationError(f"n_min of mode {mode.name!r} must be monotone in k")
    # the greedy per-k assignments are valid bounds but not necessarily
    # sub-/super-additive (a window's count bounds are not the sum of its
    # halves'); the closures tighten them to the consistent envelope — the
    # true windowed demand is always sub-additive, so this stays sound
    from repro.core.operations import subadditive_closure, superadditive_closure

    upper_curve = subadditive_closure(WorkloadCurve("upper", ks, upper))
    lower_curve = superadditive_closure(WorkloadCurve("lower", ks, lower))
    return WorkloadCurvePair(upper_curve, lower_curve)
