"""JSON (de)serialization of workload curves and execution profiles.

Curves are expensive to extract from long traces; persisting them lets a
design flow split extraction (simulation-time) from analysis (design-time),
which is how the paper's methodology would be deployed.  The format is a
small, versioned JSON document; round-trips are exact (floats preserved via
``repr``-faithful JSON numbers).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.events import ExecutionInterval, ExecutionProfile
from repro.core.workload import WorkloadCurve, WorkloadCurvePair
from repro.util.validation import ValidationError

__all__ = [
    "curve_to_dict",
    "curve_from_dict",
    "pair_to_dict",
    "pair_from_dict",
    "profile_to_dict",
    "profile_from_dict",
    "save_pair",
    "load_pair",
]

_FORMAT_VERSION = 1


def curve_to_dict(curve: WorkloadCurve) -> dict[str, Any]:
    """Serializable representation of one curve."""
    return {
        "format": _FORMAT_VERSION,
        "type": "workload-curve",
        "kind": curve.kind,
        "k_values": curve.k_values.tolist(),
        "values": curve.values.tolist(),
    }


def curve_from_dict(data: dict[str, Any]) -> WorkloadCurve:
    """Inverse of :func:`curve_to_dict` (validates structure and version)."""
    _check(data, "workload-curve")
    return WorkloadCurve(data["kind"], data["k_values"], data["values"])


def pair_to_dict(pair: WorkloadCurvePair) -> dict[str, Any]:
    """Serializable representation of an upper/lower pair."""
    return {
        "format": _FORMAT_VERSION,
        "type": "workload-curve-pair",
        "upper": curve_to_dict(pair.upper),
        "lower": curve_to_dict(pair.lower),
    }


def pair_from_dict(data: dict[str, Any]) -> WorkloadCurvePair:
    """Inverse of :func:`pair_to_dict`."""
    _check(data, "workload-curve-pair")
    return WorkloadCurvePair(
        curve_from_dict(data["upper"]), curve_from_dict(data["lower"])
    )


def profile_to_dict(profile: ExecutionProfile) -> dict[str, Any]:
    """Serializable representation of an execution profile."""
    return {
        "format": _FORMAT_VERSION,
        "type": "execution-profile",
        "intervals": {
            name: [profile.bcet(name), profile.wcet(name)] for name in profile
        },
    }


def profile_from_dict(data: dict[str, Any]) -> ExecutionProfile:
    """Inverse of :func:`profile_to_dict`."""
    _check(data, "execution-profile")
    return ExecutionProfile(
        {name: ExecutionInterval(lo, hi) for name, (lo, hi) in data["intervals"].items()}
    )


def save_pair(pair: WorkloadCurvePair, path: str | Path) -> None:
    """Write a curve pair to *path* as JSON."""
    Path(path).write_text(json.dumps(pair_to_dict(pair)))


def load_pair(path: str | Path) -> WorkloadCurvePair:
    """Read a curve pair written by :func:`save_pair`."""
    return pair_from_dict(json.loads(Path(path).read_text()))


def _check(data: dict[str, Any], expected_type: str) -> None:
    if not isinstance(data, dict):
        raise ValidationError("serialized document must be a JSON object")
    if data.get("type") != expected_type:
        raise ValidationError(
            f"expected a {expected_type!r} document, got {data.get('type')!r}"
        )
    if data.get("format") != _FORMAT_VERSION:
        raise ValidationError(
            f"unsupported format version {data.get('format')!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
