"""Analytical construction of workload curves (paper §2.2).

When the event patterns triggering a task are constrained by the system
specification, workload curves can be derived *analytically* and are then
valid for hard real-time analysis.  The paper's Example 1 (the polling task)
is the canonical instance; this module implements it together with a generic
two-mode construction driven by event-count bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.workload import WorkloadCurve, WorkloadCurvePair
from repro.util.validation import ValidationError, check_integer, check_positive

__all__ = [
    "PollingTask",
    "polling_task_curves",
    "two_mode_curves",
    "periodic_event_count_bounds",
]


@dataclass(frozen=True)
class PollingTask:
    """The polling task of paper Example 1.

    A task polls with period *period* (``T``) for events of a sporadic
    stream with inter-arrival times in ``[theta_min, theta_max]``.  When an
    event is pending the activation costs *e_p* cycles, otherwise *e_c*
    (the processing step is skipped; ``e_c < e_p``).  The paper requires
    ``T < theta_min`` so at most one event is pending per poll and response
    time stays small.
    """

    period: float
    theta_min: float
    theta_max: float
    e_p: float
    e_c: float

    def __post_init__(self) -> None:
        check_positive(self.period, "period")
        check_positive(self.theta_min, "theta_min")
        check_positive(self.theta_max, "theta_max")
        check_positive(self.e_p, "e_p")
        check_positive(self.e_c, "e_c")
        if self.theta_max < self.theta_min:
            raise ValidationError("theta_max must be >= theta_min")
        if self.period >= self.theta_min:
            raise ValidationError(
                "polling period must be smaller than theta_min "
                "(paper Example 1 precondition)"
            )
        if self.e_c >= self.e_p:
            raise ValidationError("e_c (skip cost) must be smaller than e_p")

    def n_max(self, k: int) -> int:
        """Maximum number of events detected in any ``k`` consecutive polls:
        ``n_max(k) = 1 + floor(k·T / θ_min)`` (capped at ``k``; the cap is
        implied by ``T < θ_min`` but we enforce it for robustness)."""
        k = check_integer(k, "k", minimum=0)
        if k == 0:
            return 0
        return min(k, 1 + math.floor(k * self.period / self.theta_min))

    def n_min(self, k: int) -> int:
        """Minimum number of events detected in any ``k`` consecutive polls:
        ``n_min(k) = floor(k·T / θ_max)``."""
        k = check_integer(k, "k", minimum=0)
        return math.floor(k * self.period / self.theta_max)

    def curves(self, k_max: int = 64) -> WorkloadCurvePair:
        """Upper/lower workload curves per the paper's closed form:

        .. math::

            γ^u(k) = n_{max}(k)\\,e_p + (k - n_{max}(k))\\,e_c \\\\
            γ^l(k) = n_{min}(k)\\,e_p + (k - n_{min}(k))\\,e_c
        """
        k_max = check_integer(k_max, "k_max", minimum=1)
        ks = np.arange(1, k_max + 1, dtype=np.int64)
        nmax = np.array([self.n_max(int(k)) for k in ks], dtype=float)
        nmin = np.array([self.n_min(int(k)) for k in ks], dtype=float)
        upper = nmax * self.e_p + (ks - nmax) * self.e_c
        lower = nmin * self.e_p + (ks - nmin) * self.e_c
        return WorkloadCurvePair(
            WorkloadCurve("upper", ks, upper), WorkloadCurve("lower", ks, lower)
        )

    def wcet_only_curve(self, k_max: int = 64) -> WorkloadCurve:
        """The pessimistic baseline ``γ(k) = k·e_p`` ("WCET only" line of
        Figure 2)."""
        return WorkloadCurve.from_constant("upper", self.e_p, horizon=k_max)

    def bcet_only_curve(self, k_max: int = 64) -> WorkloadCurve:
        """The optimistic baseline ``γ(k) = k·e_c`` ("BCET only" line of
        Figure 2)."""
        return WorkloadCurve.from_constant("lower", self.e_c, horizon=k_max)


def polling_task_curves(
    period: float,
    theta_min: float,
    theta_max: float,
    e_p: float,
    e_c: float,
    *,
    k_max: int = 64,
) -> WorkloadCurvePair:
    """Convenience wrapper: curves of :class:`PollingTask` in one call."""
    return PollingTask(period, theta_min, theta_max, e_p, e_c).curves(k_max)


def two_mode_curves(
    n_max: Callable[[int], int],
    n_min: Callable[[int], int],
    e_high: float,
    e_low: float,
    *,
    k_max: int = 64,
) -> WorkloadCurvePair:
    """Generic two-mode analytical construction.

    For a task whose activations come in a *heavy* mode costing *e_high*
    cycles and a *light* mode costing *e_low* cycles, with guaranteed bounds
    ``n_min(k) <= (heavy activations in any k consecutive) <= n_max(k)``,
    the workload curves are

    .. math::

        γ^u(k) = n_{max}(k)\\,e_{high} + (k - n_{max}(k))\\,e_{low} \\\\
        γ^l(k) = n_{min}(k)\\,e_{high} + (k - n_{min}(k))\\,e_{low}

    The polling task is the special case where the count bounds come from
    the sporadic stream's inter-arrival interval.

    The callables must satisfy ``0 <= n_min(k) <= n_max(k) <= k`` and be
    monotone in ``k``; violations raise :class:`ValidationError`.
    """
    check_positive(e_high, "e_high")
    check_positive(e_low, "e_low")
    if e_low > e_high:
        raise ValidationError("e_low must not exceed e_high")
    k_max = check_integer(k_max, "k_max", minimum=1)
    ks = np.arange(1, k_max + 1, dtype=np.int64)
    nmax = np.array([n_max(int(k)) for k in ks], dtype=float)
    nmin = np.array([n_min(int(k)) for k in ks], dtype=float)
    if np.any(nmin < 0) or np.any(nmax > ks) or np.any(nmin > nmax):
        raise ValidationError("count bounds must satisfy 0 <= n_min(k) <= n_max(k) <= k")
    if np.any(np.diff(nmax) < 0) or np.any(np.diff(nmin) < 0):
        raise ValidationError("count bounds must be monotone in k")
    upper = nmax * e_high + (ks - nmax) * e_low
    lower = nmin * e_high + (ks - nmin) * e_low
    return WorkloadCurvePair(
        WorkloadCurve("upper", ks, upper), WorkloadCurve("lower", ks, lower)
    )


def periodic_event_count_bounds(
    task_period: float, theta_min: float, theta_max: float
) -> tuple[Callable[[int], int], Callable[[int], int]]:
    """Count bounds ``(n_max, n_min)`` for a sporadic event stream observed
    by a periodic activity — the building block of Example 1, reusable for
    other two-mode tasks (e.g. an interrupt-coalescing handler)."""
    check_positive(task_period, "task_period")
    check_positive(theta_min, "theta_min")
    check_positive(theta_max, "theta_max")
    if theta_max < theta_min:
        raise ValidationError("theta_max must be >= theta_min")
    if task_period >= theta_min:
        raise ValidationError("task_period must be smaller than theta_min")

    def n_max(k: int) -> int:
        return 0 if k == 0 else min(k, 1 + math.floor(k * task_period / theta_min))

    def n_min(k: int) -> int:
        return math.floor(k * task_period / theta_max)

    return n_max, n_min
