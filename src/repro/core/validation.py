"""Structural invariant checks for workload curves.

The paper states three properties of workload curves (strict monotonicity,
pseudo-inverse Galois relations, ``γ^u(1) = WCET`` / ``γ^l(1) = BCET``); the
additive horizon extension of :class:`~repro.core.workload.WorkloadCurve`
additionally relies on sub-/super-additivity.  These diagnostics verify the
properties on concrete curves and are used by the test-suite and by
:func:`audit_pair` in integration checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.trace import EventTrace
from repro.core.workload import WorkloadCurve, WorkloadCurvePair
from repro.util.validation import ValidationError, check_integer

__all__ = [
    "CurveAudit",
    "check_subadditive",
    "check_superadditive",
    "check_pair_consistent",
    "check_bounds_trace",
    "audit_pair",
]


@dataclass
class CurveAudit:
    """Result of an invariant audit: a list of human-readable violations.

    An empty :attr:`violations` list means the audited object satisfies all
    checked invariants.
    """

    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violations were found."""
        return not self.violations

    def record(self, message: str) -> None:
        """Append a violation message."""
        self.violations.append(message)

    def raise_if_failed(self) -> None:
        """Raise :class:`ValidationError` summarizing all violations."""
        if self.violations:
            raise ValidationError("; ".join(self.violations))


def check_subadditive(
    curve: WorkloadCurve, *, k_max: int | None = None, tolerance: float = 1e-9
) -> CurveAudit:
    """Audit ``γ(a+b) <= γ(a) + γ(b)`` for all ``a + b <= k_max``.

    Sub-additivity is what makes the additive horizon extension a sound
    upper bound; trace-derived curves satisfy it by construction.
    """
    if curve.kind != "upper":
        raise ValidationError("subadditivity is an upper-curve property")
    return _additivity_audit(curve, k_max, tolerance, upper=True)


def check_superadditive(
    curve: WorkloadCurve, *, k_max: int | None = None, tolerance: float = 1e-9
) -> CurveAudit:
    """Audit ``γ(a+b) >= γ(a) + γ(b)`` for all ``a + b <= k_max``."""
    if curve.kind != "lower":
        raise ValidationError("superadditivity is a lower-curve property")
    return _additivity_audit(curve, k_max, tolerance, upper=False)


def _additivity_audit(
    curve: WorkloadCurve, k_max: int | None, tolerance: float, *, upper: bool
) -> CurveAudit:
    k_max = curve.horizon if k_max is None else check_integer(k_max, "k_max", minimum=1)
    vals = np.concatenate(([0.0], curve.to_dense(k_max).values))
    audit = CurveAudit()
    for k in range(2, k_max + 1):
        splits = vals[1:k] + vals[k - 1 : 0 : -1]
        if upper:
            worst = splits.min()
            if vals[k] > worst + tolerance:
                audit.record(
                    f"gamma({k})={vals[k]:g} exceeds best split {worst:g} "
                    "(not sub-additive)"
                )
        else:
            worst = splits.max()
            if vals[k] < worst - tolerance:
                audit.record(
                    f"gamma({k})={vals[k]:g} below best split {worst:g} "
                    "(not super-additive)"
                )
    return audit


def check_pair_consistent(
    pair: WorkloadCurvePair, *, k_max: int | None = None, tolerance: float = 1e-9
) -> CurveAudit:
    """Audit ``γ^l <= γ^u`` and strict monotonicity of both curves."""
    audit = CurveAudit()
    k_max = (
        min(pair.upper.horizon, pair.lower.horizon)
        if k_max is None
        else check_integer(k_max, "k_max", minimum=1)
    )
    ks = np.arange(1, k_max + 1, dtype=np.int64)
    up = pair.upper(ks)
    lo = pair.lower(ks)
    bad = np.nonzero(lo > up + tolerance)[0]
    for i in bad[:5]:
        audit.record(f"lower({ks[i]})={lo[i]:g} exceeds upper({ks[i]})={up[i]:g}")
    # strict monotonicity holds at the curves' own (exact) grid samples;
    # between grid points the conservative rounding rule may plateau
    for curve, label in ((pair.upper, "upper"), (pair.lower, "lower")):
        stored = np.concatenate(([0.0], curve.values))
        if np.any(np.diff(stored) <= 0):
            audit.record(f"{label} curve is not strictly increasing on its grid")
    return audit


def check_bounds_trace(
    pair: WorkloadCurvePair,
    trace: EventTrace,
    *,
    demands: str = "auto",
    tolerance: float = 1e-9,
) -> CurveAudit:
    """Audit that *pair* really bounds every window of *trace*.

    For every window length ``k`` up to the trace length (or the pair's
    horizon, whichever is smaller) and every offset, the windowed demand must
    lie within ``[γ^l(k), γ^u(k)]``.  This is the ground-truth check used to
    validate both trace extraction and analytical constructions against
    simulated traces.
    """
    if demands == "auto":
        demands = "measured" if trace.has_measured_demands else "interval"
    if demands == "measured":
        per_event_hi = per_event_lo = trace.measured_demands()
    elif demands == "interval":
        per_event_hi = trace.worst_case_demands()
        per_event_lo = trace.best_case_demands()
    else:
        raise ValidationError(f"unknown demands mode {demands!r}")
    n = len(trace)
    k_max = min(n, pair.upper.horizon, pair.lower.horizon)
    csum_hi = np.concatenate(([0.0], np.cumsum(per_event_hi)))
    csum_lo = np.concatenate(([0.0], np.cumsum(per_event_lo)))
    audit = CurveAudit()
    for k in range(1, k_max + 1):
        win_hi = np.max(csum_hi[k:] - csum_hi[:-k])
        win_lo = np.min(csum_lo[k:] - csum_lo[:-k])
        if win_hi > float(pair.upper(k)) + tolerance:
            audit.record(f"window demand {win_hi:g} at k={k} exceeds upper bound")
        if win_lo < float(pair.lower(k)) - tolerance:
            audit.record(f"window demand {win_lo:g} at k={k} below lower bound")
        if len(audit.violations) >= 10:
            audit.record("... (further violations suppressed)")
            break
    return audit


def audit_pair(pair: WorkloadCurvePair, *, k_max: int | None = None) -> CurveAudit:
    """Full structural audit: pair consistency plus sub-/super-additivity."""
    audit = check_pair_consistent(pair, k_max=k_max)
    audit.violations.extend(check_subadditive(pair.upper, k_max=k_max).violations)
    audit.violations.extend(check_superadditive(pair.lower, k_max=k_max).violations)
    return audit
