"""Workload curves ``γ^u(k)`` / ``γ^l(k)`` (paper, Definition 1).

An *upper workload curve* ``γ^u(k)`` bounds from above — and a *lower
workload curve* ``γ^l(k)`` from below — the number of processor cycles needed
to process **any** ``k`` consecutive activations of a task:

.. math::

    γ^u(k) = \\max_{j}\\; γ_w(j, k), \\qquad
    γ^l(k) = \\min_{j}\\; γ_b(j, k)

The curves are strictly increasing, ``γ(0) = 0``, and admit pseudo-inverses

.. math::

    γ^{u-1}(e) = \\max\\{k : γ^u(k) \\le e\\}, \\qquad
    γ^{l-1}(e) = \\min\\{k : γ^l(k) \\ge e\\}

used to convert cycle-based service curves into event-based ones (paper
eq. (7)).  Note the paper's §2.1 property list swaps WCET/BCET in one
sentence; the correct identities, implemented and tested here, are
``wcet = γ^u(1)`` and ``bcet = γ^l(1)``.

Representation
--------------
A curve is stored as samples on a strictly-increasing integer grid
``k_1 < k_2 < ... < K`` (``γ(0) = 0`` is implicit).  Between grid points the
curve is evaluated *conservatively*: an upper curve returns the value at the
next grid point ≥ k, a lower curve the value at the last grid point ≤ k, so a
sparsely-sampled curve is always a valid (if slightly looser) bound.
Beyond the horizon ``K`` the curve is extended additively:

.. math::

    γ^u(qK + r) = q\\,γ^u(K) + γ^u(r), \\qquad
    γ^l(qK + r) = q\\,γ^l(K) + γ^l(r)

which is a correct bound whenever the curve is sub-additive (upper) or
super-additive (lower) — true by construction for envelopes extracted from
traces, and checked (optionally) for user-supplied curves by
:func:`repro.core.validation.check_subadditive`.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from repro.core.trace import EventTrace
from repro.obs.tracing import tracer
from repro.util.staircase import (
    cumulative_envelope_max,
    cumulative_envelope_min,
    make_k_grid,
    streaming_envelope_minmax,
)
from repro.util.validation import (
    ValidationError,
    check_integer,
    check_positive,
)

__all__ = ["WorkloadCurve", "WorkloadCurvePair"]

Kind = Literal["upper", "lower"]


class WorkloadCurve:
    """A single workload curve (upper or lower) on the integer domain.

    Parameters
    ----------
    kind:
        ``"upper"`` for ``γ^u`` or ``"lower"`` for ``γ^l``.
    k_values:
        Strictly increasing positive integers — the sample grid.  ``k = 0``
        (value 0) is implicit and must not be included.
    values:
        Curve samples at *k_values*; must be positive and strictly
        increasing (each activation demands > 0 cycles).
    """

    def __init__(self, kind: Kind, k_values: Sequence[int], values: Sequence[float]):
        if kind not in ("upper", "lower"):
            raise ValidationError(f"kind must be 'upper' or 'lower', got {kind!r}")
        ks = np.asarray(k_values, dtype=np.int64)
        vs = np.asarray(values, dtype=float)
        if ks.ndim != 1 or vs.ndim != 1 or ks.size != vs.size or ks.size == 0:
            raise ValidationError("k_values and values must be equal-length 1-D sequences")
        if ks[0] < 1 or np.any(np.diff(ks) <= 0):
            raise ValidationError("k_values must be strictly increasing integers >= 1")
        if not np.all(np.isfinite(vs)):
            raise ValidationError("values must be finite")
        # exact trace-derived curves are strictly increasing (each activation
        # demands > 0 cycles), but curves resampled through the conservative
        # grid rule legitimately carry plateaus — require non-decreasing here
        # and leave strictness to the audits in repro.core.validation
        if vs[0] <= 0 or np.any(np.diff(vs) < 0):
            raise ValidationError(
                "values must be positive and non-decreasing"
            )
        self._kind: Kind = kind
        self._ks = ks
        self._vs = vs
        self._digest: bytes | None = None

    # -- constructors --------------------------------------------------------------
    @classmethod
    def from_trace(
        cls,
        trace: EventTrace,
        kind: Kind,
        *,
        demands: Literal["auto", "measured", "interval"] = "auto",
        k_values: Sequence[int] | None = None,
    ) -> "WorkloadCurve":
        """Extract a workload curve from a trace (paper §2.1, trace mode).

        ``demands`` selects the per-event demand vector:

        * ``"interval"`` — the definitional per-type WCET (upper) / BCET
          (lower) sums ``γ_w`` / ``γ_b``; needs an execution profile.
        * ``"measured"`` — observed per-event demands; the resulting curve is
          guaranteed for this trace (class) only, exactly the caveat the
          paper states for simulation-derived curves.
        * ``"auto"`` — measured if every event carries a demand, else
          interval.

        *k_values* defaults to :func:`repro.util.staircase.make_k_grid`
        (dense prefix + geometric tail for long traces).
        """
        if demands == "auto":
            demands = "measured" if trace.has_measured_demands else "interval"
        if demands == "measured":
            per_event = trace.measured_demands()
        elif demands == "interval":
            per_event = (
                trace.worst_case_demands() if kind == "upper" else trace.best_case_demands()
            )
        else:
            raise ValidationError(f"unknown demands mode {demands!r}")
        ks = make_k_grid(len(trace)) if k_values is None else np.asarray(k_values, np.int64)
        with tracer.span(
            "workload.extract", source="trace", kind=kind,
            events=int(per_event.size), grid=int(ks.size),
        ):
            if kind == "upper":
                vs = cumulative_envelope_max(per_event, ks)
            else:
                vs = cumulative_envelope_min(per_event, ks)
        return cls(kind, ks, vs)

    @classmethod
    def from_demand_array(
        cls,
        demands: Sequence[float],
        kind: Kind,
        *,
        k_values: Sequence[int] | None = None,
    ) -> "WorkloadCurve":
        """Extract a workload curve directly from a per-event demand array.

        Fast path equivalent to :meth:`from_trace` with measured demands but
        without materializing :class:`~repro.core.trace.EventTrace` objects —
        used for long simulation traces (the MPEG-2 case study generates
        tens of thousands of macroblocks per clip).
        """
        per_event = np.asarray(demands, dtype=float)
        if per_event.ndim != 1 or per_event.size == 0:
            raise ValidationError("demands must be a non-empty 1-D sequence")
        if np.any(per_event <= 0) or not np.all(np.isfinite(per_event)):
            raise ValidationError("demands must be positive and finite")
        ks = make_k_grid(per_event.size) if k_values is None else np.asarray(k_values, np.int64)
        with tracer.span(
            "workload.extract", source="demand-array", kind=kind,
            events=int(per_event.size), grid=int(ks.size),
        ):
            if kind == "upper":
                vs = cumulative_envelope_max(per_event, ks)
            else:
                vs = cumulative_envelope_min(per_event, ks)
        return cls(kind, ks, vs)

    @classmethod
    def from_demand_stream(
        cls,
        chunks,
        kind: Kind,
        *,
        k_values: Sequence[int] | None = None,
        total: int | None = None,
    ) -> "WorkloadCurve":
        """Bounded-memory extraction from a *chunked* demand stream.

        Equivalent to :meth:`from_demand_array` on the concatenated chunks
        — bit-identical values, verified by the differential suite — but
        folded through :func:`repro.util.staircase
        .streaming_envelope_minmax`, so only one chunk plus a trailing
        ``k_max`` window of prefix sums is ever resident.  This is the
        extraction path for multi-million-event traces that should not be
        materialized.

        One of *k_values* (an explicit window grid) or *total* (the known
        stream length, from which the default
        :func:`~repro.util.staircase.make_k_grid` is built) is required,
        since the stream's length is unknown until it has been consumed.
        """
        ks, lo, hi = _stream_envelopes(chunks, kind, k_values, total)
        return cls(kind, ks, hi if kind == "upper" else lo)

    @classmethod
    def from_constant(cls, kind: Kind, per_event_demand: float, *, horizon: int = 64) -> "WorkloadCurve":
        """The classical single-value characterization ``γ(k) = w·k``.

        With ``kind="upper"`` and ``per_event_demand = WCET`` this is exactly
        the baseline the paper compares against (the "WCET only" line of
        Figures 2 and 6); the additive extension makes it exact for all k.
        """
        w = check_positive(per_event_demand, "per_event_demand")
        horizon = check_integer(horizon, "horizon", minimum=1)
        ks = np.arange(1, horizon + 1, dtype=np.int64)
        return cls(kind, ks, w * ks)

    # -- properties -----------------------------------------------------------------
    @property
    def kind(self) -> Kind:
        """``"upper"`` or ``"lower"``."""
        return self._kind

    @property
    def horizon(self) -> int:
        """Largest grid point ``K``; beyond it the additive extension applies."""
        return int(self._ks[-1])

    @property
    def k_values(self) -> np.ndarray:
        """Copy of the sample grid."""
        return self._ks.copy()

    @property
    def values(self) -> np.ndarray:
        """Copy of the curve samples."""
        return self._vs.copy()

    @property
    def per_activation_bound(self) -> float:
        """``γ^u(1)`` (= WCET) for an upper curve, ``γ^l(1)`` (= BCET) for a
        lower curve.  Exact only if ``k = 1`` is on the grid; otherwise the
        conservative grid rule applies."""
        return float(self(1))

    @property
    def long_run_rate(self) -> float:
        """Average cycles per activation over the horizon, ``γ(K)/K`` — the
        asymptotic slope of the additive extension."""
        return float(self._vs[-1]) / float(self._ks[-1])

    # -- evaluation -----------------------------------------------------------------
    def __call__(self, k):
        """Evaluate the curve at integer ``k`` (scalar or array-like).

        ``γ(0) = 0``; negative ``k`` raises.  Non-grid points use the
        conservative rounding rule; points beyond the horizon use the
        additive extension.
        """
        arr = np.asarray(k)
        if not np.issubdtype(arr.dtype, np.number):
            raise ValidationError("k must be numeric")
        if np.any(arr < 0):
            raise ValidationError("k must be >= 0")
        if not np.all(arr == np.floor(arr)):
            raise ValidationError("k must be integral")
        kk = arr.astype(np.int64)
        scalar = kk.ndim == 0
        kk = np.atleast_1d(kk)
        out = np.empty(kk.shape, dtype=float)
        K = self.horizon
        vK = float(self._vs[-1])
        inside = kk <= K
        out[inside] = self._eval_within(kk[inside])
        beyond = ~inside
        if np.any(beyond):
            q, r = np.divmod(kk[beyond], K)
            out[beyond] = q * vK + self._eval_within(r)
        return float(out[0]) if scalar else out

    def _eval_within(self, kk: np.ndarray) -> np.ndarray:
        """Evaluate at 0 <= kk <= horizon with the conservative grid rule."""
        out = np.zeros(kk.shape, dtype=float)
        pos = kk > 0
        if not np.any(pos):
            return out
        kp = kk[pos]
        if self._kind == "upper":
            idx = np.searchsorted(self._ks, kp, side="left")  # next grid pt >= k
            out[pos] = self._vs[idx]
        else:
            idx = np.searchsorted(self._ks, kp, side="right") - 1  # last grid pt <= k
            vals = np.where(idx >= 0, self._vs[np.maximum(idx, 0)], 0.0)
            out[pos] = vals
        return out

    def pseudo_inverse(self, e):
        """Pseudo-inverse (paper §2.1).

        Upper: ``γ^{u-1}(e) = max{k : γ^u(k) ≤ e}`` — the largest number of
        events guaranteed to be fully processable with ``e`` cycles.
        Lower: ``γ^{l-1}(e) = min{k : γ^l(k) ≥ e}`` — the smallest number of
        events that may be needed to consume ``e`` cycles.

        Accepts scalars or arrays of non-negative cycle budgets; returns
        integers (``int`` for scalar input).
        """
        arr = np.asarray(e, dtype=float)
        if np.any(arr < 0):
            raise ValidationError("e must be >= 0")
        scalar = arr.ndim == 0
        ee = np.atleast_1d(arr)
        from repro.perf.cache import digest_of, kernel_cache

        key = ("workload.pseudo_inverse", self.content_digest(), digest_of(ee))
        out = kernel_cache.get_or_compute(
            key,
            lambda: self._inverse_upper(ee) if self._kind == "upper" else self._inverse_lower(ee),
            copy=True,
        )
        return int(out[0]) if scalar else out

    def _inverse_upper(self, ee: np.ndarray) -> np.ndarray:
        K = self.horizon
        vK = float(self._vs[-1])
        q = np.floor_divide(ee, vK).astype(np.int64)
        rem = ee - q * vK
        # max{r in [0, K): γ(r) <= rem}; γ grid values are strictly increasing
        idx = np.searchsorted(self._vs, rem, side="right")  # number of grid pts <= rem
        r = np.where(idx > 0, self._ks[np.maximum(idx - 1, 0)], 0)
        # conservative grid rule: between grid points the upper curve takes
        # the value of the NEXT grid point, so the largest feasible k is the
        # grid point itself — r as computed is correct for sparse grids too.
        return q * K + r

    def _inverse_lower(self, ee: np.ndarray) -> np.ndarray:
        K = self.horizon
        vK = float(self._vs[-1])
        out = np.empty(ee.shape, dtype=np.int64)
        zero = ee <= 0
        out[zero] = 0
        rest = ~zero
        if np.any(rest):
            er = ee[rest]
            q = np.floor_divide(er, vK).astype(np.int64)
            rem = er - q * vK
            # handle exact multiples: γ^l(qK) = q·vK >= e already
            exact = rem <= 0
            idx = np.searchsorted(self._vs, rem, side="left")  # first grid val >= rem
            idx = np.minimum(idx, self._ks.size - 1)
            r = self._ks[idx]
            # conservative grid rule: between grid points the lower curve
            # takes the PREVIOUS grid value, so the first k with γ^l(k) >= rem
            # is the next grid point — r as computed.
            res = q * K + np.where(exact, 0, r)
            out[rest] = res
        return out

    # -- algebra -----------------------------------------------------------------------
    def scale(self, factor: float) -> "WorkloadCurve":
        """Curve with all demands multiplied by *factor* > 0 (e.g. modelling
        a change in per-event instruction cost)."""
        check_positive(factor, "factor")
        return WorkloadCurve(self._kind, self._ks, self._vs * factor)

    def max_with(self, other: "WorkloadCurve") -> "WorkloadCurve":
        """Pointwise maximum with *other* (same kind required).

        For upper curves this is the envelope over several traces — exactly
        how the paper combines the 14 video clips ("taking maximum over all
        respective curves of individual video clips").
        """
        return self._combine(other, np.maximum)

    def min_with(self, other: "WorkloadCurve") -> "WorkloadCurve":
        """Pointwise minimum with *other* (same kind required) — the lower-
        curve analogue of :meth:`max_with`."""
        return self._combine(other, np.minimum)

    def add(self, other: "WorkloadCurve") -> "WorkloadCurve":
        """Pointwise sum (same kind): conservative bound for a task whose
        every activation triggers both component demands."""
        return self._combine(other, np.add)

    def _combine(self, other: "WorkloadCurve", op) -> "WorkloadCurve":
        if not isinstance(other, WorkloadCurve):
            raise ValidationError("operand must be a WorkloadCurve")
        if other._kind != self._kind:
            raise ValidationError(
                f"cannot combine {self._kind} curve with {other._kind} curve"
            )
        from repro.perf.cache import kernel_cache

        key = (
            "workload.combine",
            op.__name__,
            self.content_digest(),
            other.content_digest(),
        )
        return kernel_cache.get_or_compute(key, lambda: self._combine_impl(other, op))

    def _combine_impl(self, other: "WorkloadCurve", op) -> "WorkloadCurve":
        ks = np.union1d(self._ks, other._ks)
        vs = op(self(ks), other(ks))
        return WorkloadCurve(self._kind, ks, vs)

    def to_dense(self, k_max: int | None = None) -> "WorkloadCurve":
        """Curve resampled on the dense grid ``1..k_max`` (default: horizon).

        Useful before plotting or equality comparisons; evaluation uses the
        conservative grid rule, so the dense curve bounds the sparse one.
        """
        k_max = self.horizon if k_max is None else check_integer(k_max, "k_max", minimum=1)
        ks = np.arange(1, k_max + 1, dtype=np.int64)
        return WorkloadCurve(self._kind, ks, self(ks))

    # -- comparison ----------------------------------------------------------------------
    def dominates(self, other: "WorkloadCurve", *, k_max: int | None = None) -> bool:
        """True if this curve is everywhere >= *other* on ``1..k_max``
        (default: the smaller horizon).  Used e.g. to verify
        ``γ^u(k) <= k·WCET`` (paper eq. (5) precondition)."""
        if k_max is None:
            k_max = min(self.horizon, other.horizon)
        ks = np.arange(1, k_max + 1, dtype=np.int64)
        return bool(np.all(self(ks) >= other(ks) - 1e-9))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkloadCurve):
            return NotImplemented
        return (
            self._kind == other._kind
            and np.array_equal(self._ks, other._ks)
            and np.allclose(self._vs, other._vs)
        )

    def __hash__(self) -> int:
        """Hash consistent with :meth:`__eq__`.

        Equal curves must agree exactly on ``kind`` and the integer sample
        grid (``array_equal``), so those are safe hash inputs; the values
        are only ``allclose``-compared and therefore excluded.  Exact cache
        keys use :meth:`content_digest` instead.
        """
        return hash(("WorkloadCurve", self._kind, self._ks.tobytes()))

    def content_digest(self) -> bytes:
        """Exact content digest of kind/grid/values (cache key; bit-exact)."""
        if self._digest is None:
            from repro.perf.cache import digest_of

            self._digest = digest_of(b"workload", self._kind, self._ks, self._vs)
        return self._digest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkloadCurve(kind={self._kind!r}, horizon={self.horizon}, "
            f"gamma(1)={self.per_activation_bound:g}, rate={self.long_run_rate:g})"
        )


def _stream_envelopes(
    chunks, kind: str, k_values: Sequence[int] | None, total: int | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Resolve the grid, validate the chunks lazily, and fold the stream.

    Returns ``(k_grid, min_envelope, max_envelope)``.  Demand validation
    (positive, finite) happens chunk-by-chunk inside the fold so the
    stream is still consumed exactly once and never materialized.
    """
    if k_values is None:
        if total is None:
            raise ValidationError(
                "streaming extraction needs k_values or total to size the grid"
            )
        ks = make_k_grid(check_integer(total, "total", minimum=1))
    else:
        ks = np.asarray(k_values, dtype=np.int64)

    def validated(stream):
        for chunk in stream:
            arr = np.asarray(chunk, dtype=float)
            if arr.ndim != 1:
                raise ValidationError("stream chunks must be 1-D sequences")
            if arr.size and (np.any(arr <= 0) or not np.all(np.isfinite(arr))):
                raise ValidationError("demands must be positive and finite")
            yield arr

    with tracer.span(
        "workload.extract", source="demand-stream", kind=kind, grid=int(ks.size)
    ):
        lo, hi = streaming_envelope_minmax(validated(chunks), ks, total=total)
    return ks, lo, hi


class WorkloadCurvePair:
    """An upper and a lower workload curve of the same task, kept consistent.

    Guarantees ``γ^l(k) <= γ^u(k)`` on the common grid at construction.
    Provides the task-level identities ``wcet = γ^u(1)``, ``bcet = γ^l(1)``.
    """

    def __init__(self, upper: WorkloadCurve, lower: WorkloadCurve):
        if upper.kind != "upper" or lower.kind != "lower":
            raise ValidationError("pair needs an upper curve and a lower curve")
        k_max = min(upper.horizon, lower.horizon)
        ks = np.arange(1, k_max + 1, dtype=np.int64)
        if np.any(lower(ks) > upper(ks) + 1e-9):
            raise ValidationError("lower curve exceeds upper curve")
        self.upper = upper
        self.lower = lower

    @classmethod
    def from_trace(
        cls,
        trace: EventTrace,
        *,
        demands: Literal["auto", "measured", "interval"] = "auto",
        k_values: Sequence[int] | None = None,
    ) -> "WorkloadCurvePair":
        """Extract both curves from one trace (see
        :meth:`WorkloadCurve.from_trace`)."""
        return cls(
            WorkloadCurve.from_trace(trace, "upper", demands=demands, k_values=k_values),
            WorkloadCurve.from_trace(trace, "lower", demands=demands, k_values=k_values),
        )

    @classmethod
    def from_demand_array(
        cls, demands: Sequence[float], *, k_values: Sequence[int] | None = None
    ) -> "WorkloadCurvePair":
        """Fast path of :meth:`from_trace` for a raw per-event demand array
        (see :meth:`WorkloadCurve.from_demand_array`)."""
        return cls(
            WorkloadCurve.from_demand_array(demands, "upper", k_values=k_values),
            WorkloadCurve.from_demand_array(demands, "lower", k_values=k_values),
        )

    @classmethod
    def from_demand_stream(
        cls,
        chunks,
        *,
        k_values: Sequence[int] | None = None,
        total: int | None = None,
    ) -> "WorkloadCurvePair":
        """Both curves from one bounded-memory pass over a chunked stream
        (see :meth:`WorkloadCurve.from_demand_stream`); the min and max
        envelopes are folded simultaneously, so the pair costs a single
        consumption of the stream."""
        ks, lo, hi = _stream_envelopes(chunks, "pair", k_values, total)
        return cls(WorkloadCurve("upper", ks, hi), WorkloadCurve("lower", ks, lo))

    @property
    def wcet(self) -> float:
        """Worst-case execution time of a single activation, ``γ^u(1)``."""
        return float(self.upper(1))

    @property
    def bcet(self) -> float:
        """Best-case execution time of a single activation, ``γ^l(1)``."""
        return float(self.lower(1))

    def merge(self, other: "WorkloadCurvePair") -> "WorkloadCurvePair":
        """Envelope over two trace-derived pairs: pointwise max of uppers,
        pointwise min of lowers (the multi-clip combination of Figure 6)."""
        return WorkloadCurvePair(
            self.upper.max_with(other.upper), self.lower.min_with(other.lower)
        )

    def gain_over_wcet(self, k: int) -> float:
        """Relative tightening at *k*: ``1 - γ^u(k) / (k·wcet)`` — the grey
        area of Figure 2 expressed as a fraction."""
        k = check_integer(k, "k", minimum=1)
        return 1.0 - float(self.upper(k)) / (k * self.wcet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkloadCurvePair(wcet={self.wcet:g}, bcet={self.bcet:g})"
