"""The paper's primary contribution: workload curves and their algebra.

Public API
----------
* :class:`~repro.core.events.ExecutionInterval`,
  :class:`~repro.core.events.ExecutionProfile`,
  :class:`~repro.core.events.Event` — typed events with per-type
  ``[bcet, wcet]`` intervals (§2.1 preliminaries).
* :class:`~repro.core.trace.EventTrace` — finite event sequences and the
  partial-demand sums ``γ_b(j,k)`` / ``γ_w(j,k)`` (Figure 1).
* :class:`~repro.core.workload.WorkloadCurve`,
  :class:`~repro.core.workload.WorkloadCurvePair` — Definition 1 curves with
  pseudo-inverses, trace extraction and algebra.
* :mod:`~repro.core.analytical` — closed-form constructions (§2.2
  Example 1: the polling task).
* :mod:`~repro.core.operations` — closures and multi-trace envelopes.
* :mod:`~repro.core.validation` — invariant audits.
"""

from repro.core.events import Event, ExecutionInterval, ExecutionProfile
from repro.core.trace import EventTrace
from repro.core.workload import WorkloadCurve, WorkloadCurvePair
from repro.core.analytical import (
    PollingTask,
    polling_task_curves,
    two_mode_curves,
    periodic_event_count_bounds,
)
from repro.core.operations import (
    subadditive_closure,
    superadditive_closure,
    envelope_upper,
    envelope_lower,
    merge_pairs,
    concavify_upper,
)
from repro.core.metrics import (
    gain_profile,
    average_gain,
    variability_ratio,
    curve_distance,
)
from repro.core.modes import ModeSpec, multi_mode_curves
from repro.core.serialization import (
    curve_to_dict,
    curve_from_dict,
    pair_to_dict,
    pair_from_dict,
    profile_to_dict,
    profile_from_dict,
    save_pair,
    load_pair,
)
from repro.core.validation import (
    CurveAudit,
    check_subadditive,
    check_superadditive,
    check_pair_consistent,
    check_bounds_trace,
    audit_pair,
)

__all__ = [
    "Event",
    "ExecutionInterval",
    "ExecutionProfile",
    "EventTrace",
    "WorkloadCurve",
    "WorkloadCurvePair",
    "PollingTask",
    "polling_task_curves",
    "two_mode_curves",
    "periodic_event_count_bounds",
    "gain_profile",
    "average_gain",
    "variability_ratio",
    "curve_distance",
    "ModeSpec",
    "multi_mode_curves",
    "curve_to_dict",
    "curve_from_dict",
    "pair_to_dict",
    "pair_from_dict",
    "profile_to_dict",
    "profile_from_dict",
    "save_pair",
    "load_pair",
    "subadditive_closure",
    "superadditive_closure",
    "envelope_upper",
    "envelope_lower",
    "merge_pairs",
    "concavify_upper",
    "CurveAudit",
    "check_subadditive",
    "check_superadditive",
    "check_pair_consistent",
    "check_bounds_trace",
    "audit_pair",
]
