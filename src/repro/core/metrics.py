"""Quantifying how much a workload curve buys over the WCET line.

The paper's figures show the gain as a grey area; these metrics make it a
number, so calibration scripts and reports can track tightness without
eyeballing plots:

* :func:`gain_profile` — per-``k`` relative tightening ``1 − γᵘ(k)/(k·WCET)``;
* :func:`average_gain` — the normalized grey area up to a horizon;
* :func:`variability_ratio` — ``WCET / (γᵘ(K)/K)``, the paper's implicit
  "how rare is the worst case" statistic;
* :func:`curve_distance` — maximum relative gap between two upper curves
  (e.g. a sparse re-sampling against its dense original).
"""

from __future__ import annotations

import numpy as np

from repro.core.workload import WorkloadCurve, WorkloadCurvePair
from repro.util.validation import ValidationError, check_integer

__all__ = ["gain_profile", "average_gain", "variability_ratio", "curve_distance"]


def gain_profile(pair: WorkloadCurvePair, *, k_max: int | None = None) -> np.ndarray:
    """``1 − γᵘ(k)/(k·WCET)`` for ``k = 1..k_max`` (default: upper horizon).

    Entry 0 (k = 1) is always 0; the profile is the paper's grey area as a
    function of the window length.
    """
    k_max = pair.upper.horizon if k_max is None else check_integer(k_max, "k_max", minimum=1)
    ks = np.arange(1, k_max + 1, dtype=np.int64)
    return 1.0 - pair.upper(ks) / (ks * pair.wcet)


def average_gain(pair: WorkloadCurvePair, *, k_max: int | None = None) -> float:
    """Mean of :func:`gain_profile` — the normalized grey area.

    0 means the curve is the WCET line (no variability information);
    values approaching ``1 − BCET/WCET`` mean near-total tightening.
    """
    return float(np.mean(gain_profile(pair, k_max=k_max)))


def variability_ratio(curve: WorkloadCurve) -> float:
    """``γᵘ(1) / (γᵘ(K)/K)`` — how far the single-activation worst case
    sits above the sustained worst-case rate.  The paper's case study
    exhibits ≈ 2.3; a constant-demand task gives exactly 1."""
    if curve.kind != "upper":
        raise ValidationError("variability ratio is an upper-curve statistic")
    return curve.per_activation_bound / curve.long_run_rate


def curve_distance(a: WorkloadCurve, b: WorkloadCurve, *, k_max: int | None = None) -> float:
    """Maximum relative pointwise gap ``max_k |a(k) − b(k)| / b(k)`` on
    ``1..k_max`` (default: smaller horizon).  Useful to bound the looseness
    a sparse sampling grid introduced."""
    if a.kind != b.kind:
        raise ValidationError("curves must have the same kind")
    if k_max is None:
        k_max = min(a.horizon, b.horizon)
    else:
        k_max = check_integer(k_max, "k_max", minimum=1)
    ks = np.arange(1, k_max + 1, dtype=np.int64)
    va = a(ks)
    vb = b(ks)
    return float(np.max(np.abs(va - vb) / vb))
