"""repro.reference — definitional brute-force implementations.

Deliberately naive O(n·k) / O(n²) versions of the hot kernels, written
straight from the paper's definitions with plain Python loops and no
shared code with the fast paths.  They exist solely as oracles: the
differential test suite (``tests/reference/``) checks the memoized /
vectorized kernels in :mod:`repro.curves.minplus`,
:mod:`repro.util.staircase`, and :mod:`repro.core.workload` against these
on hundreds of randomized and degenerate inputs, with the kernel cache
both on and off.

Never call these from production code paths.
"""

from repro.reference.envelope import (
    pseudo_inverse_brute,
    window_sums_brute,
    workload_eval_brute,
    workload_values_brute,
)
from repro.reference.minplus import (
    convolve_at_brute,
    deconvolve_at_brute,
    eval_pwl_brute,
    is_concave_brute,
    is_convex_brute,
)

__all__ = [
    "convolve_at_brute",
    "deconvolve_at_brute",
    "eval_pwl_brute",
    "is_convex_brute",
    "is_concave_brute",
    "window_sums_brute",
    "workload_values_brute",
    "workload_eval_brute",
    "pseudo_inverse_brute",
]
