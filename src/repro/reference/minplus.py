"""Brute-force min-plus operators (oracle only; see package docstring).

``(f ⊗ g)(Δ) = inf_{0<=s<=Δ} f(s) + g(Δ−s)`` and
``(f ⊘ g)(Δ) = sup_{u>=0} f(Δ+u) − g(u)`` evaluated by exhaustive
candidate enumeration: every breakpoint configuration, explicit left-limit
probes at the jumps, plus a dense uniform grid as a safety net.  Pure
Python loops over Python floats — no vectorization, no caching, no code
shared with :mod:`repro.curves.minplus`.
"""

from __future__ import annotations

from repro.curves.curve import PiecewiseLinearCurve

__all__ = [
    "eval_pwl_brute",
    "convolve_at_brute",
    "deconvolve_at_brute",
    "is_convex_brute",
    "is_concave_brute",
]

#: Uniform safety-net samples added to the candidate sets.
DENSE_SAMPLES = 257


def eval_pwl_brute(curve: PiecewiseLinearCurve, delta: float) -> float:
    """Right-continuous PWL evaluation by linear segment scan."""
    xs = [float(v) for v in curve.breakpoints]
    ys = [float(v) for v in curve.values_at_breakpoints]
    ss = [float(v) for v in curve.slopes]
    i = 0
    for j in range(len(xs)):
        if xs[j] <= delta:
            i = j
        else:
            break
    return ys[i] + ss[i] * (delta - xs[i])


def _eval0(curve: PiecewiseLinearCurve, x: float) -> float:
    """Evaluation under the min-plus ``f(0) = 0`` convention."""
    return 0.0 if x == 0.0 else eval_pwl_brute(curve, x)


def _left_limit(curve: PiecewiseLinearCurve, x: float) -> float:
    """Left limit ``f(x⁻)`` by segment scan (equals f(x) off the jumps)."""
    if x == 0.0:
        return float(curve.values_at_breakpoints[0])
    xs = [float(v) for v in curve.breakpoints]
    ys = [float(v) for v in curve.values_at_breakpoints]
    ss = [float(v) for v in curve.slopes]
    i = 0
    for j in range(len(xs)):
        if xs[j] < x:
            i = j
        else:
            break
    return ys[i] + ss[i] * (x - xs[i])


def _chord_points(curve: PiecewiseLinearCurve, *, include_zero: bool) -> list[float]:
    """Sorted sample abscissae: breakpoints plus a dense uniform grid out to
    past the last breakpoint (both curve pieces beyond it are affine).

    Near-duplicate points are merged: a dense sample landing within an ulp
    of a breakpoint would otherwise create a degenerate chord whose slope
    is numerical garbage (0/ulp), falsely breaking chord monotonicity.
    """
    points = {float(x) for x in curve.breakpoints}
    horizon = 2.0 * max(points) + 1.0
    for i in range(DENSE_SAMPLES):
        points.add(horizon * i / (DENSE_SAMPLES - 1))
    if not include_zero:
        points.discard(0.0)
    deduped: list[float] = []
    for p in sorted(points):
        if deduped and p - deduped[-1] <= 1e-12 * max(1.0, abs(p)):
            continue
        deduped.append(p)
    return deduped


def _jumps_on(curve: PiecewiseLinearCurve, *, interior_only: bool) -> bool:
    """True if the curve jumps at any breakpoint (optionally ignoring 0)."""
    for x in curve.breakpoints:
        x = float(x)
        if interior_only and x == 0.0:
            continue
        value = eval_pwl_brute(curve, x)
        left = float(curve.values_at_breakpoints[0]) if x == 0.0 else _left_limit(curve, x)
        if abs(value - left) > 1e-9 * max(1.0, abs(value)):
            return True
    return False


def is_convex_brute(curve: PiecewiseLinearCurve, *, tol: float = 1e-9) -> bool:
    """Definitional convexity of the effective min-plus function ``f̃``.

    ``f̃`` (which is 0 at 0) is convex iff ``f(0) = 0``, the curve never
    jumps, and the chord slopes over consecutive sample points are
    non-decreasing.  Pure Python; tolerance is relative to the local slope
    magnitude.
    """
    if abs(float(curve.values_at_breakpoints[0])) > tol:
        return False
    if _jumps_on(curve, interior_only=False):
        return False
    return _chord_slopes_monotone(curve, sign=1, tol=tol, include_zero=True)


def is_concave_brute(curve: PiecewiseLinearCurve, *, tol: float = 1e-9) -> bool:
    """Definitional concavity of the effective min-plus function ``f̃``.

    An upward jump at 0 (the burst) is allowed — ``f̃`` then is still
    star-shaped and obeys the concave closed forms; away from 0 the curve
    must be continuous with non-increasing chord slopes.
    """
    if _jumps_on(curve, interior_only=True):
        return False
    return _chord_slopes_monotone(curve, sign=-1, tol=tol, include_zero=False)


def _chord_slopes_monotone(
    curve: PiecewiseLinearCurve, *, sign: int, tol: float, include_zero: bool
) -> bool:
    points = _chord_points(curve, include_zero=include_zero)
    prev_slope = None
    for a, b in zip(points[:-1], points[1:]):
        if b - a <= 0.0:
            continue
        slope = (eval_pwl_brute(curve, b) - eval_pwl_brute(curve, a)) / (b - a)
        if prev_slope is not None:
            drift = sign * (slope - prev_slope)
            if drift < -tol * max(1.0, abs(slope), abs(prev_slope)):
                return False
        prev_slope = slope
    # the unbounded tail continues with the final slope
    tail = float(curve.slopes[-1])
    if prev_slope is not None:
        drift = sign * (tail - prev_slope)
        if drift < -tol * max(1.0, abs(tail), abs(prev_slope)):
            return False
    return True


def convolve_at_brute(
    f: PiecewiseLinearCurve, g: PiecewiseLinearCurve, delta: float
) -> float:
    """Definitional ``(f ⊗ g)(Δ)``: exhaustive minimum over split points.

    Candidates: breakpoints of ``f``, ``Δ`` minus breakpoints of ``g``
    (the optimum of a PWL inner function is attained at one of these), the
    endpoints, and a dense uniform grid.  Jumps are handled by explicitly
    evaluating the left-limit variant at every candidate — the inf may be
    approached from just below a discontinuity.
    """
    if delta < 0:
        raise ValueError("delta must be >= 0")
    # candidates as (s, Δ−s) pairs so the pinned coordinate is exact — the
    # float round-trip Δ − (Δ − x_g) can land a hair past the breakpoint
    # and miss its jump otherwise
    splits: set[tuple[float, float]] = {(0.0, float(delta)), (float(delta), 0.0)}
    for xf in f.breakpoints:
        s = float(xf)
        if 0.0 <= s <= delta:
            splits.add((s, delta - s))
    for xg in g.breakpoints:
        r = float(xg)
        if 0.0 <= delta - r <= delta:
            splits.add((delta - r, r))
    if delta > 0:
        for i in range(DENSE_SAMPLES):
            s = delta * i / (DENSE_SAMPLES - 1)
            splits.add((s, delta - s))
    best = None
    for s, rest in splits:
        # the inner objective h(s) = f(s) + g(Δ−s) is affine between
        # adjacent candidates, so the inf is the min over candidate values
        # and one-sided limits.  Only consistent limit pairs are admissible:
        # s → x⁻ pairs f's left limit with g's right limit, s → x⁺ pairs
        # f's right limit with g's left limit — never left with left.
        totals = [_eval0(f, s) + _eval0(g, rest)]
        if s > 0.0:
            totals.append(_left_limit(f, s) + eval_pwl_brute(g, rest))
        if rest > 0.0:
            totals.append(eval_pwl_brute(f, s) + _left_limit(g, rest))
        for total in totals:
            if best is None or total < best:
                best = total
    assert best is not None
    return best


def deconvolve_at_brute(
    f: PiecewiseLinearCurve, g: PiecewiseLinearCurve, delta: float
) -> float:
    """Definitional ``(f ⊘ g)(Δ)``: exhaustive supremum over lags ``u``.

    Candidates: breakpoints of ``g``, breakpoints of ``f`` shifted by
    ``−Δ``, and a dense grid out to well past the last breakpoint (beyond
    it both curves are affine, and stability ``rate(f) <= rate(g)`` makes
    the objective non-increasing, so the tail cannot hide the sup).
    """
    if delta < 0:
        raise ValueError("delta must be >= 0")
    horizon = 1.0
    for xf in f.breakpoints:
        horizon = max(horizon, float(xf))
    for xg in g.breakpoints:
        horizon = max(horizon, float(xg))
    horizon = 2.0 * horizon + delta + 1.0
    # candidates as (u, Δ+u) pairs so the pinned coordinate stays exact
    # (same float round-trip hazard as in convolve_at_brute)
    lags: set[tuple[float, float]] = {(0.0, float(delta))}
    for xg in g.breakpoints:
        u = float(xg)
        if u >= 0.0:
            lags.add((u, delta + u))
    for xf in f.breakpoints:
        t = float(xf)
        if t - delta >= 0.0:
            lags.add((t - delta, t))
    for i in range(DENSE_SAMPLES):
        u = horizon * i / (DENSE_SAMPLES - 1)
        lags.add((u, delta + u))
    best = None
    for u, t in lags:
        # the objective f(Δ+u) − g(u) is affine between adjacent candidates;
        # the sup is the max over candidate values and the one consistent
        # one-sided limit: u → x⁻ pairs f's left limit with g's left limit
        # (u → x⁺ reproduces the right-continuous values themselves)
        totals = [eval_pwl_brute(f, t) - _eval0(g, u)]
        if u > 0.0:
            totals.append(_left_limit(f, t) - _left_limit(g, u))
        for total in totals:
            if best is None or total > best:
                best = total
    assert best is not None
    return best
