"""Brute-force workload-curve kernels (oracle only; see package docstring).

Straight transliterations of the paper's Definition 1 and §2.1: window
sums by re-summation (O(n·k) per window length), the conservative grid
evaluation rule and additive extension by linear scans, and the
pseudo-inverses by exhaustive search.  Pure Python, no numpy reductions,
no code shared with :mod:`repro.util.staircase` or
:mod:`repro.core.workload`.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "window_sums_brute",
    "workload_values_brute",
    "workload_eval_brute",
    "pseudo_inverse_brute",
]


def window_sums_brute(demands: Sequence[float], k: int, kind: str) -> float:
    """``max_j Σ demands[j:j+k]`` (upper) or ``min_j`` (lower), by
    re-summing every window from scratch — the definitional O(n·k) form of
    the paper's eqs. (1)/(2)."""
    values = [float(v) for v in demands]
    n = len(values)
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}]")
    best = None
    for j in range(n - k + 1):
        total = 0.0
        for i in range(j, j + k):
            total += values[i]
        if best is None:
            best = total
        elif kind == "upper":
            best = max(best, total)
        else:
            best = min(best, total)
    assert best is not None
    return best


def workload_values_brute(
    demands: Sequence[float], k_values: Sequence[int], kind: str
) -> list[float]:
    """The per-``k`` envelope extraction behind ``WorkloadCurve.from_trace``,
    one brute-force window sweep per grid point."""
    return [window_sums_brute(demands, int(k), kind) for k in k_values]


def workload_eval_brute(
    k_values: Sequence[int], values: Sequence[float], kind: str, k: int
) -> float:
    """``γ(k)`` under the conservative grid rule and additive extension.

    Upper curves round up to the next grid point, lower curves down to the
    previous one; beyond the horizon ``K`` the additive extension
    ``γ(qK + r) = q·γ(K) + γ(r)`` applies (module docstring of
    :mod:`repro.core.workload`).  Linear scans throughout.
    """
    ks = [int(v) for v in k_values]
    vs = [float(v) for v in values]
    if k < 0:
        raise ValueError("k must be >= 0")
    if k == 0:
        return 0.0
    horizon = ks[-1]
    if k > horizon:
        q, r = divmod(k, horizon)
        return q * vs[-1] + workload_eval_brute(ks, vs, kind, r)
    if kind == "upper":
        for grid_k, grid_v in zip(ks, vs):
            if grid_k >= k:
                return grid_v
        raise AssertionError("unreachable: k <= horizon")
    best = 0.0
    for grid_k, grid_v in zip(ks, vs):
        if grid_k <= k:
            best = grid_v
        else:
            break
    return best


def pseudo_inverse_brute(
    k_values: Sequence[int], values: Sequence[float], kind: str, e: float
) -> int:
    """Paper §2.1 pseudo-inverses by exhaustive search.

    Upper: ``γ^{u-1}(e) = max{k : γ^u(k) <= e}`` — walk k upward while the
    curve stays within budget.  Lower: ``γ^{l-1}(e) = min{k : γ^l(k) >= e}``
    — walk k upward until the curve reaches the budget.  The additive
    extension makes both walks terminate.
    """
    if e < 0:
        raise ValueError("e must be >= 0")
    if kind == "upper":
        k = 0
        while workload_eval_brute(k_values, values, kind, k + 1) <= e:
            k += 1
        return k
    if e <= 0:
        return 0
    k = 1
    while workload_eval_brute(k_values, values, kind, k) < e:
        k += 1
    return k
