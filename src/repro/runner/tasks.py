"""Stock task functions for the parallel runner.

:func:`run_many`/:func:`~repro.runner.pool.sweep` ship the task function
to worker processes by pickling it *by reference*, so it must live at
module level in an importable module.  This module collects the functions
the CLI, the benchmarks, and the tests fan out:

* :func:`run_experiment_task` — execute one registered experiment by id;
* :func:`frequency_backlog_point` — one point of the paper's
  frequency/backlog design-space sweep (§3.2, eqs. (7), (9), (10)),
  harnessed like any experiment so every point carries a run manifest;
* :func:`sleep_task` / :func:`convolution_workload` — synthetic workloads
  for the runner benchmark gate and the test suite.
"""

from __future__ import annotations

import time
from typing import Any

__all__ = [
    "run_experiment_task",
    "frequency_backlog_point",
    "sleep_task",
    "convolution_workload",
]


def run_experiment_task(item: tuple[str, dict[str, Any]]):
    """Run one registered experiment: *item* is ``(experiment id, params)``.

    Returns the :class:`~repro.experiments.common.ExperimentResult`
    (manifest attached by the harness) — fully picklable, so it travels
    back to the parent unchanged.
    """
    exp_id, params = item
    from repro.experiments.common import run_experiment

    return run_experiment(exp_id, **params)


def frequency_backlog_point(
    *,
    buffer_size: int,
    frames: int = 72,
    dense_limit: int = 4096,
    growth: float = 1.015,
    stream_chunk: int | None = None,
    max_segments: int | None = None,
    compact_error: float | None = None,
    backend: str | None = None,
    bisect: bool = False,
):
    """One sweep point: both frequency bounds and the event backlog at
    ``F^γ_min`` for a given FIFO *buffer_size*.

    Builds (or reuses the worker's cached) case-study context once per
    distinct ``frames`` value — the persistent kernel cache makes the
    heavy curve extraction free for warm workers — then evaluates
    eq. (9)/(10) and the eq. (7) backlog bound at the minimum frequency.
    *stream_chunk* feeds the clip traces to the extraction in chunks of
    that many events (bounded per-worker memory, identical results).

    With the default knobs the point is computed exactly, byte-identical
    to previous releases.  *max_segments*/*compact_error* compact the
    arrival curve conservatively before analysis (see
    :mod:`repro.curves.compact`; bounds can only become more
    pessimistic), and *bisect* replaces the closed-form eq. (9) scan with
    the monotone feasibility bisection of
    :meth:`repro.analysis.frequency.FrequencySweepEvaluator.bisect`, and
    *backend* pins the min-plus kernel backend the point's curve algebra
    runs under (recorded in the manifest like every other point
    parameter; ``None`` inherits the process-wide choice).
    All three ride the worker-cached
    :func:`~repro.experiments.common.sweep_frequency_evaluator`, so the
    candidate grid and the compacted operands are shared by every point
    the worker evaluates.  Harnessed: the returned result carries a
    ``repro.run-manifest/1``.
    """
    from repro.experiments.common import (
        ExperimentResult,
        harnessed,
        sweep_frequency_evaluator,
    )

    @harnessed
    def _point(
        *,
        buffer_size: int,
        frames: int,
        dense_limit: int,
        growth: float,
        stream_chunk: int | None,
        max_segments: int | None,
        compact_error: float | None,
        backend: str | None,
        bisect: bool,
    ) -> ExperimentResult:
        """Inner harnessed run so the manifest captures the point params."""
        evaluator = sweep_frequency_evaluator(
            frames=frames,
            dense_limit=dense_limit,
            growth=growth,
            stream_chunk=stream_chunk,
            max_segments=max_segments,
            compact_error=compact_error,
            backend=backend,
        )
        if bisect:
            f_gamma = evaluator.bisect(buffer_size)
        else:
            f_gamma = evaluator.bound_curves(buffer_size)
        f_wcet = evaluator.bound_wcet(buffer_size)
        backlog_events = evaluator.backlog_events(f_gamma.frequency * (1.0 + 1e-6))
        savings = f_gamma.savings_over(f_wcet)
        report = (
            f"b = {buffer_size} macroblocks\n"
            f"F_gamma = {f_gamma.frequency / 1e6:.1f} MHz   "
            f"F_wcet = {f_wcet.frequency / 1e6:.1f} MHz   "
            f"savings = {savings * 100:.1f}%\n"
            f"event backlog at F_gamma: {backlog_events:.1f} "
            f"(cap {buffer_size})"
        )
        data = {
            "buffer_size": buffer_size,
            "f_gamma_hz": f_gamma.frequency,
            "f_wcet_hz": f_wcet.frequency,
            "savings": savings,
            "backlog_events": backlog_events,
        }
        if f_gamma.method != "workload-curves":
            data["f_gamma_method"] = f_gamma.method
        if evaluator.backend is not None:
            data["backend"] = evaluator.backend
        if evaluator.compaction is not None:
            data["compaction_abs_error"] = evaluator.compaction.max_abs_error
            data["compaction_segments"] = evaluator.compaction.output_segments
        return ExperimentResult(
            experiment_id=f"SWEEP-b{buffer_size}",
            title=f"Frequency/backlog sweep point (b={buffer_size})",
            paper_reference="Equations (7), (9), (10)",
            report=report,
            data=data,
        )

    return _point(
        buffer_size=buffer_size,
        frames=frames,
        dense_limit=dense_limit,
        growth=growth,
        stream_chunk=stream_chunk,
        max_segments=max_segments,
        compact_error=compact_error,
        backend=backend,
        bisect=bisect,
    )


def sleep_task(seconds: float) -> float:
    """Block for *seconds* and return it — a pure-latency task whose fan-out
    speedup measures pool concurrency without needing spare CPU cores."""
    time.sleep(float(seconds))
    return float(seconds)


def convolution_workload(spec: tuple[int, int]) -> float:
    """A kernel-bound task: ``spec = (variants, repeats)`` distinct
    arrival/service pairs, each convolved ``repeats`` times.

    Every distinct pair is one expensive min-plus convolution that the
    kernel cache (memory level within a process, disk level across
    processes and runs) collapses to a single computation.
    """
    from repro.curves.arrival import periodic_upper
    from repro.curves.minplus import convolve
    from repro.curves.service import rate_latency

    variants, repeats = spec
    total = 0.0
    for _ in range(int(repeats)):
        for i in range(int(variants)):
            alpha = periodic_upper(
                1.0 + 0.25 * i, jitter=0.4 * i, horizon_periods=24
            )
            beta = rate_latency(30.0 + 2.0 * i, 0.5 + 0.1 * i)
            total += convolve(alpha, beta)(5.0)
    return total
