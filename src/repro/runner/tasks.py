"""Stock task functions for the parallel runner.

:func:`run_many`/:func:`~repro.runner.pool.sweep` ship the task function
to worker processes by pickling it *by reference*, so it must live at
module level in an importable module.  This module collects the functions
the CLI, the benchmarks, and the tests fan out:

* :func:`run_experiment_task` — execute one registered experiment by id;
* :func:`frequency_backlog_point` — one point of the paper's
  frequency/backlog design-space sweep (§3.2, eqs. (7), (9), (10)),
  harnessed like any experiment so every point carries a run manifest;
* :func:`open_system_point` — one open-system scenario: a seeded
  generated trace run through the vectorized N-stage chain replay with
  the per-stage eq. (7) bounds computed from the *same* trace, so the
  analytic bound and the simulated backlog can be compared point for
  point;
* :func:`sleep_task` / :func:`convolution_workload` — synthetic workloads
  for the runner benchmark gate and the test suite.
"""

from __future__ import annotations

import time
from typing import Any

__all__ = [
    "run_experiment_task",
    "frequency_backlog_point",
    "open_system_point",
    "sleep_task",
    "convolution_workload",
]


def run_experiment_task(item: tuple[str, dict[str, Any]]):
    """Run one registered experiment: *item* is ``(experiment id, params)``.

    Returns the :class:`~repro.experiments.common.ExperimentResult`
    (manifest attached by the harness) — fully picklable, so it travels
    back to the parent unchanged.
    """
    exp_id, params = item
    from repro.experiments.common import run_experiment

    return run_experiment(exp_id, **params)


def frequency_backlog_point(
    *,
    buffer_size: int,
    frames: int = 72,
    dense_limit: int = 4096,
    growth: float = 1.015,
    stream_chunk: int | None = None,
    max_segments: int | None = None,
    compact_error: float | None = None,
    backend: str | None = None,
    bisect: bool = False,
    sim_validate: bool = False,
    sim_items: int = 4096,
    sim_seed: int = 0,
):
    """One sweep point: both frequency bounds and the event backlog at
    ``F^γ_min`` for a given FIFO *buffer_size*.

    Builds (or reuses the worker's cached) case-study context once per
    distinct ``frames`` value — the persistent kernel cache makes the
    heavy curve extraction free for warm workers — then evaluates
    eq. (9)/(10) and the eq. (7) backlog bound at the minimum frequency.
    *stream_chunk* feeds the clip traces to the extraction in chunks of
    that many events (bounded per-worker memory, identical results).

    With the default knobs the point is computed exactly, byte-identical
    to previous releases.  *max_segments*/*compact_error* compact the
    arrival curve conservatively before analysis (see
    :mod:`repro.curves.compact`; bounds can only become more
    pessimistic), and *bisect* replaces the closed-form eq. (9) scan with
    the monotone feasibility bisection of
    :meth:`repro.analysis.frequency.FrequencySweepEvaluator.bisect`, and
    *backend* pins the min-plus kernel backend the point's curve algebra
    runs under (recorded in the manifest like every other point
    parameter; ``None`` inherits the process-wide choice).
    All three ride the worker-cached
    :func:`~repro.experiments.common.sweep_frequency_evaluator`, so the
    candidate grid and the compacted operands are shared by every point
    the worker evaluates.  Harnessed: the returned result carries a
    ``repro.run-manifest/1``.

    With *sim_validate* the point additionally cross-checks the analytic
    machinery against the simulation engine: a Poisson open-system trace
    of *sim_items* items is generated (seeded with *sim_seed*, calibrated
    to the case study's long-run arrival and demand rates), the eq. (7)
    bound is computed from that trace's *own* extracted curves at
    ``F^γ_min``, and the vectorized chain replay observes the actual
    backlog on the very same trace — bound, observation, and their gap
    land in the result data and the manifest's ``sim.validate.*`` gauges.
    """
    from repro.experiments.common import (
        ExperimentResult,
        harnessed,
        sweep_frequency_evaluator,
    )

    @harnessed
    def _point(
        *,
        buffer_size: int,
        frames: int,
        dense_limit: int,
        growth: float,
        stream_chunk: int | None,
        max_segments: int | None,
        compact_error: float | None,
        backend: str | None,
        bisect: bool,
        sim_validate: bool,
        sim_items: int,
        sim_seed: int,
    ) -> ExperimentResult:
        """Inner harnessed run so the manifest captures the point params."""
        evaluator = sweep_frequency_evaluator(
            frames=frames,
            dense_limit=dense_limit,
            growth=growth,
            stream_chunk=stream_chunk,
            max_segments=max_segments,
            compact_error=compact_error,
            backend=backend,
        )
        if bisect:
            f_gamma = evaluator.bisect(buffer_size)
        else:
            f_gamma = evaluator.bound_curves(buffer_size)
        f_wcet = evaluator.bound_wcet(buffer_size)
        backlog_events = evaluator.backlog_events(f_gamma.frequency * (1.0 + 1e-6))
        savings = f_gamma.savings_over(f_wcet)
        report = (
            f"b = {buffer_size} macroblocks\n"
            f"F_gamma = {f_gamma.frequency / 1e6:.1f} MHz   "
            f"F_wcet = {f_wcet.frequency / 1e6:.1f} MHz   "
            f"savings = {savings * 100:.1f}%\n"
            f"event backlog at F_gamma: {backlog_events:.1f} "
            f"(cap {buffer_size})"
        )
        data = {
            "buffer_size": buffer_size,
            "f_gamma_hz": f_gamma.frequency,
            "f_wcet_hz": f_wcet.frequency,
            "savings": savings,
            "backlog_events": backlog_events,
        }
        if f_gamma.method != "workload-curves":
            data["f_gamma_method"] = f_gamma.method
        if evaluator.backend is not None:
            data["backend"] = evaluator.backend
        if evaluator.compaction is not None:
            data["compaction_abs_error"] = evaluator.compaction.max_abs_error
            data["compaction_segments"] = evaluator.compaction.output_segments
        if sim_validate:
            validation = _validate_against_simulation(
                frequency=f_gamma.frequency,
                arrival_rate=evaluator.alpha.final_slope,
                demand_mean=evaluator.gamma_u.long_run_rate,
                items=sim_items,
                seed=sim_seed,
            )
            data.update(validation)
            bound = validation["sim_bound_events"]
            report += (
                f"\nsim-validate ({sim_items} items, seed {sim_seed}): "
                f"bound {'unbounded' if bound is None else f'{bound:.1f}'} "
                f">= observed {validation['sim_observed_backlog']} events"
            )
        return ExperimentResult(
            experiment_id=f"SWEEP-b{buffer_size}",
            title=f"Frequency/backlog sweep point (b={buffer_size})",
            paper_reference="Equations (7), (9), (10)",
            report=report,
            data=data,
        )

    return _point(
        buffer_size=buffer_size,
        frames=frames,
        dense_limit=dense_limit,
        growth=growth,
        stream_chunk=stream_chunk,
        max_segments=max_segments,
        compact_error=compact_error,
        backend=backend,
        bisect=bisect,
        sim_validate=sim_validate,
        sim_items=sim_items,
        sim_seed=sim_seed,
    )


def _validate_against_simulation(
    *,
    frequency: float,
    arrival_rate: float,
    demand_mean: float,
    items: int,
    seed: int,
) -> dict[str, Any]:
    """Analytic bound vs. simulated backlog on one generated trace.

    Draws a Poisson open-system trace calibrated to the given long-run
    *arrival_rate* (events/s) and *demand_mean* (cycles/event), extracts
    the trace's own arrival and workload curves, evaluates the eq. (7)
    backlog bound against the ``β(Δ) = F·Δ`` processor at *frequency*,
    and replays the very same trace through the vectorized chain — so
    any bound/observation inversion is a real soundness bug, not a
    modelling mismatch.  The bound is ``None`` when the generated
    trace's empirical demand rate exceeds the service rate (the bound is
    then unbounded by eq. (7)'s feasibility condition).  Results are
    also published as ``sim.validate.*`` gauges so they land in run
    manifests.
    """
    from repro.analysis.backlog import backlog_bound_events
    from repro.core.workload import WorkloadCurve
    from repro.curves.arrival import from_trace_upper
    from repro.curves.minplus import UnboundedCurveError
    from repro.curves.service import rate_latency
    from repro.obs.metrics import registry
    from repro.simulation import WorkloadSpec, replay_chain
    from repro.util.staircase import make_k_grid

    spec = WorkloadSpec(
        model="poisson",
        items=items,
        mean_interarrival=1.0 / arrival_rate,
        demand_mean=demand_mean,
    )
    workload = spec.generate(seed)
    grid = make_k_grid(workload.items)
    alpha = from_trace_upper(workload.arrivals, n_values=grid)
    gamma_u = WorkloadCurve.from_demand_array(
        workload.stage_demands(0), "upper", k_values=grid
    )
    try:
        bound: float | None = backlog_bound_events(
            alpha, rate_latency(frequency, 0.0), gamma_u
        )
    except UnboundedCurveError:
        bound = None
    result = replay_chain(workload.arrivals, workload.demands, frequency)
    observed = result.max_backlogs[0]
    registry.gauge("sim.validate.observed").set_max(observed)
    if bound is not None:
        registry.gauge("sim.validate.bound").set_max(bound)
    return {
        "sim_bound_events": bound,
        "sim_observed_backlog": observed,
        "sim_bound_gap": None if bound is None else bound - observed,
        "sim_items": items,
        "sim_seed": seed,
    }


def open_system_point(
    *,
    model: str = "poisson",
    items: int = 4096,
    mean_interarrival: float = 1.0,
    demand_mean: float = 1.0,
    demand_spread: float = 0.0,
    long_task_fraction: float = 0.0,
    long_task_factor: float = 10.0,
    stage_scales: tuple[float, ...] = (1.0,),
    frequencies=None,
    capacities=None,
    seed: int = 0,
):
    """One open-system scenario: generated trace → chain replay → bounds.

    Draws the scenario's trace with
    :meth:`~repro.simulation.workloads.WorkloadSpec.generate` (seeded,
    fully vectorized), runs it through the N-stage vectorized replay
    (:func:`~repro.simulation.chain.replay_chain`), and computes the
    per-stage eq. (7) backlog bound from the *same* trace: stage ``k``'s
    arrival curve is extracted from its actual entry times (external
    arrivals for stage 0, the upstream departures otherwise) and its
    workload curve from its demand row, so bound and observation describe
    one and the same run.  *frequencies* defaults to twice each stage's
    offered demand rate (comfortably stable); *capacities* follows
    :func:`~repro.simulation.chain.replay_chain`.  Harnessed: the result
    carries a run manifest whose metrics snapshot includes the
    ``sim.chain.*`` family, and per-stage
    ``{bound, observed backlog, gap}`` triples land in the result data —
    the scenario-grid form of the paper's bound-vs-simulation story.
    """
    import numpy as np

    from repro.analysis.backlog import backlog_bound_events
    from repro.core.workload import WorkloadCurve
    from repro.curves.arrival import from_trace_upper
    from repro.curves.minplus import UnboundedCurveError
    from repro.curves.service import rate_latency
    from repro.experiments.common import ExperimentResult, harnessed
    from repro.simulation import WorkloadSpec, replay_chain
    from repro.util.staircase import make_k_grid

    @harnessed
    def _point(
        *,
        model: str,
        items: int,
        mean_interarrival: float,
        demand_mean: float,
        demand_spread: float,
        long_task_fraction: float,
        long_task_factor: float,
        stage_scales: tuple[float, ...],
        frequencies,
        capacities,
        seed: int,
    ) -> ExperimentResult:
        """Inner harnessed run so the manifest captures the scenario."""
        spec = WorkloadSpec(
            model=model,
            items=items,
            mean_interarrival=mean_interarrival,
            demand_mean=demand_mean,
            demand_spread=demand_spread,
            long_task_fraction=long_task_fraction,
            long_task_factor=long_task_factor,
            stage_scales=tuple(stage_scales),
        )
        workload = spec.generate(seed)
        if frequencies is None:
            freqs = [
                2.0 * spec.arrival_rate * float(np.mean(workload.demands[k]))
                for k in range(spec.stages)
            ]
        else:
            freqs = list(np.broadcast_to(np.asarray(frequencies, float), (spec.stages,)))
        result = replay_chain(
            workload.arrivals, workload.demands, freqs, capacities=capacities
        )
        grid = make_k_grid(workload.items)
        stages_data = []
        lines = []
        entries = workload.arrivals
        for k in range(spec.stages):
            alpha = from_trace_upper(entries, n_values=grid)
            gamma_u = WorkloadCurve.from_demand_array(
                workload.stage_demands(k), "upper", k_values=grid
            )
            try:
                bound: float | None = backlog_bound_events(
                    alpha, rate_latency(float(freqs[k]), 0.0), gamma_u
                )
            except UnboundedCurveError:
                bound = None
            observed = result.max_backlogs[k]
            stages_data.append(
                {
                    "stage": k,
                    "frequency_hz": float(freqs[k]),
                    "bound_events": bound,
                    "observed_backlog": observed,
                    "gap": None if bound is None else bound - observed,
                    "overflow_count": result.stage_stats[k].overflow_count,
                }
            )
            lines.append(
                f"stage {k}: bound "
                + ("unbounded" if bound is None else f"{bound:.1f}")
                + f" >= observed {observed} events @ {float(freqs[k]):g} Hz"
            )
            entries = result.departures[k]
        report = (
            f"open system: {model}, {items} items, seed {seed}, "
            f"{spec.stages} stage(s)\n" + "\n".join(lines)
        )
        return ExperimentResult(
            experiment_id=f"OPEN-{model}-s{seed}",
            title=f"Open-system bound-vs-simulation point ({model})",
            paper_reference="Equation (7) vs. N-stage replay",
            report=report,
            data={
                "model": model,
                "items": items,
                "seed": seed,
                "stages": stages_data,
                "makespan_s": result.makespan,
            },
        )

    return _point(
        model=model,
        items=items,
        mean_interarrival=mean_interarrival,
        demand_mean=demand_mean,
        demand_spread=demand_spread,
        long_task_fraction=long_task_fraction,
        long_task_factor=long_task_factor,
        stage_scales=tuple(stage_scales),
        frequencies=frequencies,
        capacities=capacities,
        seed=seed,
    )


def sleep_task(seconds: float) -> float:
    """Block for *seconds* and return it — a pure-latency task whose fan-out
    speedup measures pool concurrency without needing spare CPU cores."""
    time.sleep(float(seconds))
    return float(seconds)


def convolution_workload(spec: tuple[int, int]) -> float:
    """A kernel-bound task: ``spec = (variants, repeats)`` distinct
    arrival/service pairs, each convolved ``repeats`` times.

    Every distinct pair is one expensive min-plus convolution that the
    kernel cache (memory level within a process, disk level across
    processes and runs) collapses to a single computation.
    """
    from repro.curves.arrival import periodic_upper
    from repro.curves.minplus import convolve
    from repro.curves.service import rate_latency

    variants, repeats = spec
    total = 0.0
    for _ in range(int(repeats)):
        for i in range(int(variants)):
            alpha = periodic_upper(
                1.0 + 0.25 * i, jitter=0.4 * i, horizon_periods=24
            )
            beta = rate_latency(30.0 + 2.0 * i, 0.5 + 0.1 * i)
            total += convolve(alpha, beta)(5.0)
    return total
