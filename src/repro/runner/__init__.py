"""repro.runner — parallel experiment execution with a persistent cache.

The fan-out layer on top of everything else (see ``docs/architecture.md``):

* :mod:`repro.runner.pool` — :func:`run_many` / :func:`sweep` over a
  ``ProcessPoolExecutor`` with chunked distribution, per-task timeouts,
  bounded retry with backoff, deterministic per-task seeding, and a
  serial fallback; workers report spans/metrics into their own collectors
  and the parent merges them, so tracing and metrics export keep working
  under parallelism;
* :mod:`repro.runner.tasks` — the stock picklable task functions (run an
  experiment by id, one frequency/backlog sweep point, benchmark
  workloads).

Combined with the persistent kernel cache
(:mod:`repro.perf.diskcache`, attached via ``cache_dir=``), warm sweeps
skip the expensive min-plus convolutions entirely — across workers *and*
across runs.

Quick use::

    from repro import runner
    from repro.runner import tasks

    results = runner.run_many(
        tasks.run_experiment_task,
        [("E1", {}), ("E2", {}), ("E3", {})],
        max_workers=4,
        cache_dir=".repro-cache",
    )
    swept = runner.sweep(
        tasks.frequency_backlog_point,
        {"buffer_size": [810, 1620, 3240]},
        fixed={"frames": 24},
        max_workers=4,
    )
"""

from __future__ import annotations

from repro.runner.pool import (
    RunnerError,
    SweepResult,
    TaskResult,
    TaskTimeout,
    derive_seed,
    run_many,
    sweep,
)

__all__ = [
    "RunnerError",
    "SweepResult",
    "TaskResult",
    "TaskTimeout",
    "derive_seed",
    "run_many",
    "sweep",
]
