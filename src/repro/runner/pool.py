"""Process-pool fan-out for experiments and parameter sweeps.

:func:`run_many` executes one function over many items on a
``concurrent.futures.ProcessPoolExecutor`` with

* **chunked distribution** — items are batched so each worker amortizes
  its per-chunk observability bookkeeping and any worker-local state
  (e.g. a case-study context) across several tasks;
* **per-task timeouts** — enforced *inside* the worker with a SIGALRM
  interval timer (the worker survives and moves on), with a generous
  parent-side deadline as a backstop against workers stuck in
  uninterruptible code;
* **bounded retry with backoff** — failed or timed-out items are
  resubmitted up to ``retries`` times, with exponentially growing sleeps
  between waves;
* **graceful degradation** — ``max_workers=1``, a missing ``fork``/spawn
  capability, or a pool that fails to start all fall back to an in-process
  serial loop with identical semantics and result shape;
* **observability merging** — each worker collects spans and metrics into
  its own process-local collectors; the parent ingests child trace records
  (id-remapped, re-parented, timeline-aligned) and folds child metrics
  into the local registry under an ``origin="worker"`` label, so
  ``--trace``/``--metrics-out`` keep working under parallelism;
* **deterministic seeding** — every task runs after a reseed of the
  ``random`` and ``numpy`` global generators with a seed derived from
  ``(base seed, task index)`` by the shared helper in
  :mod:`repro.util.seeding` (also used by :mod:`repro.service`),
  identically in the serial and parallel paths, so a 4-worker run is
  bit-identical to a serial one.

The function and items must be picklable (define task functions at module
level — see :mod:`repro.runner.tasks` for the stock ones).
"""

from __future__ import annotations

import itertools
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import multiprocessing

from repro.obs.metrics import registry
from repro.obs.tracing import tracer
from repro.util.seeding import derive_seed, reseed as _reseed

__all__ = [
    "TaskResult",
    "SweepResult",
    "RunnerError",
    "TaskTimeout",
    "run_many",
    "sweep",
    "derive_seed",
]

#: Parent-side backstop slack added on top of ``timeout_s`` per chunk item.
_BACKSTOP_SLACK_S = 30.0

#: Cap on a single retry-wave backoff sleep.
_MAX_BACKOFF_S = 30.0


class RunnerError(RuntimeError):
    """Raised by :func:`unwrap`-style accessors when a task failed."""


class TaskTimeout(Exception):
    """Raised inside a worker when a task exceeds its time budget."""


@dataclass
class TaskResult:
    """Outcome of one item of a :func:`run_many` call.

    ``value`` is the function's return value on success; on failure it is
    ``None`` and ``error``/``error_type`` describe the last attempt.
    """

    index: int
    value: Any = None
    error: str | None = None
    error_type: str | None = None
    attempts: int = 0
    duration_s: float = 0.0
    worker: int | None = None

    @property
    def ok(self) -> bool:
        """True when the task finally succeeded."""
        return self.error is None

    def unwrap(self) -> Any:
        """The value, or :class:`RunnerError` if the task failed."""
        if not self.ok:
            raise RunnerError(
                f"task {self.index} failed after {self.attempts} attempt(s): "
                f"{self.error}"
            )
        return self.value


@dataclass
class SweepResult:
    """Outcome of a :func:`sweep` call: the grid, the expanded parameter
    points (cartesian order), and one :class:`TaskResult` per point."""

    grid: dict[str, list[Any]]
    points: list[dict[str, Any]] = field(default_factory=list)
    results: list[TaskResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every point succeeded."""
        return all(r.ok for r in self.results)

    def values(self) -> list[Any]:
        """All point values, raising :class:`RunnerError` on any failure."""
        return [r.unwrap() for r in self.results]


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

def _worker_init(
    cache_dir: str | None, disk_max_bytes: int | None, disk_shards: int | None
) -> None:
    """Process-pool initializer: attach the persistent kernel cache so
    every worker shares warm results through the filesystem."""
    if cache_dir:
        from repro.perf.cache import attach_disk_cache

        attach_disk_cache(cache_dir, max_bytes=disk_max_bytes, shards=disk_shards)


def _alarm_guard(seconds: float | None):
    """Context manager arming a SIGALRM interval timer that raises
    :class:`TaskTimeout`; degrades to no enforcement off the main thread
    or on platforms without SIGALRM."""
    from contextlib import contextmanager

    @contextmanager
    def guard():
        usable = (
            seconds is not None
            and seconds > 0
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )
        if not usable:
            yield
            return

        def _on_alarm(signum, frame):
            raise TaskTimeout(f"task exceeded {seconds:g}s")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    return guard()


def _reset_child_collectors() -> None:
    """Zero the worker's metric state so each chunk snapshot is a delta."""
    from repro.perf.cache import kernel_cache

    registry.reset()
    kernel_cache.reset_counters()
    if kernel_cache.disk is not None:
        kernel_cache.disk.reset_counters()


def _run_chunk(
    fn: Callable[[Any], Any],
    tasks: list[tuple[int, Any, int | None]],
    timeout_s: float | None,
    collect_trace: bool,
) -> dict[str, Any]:
    """Execute one chunk of ``(index, item, seed)`` tasks in a worker.

    Returns per-item outcomes plus the worker's span records and a metrics
    snapshot covering exactly this chunk.
    """
    tracer.forget_thread()  # fork children inherit the parent's span stack
    if collect_trace:
        tracer.reset()
        tracer.enable()
    _reset_child_collectors()
    outcomes = []
    for index, item, task_seed in tasks:
        _reseed(task_seed)
        t0 = time.perf_counter()
        try:
            with _alarm_guard(timeout_s):
                value = fn(item)
            outcomes.append(
                {
                    "index": index,
                    "ok": True,
                    "value": value,
                    "duration": time.perf_counter() - t0,
                }
            )
        except Exception as exc:
            outcomes.append(
                {
                    "index": index,
                    "ok": False,
                    "error": str(exc) or type(exc).__name__,
                    "error_type": type(exc).__name__,
                    "duration": time.perf_counter() - t0,
                }
            )
    payload = {
        "results": outcomes,
        "pid": os.getpid(),
        "metrics": registry.snapshot(),
        # include_open: a task cut short by a timeout still shows where its
        # time went — open spans flush marked ``unfinished: true``
        "trace": tracer.records(include_open=True) if collect_trace else [],
    }
    if collect_trace:
        tracer.disable()
    return payload


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------

def _chunked(seq: Sequence[Any], size: int) -> list[list[Any]]:
    """Split *seq* into contiguous chunks of at most *size* items."""
    return [list(seq[i : i + size]) for i in range(0, len(seq), size)]


def _merge_chunk_obs(payload: dict[str, Any], submitted_at: float) -> None:
    """Fold one chunk's trace records and metrics into the parent."""
    if payload["trace"]:
        tracer.ingest(
            payload["trace"],
            ts_offset=max(0.0, submitted_at),
            parent_id=tracer.current_span_id(),
            extra_attrs={"worker_pid": payload["pid"]},
        )
    try:
        registry.merge_snapshot(payload["metrics"], origin="worker")
    except ValueError:
        registry.counter("runner.metrics_merge_failures").inc()


def _pick_context(start_method: str | None):
    """The multiprocessing context to use, or None if none is usable."""
    methods = multiprocessing.get_all_start_methods()
    if start_method is not None:
        return multiprocessing.get_context(start_method) if start_method in methods else None
    for preferred in ("fork", "forkserver", "spawn"):
        if preferred in methods:
            return multiprocessing.get_context(preferred)
    return None


def _run_serial(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    timeout_s: float | None,
    retries: int,
    backoff_s: float,
    seed: int | None,
) -> list[TaskResult]:
    """In-process fallback with identical retry/timeout/seeding semantics."""
    results = []
    for index, item in enumerate(items):
        result = TaskResult(index=index, worker=os.getpid())
        for attempt in range(retries + 1):
            if attempt:
                time.sleep(min(backoff_s * 2 ** (attempt - 1), _MAX_BACKOFF_S))
                registry.counter("runner.tasks.retried").inc()
            result.attempts = attempt + 1
            _reseed(derive_seed(seed, index))
            t0 = time.perf_counter()
            try:
                with _alarm_guard(timeout_s):
                    result.value = fn(item)
                result.error = result.error_type = None
                result.duration_s = time.perf_counter() - t0
                break
            except Exception as exc:
                result.duration_s = time.perf_counter() - t0
                result.error = str(exc) or type(exc).__name__
                result.error_type = type(exc).__name__
        registry.counter(
            "runner.tasks.completed" if result.ok else "runner.tasks.failed"
        ).inc()
        results.append(result)
    return results


def run_many(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    max_workers: int = 1,
    timeout_s: float | None = None,
    retries: int = 0,
    backoff_s: float = 0.25,
    chunk_size: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    disk_max_bytes: int | None = None,
    disk_shards: int | None = None,
    seed: int | None = None,
    start_method: str | None = None,
) -> list[TaskResult]:
    """Run ``fn(item)`` for every item, fanned out over worker processes.

    Returns one :class:`TaskResult` per item, in item order.  With
    ``max_workers=1`` (the default) or when no multiprocessing start
    method is usable, everything runs serially in-process — same
    semantics, no pickling requirement.

    ``cache_dir`` attaches the persistent kernel cache in the parent *and*
    in every worker, so min-plus results computed by any process are
    shared with all others and with future runs.  ``seed`` drives the
    deterministic per-task reseed (None disables reseeding).  ``retries``
    bounds resubmission of failed/timed-out items, with exponential
    ``backoff_s`` sleeps between waves.
    """
    items = list(items)
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if cache_dir is not None:
        from repro.perf.cache import attach_disk_cache

        attach_disk_cache(cache_dir, max_bytes=disk_max_bytes, shards=disk_shards)
        cache_dir = str(cache_dir)
    if not items:
        return []

    workers = max(1, min(int(max_workers), len(items)))
    context = _pick_context(start_method) if workers > 1 else None
    registry.gauge("runner.workers").set_max(workers)

    if workers == 1 or context is None:
        with tracer.span("runner.run_many", tasks=len(items), workers=1, mode="serial"):
            return _run_serial(
                fn,
                items,
                timeout_s=timeout_s,
                retries=retries,
                backoff_s=backoff_s,
                seed=seed,
            )

    if chunk_size is None:
        chunk_size = max(1, -(-len(items) // (workers * 4)))
    chunk_size = max(1, int(chunk_size))

    results = {
        i: TaskResult(index=i, error="not run", error_type="RunnerError")
        for i in range(len(items))
    }
    attempts = dict.fromkeys(range(len(items)), 0)
    pending = list(range(len(items)))
    wave = 0

    collect_trace = tracer.enabled
    backstop = (
        None
        if timeout_s is None
        else lambda n: timeout_s * n * (retries + 1) + _BACKSTOP_SLACK_S
    )

    def make_executor() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(cache_dir, disk_max_bytes, disk_shards),
        )

    with tracer.span(
        "runner.run_many", tasks=len(items), workers=workers, mode="parallel"
    ):
        try:
            executor = make_executor()
        except (OSError, ValueError):
            # e.g. no /dev/shm semaphores in a locked-down sandbox
            registry.counter("runner.pool_fallbacks").inc()
            return _run_serial(
                fn,
                items,
                timeout_s=timeout_s,
                retries=retries,
                backoff_s=backoff_s,
                seed=seed,
            )
        try:
            while pending:
                if wave:
                    time.sleep(min(backoff_s * 2 ** (wave - 1), _MAX_BACKOFF_S))
                for i in pending:
                    attempts[i] += 1
                wave_attempt = {i: attempts[i] for i in pending}
                chunks = _chunked(
                    [(i, items[i], derive_seed(seed, i)) for i in pending],
                    chunk_size,
                )
                futures = {}
                for chunk in chunks:
                    registry.counter("runner.chunks").inc()
                    futures[
                        executor.submit(_run_chunk, fn, chunk, timeout_s, collect_trace)
                    ] = (chunk, tracer.now())
                retry_candidates: list[int] = []
                not_done = set(futures)
                while not_done:
                    deadline = backstop(chunk_size) if backstop else None
                    done, not_done = wait(
                        not_done, timeout=deadline, return_when=FIRST_COMPLETED
                    )
                    if not done:
                        # backstop tripped: the pool is wedged — abandon it
                        registry.counter("runner.pool_restarts").inc()
                        executor.shutdown(wait=False, cancel_futures=True)
                        for future in not_done:
                            chunk, _ = futures[future]
                            for index, _, _ in chunk:
                                results[index].error = (
                                    f"chunk deadline exceeded ({deadline:.0f}s)"
                                )
                                results[index].error_type = "TaskTimeout"
                                results[index].attempts = wave_attempt[index]
                                retry_candidates.append(index)
                        executor = make_executor()
                        break
                    for future in done:
                        chunk, submitted_at = futures[future]
                        try:
                            payload = future.result()
                        except BrokenProcessPool:
                            registry.counter("runner.pool_restarts").inc()
                            for index, _, _ in chunk:
                                results[index].error = "worker process died"
                                results[index].error_type = "BrokenProcessPool"
                                results[index].attempts = wave_attempt[index]
                                retry_candidates.append(index)
                            executor.shutdown(wait=False, cancel_futures=True)
                            executor = make_executor()
                            continue
                        except Exception as exc:
                            for index, _, _ in chunk:
                                results[index].error = str(exc) or type(exc).__name__
                                results[index].error_type = type(exc).__name__
                                results[index].attempts = wave_attempt[index]
                                retry_candidates.append(index)
                            continue
                        _merge_chunk_obs(payload, submitted_at)
                        for outcome in payload["results"]:
                            index = outcome["index"]
                            result = results[index]
                            result.attempts = wave_attempt[index]
                            result.duration_s = outcome["duration"]
                            result.worker = payload["pid"]
                            if outcome["ok"]:
                                result.value = outcome["value"]
                                result.error = result.error_type = None
                            else:
                                result.error = outcome["error"]
                                result.error_type = outcome["error_type"]
                                if outcome["error_type"] == "TaskTimeout":
                                    registry.counter("runner.tasks.timeouts").inc()
                                retry_candidates.append(index)
                pending = sorted(
                    i for i in set(retry_candidates) if attempts[i] <= retries
                )
                if pending:
                    registry.counter("runner.tasks.retried").inc(len(pending))
                wave += 1
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    ordered = [results[i] for i in range(len(items))]
    registry.counter("runner.tasks.completed").inc(sum(r.ok for r in ordered))
    registry.counter("runner.tasks.failed").inc(sum(not r.ok for r in ordered))
    return ordered


def sweep(
    fn: Callable[..., Any],
    grid: dict[str, Iterable[Any]],
    *,
    fixed: dict[str, Any] | None = None,
    **runner_kwargs: Any,
) -> SweepResult:
    """Fan a parameter grid out across workers.

    *grid* maps parameter names to value lists; the cartesian product (in
    the given key order) defines the sweep points, each merged over the
    *fixed* keyword arguments and passed to ``fn(**params)``.  All
    :func:`run_many` options apply.  ``fn`` must be a module-level
    callable (it is pickled by reference into the workers).
    """
    grid = {name: list(values) for name, values in grid.items()}
    for name, values in grid.items():
        if not values:
            raise ValueError(f"sweep grid axis {name!r} is empty")
    names = list(grid)
    points = [
        {**(fixed or {}), **dict(zip(names, combo))}
        for combo in itertools.product(*grid.values())
    ]
    with tracer.span("runner.sweep", points=len(points), axes=",".join(names)):
        results = run_many(
            _call_with_kwargs, [(fn, point) for point in points], **runner_kwargs
        )
    return SweepResult(grid=grid, points=points, results=results)


def _call_with_kwargs(pair: tuple[Callable[..., Any], dict[str, Any]]) -> Any:
    """Adapter: expand a ``(fn, kwargs)`` sweep item into ``fn(**kwargs)``."""
    fn, kwargs = pair
    return fn(**kwargs)
