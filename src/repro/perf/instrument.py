"""Lightweight per-kernel instrumentation (call counts + wall time).

Every hot kernel is wrapped with :func:`instrumented`, which accumulates a
call count and total wall-clock seconds into a process-wide registry.
:func:`snapshot` returns the registry as plain dicts — the payload behind
``repro.perf.report()`` and the ``benchmarks/BENCH_kernels.json`` artifact.

Overhead is one ``perf_counter`` pair and a dict update per call, which is
noise next to the numpy work the kernels do.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Callable, TypeVar

__all__ = ["instrumented", "snapshot", "reset", "record"]

F = TypeVar("F", bound=Callable[..., Any])

_registry: dict[str, dict[str, float]] = {}
_lock = threading.Lock()


def record(name: str, seconds: float) -> None:
    """Account one call of *name* taking *seconds* of wall time."""
    with _lock:
        entry = _registry.setdefault(name, {"calls": 0, "seconds": 0.0})
        entry["calls"] += 1
        entry["seconds"] += seconds


def instrumented(name: str) -> Callable[[F], F]:
    """Decorator: count calls to the wrapped kernel and sum their wall time."""

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            t0 = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                record(name, time.perf_counter() - t0)

        return wrapper  # type: ignore[return-value]

    return decorate


def snapshot() -> dict[str, dict[str, float]]:
    """Copy of the per-kernel counters: ``{name: {calls, seconds}}``."""
    with _lock:
        return {name: dict(entry) for name, entry in _registry.items()}


def reset() -> None:
    """Zero all per-kernel counters."""
    with _lock:
        _registry.clear()
