"""Per-kernel instrumentation, backed by the ``repro.obs`` metrics registry.

Every hot kernel is wrapped with :func:`instrumented`.  Each call reports
into three labeled series of the process-wide
:data:`repro.obs.metrics.registry`:

* ``kernel.calls{kernel=<name>}`` — counter, integer call count;
* ``kernel.seconds{kernel=<name>}`` — counter, accumulated wall time;
* ``kernel.seconds.hist{kernel=<name>}`` — fixed-bucket timing histogram.

and, when the :data:`repro.obs.tracing.tracer` is enabled, opens a nested
span named after the kernel — so a ``--trace`` run shows every min-plus
convolution under the experiment that triggered it.  With tracing off the
extra cost is a single attribute check.

:func:`snapshot` and :func:`reset` are kept as thin compatibility views
over the registry: ``snapshot()`` returns the familiar
``{name: {"calls": int, "seconds": float}}`` mapping (the payload behind
``repro.perf.report()`` and ``benchmarks/BENCH_kernels.json``), and
``reset()`` zeroes exactly the kernel series.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, TypeVar

from repro.obs.metrics import DEFAULT_TIME_BUCKETS, registry
from repro.obs.tracing import tracer

__all__ = ["instrumented", "snapshot", "reset", "record"]

F = TypeVar("F", bound=Callable[..., Any])

#: Registry series names of the kernel instrumentation.
CALLS_METRIC = "kernel.calls"
SECONDS_METRIC = "kernel.seconds"
HISTOGRAM_METRIC = "kernel.seconds.hist"

#: Prefix shared by all kernel series (used by :func:`reset`).
_KERNEL_PREFIX = "kernel."


def record(name: str, seconds: float) -> None:
    """Account one call of *name* taking *seconds* of wall time."""
    seconds = float(seconds)
    registry.counter(CALLS_METRIC, kernel=name).inc()
    registry.counter(SECONDS_METRIC, kernel=name).add(seconds)
    registry.histogram(
        HISTOGRAM_METRIC, buckets=DEFAULT_TIME_BUCKETS, kernel=name
    ).observe(seconds)


def instrumented(
    name: str, *, attrs: Callable[..., dict[str, Any]] | None = None
) -> Callable[[F], F]:
    """Decorator: meter calls to the wrapped kernel and, when tracing is
    enabled, open a span named *name*.

    *attrs* optionally maps the call arguments to span attributes (e.g.
    operand sizes); it only runs while tracing is enabled, so it may be
    arbitrarily lazy about cost.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if tracer.enabled:
                span_attrs = attrs(*args, **kwargs) if attrs is not None else {}
                with tracer.span(name, **span_attrs):
                    t0 = time.perf_counter()
                    try:
                        return fn(*args, **kwargs)
                    finally:
                        record(name, time.perf_counter() - t0)
            else:
                t0 = time.perf_counter()
                try:
                    return fn(*args, **kwargs)
                finally:
                    record(name, time.perf_counter() - t0)

        return wrapper  # type: ignore[return-value]

    return decorate


def snapshot(*, reset: bool = False) -> dict[str, dict[str, float]]:
    """The per-kernel counters as ``{name: {calls, seconds}}``.

    ``calls`` is an ``int``, ``seconds`` a ``float``.  Kernels whose call
    count is zero (e.g. after a :func:`reset`) are omitted, so the mapping
    is empty exactly when nothing ran.  With ``reset=True`` the kernel
    series are zeroed after being captured.
    """
    out: dict[str, dict[str, float]] = {}
    for series in registry.series(CALLS_METRIC):
        calls = series.value
        if calls:
            out[series.labels["kernel"]] = {"calls": int(calls)}
    for series in registry.series(SECONDS_METRIC):
        entry = out.get(series.labels["kernel"])
        if entry is not None:
            entry["seconds"] = float(series.value)
    if reset:
        _reset()
    return out


def _reset() -> None:
    registry.reset(prefix=_KERNEL_PREFIX)


def reset() -> None:
    """Zero all per-kernel series (they stay registered)."""
    _reset()
