"""repro.perf — memoization, instrumentation, and batch kernels.

The performance layer behind the analysis engine:

* :mod:`repro.perf.cache` — a content-addressed LRU memo cache for the
  expensive pure operations (min-plus convolution/deconvolution, workload
  curve combination and inversion, trace envelope extraction), keyed by
  exact content digests, with hit/miss/eviction counters and an opt-out
  switch;
* :mod:`repro.perf.diskcache` — an optional persistent second level under
  the in-memory LRU: a size-capped, corruption-tolerant directory of
  pickled results shared across processes and runs (attach with
  ``perf.attach_disk_cache(path)`` or the CLI's ``--cache-dir``);
* :mod:`repro.perf.instrument` — per-kernel call counts, wall time, and
  timing histograms, reported through the :mod:`repro.obs` metrics
  registry (and, when tracing is enabled, as nested spans);
* :mod:`repro.perf.batch` — batched kernels (:func:`convolve_many`,
  :func:`evaluate_at_many`, …) for the sweep-style workloads.

Quick use::

    import repro.perf as perf

    perf.configure(enabled=False)   # force every kernel to recompute
    perf.configure(enabled=True)
    perf.clear_cache()
    perf.report()                   # {"kernels": {...}, "cache": {...}}
"""

from __future__ import annotations

from typing import Any

from repro.perf.cache import (
    KernelCache,
    attach_disk_cache,
    configure,
    detach_disk_cache,
    digest_of,
    kernel_cache,
)
from repro.perf.cache import clear as clear_cache
from repro.perf.cache import stats as cache_stats
from repro.perf.instrument import instrumented, snapshot as kernel_snapshot

#: Compatibility alias: the per-kernel ``{name: {calls, seconds}}`` view.
snapshot = kernel_snapshot

__all__ = [
    "KernelCache",
    "kernel_cache",
    "configure",
    "attach_disk_cache",
    "detach_disk_cache",
    "clear_cache",
    "cache_stats",
    "digest_of",
    "instrumented",
    "report",
    "reset",
    "snapshot",
    "kernel_snapshot",
    "convolve_many",
    "convolve_reduce",
    "deconvolve_many",
    "evaluate_at_many",
]


def report() -> dict[str, Any]:
    """One snapshot of the whole performance layer.

    Returns ``{"kernels": {name: {calls, seconds}}, "cache": {...}}`` —
    the payload dumped to ``benchmarks/BENCH_kernels.json`` by the kernel
    benchmark suite.  Since the observability refactor this is a thin
    *view* over the :mod:`repro.obs` metrics registry: the same numbers
    (plus per-kernel timing histograms) appear in
    ``repro.obs.registry.snapshot()`` and the CLI's ``--metrics-out``.
    """
    return {"kernels": kernel_snapshot(), "cache": cache_stats()}


def reset() -> None:
    """Clear the in-memory cache and zero every counter (cache, disk-cache
    accounting, and instrumentation).  On-disk entries are left in place —
    persistence across runs is the point; use
    ``kernel_cache.disk.clear()`` to wipe them too."""
    from repro.perf import instrument

    kernel_cache.clear()
    kernel_cache.reset_counters()
    if kernel_cache.disk is not None:
        kernel_cache.disk.reset_counters()
    instrument.reset()


def __getattr__(name: str):
    # batch imports the curve kernels, which import this package for the
    # cache — resolve lazily to keep the import graph acyclic.
    if name in ("convolve_many", "convolve_reduce", "deconvolve_many", "evaluate_at_many"):
        from repro.perf import batch

        return getattr(batch, name)
    raise AttributeError(f"module 'repro.perf' has no attribute {name!r}")
