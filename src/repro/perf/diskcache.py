"""Persistent, content-addressed, *sharded* on-disk kernel cache.

The in-memory :class:`~repro.perf.cache.KernelCache` dies with the process,
so every new run — and every worker of a parallel sweep, and every client
of the analysis service — pays the min-plus convolutions again.  This
module adds a second cache level that survives: a directory of pickled
kernel results addressed by the blake2b content digest of the operation
key, layered *under* the in-memory LRU (memory is consulted first; a disk
hit is promoted into memory).

Design
------
* **Keys** — :func:`repro.perf.cache.digest_of` over the in-memory cache
  key (operation name, operand digests, scalar parameters), salted with a
  format tag so an on-disk layout change can never alias old entries.
  Hits require bit-identical inputs, exactly like the memory level.
* **Shards** — the store is split into ``shards`` independent directories
  selected by the leading hex digits of the key digest.  Each shard has
  its own lock, its own byte accounting, and its own mtime-LRU eviction
  over ``max_bytes / shards``, so many concurrent clients (the analysis
  service's evaluator pool, a 16-worker sweep) contend on 1/N of the
  store instead of one directory.  ``shards=1`` reproduces the historical
  single-directory layout bit-for-bit.
* **Transparent migration** — a store written by an older (or
  differently-sharded) build is re-homed on construction: entries found
  in the flat legacy layout (``<hex[:2]>/<key>.pkl`` at the root) or in
  shard directories of a different count are moved — atomic
  ``os.replace``, concurrency-tolerant — into the layout of the opening
  handle.  Keys are layout-independent (the digest addresses the entry,
  the layout only places it), so no entry is ever lost or recomputed.
* **Atomic writes** — values are pickled to a private temporary file in
  the target shard and published with :func:`os.replace`, so readers
  never observe a half-written entry, even with many concurrent writer
  processes.  Leftover temporaries from crashed writers are swept on
  construction.
* **LRU eviction** — per shard: access bumps the file mtime, and when an
  insert pushes a shard over its budget the oldest-mtime entries *of that
  shard* are deleted first, under the shard lock.  Eviction races between
  processes are tolerated (a concurrently-deleted file is simply
  skipped).
* **Corruption tolerance** — a read that fails for any reason (truncated
  file, bad pickle, wrong format tag) counts as a miss, removes the bad
  entry, and increments the ``errors`` counter; it never propagates.

Counters (hits/misses/writes/evictions/errors/migrations and resident
bytes) are published to the :mod:`repro.obs` metrics registry as
``diskcache.*`` series by the collector in :mod:`repro.perf.cache`.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from pathlib import Path
from typing import Any

from repro.perf import cache as _memcache

__all__ = ["DiskCache", "DEFAULT_MAX_BYTES", "DEFAULT_SHARDS", "FORMAT_TAG"]

#: Default size cap of the on-disk store (bytes), across all shards.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Default shard count of :func:`repro.perf.cache.attach_disk_cache` when
#: a shard count is requested but not specified.
DEFAULT_SHARDS = 8

#: Salt mixed into every key digest; bump when the *entry* format changes
#: (the shard layout is migrated, not versioned — keys are layout-free).
FORMAT_TAG = f"repro.diskcache/1:pickle{pickle.HIGHEST_PROTOCOL}"

#: Temporary files older than this (seconds) are swept at construction.
_STALE_TMP_S = 300.0

#: Directory-name prefix of shard directories (``shard-00`` … ``shard-ff``).
_SHARD_PREFIX = "shard-"


class _Shard:
    """One independent slice of the store: a directory, a lock, a budget."""

    __slots__ = ("directory", "max_bytes", "lock", "bytes")

    def __init__(self, directory: Path, max_bytes: int):
        self.directory = directory
        self.max_bytes = max_bytes
        self.lock = threading.Lock()
        self.bytes = 0


def _is_legacy_fanout(name: str) -> bool:
    """True for the two-hex-digit fan-out directories of the flat layout."""
    return len(name) == 2 and all(c in "0123456789abcdef" for c in name)


class DiskCache:
    """A size-capped, content-addressed, sharded store of pickled results.

    Thread-safe within a process and safe to share between processes
    through the filesystem: writes are atomic renames and eviction
    tolerates concurrent deletion.  Size accounting is per-process and
    therefore approximate under concurrent writers — the cap is a target,
    not an invariant, and each writer enforces it against its own view.

    All clients of one directory should open it with the same ``shards``
    count; a handle with a different count migrates the layout on
    construction (entries are moved, never dropped), so a mixed fleet
    converges to the most recently opened layout instead of corrupting.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        max_bytes: int = DEFAULT_MAX_BYTES,
        *,
        shards: int = 1,
    ):
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if not 1 <= shards <= 256:
            raise ValueError("shards must be in [1, 256]")
        self.directory = Path(directory)
        self.max_bytes = int(max_bytes)
        self.shards = int(shards)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.errors = 0
        self.migrated = 0
        self._lock = threading.Lock()
        self._tmp_counter = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        per_shard = max(1, self.max_bytes // self.shards)
        if self.shards == 1:
            dirs = [self.directory]
        else:
            dirs = [
                self.directory / f"{_SHARD_PREFIX}{i:02x}" for i in range(self.shards)
            ]
            for d in dirs:
                d.mkdir(exist_ok=True)
        self._shards = [_Shard(d, per_shard) for d in dirs]
        self._sweep_stale_tmp()
        self._migrate_layout()
        for shard in self._shards:
            shard.bytes = sum(s for _, s, _ in self._shard_entries(shard))

    # -- keys -------------------------------------------------------------------
    @staticmethod
    def key_hex(key: tuple) -> str:
        """Hex digest addressing *key* on disk (format-tag salted)."""
        return _memcache.digest_of(FORMAT_TAG, *key).hex()

    def _shard_for(self, hexkey: str) -> _Shard:
        """The shard owning *hexkey* — selected by the leading key prefix,
        so the placement is stable for any fixed shard count."""
        return self._shards[int(hexkey[:4], 16) % self.shards]

    def _path_for(self, hexkey: str) -> Path:
        return self._shard_for(hexkey).directory / hexkey[:2] / f"{hexkey}.pkl"

    # -- read -------------------------------------------------------------------
    def get(self, key: tuple) -> tuple[bool, Any]:
        """Look *key* up; returns ``(hit, value)``.

        A hit refreshes the entry's mtime (the LRU clock).  Any read
        failure — missing, truncated, or unpicklable file — is a miss.
        """
        path = self._path_for(self.key_hex(key))
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return False, None
        except Exception:
            # corrupt entry: drop it so the slot heals on the next write
            with self._lock:
                self.misses += 1
                self.errors += 1
            self._remove(path)
            return False, None
        with self._lock:
            self.hits += 1
        try:
            now = time.time()
            os.utime(path, (now, now))
        except OSError:
            pass
        return True, value

    # -- write ------------------------------------------------------------------
    def put(self, key: tuple, value: Any) -> bool:
        """Persist *value* under *key*; returns True if the entry landed.

        Failures (unpicklable value, full disk) are counted and swallowed —
        the cache is an accelerator, never a correctness dependency.  The
        write and any eviction it triggers run under the owning shard's
        lock only, so writers to other shards proceed in parallel.
        """
        hexkey = self.key_hex(key)
        shard = self._shard_for(hexkey)
        path = shard.directory / hexkey[:2] / f"{hexkey}.pkl"
        with self._lock:
            self._tmp_counter += 1
            tmp = shard.directory / f"tmp.{os.getpid()}.{self._tmp_counter}"
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            with self._lock:
                self.errors += 1
            return False
        with shard.lock:
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                with open(tmp, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp, path)
            except Exception:
                with self._lock:
                    self.errors += 1
                try:
                    tmp.unlink(missing_ok=True)
                except OSError:
                    pass
                return False
            shard.bytes += len(payload)
            if shard.bytes > shard.max_bytes:
                self._evict_shard(shard)
        with self._lock:
            self.writes += 1
        return True

    # -- eviction ---------------------------------------------------------------
    def _shard_entries(self, shard: _Shard) -> list[tuple[float, int, Path]]:
        """One shard's resident entries as ``(mtime, size, path)``."""
        found = []
        try:
            subdirs = list(shard.directory.iterdir())
        except OSError:
            return found
        for sub in subdirs:
            if not (sub.is_dir() and _is_legacy_fanout(sub.name)):
                continue
            for path in sub.glob("*.pkl"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                found.append((stat.st_mtime, stat.st_size, path))
        return found

    def _entries(self) -> list[tuple[float, int, Path]]:
        """All resident entries across every shard."""
        found: list[tuple[float, int, Path]] = []
        for shard in self._shards:
            found.extend(self._shard_entries(shard))
        return found

    def _evict_shard(self, shard: _Shard) -> None:
        """Delete oldest-mtime entries of *shard* until it fits its budget.

        Called with ``shard.lock`` held: the scan and the deletions only
        touch this shard's directory, so writers to other shards never
        wait on it.
        """
        entries = sorted(self._shard_entries(shard), key=lambda e: (e[0], e[2].name))
        total = sum(size for _, size, _ in entries)
        evicted = 0
        for _, size, path in entries:
            if total <= shard.max_bytes:
                break
            if self._remove(path):
                total -= size
                evicted += 1
        shard.bytes = total
        with self._lock:
            self.evictions += evicted

    def _remove(self, path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False

    # -- migration --------------------------------------------------------------
    def _migrate_layout(self) -> None:
        """Re-home entries written under a different layout.

        Two foreign sources are recognized: the flat legacy layout
        (``<hex[:2]>/<key>.pkl`` directly under the root — only foreign
        when this handle is sharded) and ``shard-XX`` directories beyond
        this handle's shard count (a store written with more shards).
        Every ``.pkl`` found there is moved to its home path with
        ``os.replace`` — a concurrent writer of the same key wins
        harmlessly, a concurrent migrator simply finds the file gone.
        """
        sources: list[Path] = []
        try:
            root_children = list(self.directory.iterdir())
        except OSError:
            return
        for child in root_children:
            if not child.is_dir():
                continue
            if self.shards > 1 and _is_legacy_fanout(child.name):
                sources.append(child)
            elif child.name.startswith(_SHARD_PREFIX):
                try:
                    index = int(child.name[len(_SHARD_PREFIX):], 16)
                except ValueError:
                    continue
                if self.shards == 1 or index >= self.shards:
                    sources.append(child)
        moved = 0
        for source in sources:
            for path in source.glob("*.pkl" if _is_legacy_fanout(source.name) else "*/*.pkl"):
                home = self._path_for(path.stem)
                if home == path:
                    continue
                try:
                    home.parent.mkdir(parents=True, exist_ok=True)
                    os.replace(path, home)
                    moved += 1
                except OSError:
                    continue
            self._prune_empty(source)
        self.migrated = moved

    def _prune_empty(self, directory: Path) -> None:
        """Best-effort removal of a drained source directory tree."""
        for sub in directory.glob("*"):
            if sub.is_dir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        try:
            directory.rmdir()
        except OSError:
            pass

    # -- management -------------------------------------------------------------
    def clear(self) -> None:
        """Delete every entry in every shard (counters are kept)."""
        for shard in self._shards:
            with shard.lock:
                for _, _, path in self._shard_entries(shard):
                    self._remove(path)
                shard.bytes = 0

    def reset_counters(self) -> None:
        """Zero the hit/miss/write/eviction/error counters."""
        with self._lock:
            self.hits = self.misses = self.writes = 0
            self.evictions = self.errors = 0

    def stats(self) -> dict[str, Any]:
        """Snapshot of the accounting state (``bytes`` is the per-process
        running estimate; ``entries`` re-scans the directories)."""
        with self._lock:
            out = {
                "directory": str(self.directory),
                "max_bytes": self.max_bytes,
                "shards": self.shards,
                "bytes": sum(s.bytes for s in self._shards),
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "evictions": self.evictions,
                "errors": self.errors,
                "migrated": self.migrated,
            }
        out["entries"] = len(self._entries())
        return out

    # -- internals --------------------------------------------------------------
    def _scan_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries())

    def _sweep_stale_tmp(self) -> None:
        cutoff = time.time() - _STALE_TMP_S
        for shard in self._shards:
            for tmp in shard.directory.glob("tmp.*"):
                try:
                    if tmp.stat().st_mtime < cutoff:
                        tmp.unlink()
                except OSError:
                    continue

    def __len__(self) -> int:
        return len(self._entries())
