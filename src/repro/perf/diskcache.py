"""Persistent, content-addressed on-disk kernel cache.

The in-memory :class:`~repro.perf.cache.KernelCache` dies with the process,
so every new run — and every worker of a parallel sweep — pays the min-plus
convolutions again.  This module adds a second cache level that survives:
a directory of pickled kernel results addressed by the blake2b content
digest of the operation key, layered *under* the in-memory LRU (memory is
consulted first; a disk hit is promoted into memory).

Design
------
* **Keys** — :func:`repro.perf.cache.digest_of` over the in-memory cache
  key (operation name, operand digests, scalar parameters), salted with a
  format tag so an on-disk layout change can never alias old entries.
  Hits require bit-identical inputs, exactly like the memory level.
* **Atomic writes** — values are pickled to a private temporary file in the
  cache directory and published with :func:`os.replace`, so readers never
  observe a half-written entry, even with many concurrent writer
  processes.  Leftover temporaries from crashed writers are swept on
  construction.
* **LRU eviction** — the store is size-capped (``max_bytes``); access
  bumps the file mtime, and when an insert pushes the store over the cap
  the oldest-mtime entries are deleted first.  Eviction races between
  processes are tolerated (a concurrently-deleted file is simply skipped).
* **Corruption tolerance** — a read that fails for any reason (truncated
  file, bad pickle, wrong format tag) counts as a miss, removes the bad
  entry, and increments the ``errors`` counter; it never propagates.

Counters (hits/misses/writes/evictions/errors and resident bytes) are
published to the :mod:`repro.obs` metrics registry as ``diskcache.*``
series by the collector in :mod:`repro.perf.cache`.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from pathlib import Path
from typing import Any

from repro.perf import cache as _memcache

__all__ = ["DiskCache", "DEFAULT_MAX_BYTES", "FORMAT_TAG"]

#: Default size cap of the on-disk store (bytes).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Salt mixed into every key digest; bump when the on-disk format changes.
FORMAT_TAG = f"repro.diskcache/1:pickle{pickle.HIGHEST_PROTOCOL}"

#: Temporary files older than this (seconds) are swept at construction.
_STALE_TMP_S = 300.0


class DiskCache:
    """A size-capped, content-addressed store of pickled kernel results.

    Thread-safe within a process and safe to share between processes
    through the filesystem: writes are atomic renames and eviction
    tolerates concurrent deletion.  Size accounting is per-process and
    therefore approximate under concurrent writers — the cap is a target,
    not an invariant, and each writer enforces it against its own view.
    """

    def __init__(self, directory: str | os.PathLike, max_bytes: int = DEFAULT_MAX_BYTES):
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.directory = Path(directory)
        self.max_bytes = int(max_bytes)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.errors = 0
        self._lock = threading.Lock()
        self._tmp_counter = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        self._sweep_stale_tmp()
        self._bytes = self._scan_bytes()

    # -- keys -------------------------------------------------------------------
    @staticmethod
    def key_hex(key: tuple) -> str:
        """Hex digest addressing *key* on disk (format-tag salted)."""
        return _memcache.digest_of(FORMAT_TAG, *key).hex()

    def _path_for(self, hexkey: str) -> Path:
        return self.directory / hexkey[:2] / f"{hexkey}.pkl"

    # -- read -------------------------------------------------------------------
    def get(self, key: tuple) -> tuple[bool, Any]:
        """Look *key* up; returns ``(hit, value)``.

        A hit refreshes the entry's mtime (the LRU clock).  Any read
        failure — missing, truncated, or unpicklable file — is a miss.
        """
        path = self._path_for(self.key_hex(key))
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return False, None
        except Exception:
            # corrupt entry: drop it so the slot heals on the next write
            with self._lock:
                self.misses += 1
                self.errors += 1
            self._remove(path)
            return False, None
        with self._lock:
            self.hits += 1
        try:
            now = time.time()
            os.utime(path, (now, now))
        except OSError:
            pass
        return True, value

    # -- write ------------------------------------------------------------------
    def put(self, key: tuple, value: Any) -> bool:
        """Persist *value* under *key*; returns True if the entry landed.

        Failures (unpicklable value, full disk) are counted and swallowed —
        the cache is an accelerator, never a correctness dependency.
        """
        hexkey = self.key_hex(key)
        path = self._path_for(hexkey)
        with self._lock:
            self._tmp_counter += 1
            tmp = self.directory / f"tmp.{os.getpid()}.{self._tmp_counter}"
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except Exception:
            with self._lock:
                self.errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        with self._lock:
            self.writes += 1
            self._bytes += len(payload)
            over = self._bytes > self.max_bytes
        if over:
            self._evict()
        return True

    # -- eviction ---------------------------------------------------------------
    def _entries(self) -> list[tuple[float, int, Path]]:
        """All resident entries as ``(mtime, size, path)``."""
        found = []
        for sub in self.directory.iterdir():
            if not sub.is_dir():
                continue
            for path in sub.glob("*.pkl"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                found.append((stat.st_mtime, stat.st_size, path))
        return found

    def _evict(self) -> None:
        """Delete oldest-mtime entries until the store fits ``max_bytes``."""
        entries = sorted(self._entries(), key=lambda e: (e[0], e[2].name))
        total = sum(size for _, size, _ in entries)
        evicted = 0
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            if self._remove(path):
                total -= size
                evicted += 1
        with self._lock:
            self._bytes = total
            self.evictions += evicted

    def _remove(self, path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False

    # -- management -------------------------------------------------------------
    def clear(self) -> None:
        """Delete every entry (counters are kept)."""
        for _, _, path in self._entries():
            self._remove(path)
        with self._lock:
            self._bytes = 0

    def reset_counters(self) -> None:
        """Zero the hit/miss/write/eviction/error counters."""
        with self._lock:
            self.hits = self.misses = self.writes = 0
            self.evictions = self.errors = 0

    def stats(self) -> dict[str, Any]:
        """Snapshot of the accounting state (bytes is the per-process
        running estimate; ``entries`` re-scans the directory)."""
        with self._lock:
            out = {
                "directory": str(self.directory),
                "max_bytes": self.max_bytes,
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "evictions": self.evictions,
                "errors": self.errors,
            }
        out["entries"] = len(self._entries())
        return out

    # -- internals --------------------------------------------------------------
    def _scan_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries())

    def _sweep_stale_tmp(self) -> None:
        cutoff = time.time() - _STALE_TMP_S
        for tmp in self.directory.glob("tmp.*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
            except OSError:
                continue

    def __len__(self) -> int:
        return len(self._entries())
