"""Batched curve kernels for sweep-style workloads.

Design-space sweeps (buffer-size ablations, frequency ladders, chain
reductions) apply the same operator to many operands.  The helpers here
expose that as batch calls: duplicate work is collapsed through the kernel
cache, and evaluation over a shared Δ-grid is a single vectorized pass per
curve instead of a Python loop of scalar calls.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.curves.curve import PiecewiseLinearCurve
from repro.curves.minplus import convolve, deconvolve
from repro.perf.instrument import instrumented
from repro.util.validation import ValidationError

__all__ = ["convolve_many", "deconvolve_many", "evaluate_at_many", "convolve_reduce"]

_Pair = tuple[PiecewiseLinearCurve, PiecewiseLinearCurve]


@instrumented("batch.convolve_many")
def convolve_many(pairs: Sequence[_Pair]) -> list[PiecewiseLinearCurve]:
    """Min-plus convolution of every ``(f, g)`` pair.

    Each pair routes through the memoized :func:`repro.curves.minplus
    .convolve`, so repeated pairs — common when a sweep perturbs only one
    operand — cost one construction.
    """
    return [convolve(f, g) for f, g in pairs]


@instrumented("batch.deconvolve_many")
def deconvolve_many(pairs: Sequence[_Pair]) -> list[PiecewiseLinearCurve]:
    """Min-plus deconvolution of every ``(f, g)`` pair (memoized per pair)."""
    return [deconvolve(f, g) for f, g in pairs]


@instrumented("batch.evaluate_at_many")
def evaluate_at_many(
    curves: Sequence[PiecewiseLinearCurve], deltas
) -> np.ndarray:
    """Evaluate several curves on one shared Δ-grid.

    Returns an array of shape ``(len(curves), len(deltas))`` with
    ``out[i, j] = curves[i](deltas[j])``.  This is the evaluation kernel of
    the backlog/frequency sweeps: the grid is validated once and each curve
    contributes a single vectorized pass.
    """
    dd = np.atleast_1d(np.asarray(deltas, dtype=float))
    if dd.ndim != 1:
        raise ValidationError("deltas must be a scalar or 1-D sequence")
    if np.any(dd < 0):
        raise ValidationError("delta must be >= 0")
    out = np.empty((len(curves), dd.size), dtype=float)
    for i, curve in enumerate(curves):
        if not isinstance(curve, PiecewiseLinearCurve):
            raise ValidationError("curves must be PiecewiseLinearCurve instances")
        out[i] = curve(dd)
    return out


def convolve_reduce(curves: Iterable[PiecewiseLinearCurve]) -> PiecewiseLinearCurve:
    """Convolve a whole sequence, ``f₁ ⊗ f₂ ⊗ … ⊗ fₙ``, by pairwise
    (balanced-tree) reduction.

    Min-plus convolution is associative, so the tree order is equivalent to
    a left fold; the tree shape keeps intermediate curves small (the segment
    count of a convolution grows with both operands) and lets
    :func:`convolve_many` batch each level.
    """
    level = list(curves)
    if not level:
        raise ValidationError("convolve_reduce needs at least one curve")
    while len(level) > 1:
        pairs = list(zip(level[0::2], level[1::2]))
        reduced = convolve_many(pairs)
        if len(level) % 2:
            reduced.append(level[-1])
        level = reduced
    return level[0]
