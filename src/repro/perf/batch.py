"""Batched curve kernels for sweep-style workloads.

Design-space sweeps (buffer-size ablations, frequency ladders, chain
reductions) apply the same operator to many operands.  The helpers here
expose that as batch calls: duplicate work is collapsed through the kernel
cache, and evaluation over a shared Δ-grid is a single vectorized pass per
curve instead of a Python loop of scalar calls.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.curves.backends import active_backend
from repro.curves.curve import PiecewiseLinearCurve
from repro.curves.minplus import (
    _convolve_key,
    _is_generic_convolve_pair,
    convolve,
    deconvolve,
)
from repro.obs.metrics import registry as _metrics
from repro.perf.cache import kernel_cache
from repro.perf.instrument import instrumented
from repro.util.validation import ValidationError

__all__ = ["convolve_many", "deconvolve_many", "evaluate_at_many", "convolve_reduce"]

_Pair = tuple[PiecewiseLinearCurve, PiecewiseLinearCurve]


@instrumented("batch.convolve_many")
def convolve_many(pairs: Sequence[_Pair], **budget) -> list[PiecewiseLinearCurve]:
    """Min-plus convolution of every ``(f, g)`` pair.

    Structured pairs (and all budgeted calls) route through the memoized
    :func:`repro.curves.minplus.convolve`, so repeated pairs — common when
    a sweep perturbs only one operand — cost one construction.  When the
    active backend is batched (``supports_batch``), the *generic* pairs
    are instead probed against the kernel cache, deduplicated by content
    key, partitioned by tail regime (the batched kernel requires
    tail-homogeneous batches), and computed in one vectorized kernel call
    per partition; a partition the backend still refuses falls back to the
    per-pair generic path *for that partition only*.  Budget keywords
    (``max_segments``/``max_error``/``direction``) are forwarded.
    """
    pairs = list(pairs)
    backend = active_backend()
    if budget or not backend.supports_batch:
        return [convolve(f, g, **budget) for f, g in pairs]
    results: list[PiecewiseLinearCurve | None] = [None] * len(pairs)
    misses: dict[tuple, list[int]] = {}
    for i, (f, g) in enumerate(pairs):
        if not _is_generic_convolve_pair(f, g):
            results[i] = convolve(f, g)
            continue
        key = _convolve_key(f, g)
        found, value = kernel_cache.lookup(key)
        if found:
            results[i] = value
        else:
            misses.setdefault(key, []).append(i)
    if misses:
        unique = [(key, idxs[0]) for key, idxs in misses.items()]
        saturating = [
            (key, i)
            for key, i in unique
            if min(pairs[i][0].final_slope, pairs[i][1].final_slope) == 0.0
        ]
        unbounded = [
            (key, i)
            for key, i in unique
            if min(pairs[i][0].final_slope, pairs[i][1].final_slope) != 0.0
        ]
        for partition in (saturating, unbounded):
            if not partition:
                continue
            operands = [pairs[i] for _, i in partition]
            # batch-computed pairs never reach _convolve_dispatch, so the
            # dispatch accounting meters them here under their own regime
            _metrics.counter(
                "minplus.dispatch", op="convolve", regime="batch"
            ).inc(len(partition))
            try:
                outs = backend.convolve_batch(operands)
            except ValidationError:
                _metrics.counter(
                    "minplus.batch.fallback", backend=backend.name
                ).inc()
                outs = [backend.convolve(f, g) for f, g in operands]
            for (key, _), out in zip(partition, outs):
                kernel_cache.put(key, out)
                for i in misses[key]:
                    results[i] = out
    return results


@instrumented("batch.deconvolve_many")
def deconvolve_many(pairs: Sequence[_Pair], **budget) -> list[PiecewiseLinearCurve]:
    """Min-plus deconvolution of every ``(f, g)`` pair (memoized per pair);
    budget keywords are forwarded to :func:`repro.curves.minplus
    .deconvolve`."""
    return [deconvolve(f, g, **budget) for f, g in pairs]


@instrumented("batch.evaluate_at_many")
def evaluate_at_many(
    curves: Sequence[PiecewiseLinearCurve], deltas
) -> np.ndarray:
    """Evaluate several curves on one shared Δ-grid.

    Returns an array of shape ``(len(curves), len(deltas))`` with
    ``out[i, j] = curves[i](deltas[j])``.  This is the evaluation kernel of
    the backlog/frequency sweeps: the grid is validated once and each curve
    contributes a single vectorized pass.
    """
    dd = np.atleast_1d(np.asarray(deltas, dtype=float))
    if dd.ndim != 1:
        raise ValidationError("deltas must be a scalar or 1-D sequence")
    if np.any(dd < 0):
        raise ValidationError("delta must be >= 0")
    out = np.empty((len(curves), dd.size), dtype=float)
    for i, curve in enumerate(curves):
        if not isinstance(curve, PiecewiseLinearCurve):
            raise ValidationError("curves must be PiecewiseLinearCurve instances")
        out[i] = curve(dd)
    return out


def convolve_reduce(
    curves: Iterable[PiecewiseLinearCurve],
    *,
    max_segments: int | None = None,
    max_error: float | None = None,
    direction: str | None = None,
) -> PiecewiseLinearCurve:
    """Convolve a whole sequence, ``f₁ ⊗ f₂ ⊗ … ⊗ fₙ``, structure-aware.

    Min-plus convolution is associative *and commutative*, so the operands
    may be regrouped freely.  The reduction first collapses the convex
    operands among themselves and the concave operands among themselves:
    both classes are closed under the fast paths of
    :func:`repro.curves.minplus.convolve` (convex ⊗ convex is convex,
    concave ⊗ concave is concave), so every intermediate of those two
    sub-reductions stays in the ``O(n + m)`` regime.  Only then are the
    group results and any unstructured operands folded by a balanced
    pairwise tree — the tree shape keeps intermediate curves small and
    lets :func:`convolve_many` batch each level through the kernel cache.

    With a segment/error budget plus a *direction* every pairwise
    convolution is budgeted (see :func:`repro.curves.minplus.convolve`),
    so intermediates stay O(budget) no matter how long the chain is; the
    direction-aware compactions preserve each structure group's class, so
    budgeted reductions never fall off the fast paths.
    """
    budget: dict = {}
    if max_segments is not None or max_error is not None or direction is not None:
        budget = {
            "max_segments": max_segments,
            "max_error": max_error,
            "direction": direction,
        }
    level = list(curves)
    if not level:
        raise ValidationError("convolve_reduce needs at least one curve")
    if len(level) == 1:
        return level[0]
    convex = [c for c in level if c.is_convex]
    concave = [c for c in level if c.is_concave and not c.is_convex]
    general = [c for c in level if not (c.is_convex or c.is_concave)]
    reduced = [_tree_reduce(group, budget) for group in (convex, concave) if group]
    return _tree_reduce(reduced + general, budget)


def _tree_reduce(
    level: list[PiecewiseLinearCurve], budget: dict | None = None
) -> PiecewiseLinearCurve:
    while len(level) > 1:
        pairs = list(zip(level[0::2], level[1::2]))
        reduced = convolve_many(pairs, **(budget or {}))
        if len(level) % 2:
            reduced.append(level[-1])
        level = reduced
    return level[0]
