"""Content-addressed memoization of pure curve kernels.

Design-space sweeps (frequency/buffer ablations, chain analyses, DVS-style
explorations) re-evaluate the same min-plus convolutions and workload-curve
compositions thousands of times with identical inputs.  All of those
operations are *pure*: the result depends only on the mathematical content
of the operands.  This module provides a process-wide LRU cache keyed by
content digests of the operands, so a repeated call returns the previously
constructed (immutable) result object instead of re-running the kernel.

Soundness
---------
Keys are ``blake2b`` digests of the exact binary representation of the
operand arrays (plus the operation name and any scalar parameters), so a
hit is only possible for bit-identical inputs — two curves that are merely
``allclose`` miss the cache and are recomputed.  Cached values are either
immutable curve objects (safe to share) or arrays that the call sites copy
on the way out (see :func:`KernelCache.get_or_compute`'s ``copy`` flag).

The cache can be disabled (``configure(enabled=False)``) — every kernel
then recomputes from scratch and, by purity, must return identical values;
the differential-oracle suite asserts exactly that.

Persistence
-----------
An optional second level — :class:`repro.perf.diskcache.DiskCache` — can
be attached with :func:`attach_disk_cache` (or ``configure(disk_dir=...)``,
or the CLI's ``--cache-dir``).  On an in-memory miss the disk store is
consulted before computing; disk hits are promoted into memory, and fresh
computations are written through.  Because disk keys are content digests
of the same cache keys, a warm cache directory lets a brand-new process
(or every worker of a parallel sweep) skip the min-plus convolutions of
any earlier run.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

import numpy as np

__all__ = [
    "KernelCache",
    "kernel_cache",
    "configure",
    "clear",
    "stats",
    "digest_of",
    "attach_disk_cache",
    "detach_disk_cache",
]

_SENTINEL = object()

#: Default bound on resident entries; evicts least-recently-used beyond it.
DEFAULT_MAX_ENTRIES = 4096


def digest_of(*parts: Any) -> bytes:
    """Content digest of a mixed sequence of arrays / bytes / scalars.

    ndarray parts contribute their raw bytes (dtype and shape included, so
    an int64 grid never collides with a float64 one of equal bit pattern);
    everything else contributes its ``repr``.
    """
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        if isinstance(part, np.ndarray):
            h.update(str(part.dtype).encode())
            h.update(str(part.shape).encode())
            h.update(np.ascontiguousarray(part).tobytes())
        elif isinstance(part, bytes):
            h.update(part)
        else:
            h.update(repr(part).encode())
        h.update(b"\x00")
    return h.digest()


class KernelCache:
    """A bounded LRU memo table with hit/miss/eviction accounting.

    Thread-safe for the lookup/insert bookkeeping; a missed computation
    runs outside the lock (two racing threads may both compute, last write
    wins — harmless for pure kernels).
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        self.max_entries = int(max_entries)
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
        #: Optional persistent second level (see :mod:`repro.perf.diskcache`).
        self.disk = None
        self._store: OrderedDict[Hashable, Any] = OrderedDict()
        self._per_op: dict[str, dict[str, int]] = {}
        self._lock = threading.Lock()

    # -- core ------------------------------------------------------------------
    def get_or_compute(
        self, key: tuple, compute: Callable[[], Any], *, copy: bool = False
    ) -> Any:
        """Return the cached value for *key* or compute, store, and return it.

        ``key[0]`` must be the operation name (used for per-op counters).
        With ``copy=True`` the value is an ndarray and a defensive copy is
        returned on both hits and misses, so callers can never mutate the
        cached master.
        """
        if not self.enabled:
            with self._lock:
                self.bypasses += 1
            value = compute()
            return value.copy() if copy else value
        op = key[0]
        with self._lock:
            value = self._store.get(key, _SENTINEL)
            counters = self._per_op.setdefault(op, {"hits": 0, "misses": 0})
            if value is not _SENTINEL:
                self.hits += 1
                counters["hits"] += 1
                self._store.move_to_end(key)
                return value.copy() if copy else value
            self.misses += 1
            counters["misses"] += 1
            disk = self.disk
        value = _SENTINEL
        if disk is not None:
            found, stored = disk.get(key)
            if found:
                value = stored
        if value is _SENTINEL:
            value = compute()
            if disk is not None:
                disk.put(key, value)
        with self._lock:
            self._store[key] = value
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self.evictions += 1
        return value.copy() if copy else value

    # -- batch-path primitives -------------------------------------------------
    def lookup(self, key: tuple) -> tuple[bool, Any]:
        """Probe the cache for *key* without computing: ``(found, value)``.

        The batched call paths (:func:`repro.perf.batch.convolve_many`)
        probe every operand first, compute all misses in one vectorized
        kernel call, and store the results with :meth:`put` — accounting
        matches :meth:`get_or_compute` (one hit or one miss per probe, a
        bypass when disabled).  Memory misses consult the disk level and
        promote its hits.
        """
        if not self.enabled:
            with self._lock:
                self.bypasses += 1
            return False, None
        op = key[0]
        with self._lock:
            value = self._store.get(key, _SENTINEL)
            counters = self._per_op.setdefault(op, {"hits": 0, "misses": 0})
            if value is not _SENTINEL:
                self.hits += 1
                counters["hits"] += 1
                self._store.move_to_end(key)
                return True, value
            self.misses += 1
            counters["misses"] += 1
            disk = self.disk
        if disk is not None:
            found, stored = disk.get(key)
            if found:
                with self._lock:
                    self._store[key] = stored
                    while len(self._store) > self.max_entries:
                        self._store.popitem(last=False)
                        self.evictions += 1
                return True, stored
        return False, None

    def put(self, key: tuple, value: Any) -> None:
        """Store a batch-computed result under *key* (write-through to the
        disk level); a no-op while the cache is disabled."""
        if not self.enabled:
            return
        disk = self.disk
        if disk is not None:
            disk.put(key, value)
        with self._lock:
            self._store[key] = value
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self.evictions += 1

    # -- management ------------------------------------------------------------
    def clear(self) -> None:
        """Drop all entries (counters are kept; see :meth:`reset_counters`)."""
        with self._lock:
            self._store.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction/bypass counters."""
        with self._lock:
            self.hits = self.misses = self.evictions = self.bypasses = 0
            self._per_op.clear()

    def stats(self) -> dict[str, Any]:
        """Snapshot of the accounting state.

        ``calls`` counts every :meth:`get_or_compute` with the cache
        enabled, so ``hits + misses == calls`` always holds.
        """
        with self._lock:
            out = {
                "enabled": self.enabled,
                "entries": len(self._store),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "calls": self.hits + self.misses,
                "evictions": self.evictions,
                "bypasses": self.bypasses,
                "per_op": {op: dict(c) for op, c in self._per_op.items()},
            }
            disk = self.disk
        if disk is not None:
            out["disk"] = disk.stats()
        return out

    def __len__(self) -> int:
        return len(self._store)


#: The process-wide cache every kernel routes through.
kernel_cache = KernelCache()


def _publish_cache_metrics(registry) -> None:
    """Snapshot-time collector: mirror the cache accounting into the
    metrics registry (``cache.*`` series).

    The cache keeps its own integer counters on the lookup hot path;
    publishing at snapshot time gives the registry (and every exported
    ``--metrics-out``/manifest payload) the hit/miss/eviction/bypass
    totals without adding a second lock to every ``get_or_compute``.
    """
    stats_now = kernel_cache.stats()
    for key in ("hits", "misses", "evictions", "bypasses", "calls"):
        registry.counter(f"cache.{key}").set_total(stats_now[key])
    registry.gauge("cache.entries").set(stats_now["entries"])
    registry.gauge("cache.max_entries").set(stats_now["max_entries"])
    registry.gauge("cache.enabled").set(int(stats_now["enabled"]))
    for op, counters in stats_now["per_op"].items():
        registry.counter("cache.op.hits", op=op).set_total(counters["hits"])
        registry.counter("cache.op.misses", op=op).set_total(counters["misses"])
    disk_stats = stats_now.get("disk")
    if disk_stats is not None:
        for key in ("hits", "misses", "writes", "evictions", "errors", "migrated"):
            registry.counter(f"diskcache.{key}").set_total(disk_stats[key])
        registry.gauge("diskcache.bytes").set(disk_stats["bytes"])
        registry.gauge("diskcache.entries").set(disk_stats["entries"])
        registry.gauge("diskcache.max_bytes").set(disk_stats["max_bytes"])
        registry.gauge("diskcache.shards").set(disk_stats["shards"])


def _register_collector() -> None:
    from repro.obs.metrics import registry

    registry.register_collector(_publish_cache_metrics)


_register_collector()


def configure(
    *,
    enabled: bool | None = None,
    max_entries: int | None = None,
    disk_dir: Any = None,
    disk_max_bytes: int | None = None,
    disk_shards: int | None = None,
    backend: str | None = None,
) -> None:
    """Adjust the global cache: switch it on/off and/or resize it.

    Disabling does not drop existing entries — re-enabling resumes serving
    them.  Shrinking evicts LRU entries down to the new bound on the next
    insert.  ``disk_dir`` attaches a persistent second level at that
    directory (see :func:`attach_disk_cache`), split into ``disk_shards``
    independently-locked shard directories; pass ``disk_dir=False`` to
    detach it.  ``backend`` selects the active min-plus kernel backend
    (see :mod:`repro.curves.backends`); switching is cache-sound because
    generic-path keys carry the backend's compatibility tag.
    """
    if enabled is not None:
        kernel_cache.enabled = bool(enabled)
    if max_entries is not None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        kernel_cache.max_entries = int(max_entries)
    if disk_dir is False:
        detach_disk_cache()
    elif disk_dir is not None:
        attach_disk_cache(disk_dir, max_bytes=disk_max_bytes, shards=disk_shards)
    if backend is not None:
        from repro.curves.backends import set_backend

        set_backend(backend)


def attach_disk_cache(directory, *, max_bytes: int | None = None, shards: int | None = None):
    """Attach (or replace) the persistent second level of the global cache.

    Creates *directory* if needed and returns the attached
    :class:`~repro.perf.diskcache.DiskCache`.  Safe to call in every
    process of a worker pool — the store is shared through the filesystem.
    ``shards`` splits the store into that many independently-locked
    directories (default 1, the historical flat layout; an existing flat
    store is migrated in place when a shard count is first requested).
    """
    from repro.perf.diskcache import DEFAULT_MAX_BYTES, DiskCache

    disk = DiskCache(
        directory, max_bytes=max_bytes or DEFAULT_MAX_BYTES, shards=shards or 1
    )
    kernel_cache.disk = disk
    return disk


def detach_disk_cache() -> None:
    """Detach the persistent level (on-disk entries are left in place)."""
    kernel_cache.disk = None


def clear() -> None:
    """Drop all cached results from the global cache."""
    kernel_cache.clear()


def stats() -> dict[str, Any]:
    """Accounting snapshot of the global cache."""
    return kernel_cache.stats()
