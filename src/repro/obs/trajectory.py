"""Append-only benchmark trajectory store with rolling-baseline gates.

The ``BENCH_*.json`` files are point-in-time snapshots: each benchmark
run overwrites its section, so the performance *history* of the repo is
invisible and a slow drift (or a step regression that still clears a
generous fixed threshold) goes unnoticed.  This module gives every
benchmark run a durable footprint:

* :func:`build_record` flattens the current ``BENCH_*.json`` documents
  into one flat ``metrics`` mapping (``minplus.general_backend.speedup``
  style dotted keys), records which backend produced each section, and
  stamps an environment fingerprint (:func:`env_fingerprint`: python /
  numpy / numba versions, CPU count, platform, best-effort git sha);
* :func:`append_record` appends it to ``benchmarks/TRAJECTORY.jsonl``
  (schema ``repro.trajectory/1``, one JSON object per line, append-only
  — history is never rewritten);
* :func:`check_records` is the regression detector: for every gated
  metric it compares the latest record against the **median of the
  previous K records** and flags a violation when the value degrades by
  more than the threshold fraction.  Medians of a rolling window track
  legitimate re-baselining (new hardware, algorithmic wins) while still
  catching a 2× step, which fixed absolute thresholds alone cannot.

Direction is inferred from the metric name: ``*.speedup`` and
``*.eval_ratio`` are higher-is-better, ``*.peak_bytes`` lower-is-better.
Raw ``*seconds`` timings are excluded from gating by default — they vary
with host hardware, unlike ratios — but remain in the records for
inspection and for ``obs diff``.

``scripts/check_trajectory.py`` is the CLI wrapper CI runs after the
benchmark job; ``benchmarks/conftest.py`` appends a record per benchmark
session automatically.
"""

from __future__ import annotations

import json
import os
import platform
import re
import subprocess
import sys
from typing import Any, Iterable

__all__ = [
    "TRAJECTORY_SCHEMA",
    "TRAJECTORY_PATH",
    "env_fingerprint",
    "flatten_bench",
    "build_record",
    "append_record",
    "read_records",
    "metric_direction",
    "check_records",
]

#: Version tag stamped into every trajectory record.
TRAJECTORY_SCHEMA = "repro.trajectory/1"

#: Default store location, relative to the repo root.
TRAJECTORY_PATH = os.path.join("benchmarks", "TRAJECTORY.jsonl")

#: Default regression gate: fail when a metric degrades by more than
#: this fraction against the rolling baseline (0.4 tolerates the ±20 %
#: run-to-run noise of speedup ratios while a 2× regression — a 50 %
#: drop — still trips it).
DEFAULT_THRESHOLD = 0.4

#: Default rolling-baseline window (number of prior records).
DEFAULT_WINDOW = 5

#: Metric-name patterns gated as higher-is-better.
HIGHER_BETTER = (re.compile(r"\.speedup$"), re.compile(r"\.eval_ratio$"))

#: Metric-name patterns gated as lower-is-better.
LOWER_BETTER = (re.compile(r"\.peak_bytes$"),)


def env_fingerprint() -> dict[str, Any]:
    """Versions and host facts that explain cross-record variance.

    Best-effort by design: missing optional packages record ``None`` and
    a missing git checkout records ``None`` for the sha — a record from a
    source tarball is still a valid record.
    """
    def _version(module: str) -> str | None:
        try:
            return __import__(module).__version__
        except Exception:
            return None

    sha = None
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            sha = out.stdout.strip() or None
    except Exception:
        pass
    return {
        "python": platform.python_version(),
        "numpy": _version("numpy"),
        "numba": _version("numba"),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "git_sha": sha,
    }


def flatten_bench(
    name: str, report: dict[str, Any]
) -> tuple[dict[str, float], dict[str, str]]:
    """Flatten one BENCH document into ``(metrics, backends)``.

    ``BENCH_minplus.json``'s ``{"general_backend": {"speedup": 7.8,
    "backend": "soa"}}`` becomes the metric
    ``minplus.general_backend.speedup = 7.8`` and the backend entry
    ``minplus.general_backend = "soa"``.  Only numeric leaves become
    metrics (booleans excluded); the ``backend`` field of a section is
    lifted into the backends mapping instead.
    """
    metrics: dict[str, float] = {}
    backends: dict[str, str] = {}
    for section, payload in report.items():
        if not isinstance(payload, dict):
            continue
        for key, value in payload.items():
            if key == "backend" and isinstance(value, str):
                backends[f"{name}.{section}"] = value
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                metrics[f"{name}.{section}.{key}"] = float(value)
    return metrics, backends


def build_record(
    bench_dir: str | os.PathLike,
    *,
    run_id: str | None = None,
    timestamp: str | None = None,
) -> dict[str, Any]:
    """One trajectory record from every ``BENCH_*.json`` under *bench_dir*.

    The record carries the schema tag, an optional *run_id* (CI job id,
    PR number, ...), an optional ISO *timestamp* (callers stamp it; this
    module never reads the clock so record-building stays deterministic
    under test), the flat ``metrics`` and per-section ``backends``
    mappings, and the :func:`env_fingerprint`.
    """
    metrics: dict[str, float] = {}
    backends: dict[str, str] = {}
    for entry in sorted(os.listdir(bench_dir)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        with open(os.path.join(bench_dir, entry), "r", encoding="utf-8") as fh:
            report = json.load(fh)
        name = entry[len("BENCH_") : -len(".json")]
        m, b = flatten_bench(name, report)
        metrics.update(m)
        backends.update(b)
    return {
        "schema": TRAJECTORY_SCHEMA,
        "run_id": run_id,
        "timestamp": timestamp,
        "metrics": dict(sorted(metrics.items())),
        "backends": dict(sorted(backends.items())),
        "env": env_fingerprint(),
    }


def append_record(record: dict[str, Any], path: str | os.PathLike) -> None:
    """Append *record* as one JSONL line (the store is append-only)."""
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True, default=str))
        fh.write("\n")


def read_records(path: str | os.PathLike) -> list[dict[str, Any]]:
    """All records of a trajectory store, oldest first; missing file is
    an empty history, malformed lines raise."""
    if not os.path.exists(path):
        return []
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: malformed record: {exc}") from exc
    return records


def metric_direction(name: str) -> str | None:
    """``"higher"`` / ``"lower"`` if *name* matches a gated pattern,
    else ``None`` (metric is recorded but not gated)."""
    for pat in HIGHER_BETTER:
        if pat.search(name):
            return "higher"
    for pat in LOWER_BETTER:
        if pat.search(name):
            return "lower"
    return None


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def check_records(
    records: list[dict[str, Any]],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
) -> dict[str, Any]:
    """Gate the latest record against the rolling baseline.

    For every gated metric present in the latest record, the baseline is
    the median of that metric over the up-to-*window* immediately
    preceding records that carry it.  A higher-is-better metric violates
    when ``latest < baseline * (1 - threshold)``; lower-is-better when
    ``latest > baseline * (1 + threshold)``.  Metrics with no history
    yet are reported as ``new`` — a gate needs a baseline before it can
    fail, so the first record always passes.

    Returns ``{"ok": bool, "checked": int, "new": [...], "violations":
    [{"metric", "value", "baseline", "ratio", "direction", "window"}]}``.
    """
    if not records:
        return {"ok": True, "checked": 0, "new": [], "violations": []}
    latest = records[-1]
    history = records[:-1]
    violations: list[dict[str, Any]] = []
    fresh: list[str] = []
    checked = 0
    for name, value in sorted(latest.get("metrics", {}).items()):
        direction = metric_direction(name)
        if direction is None:
            continue
        prior = [
            r["metrics"][name]
            for r in history
            if name in r.get("metrics", {})
        ][-window:]
        if not prior:
            fresh.append(name)
            continue
        checked += 1
        baseline = _median(prior)
        if baseline == 0:
            continue
        ratio = value / baseline
        bad = (
            ratio < 1.0 - threshold
            if direction == "higher"
            else ratio > 1.0 + threshold
        )
        if bad:
            violations.append(
                {
                    "metric": name,
                    "value": value,
                    "baseline": baseline,
                    "ratio": ratio,
                    "direction": direction,
                    "window": len(prior),
                }
            )
    return {
        "ok": not violations,
        "checked": checked,
        "new": fresh,
        "violations": violations,
    }
