"""Deterministic low-overhead profiling over collected spans and metrics.

This module is a pure *aggregation* layer: it never times anything
itself.  The instrumented kernels already report spans (``repro.obs
.tracing``) and labeled series (``repro.obs.metrics``); the profiler
folds those records into answers to the questions a performance
investigation actually asks:

* **Where did the time go?** — :func:`aggregate_spans` computes per-span
  -name *self time* (duration minus direct children), call counts, and
  min/max, plus breakdowns by the ``backend`` and ``shape`` span
  attributes the min-plus kernels attach;
* **Which dispatch regime ran?** — :func:`dispatch_breakdown` reads the
  ``minplus.dispatch{op, regime}`` counters (convex/concave closed
  forms vs the generic backend), the per-backend call counters, the
  compaction counters, and the batch-fallback rate out of a metrics
  snapshot;
* **How healthy is the cache?** — :func:`cache_tiers` splits every
  memoized lookup into the ``memory`` / ``disk`` / ``miss`` tiers, which
  by construction sum to the total lookups;
* **What are the tails?** — :func:`histogram_quantile` interpolates
  p50/p95/p99-style quantiles from the fixed-bucket timing histograms;
* **Exports** — :func:`profile_report` assembles everything into one
  JSON document (schema ``repro.profile/1``), :func:`collapsed_stacks`
  renders flamegraph-compatible collapsed stacks (``a;b;c <µs>``), and
  :func:`prometheus_text` renders a metrics snapshot in the Prometheus
  text exposition format for scrape-based collection.

Because the profiler runs *after* the fact on exported artifacts, its
runtime overhead on the measured workload is exactly the tracing
overhead — gated below 5 % by ``benchmarks/test_bench_obs.py``.

Everything here is standard-library only, like the rest of
:mod:`repro.obs`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable

__all__ = [
    "PROFILE_SCHEMA",
    "aggregate_spans",
    "collapsed_stacks",
    "write_collapsed",
    "histogram_quantile",
    "histogram_quantiles",
    "dispatch_breakdown",
    "cache_tiers",
    "service_breakdown",
    "simulation_breakdown",
    "profile_report",
    "write_profile",
    "prometheus_text",
    "read_trace_jsonl",
]

#: Version tag written into every profile report.
PROFILE_SCHEMA = "repro.profile/1"

#: Quantiles reported for every histogram series by default.
DEFAULT_QUANTILES = (0.50, 0.95, 0.99)


def read_trace_jsonl(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Load the span records of a ``repro.trace/1`` JSONL file."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _new_row() -> dict[str, Any]:
    return {
        "calls": 0,
        "total_s": 0.0,
        "self_s": 0.0,
        "min_s": None,
        "max_s": None,
        "unfinished": 0,
    }


def _fold(row: dict[str, Any], dur: float, self_s: float, unfinished: bool) -> None:
    row["calls"] += 1
    row["total_s"] += dur
    row["self_s"] += self_s
    row["min_s"] = dur if row["min_s"] is None else min(row["min_s"], dur)
    row["max_s"] = dur if row["max_s"] is None else max(row["max_s"], dur)
    if unfinished:
        row["unfinished"] += 1


def aggregate_spans(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Fold span *records* into per-name / per-backend / per-shape rows.

    *Self time* of a span is its duration minus the summed durations of
    its **direct** children, clamped at zero (an ``unfinished`` parent
    can report less wall time than its finished children).  Rows carry
    ``calls``, ``total_s``, ``self_s``, ``min_s``/``max_s`` per call, and
    the count of ``unfinished`` spans folded in.  Returns::

        {"spans": {name: row}, "backends": {backend: row},
         "shapes": {shape: row}, "total_self_s": float, "span_count": int}

    The ``backends``/``shapes`` breakdowns group the same rows by the
    ``backend`` / ``shape`` span attributes (spans without the attribute
    are skipped), so "how much self time went to the SoA kernel" falls
    out without re-instrumenting anything.
    """
    records = list(records)
    child_time: dict[Any, float] = {}
    for r in records:
        parent = r.get("parent")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + float(r["dur"])
    by_name: dict[str, dict[str, Any]] = {}
    by_backend: dict[str, dict[str, Any]] = {}
    by_shape: dict[str, dict[str, Any]] = {}
    total_self = 0.0
    for r in records:
        dur = float(r["dur"])
        self_s = max(0.0, dur - child_time.get(r["id"], 0.0))
        unfinished = bool(r.get("unfinished"))
        total_self += self_s
        _fold(by_name.setdefault(r["name"], _new_row()), dur, self_s, unfinished)
        attrs = r.get("attrs") or {}
        backend = attrs.get("backend")
        if backend is not None:
            _fold(
                by_backend.setdefault(str(backend), _new_row()),
                dur,
                self_s,
                unfinished,
            )
        shape = attrs.get("shape")
        if shape is not None:
            _fold(
                by_shape.setdefault(str(shape), _new_row()), dur, self_s, unfinished
            )
    return {
        "spans": dict(sorted(by_name.items())),
        "backends": dict(sorted(by_backend.items())),
        "shapes": dict(sorted(by_shape.items())),
        "total_self_s": total_self,
        "span_count": len(records),
    }


def collapsed_stacks(records: Iterable[dict[str, Any]]) -> dict[str, int]:
    """Span records as collapsed stacks: ``{"root;child;leaf": self µs}``.

    The output is the input format of Brendan Gregg's ``flamegraph.pl``
    and of speedscope's "collapsed" importer: one semicolon-joined stack
    per entry, weighted by the stack's *self* time in integer
    microseconds (entries that round to zero are dropped).  Stacks are
    reconstructed through the ``parent`` links, so merged multi-worker
    traces collapse correctly under their ingesting parent span.
    """
    records = list(records)
    by_id = {r["id"]: r for r in records}
    child_time: dict[Any, float] = {}
    for r in records:
        parent = r.get("parent")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + float(r["dur"])
    stacks: dict[str, int] = {}
    for r in records:
        self_s = max(0.0, float(r["dur"]) - child_time.get(r["id"], 0.0))
        micros = int(round(self_s * 1e6))
        if micros <= 0:
            continue
        names = [r["name"]]
        seen = {r["id"]}
        parent = r.get("parent")
        while parent is not None and parent in by_id and parent not in seen:
            seen.add(parent)
            names.append(by_id[parent]["name"])
            parent = by_id[parent].get("parent")
        stack = ";".join(reversed(names))
        stacks[stack] = stacks.get(stack, 0) + micros
    return dict(sorted(stacks.items()))


def write_collapsed(
    records: Iterable[dict[str, Any]], path: str | os.PathLike
) -> int:
    """Write the collapsed stacks of *records* to *path*, one
    ``stack count`` line each; returns the number of stacks written."""
    stacks = collapsed_stacks(records)
    with open(path, "w", encoding="utf-8") as fh:
        for stack, micros in stacks.items():
            fh.write(f"{stack} {micros}\n")
    return len(stacks)


def histogram_quantile(entry: dict[str, Any], q: float) -> float | None:
    """Bucket-interpolated quantile of one histogram snapshot *entry*.

    Walks the cumulative bucket counts to the bucket containing rank
    ``q·count`` and interpolates linearly inside it, clamped to the
    observed ``min``/``max`` so a quantile never leaves the data range.
    The overflow bucket has no upper bound, so quantiles landing there
    report the observed ``max``.  Returns ``None`` for an empty
    histogram or ``q`` outside ``[0, 1]``.
    """
    count = entry.get("count", 0)
    if not count or not 0.0 <= q <= 1.0:
        return None
    bounds = list(entry["buckets"])
    counts = list(entry["counts"])
    lo = entry.get("min")
    hi = entry.get("max")
    rank = q * count
    cum = 0.0
    for i, c in enumerate(counts):
        if not c:
            cum += c
            continue
        if cum + c >= rank:
            lower = bounds[i - 1] if i > 0 else (lo if lo is not None else 0.0)
            if i >= len(bounds):  # overflow bucket: no finite upper bound
                return hi
            upper = bounds[i]
            frac = (rank - cum) / c
            value = lower + frac * (upper - lower)
            if lo is not None:
                value = max(value, lo)
            if hi is not None:
                value = min(value, hi)
            return value
        cum += c
    return hi


def histogram_quantiles(
    snapshot: dict[str, Any], *, quantiles: tuple[float, ...] = DEFAULT_QUANTILES
) -> list[dict[str, Any]]:
    """Interpolated quantiles of every histogram series in *snapshot*.

    Returns one entry per series: its name, (key-sorted) labels, count,
    mean, and a ``{"p50": ..., "p95": ..., "p99": ...}`` mapping keyed by
    the requested *quantiles*.
    """
    out = []
    for entry in snapshot.get("histograms", ()):
        if not entry.get("count"):
            continue
        qs = {
            f"p{round(q * 100):d}": histogram_quantile(entry, q) for q in quantiles
        }
        out.append(
            {
                "name": entry["name"],
                "labels": dict(sorted(entry["labels"].items())),
                "count": entry["count"],
                "mean": entry["sum"] / entry["count"],
                "quantiles": qs,
            }
        )
    return out


def _sum_counters(
    snapshot: dict[str, Any], name: str, **match: Any
) -> int | float:
    """Sum every counter series called *name* whose labels include
    *match* — worker-merged series (``origin="worker"``) fold in with the
    parent's own, which is exactly what a whole-run profile wants."""
    total: int | float = 0
    for entry in snapshot.get("counters", ()):
        if entry["name"] != name:
            continue
        labels = entry["labels"]
        if all(labels.get(k) == v for k, v in match.items()):
            total += entry["value"]
    return total


def _group_counters(
    snapshot: dict[str, Any], name: str, label: str
) -> dict[str, int | float]:
    """Sum the series of counter *name* grouped by one *label* value."""
    groups: dict[str, int | float] = {}
    for entry in snapshot.get("counters", ()):
        if entry["name"] != name:
            continue
        key = str(entry["labels"].get(label))
        groups[key] = groups.get(key, 0) + entry["value"]
    return dict(sorted(groups.items()))


def dispatch_breakdown(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Kernel dispatch-regime accounting out of a metrics *snapshot*.

    Returns, per curve operator, how many cache-missed dispatches took
    each regime (``minplus.dispatch{op, regime}``), the per-backend
    generic-kernel call counts (``minplus.backend.calls``), compaction
    activity, and the batched-path fallback rate
    (``minplus.batch.fallback`` over the backends' batch calls).
    """
    regimes: dict[str, dict[str, int | float]] = {}
    for entry in snapshot.get("counters", ()):
        if entry["name"] != "minplus.dispatch":
            continue
        op = str(entry["labels"].get("op"))
        regime = str(entry["labels"].get("regime"))
        per_op = regimes.setdefault(op, {})
        per_op[regime] = per_op.get(regime, 0) + entry["value"]
    backend_calls = {}
    for entry in snapshot.get("counters", ()):
        if entry["name"] != "minplus.backend.calls":
            continue
        backend = str(entry["labels"].get("backend"))
        op = str(entry["labels"].get("op"))
        per = backend_calls.setdefault(backend, {})
        per[op] = per.get(op, 0) + entry["value"]
    batch_calls = sum(
        per.get("convolve_batch", 0) for per in backend_calls.values()
    )
    fallbacks = _sum_counters(snapshot, "minplus.batch.fallback")
    memo_hits: int | float = 0
    memo_misses: int | float = 0
    for entry in snapshot.get("counters", ()):
        if str(entry["labels"].get("op", "")).startswith("minplus."):
            if entry["name"] == "cache.op.hits":
                memo_hits += entry["value"]
            elif entry["name"] == "cache.op.misses":
                memo_misses += entry["value"]
    return {
        "regimes": {op: dict(sorted(r.items())) for op, r in sorted(regimes.items())},
        "backend_calls": {b: dict(sorted(p.items())) for b, p in sorted(backend_calls.items())},
        "compaction": {
            "calls": _sum_counters(snapshot, "compact.calls"),
            "noops": _sum_counters(snapshot, "compact.noop"),
            "segments_dropped": _sum_counters(snapshot, "compact.segments_dropped"),
        },
        "batch": {
            "calls": batch_calls,
            "fallbacks": fallbacks,
            "fallback_rate": (fallbacks / batch_calls) if batch_calls else 0.0,
        },
        # cache traffic scoped to the min-plus kernels (``cache.op.*`` with
        # a ``minplus.*`` op): absent disk promotions, every memo miss runs
        # exactly one dispatch, so regime counts sum to ``memo["misses"]``
        "memo": {
            "lookups": memo_hits + memo_misses,
            "hits": memo_hits,
            "misses": memo_misses,
        },
    }


def cache_tiers(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Memoization health out of a metrics *snapshot*, split into tiers.

    Every enabled-cache lookup lands in exactly one tier: ``memory``
    (in-process LRU hit), ``disk`` (persistent-store hit promoted into
    memory), or ``miss`` (computed fresh), so
    ``memory + disk + miss == lookups`` holds by construction — the
    consistency line ``obs report`` prints.  ``bypasses`` counts
    lookups made while the cache was disabled (not part of the sum).
    """
    memory = _sum_counters(snapshot, "cache.hits")
    lookups = _sum_counters(snapshot, "cache.calls")
    raw_misses = _sum_counters(snapshot, "cache.misses")
    disk = _sum_counters(snapshot, "diskcache.hits")
    disk = min(disk, raw_misses)  # a disk hit is first counted as a memory miss
    miss = raw_misses - disk
    return {
        "lookups": lookups,
        "memory": memory,
        "disk": disk,
        "miss": miss,
        "bypasses": _sum_counters(snapshot, "cache.bypasses"),
        "hit_ratio": ((memory + disk) / lookups) if lookups else 0.0,
        "consistent": memory + disk + miss == lookups,
    }


def service_breakdown(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Analysis-service accounting out of a metrics *snapshot*.

    Summarizes the job daemon's admission decisions and outcomes:
    submissions, eq. (8) accepts vs. rejects split by reason
    (``service.rejected{reason=...}`` — ``infeasible`` is the
    feasibility test saying no, ``queue-full`` the bounded queue
    shedding), completions by terminal state, retries, executor
    fallbacks, and the warm evaluator pool's hit accounting.  The
    ``admission`` gauges carry the last characterized required capacity
    against the configured one.  All zeros when no service ran.
    """
    rejected: dict[str, int | float] = {}
    for entry in snapshot.get("counters", ()):
        if entry["name"] != "service.rejected":
            continue
        reason = str(entry["labels"].get("reason", "unknown"))
        rejected[reason] = rejected.get(reason, 0) + entry["value"]
    completed: dict[str, int | float] = {}
    for entry in snapshot.get("counters", ()):
        if entry["name"] != "service.completed":
            continue
        state = str(entry["labels"].get("state", "unknown"))
        completed[state] = completed.get(state, 0) + entry["value"]
    gauges = {
        entry["name"]: entry["value"] for entry in snapshot.get("gauges", ())
    }
    return {
        "submitted": _sum_counters(snapshot, "service.submitted"),
        "accepted": _sum_counters(snapshot, "service.accepted"),
        "rejected": dict(sorted(rejected.items())),
        "completed": dict(sorted(completed.items())),
        "retries": _sum_counters(snapshot, "service.retries"),
        "pool_fallbacks": _sum_counters(snapshot, "service.pool_fallbacks"),
        "admission": {
            "required": gauges.get("service.admission.required"),
            "capacity": gauges.get("service.admission.capacity"),
        },
        "evalpool": {
            "hits": _sum_counters(snapshot, "service.evalpool.hits"),
            "misses": _sum_counters(snapshot, "service.evalpool.misses"),
            "evictions": _sum_counters(snapshot, "service.evalpool.evictions"),
        },
    }


def simulation_breakdown(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Simulation-engine accounting out of a metrics *snapshot*.

    Summarizes the ``sim.*`` metrics family: chain runs and item-stage
    throughput split by implementation (``sim.chain.runs{impl=...}`` —
    the vectorized replay vs. the event-driven oracle), per-stage FIFO
    high-water marks, overflow counts, and PE busy time
    (``sim.chain.high_water{stage=k}`` etc.), the two-PE pipeline's FIFO
    and PE series, and workload-generator output by arrival model
    (``sim.workload.items{model=...}``).  All empty when no simulation
    ran — ``obs report`` skips the section then.
    """
    stages: dict[str, dict[str, int | float]] = {}
    for entry in snapshot.get("gauges", ()):
        if entry["name"] != "sim.chain.high_water":
            continue
        key = str(entry["labels"].get("stage"))
        row = stages.setdefault(key, {})
        row["high_water"] = max(row.get("high_water", 0), entry["value"])
    for name, field in (
        ("sim.chain.overflows", "overflows"),
        ("sim.chain.busy_seconds", "busy_seconds"),
    ):
        for key, value in _group_counters(snapshot, name, "stage").items():
            if key == "None":
                continue
            stages.setdefault(key, {})[field] = value
    fifos: dict[str, dict[str, int | float]] = {}
    for entry in snapshot.get("gauges", ()):
        if entry["name"] != "sim.fifo.high_water":
            continue
        key = str(entry["labels"].get("fifo"))
        row = fifos.setdefault(key, {})
        row["high_water"] = max(row.get("high_water", 0), entry["value"])
    for name, field in (
        ("sim.fifo.pushed", "pushed"),
        ("sim.fifo.overflows", "overflows"),
    ):
        for key, value in _group_counters(snapshot, name, "fifo").items():
            if key == "None":
                continue
            fifos.setdefault(key, {})[field] = value
    return {
        "chain": {
            "runs": _group_counters(snapshot, "sim.chain.runs", "impl"),
            "item_stages": _group_counters(snapshot, "sim.chain.items", "impl"),
            "stages": dict(sorted(stages.items())),
        },
        "fifos": dict(sorted(fifos.items())),
        "pe_busy_seconds": _group_counters(snapshot, "sim.pe.busy_seconds", "pe"),
        "workload_items": _group_counters(snapshot, "sim.workload.items", "model"),
    }


def profile_report(
    trace_records: Iterable[dict[str, Any]] | None = None,
    metrics_snapshot: dict[str, Any] | None = None,
    *,
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
) -> dict[str, Any]:
    """Assemble the full profile document (schema ``repro.profile/1``).

    Either input may be omitted: a trace-only profile carries the span
    aggregation and collapsed stacks, a metrics-only profile the
    dispatch/cache/quantile sections.  The output is deterministic for
    deterministic inputs — every mapping is emitted key-sorted.
    """
    report: dict[str, Any] = {"schema": PROFILE_SCHEMA}
    if trace_records is not None:
        records = list(trace_records)
        report["trace"] = aggregate_spans(records)
        report["stacks"] = collapsed_stacks(records)
    if metrics_snapshot is not None:
        report["dispatch"] = dispatch_breakdown(metrics_snapshot)
        report["cache"] = cache_tiers(metrics_snapshot)
        report["service"] = service_breakdown(metrics_snapshot)
        report["simulation"] = simulation_breakdown(metrics_snapshot)
        report["quantiles"] = histogram_quantiles(
            metrics_snapshot, quantiles=quantiles
        )
    return report


def write_profile(report: dict[str, Any], path: str | os.PathLike) -> None:
    """Write a profile *report* as pretty-printed, key-sorted JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _prom_name(name: str) -> str:
    """A metric name sanitized to the Prometheus grammar
    (``[a-zA-Z_:][a-zA-Z0-9_:]*``); the registry's dotted names map
    dots to underscores."""
    out = []
    for i, ch in enumerate(name):
        if ch.isalnum() or ch in "_:":
            out.append(ch)
        else:
            out.append("_")
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out) or "_"


def _prom_labels(labels: dict[str, Any], extra: dict[str, str] | None = None) -> str:
    pairs = {**{str(k): str(v) for k, v in labels.items()}, **(extra or {})}
    if not pairs:
        return ""
    rendered = ",".join(
        f'{_prom_name(k)}="{v.replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(pairs.items())
    )
    return "{" + rendered + "}"


def _prom_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(snapshot: dict[str, Any]) -> str:
    """Render a ``repro.metrics/1`` *snapshot* in the Prometheus text
    exposition format (version 0.0.4).

    Counters and gauges map directly; histograms become the conventional
    ``_bucket{le=...}`` cumulative series (with the implicit overflow
    bucket as ``le="+Inf"``) plus ``_sum`` and ``_count``.  Series order
    follows the snapshot, so the output is deterministic; the result is
    what a ``/metrics`` scrape endpoint would serve.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def head(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", ()):
        name = _prom_name(entry["name"]) + "_total"
        head(name, "counter")
        lines.append(
            f"{name}{_prom_labels(entry['labels'])} {_prom_value(entry['value'])}"
        )
    for entry in snapshot.get("gauges", ()):
        name = _prom_name(entry["name"])
        head(name, "gauge")
        lines.append(
            f"{name}{_prom_labels(entry['labels'])} {_prom_value(entry['value'])}"
        )
    for entry in snapshot.get("histograms", ()):
        name = _prom_name(entry["name"])
        head(name, "histogram")
        labels = entry["labels"]
        cum = 0
        for bound, count in zip(entry["buckets"], entry["counts"]):
            cum += count
            lines.append(
                f"{name}_bucket{_prom_labels(labels, {'le': repr(float(bound))})} {cum}"
            )
        cum += entry["counts"][-1]
        lines.append(f"{name}_bucket{_prom_labels(labels, {'le': '+Inf'})} {cum}")
        lines.append(f"{name}_sum{_prom_labels(labels)} {_prom_value(entry['sum'])}")
        lines.append(f"{name}_count{_prom_labels(labels)} {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
