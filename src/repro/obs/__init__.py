"""repro.obs — dependency-free observability: tracing, metrics, manifests.

The pillars (see ``docs/observability.md``):

* :mod:`repro.obs.tracing` — nestable :func:`span` context managers with
  monotonic timings, a JSONL exporter, and a Chrome ``trace_event``
  converter so runs open in ``about:tracing``/Perfetto;
* :mod:`repro.obs.metrics` — a typed registry of counters, gauges, and
  fixed-bucket histograms with labeled series; the ``repro.perf``
  instrumentation and the kernel memo cache report through it;
* :mod:`repro.obs.manifest` — per-run manifests binding an experiment's
  outputs to its parameters, input content digests, seed, version, and
  metrics snapshot;
* :mod:`repro.obs.profile` — after-the-fact aggregation of collected
  spans and metrics into self-time / dispatch / cache-tier breakdowns,
  collapsed flamegraph stacks, interpolated histogram quantiles, and
  Prometheus text exposition (the ``obs report``/``flame`` CLI);
* :mod:`repro.obs.trajectory` — the append-only benchmark trajectory
  store (``benchmarks/TRAJECTORY.jsonl``) with a rolling-median
  regression gate (``scripts/check_trajectory.py``).

Everything here is standard-library only and imports nothing from the
rest of the package, so any layer — kernels, simulators, experiment
harnesses, the CLI — can report into it without cycles.

Quick use::

    from repro import obs

    obs.tracer.enable()
    with obs.span("build", clips=14):
        obs.counter("items").inc()
        obs.gauge("backlog.high_water", fifo="PE2").set_max(37)
    obs.tracer.export_jsonl("trace.jsonl")
    snapshot = obs.registry.snapshot()
"""

from __future__ import annotations

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    TIMING_FIELDS,
    build_manifest,
    collecting_inputs,
    combine_manifests,
    digest_json,
    record_input,
    stable_view,
    write_manifest,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
)
from repro.obs.profile import (
    PROFILE_SCHEMA,
    aggregate_spans,
    cache_tiers,
    collapsed_stacks,
    dispatch_breakdown,
    histogram_quantile,
    histogram_quantiles,
    profile_report,
    service_breakdown,
    simulation_breakdown,
    prometheus_text,
    read_trace_jsonl,
    write_collapsed,
    write_profile,
)
from repro.obs.tracing import TRACE_SCHEMA, Span, Tracer, span, tracer
from repro.obs.trajectory import (
    TRAJECTORY_PATH,
    TRAJECTORY_SCHEMA,
    append_record,
    build_record,
    check_records,
    env_fingerprint,
    flatten_bench,
    metric_direction,
    read_records,
)

__all__ = [
    # tracing
    "TRACE_SCHEMA",
    "Span",
    "Tracer",
    "span",
    "tracer",
    # metrics
    "METRICS_SCHEMA",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "registry",
    # manifests
    "MANIFEST_SCHEMA",
    "TIMING_FIELDS",
    "build_manifest",
    "combine_manifests",
    "collecting_inputs",
    "digest_json",
    "record_input",
    "stable_view",
    "write_manifest",
    # profiling
    "PROFILE_SCHEMA",
    "aggregate_spans",
    "cache_tiers",
    "collapsed_stacks",
    "dispatch_breakdown",
    "histogram_quantile",
    "histogram_quantiles",
    "profile_report",
    "service_breakdown",
    "simulation_breakdown",
    "prometheus_text",
    "read_trace_jsonl",
    "write_collapsed",
    "write_profile",
    # trajectory
    "TRAJECTORY_PATH",
    "TRAJECTORY_SCHEMA",
    "append_record",
    "build_record",
    "check_records",
    "env_fingerprint",
    "flatten_bench",
    "metric_direction",
    "read_records",
]
