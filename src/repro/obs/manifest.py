"""Run manifests: what produced this result, verifiable after the fact.

A *manifest* is a JSON document (schema ``repro.run-manifest/1``) stamped
onto every :class:`~repro.experiments.common.ExperimentResult`, recording

* the experiment identity (id, title, paper reference),
* the exact parameters the harness ran with (defaults applied),
* content digests of the inputs that flowed into the run (recorded by the
  layers that built them, e.g. the case-study context digests its clip
  demand traces with the same blake2b content hashing the kernel memo
  cache keys on),
* the seed (when the experiment is randomized), package version, wall
  time, and a full metrics snapshot.

Everything except the explicitly-timing fields (:data:`TIMING_FIELDS`) is
deterministic: two runs of the same experiment with the same parameters
must produce manifests whose :func:`stable_view` compares equal — the
golden-manifest test enforces this.

Input collection uses a per-thread stack: a harness opens
:func:`collecting_inputs`, and any layer underneath calls
:func:`record_input` — nested collections each see the inputs recorded
while they were open.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "MANIFEST_SCHEMA",
    "TIMING_FIELDS",
    "collecting_inputs",
    "record_input",
    "digest_json",
    "build_manifest",
    "combine_manifests",
    "stable_view",
    "write_manifest",
]

#: Version tag written into every manifest.
MANIFEST_SCHEMA = "repro.run-manifest/1"

#: Manifest fields that legitimately differ between identical runs.
TIMING_FIELDS = ("wall_time_s", "metrics")

_local = threading.local()


def _frames() -> list[dict[str, str]]:
    frames = getattr(_local, "frames", None)
    if frames is None:
        frames = []
        _local.frames = frames
    return frames


@contextmanager
def collecting_inputs() -> Iterator[dict[str, str]]:
    """Collect :func:`record_input` calls made while the block is open.

    Yields the (live) mapping ``{input name: hex digest}``; nested
    collections stack, and an input recorded under several open
    collections lands in all of them.
    """
    frame: dict[str, str] = {}
    frames = _frames()
    frames.append(frame)
    try:
        yield frame
    finally:
        # remove by identity — equal-by-content frames must not alias
        for i in range(len(frames) - 1, -1, -1):
            if frames[i] is frame:
                del frames[i]
                break


def record_input(name: str, digest: bytes | str) -> None:
    """Register one input digest with every open collection.

    *digest* is a raw digest (bytes, e.g. from
    :func:`repro.perf.cache.digest_of`) or an already-hex string.  A no-op
    when no collection is open, so instrumented layers can record
    unconditionally.
    """
    hexd = digest.hex() if isinstance(digest, bytes) else str(digest)
    for frame in _frames():
        frame[name] = hexd


def digest_json(obj: Any) -> str:
    """blake2b content digest of *obj*'s canonical JSON rendering.

    Canonical = sorted keys, no whitespace variance, ``str`` fallback for
    non-JSON types — deterministic across runs for the plain
    dict/list/scalar payloads experiment results carry.
    """
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


def build_manifest(
    *,
    experiment_id: str,
    title: str | None = None,
    paper_reference: str | None = None,
    parameters: dict[str, Any] | None = None,
    inputs: dict[str, str] | None = None,
    seed: Any = None,
    version: str | None = None,
    wall_time_s: float | None = None,
    metrics: dict[str, Any] | None = None,
    data_digest: str | None = None,
) -> dict[str, Any]:
    """Assemble one manifest dict (schema ``repro.run-manifest/1``)."""
    if version is None:
        # late import: repro's package init indirectly imports this module
        import repro

        version = repro.__version__
    return {
        "schema": MANIFEST_SCHEMA,
        "experiment_id": experiment_id,
        "title": title,
        "paper_reference": paper_reference,
        "parameters": _jsonable(parameters or {}),
        "inputs": dict(sorted((inputs or {}).items())),
        "seed": _jsonable(seed),
        "version": version,
        "wall_time_s": wall_time_s,
        "metrics": metrics,
        "data_digest": data_digest,
    }


def combine_manifests(
    children: list[dict[str, Any]],
    *,
    experiment_id: str,
    title: str | None = None,
    parameters: dict[str, Any] | None = None,
    wall_time_s: float | None = None,
    metrics: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Fold several child run manifests into one combined manifest.

    Used by the parallel runner: each worker-produced experiment carries
    its own manifest, and the parent attaches one combined
    ``repro.run-manifest/1`` covering the whole fan-out.  Inputs are the
    union of the children's inputs (a name recorded with conflicting
    digests is qualified with the child's experiment id); ``data_digest``
    is the digest of the sorted child ``(experiment_id, data_digest)``
    pairs, so the combined manifest is stable exactly when every child is.
    The child manifests are summarized under a ``children`` key.
    """
    inputs: dict[str, str] = {}
    summaries = []
    for child in children:
        for name, digest in (child.get("inputs") or {}).items():
            if inputs.get(name, digest) != digest:
                name = f"{name}[{child.get('experiment_id')}]"
            inputs[name] = digest
        summaries.append(
            {
                "experiment_id": child.get("experiment_id"),
                "data_digest": child.get("data_digest"),
                "seed": child.get("seed"),
            }
        )
    summaries.sort(key=lambda s: str(s["experiment_id"]))
    combined = build_manifest(
        experiment_id=experiment_id,
        title=title,
        parameters=parameters,
        inputs=inputs,
        wall_time_s=wall_time_s,
        metrics=metrics,
        data_digest=digest_json(summaries),
    )
    combined["children"] = summaries
    return combined


def stable_view(manifest: dict[str, Any]) -> dict[str, Any]:
    """The manifest minus its :data:`TIMING_FIELDS` — the part that must be
    bit-identical across reruns with the same parameters and seed."""
    return {k: v for k, v in manifest.items() if k not in TIMING_FIELDS}


def write_manifest(manifest: dict[str, Any], path: str | os.PathLike) -> None:
    """Write *manifest* as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")


def _jsonable(value: Any) -> Any:
    """Round-trip *value* through canonical JSON so the manifest holds only
    plain types (tuples become lists, numpy scalars become numbers)."""
    if value is None:
        return None
    return json.loads(json.dumps(value, sort_keys=True, default=str))
