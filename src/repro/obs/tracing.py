"""Nestable tracing spans with monotonic timings and JSONL/Chrome export.

A :class:`Tracer` collects :class:`Span` records — named, attributed,
monotonic ``(start, duration)`` intervals that nest through a per-thread
span stack.  Tracing is **off by default** and the disabled path is a
single attribute check, so instrumented hot loops pay nothing measurable
when no one is watching (the PR 1 benchmark gate enforces < 5 % overhead).

Exports:

* **JSONL** — one span object per line (schema ``repro.trace/1``):
  ``{"name", "ts", "dur", "id", "parent", "thread", "attrs"}`` with ``ts``
  and ``dur`` in seconds relative to the trace epoch.  Children are
  written before their parents (a span is recorded when it *closes*), so
  consumers must join on ``parent``/``id``, not on file order.  Spans
  still open at export time are flushed with ``"unfinished": true``
  (duration measured up to the export) instead of silently dropped —
  this is how a worker killed mid-task still shows where it was stuck.
* **Chrome ``trace_event``** — :meth:`Tracer.chrome_trace` converts the
  collected spans into the JSON object format understood by
  ``about:tracing`` and `Perfetto <https://ui.perfetto.dev>`_
  (complete events, ``ph = "X"``, microsecond timestamps).

The module-level :data:`tracer` is the process-wide instance every
instrumented layer reports to; :func:`span` is its bound context manager.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["Span", "Tracer", "tracer", "span", "TRACE_SCHEMA"]

#: Version tag written into every exported trace.
TRACE_SCHEMA = "repro.trace/1"

#: Default bound on buffered spans; excess spans are counted, not stored.
DEFAULT_MAX_SPANS = 1_000_000


class Span:
    """Handle of one open span, yielded by :meth:`Tracer.span`.

    Mutable until the ``with`` block exits: :meth:`set` adds attributes and
    :meth:`rename` rewrites the name (useful when the final identity of the
    work — e.g. an experiment id — is only known once it completed).
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "thread_id", "_t0")

    def __init__(
        self,
        name: str,
        attrs: dict[str, Any],
        span_id: int,
        parent_id: int | None,
        thread_id: int,
        t0: float,
    ):
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = thread_id
        self._t0 = t0

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = value

    def rename(self, name: str) -> None:
        """Replace the span name recorded at exit."""
        self.name = name


class _NoopSpan:
    """Shared do-nothing handle returned while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:  # noqa: D102 - no-op
        pass

    def rename(self, name: str) -> None:  # noqa: D102 - no-op
        pass


_NOOP = _NoopSpan()


class Tracer:
    """Thread-safe collector of nested spans.

    Disabled by default; :meth:`enable`/:meth:`disable` flip collection at
    run time.  The buffer is bounded (:attr:`max_spans`) — once full,
    further spans are dropped and counted in :attr:`dropped` instead of
    growing without bound.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS):
        self.enabled = False
        self.max_spans = int(max_spans)
        self.dropped = 0
        self._records: list[dict[str, Any]] = []
        self._open: dict[int, Span] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self._next_id = 0

    # -- lifecycle ---------------------------------------------------------------
    def enable(self, *, max_spans: int | None = None) -> None:
        """Start collecting spans (buffer is kept; see :meth:`reset`)."""
        if max_spans is not None:
            if max_spans < 1:
                raise ValueError("max_spans must be >= 1")
            self.max_spans = int(max_spans)
        self.enabled = True

    def disable(self) -> None:
        """Stop collecting spans (already-collected spans are kept)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all collected spans and restart the trace epoch."""
        with self._lock:
            self._records.clear()
            self._open.clear()
            self.dropped = 0
            self._epoch = time.perf_counter()
            self._next_id = 0

    # -- collection --------------------------------------------------------------
    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span | _NoopSpan]:
        """Open a nested span; attributes must be JSON-serializable."""
        if not self.enabled:
            yield _NOOP
            return
        stack = self._stack()
        handle = Span(
            name,
            dict(attrs),
            0,
            stack[-1] if stack else None,
            threading.get_ident(),
            time.perf_counter(),
        )
        with self._lock:
            handle.span_id = self._next_id
            self._next_id += 1
            self._open[handle.span_id] = handle
        stack.append(handle.span_id)
        try:
            yield handle
        finally:
            end = time.perf_counter()
            # normally a plain pop of our own id; the guard keeps a close
            # after forget_thread() (fork child exiting an inherited span)
            # from popping someone else's frame
            if stack and stack[-1] == handle.span_id:
                stack.pop()
            elif handle.span_id in stack:
                stack.remove(handle.span_id)
            record = {
                "name": handle.name,
                "ts": handle._t0 - self._epoch,
                "dur": end - handle._t0,
                "id": handle.span_id,
                "parent": handle.parent_id,
                "thread": handle.thread_id,
                "attrs": handle.attrs,
            }
            with self._lock:
                self._open.pop(handle.span_id, None)
                if len(self._records) < self.max_spans:
                    self._records.append(record)
                else:
                    self.dropped += 1

    def now(self) -> float:
        """Current time on the trace clock (seconds since the epoch that
        all recorded ``ts`` values are relative to)."""
        return time.perf_counter() - self._epoch

    def current_span_id(self) -> int | None:
        """Id of the innermost open span on this thread (None outside any
        span or while tracing is disabled)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def forget_thread(self) -> None:
        """Drop the calling thread's open-span stack.

        Needed in forked worker processes: the fork child inherits the
        parent thread's stack, but the spans on it belong to ``with``
        blocks that will never exit in the child, so keeping them would
        silently mis-parent every span the worker opens.  The inherited
        open-span handles are dropped with the stack — they would
        otherwise be flushed as phantom ``unfinished`` spans of a trace
        the child never recorded."""
        stack = self._stack()
        with self._lock:
            for span_id in stack:
                self._open.pop(span_id, None)
        stack.clear()

    # -- merging -----------------------------------------------------------------
    def ingest(
        self,
        records: list[dict[str, Any]],
        *,
        ts_offset: float = 0.0,
        parent_id: int | None = None,
        extra_attrs: dict[str, Any] | None = None,
    ) -> int:
        """Merge span *records* from another tracer (typically a worker
        process) into this one; returns the number of spans ingested.

        Ids are remapped into a fresh block of this tracer's id space, so
        ingested spans can never collide with local ones; root spans of
        the foreign trace (``parent is None``) are re-parented onto
        *parent_id* (e.g. :meth:`current_span_id` of the enclosing local
        span).  ``ts_offset`` shifts the foreign timestamps — pass the
        local epoch-relative time at which the foreign trace started so
        both timelines align.  A no-op while tracing is disabled.
        """
        if not self.enabled or not records:
            return 0
        max_id = max(r["id"] for r in records)
        with self._lock:
            base = self._next_id
            self._next_id += max_id + 1
        ingested = 0
        for r in records:
            record = dict(r)
            record["id"] = r["id"] + base
            record["parent"] = r["parent"] + base if r["parent"] is not None else parent_id
            record["ts"] = max(0.0, r["ts"] + ts_offset)
            if extra_attrs:
                record["attrs"] = {**r["attrs"], **extra_attrs}
            with self._lock:
                if len(self._records) < self.max_spans:
                    self._records.append(record)
                    ingested += 1
                else:
                    self.dropped += 1
        return ingested

    # -- export ------------------------------------------------------------------
    def records(self, *, include_open: bool = False) -> list[dict[str, Any]]:
        """Copy of the collected span records (close order).

        With ``include_open=True``, spans still open at call time are
        appended as synthetic records marked ``"unfinished": true`` with
        their duration measured up to now — so a trace exported while work
        is in flight (or cut short by a crash/timeout) shows *where* the
        time was going instead of silently dropping the open stack.
        """
        now = time.perf_counter()
        with self._lock:
            out = [dict(r) for r in self._records]
            open_spans = list(self._open.values()) if include_open else []
        for handle in open_spans:
            out.append(
                {
                    "name": handle.name,
                    "ts": handle._t0 - self._epoch,
                    "dur": now - handle._t0,
                    "id": handle.span_id,
                    "parent": handle.parent_id,
                    "thread": handle.thread_id,
                    "attrs": dict(handle.attrs),
                    "unfinished": True,
                }
            )
        return out

    def export_jsonl(self, path: str | os.PathLike) -> int:
        """Write one span per line (schema ``repro.trace/1``); returns the
        number of spans written.  Spans still open are flushed with an
        explicit ``"unfinished": true`` marker rather than dropped."""
        records = self.records(include_open=True)
        with open(path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True, default=str))
                fh.write("\n")
        return len(records)

    def chrome_trace(self) -> dict[str, Any]:
        """The collected spans as a Chrome ``trace_event`` JSON object.

        Load the dumped object in ``about:tracing`` or Perfetto; spans map
        to complete events (``ph = "X"``, timestamps in microseconds).
        """
        pid = os.getpid()
        events = [
            {
                "name": r["name"],
                "cat": "repro",
                "ph": "X",
                "ts": r["ts"] * 1e6,
                "dur": r["dur"] * 1e6,
                "pid": pid,
                "tid": r["thread"],
                "args": (
                    {**r["attrs"], "unfinished": True}
                    if r.get("unfinished")
                    else r["attrs"]
                ),
            }
            for r in self.records(include_open=True)
        ]
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA, "dropped": self.dropped},
        }

    def export_chrome(self, path: str | os.PathLike) -> int:
        """Write the Chrome ``trace_event`` JSON; returns the event count."""
        trace = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, sort_keys=True, default=str)
            fh.write("\n")
        return len(trace["traceEvents"])

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


#: The process-wide tracer every instrumented layer reports to.
tracer = Tracer()

#: Bound convenience: ``with span("phase", key=val): ...``.
span = tracer.span
