"""Typed metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` holds labeled series keyed by ``(name, labels)``
— asking for the same name/labels pair always returns the same instrument,
so call sites never need to cache handles.  Three kinds exist:

* :class:`Counter` — monotonically accumulating value (``inc``/``add``);
  integer increments keep the value an ``int``, so call counts serialize
  as ``3`` and never ``3.0``;
* :class:`Gauge` — last-written value with a high-water helper
  (:meth:`Gauge.set_max`), e.g. FIFO backlog high-water marks;
* :class:`Histogram` — fixed upper-bound buckets plus an implicit
  overflow bucket, tracking per-bucket counts, sum, count, min, and max.

Collectors registered with :meth:`MetricsRegistry.register_collector` run
at snapshot time and may publish derived series (the kernel memo cache
publishes its hit/miss/eviction counters this way, paying nothing on the
cache hot path).

:meth:`MetricsRegistry.snapshot` renders everything as a plain JSON-able
dict (schema ``repro.metrics/1``) — the payload behind the CLI's
``--metrics-out`` and the per-experiment run manifests.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Callable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "METRICS_SCHEMA",
    "DEFAULT_TIME_BUCKETS",
]

#: Version tag written into every snapshot.
METRICS_SCHEMA = "repro.metrics/1"

#: Default histogram buckets for wall-time observations, in seconds
#: (geometric 1 µs .. 10 s; observations above fall into the overflow bin).
DEFAULT_TIME_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class _Metric:
    """Common identity/locking of all instrument kinds."""

    __slots__ = ("name", "labels", "_lock")

    kind = "metric"

    def __init__(self, name: str, labels: dict[str, Any]):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    def _header(self) -> dict[str, Any]:
        # labels are emitted key-sorted so serialized snapshots are
        # byte-stable regardless of the call site's keyword order
        return {"name": self.name, "labels": dict(sorted(self.labels.items()))}


class Counter(_Metric):
    """Monotonically increasing value.

    Integer-only increments keep :attr:`value` an ``int``; mixing in a
    float increment promotes it to ``float`` (e.g. accumulated seconds).
    """

    __slots__ = ("_value",)

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, Any]):
        super().__init__(name, labels)
        self._value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for ±deltas")
        with self._lock:
            self._value += amount

    #: Alias reading better for continuous quantities (``add(seconds)``).
    add = inc

    def set_total(self, value: int | float) -> None:
        """Overwrite the running total — for collector-published counters
        whose source keeps its own (monotonic) accounting."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> int | float:
        """Current total."""
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _snapshot(self) -> dict[str, Any]:
        return {**self._header(), "value": self.value}


class Gauge(_Metric):
    """Last-written value with a high-water helper."""

    __slots__ = ("_value",)

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, Any]):
        super().__init__(name, labels)
        self._value: int | float = 0

    def set(self, value: int | float) -> None:
        """Overwrite the gauge."""
        with self._lock:
            self._value = value

    def set_max(self, value: int | float) -> None:
        """Raise the gauge to *value* if it is a new high-water mark."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> int | float:
        """Current value."""
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _snapshot(self) -> dict[str, Any]:
        return {**self._header(), "value": self.value}


class Histogram(_Metric):
    """Fixed-bucket histogram with an implicit overflow bucket.

    ``buckets`` are strictly increasing upper bounds; an observation lands
    in the first bucket whose bound is >= the value, or in the overflow bin
    (``counts`` has ``len(buckets) + 1`` entries).
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_min", "_max")

    kind = "histogram"

    def __init__(self, name: str, labels: dict[str, Any], buckets: tuple[float, ...]):
        super().__init__(name, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and strictly increasing")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def merge(self, entry: dict[str, Any]) -> None:
        """Fold a snapshot *entry* of an identically-bucketed histogram
        (typically from a worker process) into this one."""
        if tuple(entry["buckets"]) != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge mismatched buckets"
            )
        with self._lock:
            for i, c in enumerate(entry["counts"]):
                self._counts[i] += c
            self._sum += entry["sum"]
            self._count += entry["count"]
            if entry["count"]:
                self._min = min(self._min, entry["min"])
                self._max = max(self._max, entry["max"])

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        with self._lock:
            return self._sum

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0
            self._min = float("inf")
            self._max = float("-inf")

    def _snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                **self._header(),
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
            }


def _label_key(labels: dict[str, Any]) -> tuple:
    # identity key: keys are unique within one dict, so this sort never
    # compares two label *values* and is safe for mixed value types
    return tuple(sorted(labels.items()))


def _sort_key(metric: "_Metric") -> tuple:
    """Deterministic total order over series: name, then label keys, then
    label values compared as ``(type name, str)`` pairs — well-defined even
    when two series label the same key with values of different types
    (e.g. ``op=1`` vs ``op="a"``), where a plain tuple sort would raise."""
    return (
        metric.name,
        tuple(
            (k, type(v).__name__, str(v)) for k, v in sorted(metric.labels.items())
        ),
    )


class MetricsRegistry:
    """Process-wide store of labeled instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    with a given ``(name, labels)`` creates the series, later calls return
    the same object.  Requesting an existing name with a different kind is
    an error (one name, one kind).
    """

    def __init__(self) -> None:
        self._series: dict[tuple[str, tuple], _Metric] = {}
        self._kinds: dict[str, str] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []
        self._lock = threading.Lock()

    # -- get-or-create -----------------------------------------------------------
    def _get(self, cls, name: str, labels: dict[str, Any], *args) -> _Metric:
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._series.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            if self._kinds.get(name, cls.kind) != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {self._kinds[name]}"
                )
            metric = cls(name, dict(labels), *args)
            self._series[key] = metric
            self._kinds[name] = cls.kind
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create the counter ``name{labels}``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """Get or create the histogram ``name{labels}`` (``buckets`` only
        applies on creation; later calls reuse the original bounds)."""
        return self._get(Histogram, name, labels, buckets)

    def series(self, name: str) -> list[_Metric]:
        """All series registered under *name*, label-order sorted."""
        with self._lock:
            found = [m for (n, _), m in self._series.items() if n == name]
        return sorted(found, key=_sort_key)

    # -- merging -----------------------------------------------------------------
    def merge_snapshot(self, snapshot: dict[str, Any], **extra_labels: Any) -> None:
        """Fold a ``repro.metrics/1`` *snapshot* (typically from a worker
        process) into this registry.

        Counters accumulate (``inc`` by the snapshot value), gauges take
        the high-water mark, and histograms merge bucket-wise.  Pass
        *extra_labels* (e.g. ``origin="worker"``) to keep merged series
        distinct from this process's own — essential for counters that a
        snapshot-time collector would otherwise overwrite, such as the
        kernel-cache series.
        """
        if snapshot.get("schema") != METRICS_SCHEMA:
            raise ValueError(f"cannot merge snapshot schema {snapshot.get('schema')!r}")
        for entry in snapshot.get("counters", ()):
            labels = {**entry["labels"], **extra_labels}
            value = entry["value"]
            if value:
                self.counter(entry["name"], **labels).inc(value)
        for entry in snapshot.get("gauges", ()):
            labels = {**entry["labels"], **extra_labels}
            self.gauge(entry["name"], **labels).set_max(entry["value"])
        for entry in snapshot.get("histograms", ()):
            labels = {**entry["labels"], **extra_labels}
            self.histogram(
                entry["name"], buckets=tuple(entry["buckets"]), **labels
            ).merge(entry)

    # -- collectors --------------------------------------------------------------
    def register_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register *fn* to be called (with this registry) at every
        snapshot — the hook for sources that keep their own accounting."""
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)

    # -- snapshot / reset --------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Everything as a JSON-able dict (schema ``repro.metrics/1``).

        Series are emitted in a deterministic order (name, then label
        key/value pairs) and each entry's ``labels`` dict is key-sorted,
        so two snapshots of identical state serialize byte-identically
        across runs and Python hash randomization — the property
        ``obs diff`` and the golden-manifest tests rely on.
        """
        with self._lock:
            collectors = list(self._collectors)
        for collect in collectors:
            collect(self)
        with self._lock:
            series = sorted(self._series.values(), key=_sort_key)
        out: dict[str, Any] = {
            "schema": METRICS_SCHEMA,
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        for metric in series:
            out[metric.kind + "s"].append(metric._snapshot())
        return out

    def reset(self, prefix: str | None = None) -> None:
        """Zero the values of all series (or those whose name starts with
        *prefix*).  Series objects stay registered, so handles held by
        call sites keep working."""
        with self._lock:
            metrics = list(self._series.values())
        for metric in metrics:
            if prefix is None or metric.name.startswith(prefix):
                metric._reset()

    def clear(self) -> None:
        """Drop every series (collectors are kept).  Call-site handles to
        dropped series become orphans — prefer :meth:`reset` mid-run."""
        with self._lock:
            self._series.clear()
            self._kinds.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)


#: The process-wide registry every instrumented layer reports to.
registry = MetricsRegistry()

#: Bound conveniences mirroring the registry methods.
counter = registry.counter
gauge = registry.gauge
histogram = registry.histogram
