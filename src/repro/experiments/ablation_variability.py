"""A2 — ablation: saving vs demand variability.

The paper's motivation: the rarer the worst case, the larger the gap
between WCET-based and workload-curve-based analysis.  We sweep the
stall-burst magnitude of the PE2 demand model (the mechanism that inflates
the WCET without moving sustained averages) and measure the frequency
saving — it should grow monotonically-ish with the WCET/average ratio.
"""

from __future__ import annotations

from repro.analysis.frequency import minimum_frequency_curves, minimum_frequency_wcet
from repro.core.operations import envelope_upper
from repro.core.workload import WorkloadCurve
from repro.curves.arrival import from_trace_upper
from repro.experiments.common import BUFFER_ONE_FRAME, ExperimentResult, harnessed
from repro.mpeg.clips import CLIP_PROFILES
from repro.mpeg.bitstream import SyntheticClip
from repro.mpeg.demand import IDCT_MC_MODEL, StageDemandModel
from repro.util.report import TextTable, format_quantity
from repro.util.staircase import make_k_grid

__all__ = ["run"]


def _model_with_stalls(stall_extra: float) -> StageDemandModel:
    return StageDemandModel(
        IDCT_MC_MODEL.name,
        {cls: IDCT_MC_MODEL.cost(cls) for cls in IDCT_MC_MODEL._costs},
        jitter=IDCT_MC_MODEL.jitter,
        stall_probability=IDCT_MC_MODEL.stall_probability,
        stall_extra=stall_extra,
    )


@harnessed
def run(
    *,
    frames: int = 24,
    stall_levels: tuple[float, ...] = (0.0, 0.35, 0.7, 1.4),
    n_clips: int = 6,
) -> ExperimentResult:
    """Sweep the stall-burst magnitude and report the saving.

    Uses a subset of clips and shorter streams: the trend, not the absolute
    numbers, is the object here.
    """
    profiles = list(CLIP_PROFILES[-n_clips:])  # the busiest presets
    table = TextTable(
        ["stall extra", "WCET/avg ratio", "F_gamma", "F_wcet", "savings"],
        title="Ablation: frequency saving vs demand variability",
    )
    rows = []
    for stall in stall_levels:
        model = _model_with_stalls(stall)
        gammas = []
        alphas = []
        means = []
        for profile in profiles:
            clip = SyntheticClip(profile, frames=frames, pe2_model=model)
            data = clip.generate()
            grid = make_k_grid(data.pe2_cycles.size, dense_limit=1024, growth=1.04)
            gammas.append(WorkloadCurve.from_demand_array(data.pe2_cycles, "upper", k_values=grid))
            alphas.append(
                from_trace_upper(
                    data.pe1_output,
                    n_values=make_k_grid(data.pe1_output.size, dense_limit=1024, growth=1.04),
                )
            )
            means.append(float(data.pe2_cycles.mean()))
        gamma_u = envelope_upper(gammas)
        alpha = alphas[0]
        for a in alphas[1:]:
            alpha = alpha.maximum(a)
        wcet = max(g.per_activation_bound for g in gammas)
        ratio = wcet / (sum(means) / len(means))
        fg = minimum_frequency_curves(alpha, gamma_u, BUFFER_ONE_FRAME)
        fw = minimum_frequency_wcet(alpha, wcet, BUFFER_ONE_FRAME)
        savings = fg.savings_over(fw)
        table.add_row(
            [
                stall,
                f"{ratio:.2f}",
                format_quantity(fg.frequency, "Hz"),
                format_quantity(fw.frequency, "Hz"),
                f"{savings * 100:.1f}%",
            ]
        )
        rows.append(
            {"stall": stall, "wcet_ratio": ratio, "savings": savings,
             "f_gamma": fg.frequency, "f_wcet": fw.frequency}
        )
    report = "\n".join(
        [
            table.render(),
            "",
            "the saving grows with the WCET/average ratio — variability is "
            "exactly what workload curves monetize",
        ]
    )
    return ExperimentResult(
        experiment_id="A2",
        title="Variability ablation of the frequency saving",
        paper_reference="motivation (§1) quantified",
        report=report,
        data={"rows": rows},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
