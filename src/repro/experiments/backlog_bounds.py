"""E7 — eq. (6) / Figure 3 backlog bounds and the eq. (7) refinement.

Two parts:

* an analytic sanity instance (leaky-bucket flow through a rate-latency
  node) where eq. (6) has the closed form ``b + r·T``;
* the MPEG-2 instance: the event-domain backlog bound of eq. (7) under the
  WCET conversion vs the workload-curve conversion, against the simulated
  maximum backlog — ``sim <= curve bound <= wcet bound`` must hold.
"""

from __future__ import annotations

from repro.analysis.backlog import backlog_bound_events
from repro.core.workload import WorkloadCurve
from repro.curves.arrival import leaky_bucket
from repro.curves.bounds import backlog_bound
from repro.curves.service import full_processor, rate_latency
from repro.experiments.common import ExperimentResult, case_study_context, harnessed
from repro.simulation.pipeline import replay_pipeline
from repro.util.report import TextTable, format_quantity

__all__ = ["run"]


@harnessed
def run(*, frames: int = 72, headroom: float = 1.08) -> ExperimentResult:
    """Backlog bounds: closed-form check plus the MPEG-2 comparison at
    ``F = headroom · F^γ_min``."""
    # analytic instance: B <= burst + rate·latency
    alpha = leaky_bucket(burst=5.0, rate=2.0)
    beta = rate_latency(rate=4.0, latency=3.0)
    analytic = backlog_bound(alpha, beta)
    expected = 5.0 + 2.0 * 3.0

    # MPEG-2 instance
    ctx = case_study_context(frames=frames)
    frequency = ctx.f_gamma.frequency * headroom
    service = full_processor(frequency)
    bound_curves = backlog_bound_events(ctx.alpha, service, ctx.gamma_u)
    linear = WorkloadCurve.from_constant("upper", ctx.wcet, horizon=16)
    try:
        bound_wcet = backlog_bound_events(ctx.alpha, service, linear)
    except Exception:
        # under the WCET characterization the demand rate exceeds this
        # clock entirely — no finite backlog bound exists at a frequency
        # the workload curves certify comfortably
        bound_wcet = float("inf")
    sim_max = 0
    for clip in ctx.clips:
        data = clip.generate()
        result = replay_pipeline(data.pe1_output, data.pe2_cycles, frequency)
        sim_max = max(sim_max, result.max_backlog)

    table = TextTable(
        ["quantity", "value"],
        title=f"Event backlog in front of PE2 at F = {format_quantity(frequency, 'Hz')}",
    )
    table.add_row(["simulated max over 14 clips", sim_max])
    table.add_row(["bound, workload-curve conversion (eq. 7)", f"{bound_curves:.0f}"])
    table.add_row(["bound, WCET conversion", f"{bound_wcet:.0f}"])
    report = "\n".join(
        [
            "closed-form check (leaky bucket through rate-latency):",
            f"  sup(alpha - beta) = {analytic:g}  (expected b + r*T = {expected:g})",
            "",
            table.render(),
            "",
            f"ordering holds: sim ({sim_max}) <= curves ({bound_curves:.0f}) "
            f"<= wcet ({bound_wcet:.0f})",
        ]
    )
    return ExperimentResult(
        experiment_id="E7",
        title="Backlog bounds: eq. (6) closed form and eq. (7) refinement",
        paper_reference="Equations (6)-(7), Figure 3",
        report=report,
        data={
            "analytic": analytic,
            "expected": expected,
            "sim_max": sim_max,
            "bound_curves": bound_curves,
            "bound_wcet": bound_wcet,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
