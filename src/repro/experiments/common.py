"""Shared infrastructure for the experiment harnesses.

Each experiment module regenerates one paper artifact (figure or table) and
returns an :class:`ExperimentResult` — a machine-readable payload plus a
rendered text report.  The heavyweight MPEG-2 preparation (clip generation,
curve extraction, envelopes) is shared across experiments through a cached
:class:`CaseStudyContext`.

Every ``run`` function is wrapped with :func:`harnessed`, which ties the
experiment into the :mod:`repro.obs` layer: the run executes under a
tracing span named ``experiment:<id>``, and the returned result carries a
*run manifest* — parameters (defaults applied), content digests of the
inputs consumed (the case-study context records the blake2b digest of its
clip demand traces), seed, package version, wall time, and a metrics
snapshot.  Manifests of identical runs are identical up to their timing
fields (see :func:`repro.obs.manifest.stable_view`).
"""

from __future__ import annotations

import functools
import inspect
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro import obs
from repro.analysis.frequency import (
    FrequencyBound,
    minimum_frequency_curves,
    minimum_frequency_wcet,
)
from repro.core.operations import envelope_lower, envelope_upper
from repro.core.workload import WorkloadCurve, WorkloadCurvePair
from repro.curves.arrival import from_trace_upper
from repro.curves.curve import PiecewiseLinearCurve
from repro.mpeg.bitstream import SyntheticClip
from repro.mpeg.clips import standard_clips
from repro.perf.cache import digest_of
from repro.util.staircase import make_k_grid
from repro.util.validation import check_integer

__all__ = [
    "ExperimentResult",
    "CaseStudyContext",
    "case_study_context",
    "sweep_frequency_evaluator",
    "harnessed",
    "run_experiment",
    "BUFFER_ONE_FRAME",
]

#: The paper's FIFO size: one frame of macroblocks.
BUFFER_ONE_FRAME = 1620


@dataclass
class ExperimentResult:
    """Outcome of one experiment harness.

    Attributes
    ----------
    experiment_id:
        Index entry from DESIGN.md (e.g. ``"E5"``).
    title:
        Human-readable title.
    paper_reference:
        The paper artifact being regenerated (e.g. ``"Figure 7"``).
    report:
        Rendered text (tables/ascii charts) comparable against the paper.
    data:
        Machine-readable results for tests and downstream analysis.
    manifest:
        Run manifest (see :mod:`repro.obs.manifest`) attached by
        :func:`harnessed`; ``None`` only if the run function was invoked
        without the harness.
    """

    experiment_id: str
    title: str
    paper_reference: str
    report: str
    data: dict[str, Any] = field(default_factory=dict)
    manifest: dict[str, Any] | None = None

    def __str__(self) -> str:  # pragma: no cover - convenience
        header = f"[{self.experiment_id}] {self.title} ({self.paper_reference})"
        return f"{header}\n{'=' * len(header)}\n{self.report}"

    def write(self, directory: str | Path) -> tuple[Path, Path | None]:
        """Write the text report (``<id>.txt``) and, when present, the run
        manifest (``<id>.manifest.json``) into *directory*.

        Returns the two paths (manifest path is ``None`` if there is no
        manifest).  The directory is created if needed.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        report_path = directory / f"{self.experiment_id}.txt"
        report_path.write_text(str(self) + "\n", encoding="utf-8")
        manifest_path: Path | None = None
        if self.manifest is not None:
            manifest_path = directory / f"{self.experiment_id}.manifest.json"
            obs.write_manifest(self.manifest, manifest_path)
        return report_path, manifest_path


def harnessed(run: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
    """Wrap an experiment ``run`` function with the observability harness.

    The wrapped call executes inside a tracing span (renamed to
    ``experiment:<id>`` once the result's id is known), collects the input
    digests recorded while it ran (see
    :func:`repro.obs.manifest.record_input`), and attaches a run manifest
    to the returned :class:`ExperimentResult`.

    Parameters are captured with defaults applied, so a default run and an
    explicit ``run(frames=72)`` produce the same manifest.  A parameter
    named ``seed`` is additionally surfaced as the manifest's top-level
    seed.
    """
    signature = inspect.signature(run)

    @functools.wraps(run)
    def wrapper(*args: Any, **kwargs: Any) -> ExperimentResult:
        bound = signature.bind(*args, **kwargs)
        bound.apply_defaults()
        parameters = dict(bound.arguments)
        t0 = time.perf_counter()
        with obs.collecting_inputs() as inputs:
            with obs.tracer.span("experiment", module=run.__module__) as span:
                result = run(*args, **kwargs)
                span.rename(f"experiment:{result.experiment_id}")
                span.set("experiment_id", result.experiment_id)
        wall = time.perf_counter() - t0
        result.manifest = obs.build_manifest(
            experiment_id=result.experiment_id,
            title=result.title,
            paper_reference=result.paper_reference,
            parameters=parameters,
            inputs=inputs,
            seed=parameters.get("seed"),
            wall_time_s=wall,
            metrics=obs.registry.snapshot(),
            data_digest=obs.digest_json(result.data),
        )
        return result

    return wrapper


def run_experiment(exp_id: str, **params: Any) -> ExperimentResult:
    """Run one registered experiment by id with the given parameters.

    The canonical by-id entry point used by the CLI and the parallel
    runner's worker processes (``repro.runner.tasks.run_experiment_task``).
    Raises :class:`KeyError` for an unknown id.  The registry import is
    deferred because :mod:`repro.experiments` imports this module first.
    """
    from repro.experiments import ALL_EXPERIMENTS

    if exp_id not in ALL_EXPERIMENTS:
        known = ", ".join(ALL_EXPERIMENTS)
        raise KeyError(f"unknown experiment id {exp_id!r} (known: {known})")
    return ALL_EXPERIMENTS[exp_id](**params)


@dataclass
class CaseStudyContext:
    """Prepared state of the MPEG-2 case study (paper §3.2).

    Holds the 14 clips, their per-clip workload and arrival curves, the
    cross-clip envelopes (the paper takes "maximum over all respective
    curves of individual video clips"), and the two frequency bounds.
    """

    frames: int
    buffer_size: int
    clips: list[SyntheticClip]
    gammas_upper: list[WorkloadCurve]
    gammas_lower: list[WorkloadCurve]
    alphas: list[PiecewiseLinearCurve]
    gamma_u: WorkloadCurve
    gamma_l: WorkloadCurve
    alpha: PiecewiseLinearCurve
    wcet: float
    bcet: float
    f_gamma: FrequencyBound
    f_wcet: FrequencyBound
    input_digest: str = ""

    @property
    def clip_names(self) -> list[str]:
        """Names of the 14 clips, in order."""
        return [c.profile.name for c in self.clips]


_CONTEXT_CACHE: dict[tuple, CaseStudyContext] = {}


def _chunked(arr, size: int):
    """Yield *arr* in consecutive chunks of *size* (bounded-memory feed)."""
    for start in range(0, arr.size, size):
        yield arr[start : start + size]


def case_study_context(
    *,
    frames: int = 72,
    buffer_size: int = BUFFER_ONE_FRAME,
    dense_limit: int = 4096,
    growth: float = 1.015,
    stream_chunk: int | None = None,
) -> CaseStudyContext:
    """Build (or fetch the cached) case-study context.

    *frames* trades fidelity against runtime: 72 frames (≈3 s, six GOPs,
    ≈117 k macroblocks per clip) reproduces the paper's numbers in about
    half a minute; smaller values are used by quick tests.

    *stream_chunk* switches the workload-curve extraction to the
    bounded-memory streaming fold
    (:meth:`~repro.core.workload.WorkloadCurvePair.from_demand_stream`),
    feeding each clip's demand trace in chunks of that many events.  The
    resulting curves are bit-identical to the one-shot extraction; the
    knob exists so long-trace sweeps (CLI ``--stream-chunk``, parallel
    runner) bound per-worker memory.
    """
    frames = check_integer(frames, "frames", minimum=12)
    buffer_size = check_integer(buffer_size, "buffer_size", minimum=1)
    if stream_chunk is not None:
        stream_chunk = check_integer(stream_chunk, "stream_chunk", minimum=1)
    key = (frames, buffer_size, dense_limit, growth, stream_chunk)
    if key in _CONTEXT_CACHE:
        ctx = _CONTEXT_CACHE[key]
        obs.record_input("case_study_context", ctx.input_digest)
        return ctx

    with obs.tracer.span(
        "case_study.build", frames=frames, buffer_size=buffer_size
    ):
        clips = standard_clips(frames=frames)
        gammas_u: list[WorkloadCurve] = []
        gammas_l: list[WorkloadCurve] = []
        alphas: list[PiecewiseLinearCurve] = []
        digest_parts: list[Any] = [frames, buffer_size, dense_limit, growth]
        for clip in clips:
            with obs.tracer.span("case_study.clip", clip=clip.profile.name):
                data = clip.generate()
                digest_parts += [clip.profile.name, data.pe2_cycles, data.pe1_output]
                k_grid = make_k_grid(
                    data.pe2_cycles.size, dense_limit=dense_limit, growth=growth
                )
                if stream_chunk is None:
                    gammas_u.append(
                        WorkloadCurve.from_demand_array(data.pe2_cycles, "upper", k_values=k_grid)
                    )
                    gammas_l.append(
                        WorkloadCurve.from_demand_array(data.pe2_cycles, "lower", k_values=k_grid)
                    )
                else:
                    pair = WorkloadCurvePair.from_demand_stream(
                        _chunked(data.pe2_cycles, stream_chunk),
                        k_values=k_grid,
                        total=int(data.pe2_cycles.size),
                    )
                    gammas_u.append(pair.upper)
                    gammas_l.append(pair.lower)
                n_grid = make_k_grid(
                    data.pe1_output.size, dense_limit=dense_limit, growth=growth
                )
                alphas.append(from_trace_upper(data.pe1_output, n_values=n_grid))

        with obs.tracer.span("case_study.envelopes", clips=len(clips)):
            gamma_u = envelope_upper(gammas_u)
            gamma_l = envelope_lower(gammas_l)
            alpha = alphas[0]
            for a in alphas[1:]:
                alpha = alpha.maximum(a)
        wcet = max(g.per_activation_bound for g in gammas_u)
        bcet = min(g.per_activation_bound for g in gammas_l)
        with obs.tracer.span("case_study.frequency_bounds"):
            f_gamma = minimum_frequency_curves(alpha, gamma_u, buffer_size)
            f_wcet = minimum_frequency_wcet(alpha, wcet, buffer_size)

        ctx = CaseStudyContext(
            frames=frames,
            buffer_size=buffer_size,
            clips=clips,
            gammas_upper=gammas_u,
            gammas_lower=gammas_l,
            alphas=alphas,
            gamma_u=gamma_u,
            gamma_l=gamma_l,
            alpha=alpha,
            wcet=wcet,
            bcet=bcet,
            f_gamma=f_gamma,
            f_wcet=f_wcet,
            input_digest=digest_of(*digest_parts).hex(),
        )
    _CONTEXT_CACHE[key] = ctx
    obs.record_input("case_study_context", ctx.input_digest)
    return ctx


#: Warm evaluators shared by every sweep point this process evaluates —
#: an LRU pool keyed by parameter digest (see
#: :mod:`repro.service.evalpool`); the analysis service's workers and the
#: batch runner's workers both warm it through
#: :func:`sweep_frequency_evaluator`.
_EVALUATOR_POOL = None


def _evaluator_pool():
    """The process-wide evaluator pool (created on first use — the
    service package import is deferred to keep experiment import light)."""
    global _EVALUATOR_POOL
    if _EVALUATOR_POOL is None:
        from repro.service.evalpool import EvaluatorPool

        _EVALUATOR_POOL = EvaluatorPool()
    return _EVALUATOR_POOL


def sweep_frequency_evaluator(
    *,
    frames: int = 72,
    dense_limit: int = 4096,
    growth: float = 1.015,
    stream_chunk: int | None = None,
    max_segments: int | None = None,
    compact_error: float | None = None,
    backend: str | None = None,
):
    """Warm-started frequency evaluator over the cached case-study context.

    Returns the worker's cached
    :class:`~repro.analysis.frequency.FrequencySweepEvaluator` for this
    parameter combination: the candidate window grid, the optional
    conservative arrival compaction (*max_segments*/*compact_error* — see
    :func:`repro.curves.compact.compact_upper`), and the per-buffer
    ``γ^u`` demand tables are computed once and shared by every sweep
    point the worker evaluates.  *backend* pins the min-plus kernel
    backend the evaluator's curve algebra runs under (see
    :mod:`repro.curves.backends`; ``None`` inherits the process-wide
    choice).  Without compaction knobs the evaluator reproduces the exact
    per-point computation bit-identically.
    """
    from repro.analysis.frequency import FrequencySweepEvaluator

    def build() -> FrequencySweepEvaluator:
        ctx = case_study_context(
            frames=frames,
            dense_limit=dense_limit,
            growth=growth,
            stream_chunk=stream_chunk,
        )
        return FrequencySweepEvaluator(
            ctx.alpha,
            ctx.gamma_u,
            wcet=ctx.wcet,
            max_segments=max_segments,
            max_error=compact_error,
            backend=backend,
        )

    evaluator = _evaluator_pool().get(
        build,
        frames=frames,
        dense_limit=dense_limit,
        growth=growth,
        stream_chunk=stream_chunk,
        max_segments=max_segments,
        compact_error=compact_error,
        backend=backend,
    )
    # (re-)record the context input on pool hits too, so manifests of
    # warm points still carry the clip-trace digest — the context cache
    # makes this free
    case_study_context(
        frames=frames,
        dense_limit=dense_limit,
        growth=growth,
        stream_chunk=stream_chunk,
    )
    return evaluator
