"""A6 — extension: the characterization ladder.

The paper contrasts two endpoints — the single-value WCET and the
trace-measured workload curve.  In between sits the SPI-style per-type
interval characterization (§2.1's analytical mode): build ``γᵘ`` from the
*type sequence* with each macroblock charged its type's WCET.  That curve
is valid for hard real-time analysis (it holds for every stream with the
same type pattern constraints), unlike the measured curve which the paper
notes is "guaranteed for this trace only".

This harness climbs the ladder on the case study and reports what each
refinement buys:

1. single WCET (eq. (10));
2. typed intervals — curves from per-type WCETs over the real type
   sequences (hard-RT valid given the type patterns);
3. measured demands — the paper's Figure 6 curves (soft-RT).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.frequency import minimum_frequency_curves, minimum_frequency_wcet
from repro.core.operations import envelope_upper
from repro.core.workload import WorkloadCurve
from repro.experiments.common import BUFFER_ONE_FRAME, ExperimentResult, case_study_context, harnessed
from repro.mpeg.macroblock import CodingClass, FrameType
from repro.util.report import TextTable, format_quantity
from repro.util.staircase import make_k_grid

__all__ = ["run"]

_FRAME_OF_CODE = [FrameType.I, FrameType.P, FrameType.B]
_CLASS_OF_CODE = list(CodingClass)


def _interval_demands(clip) -> np.ndarray:
    """Per-event worst-case demand by type: wcet(type(E_i))."""
    data = clip.generate()
    profile = clip.pe2_model.profile()
    wcet_by_pair = np.zeros((3, 3))
    for fc in range(3):
        for cc in range(3):
            name = f"{_FRAME_OF_CODE[fc].value}/{_CLASS_OF_CODE[cc].value}"
            wcet_by_pair[fc, cc] = (
                profile.wcet(name) if name in profile else np.nan
            )
    return wcet_by_pair[data.frame_type_code, data.coding_code]


@harnessed
def run(*, frames: int = 72, buffer_size: int = BUFFER_ONE_FRAME) -> ExperimentResult:
    """Compute the eq. (9) bound under each characterization level."""
    ctx = case_study_context(frames=frames, buffer_size=buffer_size)

    # level 2: typed-interval curves over the actual type sequences
    interval_curves = []
    for clip in ctx.clips:
        demands = _interval_demands(clip)
        grid = make_k_grid(demands.size, dense_limit=1024, growth=1.04)
        interval_curves.append(
            WorkloadCurve.from_demand_array(demands, "upper", k_values=grid)
        )
    gamma_interval = envelope_upper(interval_curves)

    f_wcet = minimum_frequency_wcet(ctx.alpha, gamma_interval.per_activation_bound, buffer_size)
    f_interval = minimum_frequency_curves(ctx.alpha, gamma_interval, buffer_size)
    f_measured = ctx.f_gamma

    table = TextTable(
        ["characterization", "validity", "F_min", "saving vs WCET"],
        title=f"the characterization ladder (b = {buffer_size} macroblocks)",
    )
    rows = []
    for label, validity, bound in [
        ("single WCET (eq. 10)", "hard RT", f_wcet),
        ("per-type intervals + type patterns", "hard RT (given patterns)", f_interval),
        ("measured workload curves (eq. 9)", "this trace class (soft RT)", f_measured),
    ]:
        saving = 1.0 - bound.frequency / f_wcet.frequency
        table.add_row(
            [label, validity, format_quantity(bound.frequency, "Hz"), f"{saving * 100:.1f}%"]
        )
        rows.append({"label": label, "f_min": bound.frequency, "saving": saving})
    report = "\n".join(
        [
            table.render(),
            "",
            "each refinement of the demand characterization buys a tighter "
            "clock; the typed-interval rung keeps hard-real-time validity "
            "(the paper's §2.2 analytical mode), the measured rung trades it "
            "for the full gain (the paper's §3.2 trace mode)",
        ]
    )
    return ExperimentResult(
        experiment_id="A6",
        title="Characterization ladder: WCET vs intervals vs measured curves",
        paper_reference="§2.1-§2.2 modes, quantified on the case study",
        report=report,
        data={"rows": rows},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
