"""E2 — Figure 2: workload curves of the polling task (paper Example 1).

The paper's example uses ``θ_min = 3T``, ``θ_max = 5T``; we use the
canonical parameters ``T = 1``, ``e_p``, ``e_c`` and plot ``γ^u``/``γ^l``
against the WCET-only and BCET-only lines, reporting the grey-area gain.
"""

from __future__ import annotations

import numpy as np

from repro.core.analytical import PollingTask
from repro.experiments.common import ExperimentResult, harnessed
from repro.util.report import TextTable, ascii_xy_plot

__all__ = ["default_polling_task", "run"]


def default_polling_task() -> PollingTask:
    """Figure 2's parameters: ``θ_min = 3T``, ``θ_max = 5T``."""
    return PollingTask(period=1.0, theta_min=3.0, theta_max=5.0, e_p=8.0, e_c=2.0)


@harnessed
def run(*, k_max: int = 20) -> ExperimentResult:
    """Regenerate the Figure 2 curves on ``k = 1..k_max``."""
    task = default_polling_task()
    pair = task.curves(k_max)
    ks = np.arange(1, k_max + 1)
    upper = pair.upper(ks)
    lower = pair.lower(ks)
    wcet_line = ks * task.e_p
    bcet_line = ks * task.e_c

    table = TextTable(
        ["k", "n_max", "n_min", "gamma_u", "gamma_l", "k*e_p (WCET only)", "k*e_c (BCET only)"],
        title="Polling task (theta_min=3T, theta_max=5T)",
    )
    for i, k in enumerate(ks):
        table.add_row(
            [int(k), task.n_max(int(k)), task.n_min(int(k)), upper[i], lower[i], wcet_line[i], bcet_line[i]]
        )

    plot = ascii_xy_plot(
        ks.tolist(),
        {
            "WCET only": wcet_line.tolist(),
            "gamma_u": upper.tolist(),
            "gamma_l": lower.tolist(),
            "BCET only": bcet_line.tolist(),
        },
        title="Figure 2: execution requirement vs # of executions",
    )
    gain_at_12 = pair.gain_over_wcet(12)
    report = "\n".join(
        [
            table.render(),
            "",
            plot,
            "",
            f"tightening over WCET-only at k=12: {gain_at_12 * 100:.1f}% "
            "(the grey-shaded area of Figure 2)",
        ]
    )
    return ExperimentResult(
        experiment_id="E2",
        title="Analytical workload curves of the polling task",
        paper_reference="Figure 2",
        report=report,
        data={
            "k": ks.tolist(),
            "gamma_u": upper.tolist(),
            "gamma_l": lower.tolist(),
            "wcet_line": wcet_line.tolist(),
            "bcet_line": bcet_line.tolist(),
            "gain_at_12": gain_at_12,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
