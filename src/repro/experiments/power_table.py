"""A3 — extension: power implications of the frequency bounds.

The paper motivates tighter characterization with "unreasonably high costs
and/or power consumption" but reports only frequencies.  This harness turns
the E5 result into the designer-facing numbers: dynamic power and the
voltage-frequency-scaled energy saving.
"""

from __future__ import annotations

from repro.analysis.energy import PowerModel, dvs_savings
from repro.experiments.common import BUFFER_ONE_FRAME, ExperimentResult, case_study_context, harnessed
from repro.util.report import TextTable, format_quantity

__all__ = ["run"]


@harnessed
def run(*, frames: int = 72, buffer_size: int = BUFFER_ONE_FRAME) -> ExperimentResult:
    """Power savings of clocking PE2 at ``F^γ_min`` instead of ``F^w_min``."""
    ctx = case_study_context(frames=frames, buffer_size=buffer_size)
    table = TextTable(
        ["power model", "P(F_gamma)/P(F_wcet)", "power saving"],
        title=(
            f"PE2 power at F_gamma = {format_quantity(ctx.f_gamma.frequency, 'Hz')} "
            f"vs F_wcet = {format_quantity(ctx.f_wcet.frequency, 'Hz')}"
        ),
    )
    rows = []
    for label, exponent in [
        ("frequency scaling only (P ~ F)", 1.0),
        ("partial voltage scaling (P ~ F^2)", 2.0),
        ("full DVS (P ~ F^3)", 3.0),
    ]:
        s = dvs_savings(ctx.f_gamma, ctx.f_wcet, model=PowerModel(exponent=exponent))
        table.add_row([label, f"{1 - s.power_saving:.3f}", f"{s.power_saving * 100:.1f}%"])
        rows.append({"exponent": exponent, "power_saving": s.power_saving})
    report = "\n".join(
        [
            table.render(),
            "",
            "the paper's >50% frequency saving compounds to ~90% dynamic power "
            "under full voltage-frequency scaling",
        ]
    )
    return ExperimentResult(
        experiment_id="A3",
        title="Power savings from the workload-curve frequency bound",
        paper_reference="motivation (§1) quantified",
        report=report,
        data={"rows": rows},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
