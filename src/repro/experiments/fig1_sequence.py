"""E1 — Figure 1: event sequence with typed events and windowed demand sums.

The paper illustrates the partial-demand sums with a 9-event sequence of
types a/b/c and the values ``γ_b(3, 4) = 5`` and ``γ_w(3, 4) = 13``.  With
the per-type intervals ``a = [2, 4]``, ``b = [1, 3]``, ``c = [1, 3]`` the
sequence ``a b a b c c a a c`` reproduces exactly those numbers, and the
derived workload curves show the compaction from a concrete sequence to a
class of sequences.
"""

from __future__ import annotations

import numpy as np

from repro.core.events import ExecutionProfile
from repro.core.trace import EventTrace
from repro.core.workload import WorkloadCurvePair
from repro.experiments.common import ExperimentResult, harnessed
from repro.util.report import TextTable

__all__ = ["FIGURE1_SEQUENCE", "figure1_profile", "figure1_trace", "run"]

#: The event-type sequence of paper Figure 1.
FIGURE1_SEQUENCE = "ababccaac"


def figure1_profile() -> ExecutionProfile:
    """Per-type ``[bcet, wcet]`` intervals consistent with Figure 1."""
    return ExecutionProfile({"a": (2, 4), "b": (1, 3), "c": (1, 3)})


def figure1_trace() -> EventTrace:
    """The 9-event trace of Figure 1."""
    return EventTrace.from_type_names(FIGURE1_SEQUENCE, figure1_profile())


@harnessed
def run() -> ExperimentResult:
    """Regenerate the Figure 1 quantities and the trace's workload curves."""
    trace = figure1_trace()
    gamma_b_34 = trace.gamma_b(3, 4)
    gamma_w_34 = trace.gamma_w(3, 4)

    pair = WorkloadCurvePair.from_trace(trace, demands="interval")
    ks = np.arange(1, len(trace) + 1)
    table = TextTable(
        ["k", "gamma_l(k)", "gamma_u(k)", "k*BCET", "k*WCET"],
        title="Workload curves of the Figure 1 sequence",
    )
    for k in ks:
        table.add_row([int(k), pair.lower(k), pair.upper(k), int(k) * 1, int(k) * 4])

    report = "\n".join(
        [
            f"sequence: {' '.join(FIGURE1_SEQUENCE)}",
            f"gamma_b(3, 4) = {gamma_b_34:g}   (paper: 5)",
            f"gamma_w(3, 4) = {gamma_w_34:g}   (paper: 13)",
            "",
            table.render(),
        ]
    )
    return ExperimentResult(
        experiment_id="E1",
        title="Typed event sequence and windowed demand sums",
        paper_reference="Figure 1",
        report=report,
        data={
            "gamma_b_3_4": gamma_b_34,
            "gamma_w_3_4": gamma_w_34,
            "gamma_u": pair.upper(ks).tolist(),
            "gamma_l": pair.lower(ks).tolist(),
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
