"""E4 — Figure 6: workload curves of the MPEG-2 IDCT+MC stage.

The paper extracts ``γ^u``/``γ^l`` from simulator traces using windows of
24 full frames, takes the maximum over the 14 clips, and plots them against
the single-value WCET/BCET lines.  This harness does the same on the
synthetic clips.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, case_study_context, harnessed
from repro.util.report import TextTable, ascii_xy_plot

__all__ = ["run"]


@harnessed
def run(*, frames: int = 72) -> ExperimentResult:
    """Regenerate the Figure 6 curves (envelope over the 14 clips)."""
    ctx = case_study_context(frames=frames)
    # sample on a frame-aligned grid up to the paper's 24-frame window
    mb_per_frame = ctx.clips[0].mb_per_frame
    ks = np.unique(
        np.concatenate(
            [
                [1, 10, 100, 500],
                (np.arange(1, 25) * mb_per_frame * 0.5).astype(np.int64),
            ]
        )
    ).astype(np.int64)
    ks = ks[ks >= 1]
    upper = ctx.gamma_u(ks)
    lower = ctx.gamma_l(ks)
    wcet_line = ks * ctx.wcet
    bcet_line = ks * ctx.bcet

    table = TextTable(
        ["k (events)", "gamma_u", "gamma_l", "k*WCET", "k*BCET", "gamma_u/k"],
        title="Figure 6: workload curves of IDCT+MC (envelope over 14 clips)",
    )
    for i, k in enumerate(ks):
        table.add_row(
            [int(k), f"{upper[i]:.3e}", f"{lower[i]:.3e}", f"{wcet_line[i]:.3e}",
             f"{bcet_line[i]:.3e}", f"{upper[i] / k:.0f}"]
        )

    plot = ascii_xy_plot(
        ks.tolist(),
        {
            "WCET": wcet_line.tolist(),
            "gamma_u": upper.tolist(),
            "gamma_l": lower.tolist(),
            "BCET": bcet_line.tolist(),
        },
        title="Figure 6: execution requirement vs # of events",
    )
    report = "\n".join(
        [
            f"WCET = gamma_u(1) = {ctx.wcet:.0f} cycles, "
            f"BCET = gamma_l(1) = {ctx.bcet:.0f} cycles",
            f"long-run upper rate: {ctx.gamma_u.long_run_rate:.0f} cycles/event "
            f"(WCET/rate ratio: {ctx.wcet / ctx.gamma_u.long_run_rate:.2f})",
            "",
            table.render(),
            "",
            plot,
        ]
    )
    return ExperimentResult(
        experiment_id="E4",
        title="MPEG-2 workload curves vs WCET/BCET",
        paper_reference="Figure 6",
        report=report,
        data={
            "k": ks.tolist(),
            "gamma_u": upper.tolist(),
            "gamma_l": lower.tolist(),
            "wcet": ctx.wcet,
            "bcet": ctx.bcet,
            "wcet_ratio": ctx.wcet / ctx.gamma_u.long_run_rate,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
