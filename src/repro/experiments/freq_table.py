"""E5 — the headline result: minimum PE2 frequency, eq. (9) vs eq. (10).

Paper: ``F^γ_min ≈ 340 MHz`` vs ``F^w_min ≈ 710 MHz`` for ``b = 1620``
macroblocks (one frame) — over 50 % saving from characterizing the task
with workload curves instead of a single WCET.
"""

from __future__ import annotations

from repro.analysis.frequency import verify_service_constraint
from repro.experiments.common import BUFFER_ONE_FRAME, ExperimentResult, case_study_context, harnessed
from repro.util.report import TextTable, format_quantity

__all__ = ["run"]

#: The paper's reported values, for side-by-side comparison.
PAPER_F_GAMMA_HZ = 340e6
PAPER_F_WCET_HZ = 710e6


@harnessed
def run(*, frames: int = 72, buffer_size: int = BUFFER_ONE_FRAME) -> ExperimentResult:
    """Compute both frequency bounds and compare against the paper."""
    ctx = case_study_context(frames=frames, buffer_size=buffer_size)
    savings = ctx.f_gamma.savings_over(ctx.f_wcet)
    constraint_ok = verify_service_constraint(
        ctx.alpha, ctx.gamma_u, buffer_size, ctx.f_gamma.frequency * (1 + 1e-9)
    )

    table = TextTable(
        ["method", "F_min (ours)", "F_min (paper)", "critical window"],
        title=f"Minimum PE2 clock frequency, b = {buffer_size} macroblocks",
    )
    table.add_row(
        [
            "workload curves (eq. 9)",
            format_quantity(ctx.f_gamma.frequency, "Hz"),
            format_quantity(PAPER_F_GAMMA_HZ, "Hz"),
            f"{ctx.f_gamma.critical_delta:.3f} s",
        ]
    )
    table.add_row(
        [
            "WCET only (eq. 10)",
            format_quantity(ctx.f_wcet.frequency, "Hz"),
            format_quantity(PAPER_F_WCET_HZ, "Hz"),
            f"{ctx.f_wcet.critical_delta:.3f} s",
        ]
    )
    report = "\n".join(
        [
            table.render(),
            "",
            f"savings: {savings * 100:.1f}%  (paper: 'over 50% of savings')",
            f"ratio F_w/F_gamma: {ctx.f_wcet.frequency / ctx.f_gamma.frequency:.2f} "
            f"(paper: {PAPER_F_WCET_HZ / PAPER_F_GAMMA_HZ:.2f})",
            f"eq. (8) service constraint verified at F_gamma: {constraint_ok}",
        ]
    )
    return ExperimentResult(
        experiment_id="E5",
        title="Minimum frequency: workload curves vs WCET",
        paper_reference="Equations (9)/(10)",
        report=report,
        data={
            "f_gamma_hz": ctx.f_gamma.frequency,
            "f_wcet_hz": ctx.f_wcet.frequency,
            "savings": savings,
            "constraint_ok": constraint_ok,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
