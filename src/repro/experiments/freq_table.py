"""E5 — the headline result: minimum PE2 frequency, eq. (9) vs eq. (10).

Paper: ``F^γ_min ≈ 340 MHz`` vs ``F^w_min ≈ 710 MHz`` for ``b = 1620``
macroblocks (one frame) — over 50 % saving from characterizing the task
with workload curves instead of a single WCET.
"""

from __future__ import annotations

from repro.analysis.frequency import FrequencySweepEvaluator, verify_service_constraint
from repro.experiments.common import BUFFER_ONE_FRAME, ExperimentResult, case_study_context, harnessed
from repro.util.report import TextTable, format_quantity

__all__ = ["run"]

#: The paper's reported values, for side-by-side comparison.
PAPER_F_GAMMA_HZ = 340e6
PAPER_F_WCET_HZ = 710e6


@harnessed
def run(
    *,
    frames: int = 72,
    buffer_size: int = BUFFER_ONE_FRAME,
    max_segments: int | None = None,
    compact_error: float | None = None,
    bisect: bool = False,
) -> ExperimentResult:
    """Compute both frequency bounds and compare against the paper.

    The default path is exact and reproduces the headline numbers
    byte-for-byte.  *max_segments*/*compact_error* conservatively compact
    the arrival curve first (bounds can only grow — see
    :mod:`repro.curves.compact`); *bisect* computes ``F^γ_min`` by the
    monotone eq. (8) feasibility bisection instead of the closed-form
    eq. (9) scan.
    """
    ctx = case_study_context(frames=frames, buffer_size=buffer_size)
    if max_segments is not None or compact_error is not None or bisect:
        evaluator = FrequencySweepEvaluator(
            ctx.alpha,
            ctx.gamma_u,
            wcet=ctx.wcet,
            max_segments=max_segments,
            max_error=compact_error,
        )
        f_gamma = evaluator.bisect(buffer_size) if bisect else evaluator.bound_curves(buffer_size)
        f_wcet = evaluator.bound_wcet(buffer_size)
    else:
        evaluator = None
        f_gamma, f_wcet = ctx.f_gamma, ctx.f_wcet
    savings = f_gamma.savings_over(f_wcet)
    constraint_ok = verify_service_constraint(
        ctx.alpha, ctx.gamma_u, buffer_size, f_gamma.frequency * (1 + 1e-9)
    )

    table = TextTable(
        ["method", "F_min (ours)", "F_min (paper)", "critical window"],
        title=f"Minimum PE2 clock frequency, b = {buffer_size} macroblocks",
    )
    table.add_row(
        [
            "workload curves (eq. 9)",
            format_quantity(f_gamma.frequency, "Hz"),
            format_quantity(PAPER_F_GAMMA_HZ, "Hz"),
            f"{f_gamma.critical_delta:.3f} s",
        ]
    )
    table.add_row(
        [
            "WCET only (eq. 10)",
            format_quantity(f_wcet.frequency, "Hz"),
            format_quantity(PAPER_F_WCET_HZ, "Hz"),
            f"{f_wcet.critical_delta:.3f} s",
        ]
    )
    report = "\n".join(
        [
            table.render(),
            "",
            f"savings: {savings * 100:.1f}%  (paper: 'over 50% of savings')",
            f"ratio F_w/F_gamma: {f_wcet.frequency / f_gamma.frequency:.2f} "
            f"(paper: {PAPER_F_WCET_HZ / PAPER_F_GAMMA_HZ:.2f})",
            f"eq. (8) service constraint verified at F_gamma: {constraint_ok}",
        ]
    )
    data = {
        "f_gamma_hz": f_gamma.frequency,
        "f_wcet_hz": f_wcet.frequency,
        "savings": savings,
        "constraint_ok": constraint_ok,
    }
    if f_gamma.method != "workload-curves":
        data["f_gamma_method"] = f_gamma.method
    if evaluator is not None and evaluator.compaction is not None:
        data["compaction_abs_error"] = evaluator.compaction.max_abs_error
        data["compaction_segments"] = evaluator.compaction.output_segments
    return ExperimentResult(
        experiment_id="E5",
        title="Minimum frequency: workload curves vs WCET",
        paper_reference="Equations (9)/(10)",
        report=report,
        data=data,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
