"""E6 — Figure 7: simulated FIFO backlogs at ``F^γ_min``.

The paper runs the transaction-level simulator with PE2 clocked at the
computed ``F^γ_min`` and reports, per clip, the maximum backlog registered
in the FIFO, normalized to the buffer size: all bars must stay at or below
1.0 (the bound is safe), and the taller bars show the bound is not wildly
pessimistic.
"""

from __future__ import annotations

from repro.experiments.common import BUFFER_ONE_FRAME, ExperimentResult, case_study_context, harnessed
from repro.simulation.pipeline import replay_pipeline
from repro.util.report import ascii_bar_chart, format_quantity

__all__ = ["run"]


@harnessed
def run(*, frames: int = 72, buffer_size: int = BUFFER_ONE_FRAME) -> ExperimentResult:
    """Simulate all 14 clips at ``F^γ_min`` and chart normalized backlogs."""
    ctx = case_study_context(frames=frames, buffer_size=buffer_size)
    frequency = ctx.f_gamma.frequency
    names = []
    normalized = []
    overflowed = []
    for clip in ctx.clips:
        data = clip.generate()
        result = replay_pipeline(
            data.pe1_output, data.pe2_cycles, frequency, capacity=buffer_size
        )
        names.append(clip.profile.name)
        normalized.append(result.max_backlog / buffer_size)
        overflowed.append(result.overflowed)

    chart = ascii_bar_chart(
        names,
        normalized,
        max_value=1.0,
        title=(
            "Figure 7: max FIFO backlog / buffer size at "
            f"F = {format_quantity(frequency, 'Hz')} (bound: 1.0)"
        ),
    )
    report = "\n".join(
        [
            chart,
            "",
            f"overflows: {sum(overflowed)} of {len(overflowed)} clips "
            "(paper: none — the bound is safe)",
            f"max normalized backlog: {max(normalized):.3f}",
        ]
    )
    return ExperimentResult(
        experiment_id="E6",
        title="Simulated FIFO backlogs at F_gamma_min",
        paper_reference="Figure 7",
        report=report,
        data={
            "clips": names,
            "normalized_backlogs": normalized,
            "any_overflow": any(overflowed),
            "frequency_hz": frequency,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
