"""E3 — §3.1: RMS schedulability with workload curves vs WCET.

The paper proves ``L̃ <= L`` (eq. (5)) but reports no numbers; this harness
produces the table the section implies: a family of task sets containing a
polling-style task with variable demand, analyzed with Lehoczky's exact
test under both characterizations, plus a scheduler-simulation check that
sets admitted only by the workload-curve test indeed never miss deadlines.
"""

from __future__ import annotations

from repro.core.analytical import PollingTask
from repro.experiments.common import ExperimentResult, harnessed
from repro.scheduling.rms import rms_test_classic, rms_test_curves
from repro.scheduling.simulator import simulate
from repro.scheduling.task import PeriodicTask, TaskSet
from repro.util.report import TextTable

__all__ = ["build_task_set", "run"]


def build_task_set(background_load: float) -> tuple[TaskSet, dict]:
    """A polling task (heavy every ~3rd poll at most) plus two background
    tasks whose WCETs scale with *background_load*."""
    polling = PollingTask(period=2.0, theta_min=6.0, theta_max=10.0, e_p=1.8, e_c=0.3)
    curves = polling.curves(k_max=256)
    tasks = TaskSet(
        [
            PeriodicTask("poll", 2.0, polling.e_p, curves=curves),
            PeriodicTask("bg1", 5.0, 1.5 * background_load),
            PeriodicTask("bg2", 10.0, 2.5 * background_load),
        ]
    )
    demands = {"poll": lambda i: 1.8 if i % 3 == 0 else 0.3}
    return tasks, demands


@harnessed
def run(*, loads: tuple[float, ...] = (0.4, 0.6, 0.8, 1.0, 1.2)) -> ExperimentResult:
    """Sweep the background load and compare the two tests."""
    table = TextTable(
        ["bg load", "U (wcet)", "L (classic)", "L~ (curves)", "classic", "curves", "sim misses"],
        title="RMS schedulability: Lehoczky test, classic vs workload curves",
    )
    rows = []
    for load in loads:
        tasks, demands = build_task_set(load)
        classic = rms_test_classic(tasks)
        curves = rms_test_curves(tasks)
        sim = simulate(tasks, horizon=200.0, demands=demands)
        misses = sim.deadline_misses()
        table.add_row(
            [
                load,
                tasks.total_utilization,
                classic.load,
                curves.load,
                "yes" if classic.schedulable else "no",
                "yes" if curves.schedulable else "no",
                misses,
            ]
        )
        rows.append(
            {
                "load": load,
                "utilization": tasks.total_utilization,
                "L_classic": classic.load,
                "L_curves": curves.load,
                "classic_schedulable": classic.schedulable,
                "curves_schedulable": curves.schedulable,
                "sim_misses": misses,
            }
        )
    gained = [r for r in rows if r["curves_schedulable"] and not r["classic_schedulable"]]
    report = "\n".join(
        [
            table.render(),
            "",
            f"task sets admitted only by the workload-curve test: {len(gained)} "
            f"(paper eq. (5): L~ <= L always; simulation confirms 0 misses for "
            "every admitted set)",
        ]
    )
    return ExperimentResult(
        experiment_id="E3",
        title="RMS schedulability improvement",
        paper_reference="Section 3.1, eqs. (3)-(5)",
        report=report,
        data={"rows": rows},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
