"""A1 — ablation: frequency bounds across FIFO sizes.

DESIGN.md calls out the buffer size as the central design parameter of
eq. (9): the larger the FIFO, the longer the averaging window the workload
curve can exploit, so the γ-saving should *grow* with the buffer — this
sweep quantifies that (the paper only evaluates b = one frame).
"""

from __future__ import annotations

from repro.analysis.frequency import minimum_frequency_sweep
from repro.experiments.common import BUFFER_ONE_FRAME, ExperimentResult, case_study_context, harnessed
from repro.util.report import TextTable, format_quantity

__all__ = ["run"]


@harnessed
def run(
    *,
    frames: int = 72,
    buffer_sizes: tuple[int, ...] = (405, 810, 1620, 3240, 6480),
) -> ExperimentResult:
    """Sweep the FIFO size (in macroblocks) and recompute both bounds."""
    ctx = case_study_context(frames=frames)
    table = TextTable(
        ["b (mb)", "b (frames)", "F_gamma", "F_wcet", "savings"],
        title="Ablation: minimum frequency vs FIFO size",
    )
    rows = []
    bounds = minimum_frequency_sweep(ctx.alpha, ctx.gamma_u, ctx.wcet, buffer_sizes)
    for b, (fg, fw) in zip(buffer_sizes, bounds):
        savings = fg.savings_over(fw)
        table.add_row(
            [
                b,
                f"{b / BUFFER_ONE_FRAME:.2f}",
                format_quantity(fg.frequency, "Hz"),
                format_quantity(fw.frequency, "Hz"),
                f"{savings * 100:.1f}%",
            ]
        )
        rows.append(
            {
                "buffer": b,
                "f_gamma": fg.frequency,
                "f_wcet": fw.frequency,
                "savings": savings,
            }
        )
    report = "\n".join(
        [
            table.render(),
            "",
            "both bounds fall with larger buffers; the workload-curve bound "
            "must stay at or below the WCET bound everywhere (eq. (5))",
        ]
    )
    return ExperimentResult(
        experiment_id="A1",
        title="Buffer-size ablation of the frequency bounds",
        paper_reference="extension of eq. (9)/(10)",
        report=report,
        data={"rows": rows},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
