"""Experiment harnesses — one module per paper figure/table (DESIGN.md §3).

| id | artifact          | module                 |
|----|-------------------|------------------------|
| E1 | Figure 1          | `fig1_sequence`        |
| E2 | Figure 2          | `fig2_polling`         |
| E3 | §3.1 (analytic)   | `rms_table`            |
| E4 | Figure 6          | `fig6_workload_curves` |
| E5 | eqs. (9)/(10)     | `freq_table`           |
| E6 | Figure 7          | `fig7_backlogs`        |
| E7 | eqs. (6)/(7)      | `backlog_bounds`       |
| E8 | Figure 4          | `conversion_demo`      |
| A1 | buffer ablation   | `ablation_buffer`      |
| A2 | variability abl.  | `ablation_variability` |
| A3 | power savings     | `power_table`          |
| A4 | greedy shaping    | `shaper_table`         |
| A5 | acceptance ratio  | `acceptance_table`     |
| A6 | charact. ladder   | `ladder_table`         |

Every module exposes ``run(**params) -> ExperimentResult``; running a
module as a script prints the rendered report.
"""

from repro.experiments.common import (
    BUFFER_ONE_FRAME,
    CaseStudyContext,
    ExperimentResult,
    case_study_context,
    harnessed,
    run_experiment,
)
from repro.experiments import (
    fig1_sequence,
    fig2_polling,
    rms_table,
    fig6_workload_curves,
    freq_table,
    fig7_backlogs,
    backlog_bounds,
    conversion_demo,
    ablation_buffer,
    ablation_variability,
    power_table,
    shaper_table,
    acceptance_table,
    ladder_table,
)

ALL_EXPERIMENTS = {
    "E1": fig1_sequence.run,
    "E2": fig2_polling.run,
    "E3": rms_table.run,
    "E4": fig6_workload_curves.run,
    "E5": freq_table.run,
    "E6": fig7_backlogs.run,
    "E7": backlog_bounds.run,
    "E8": conversion_demo.run,
    "A1": ablation_buffer.run,
    "A2": ablation_variability.run,
    "A3": power_table.run,
    "A4": shaper_table.run,
    "A5": acceptance_table.run,
    "A6": ladder_table.run,
}

__all__ = [
    "BUFFER_ONE_FRAME",
    "CaseStudyContext",
    "ExperimentResult",
    "case_study_context",
    "harnessed",
    "run_experiment",
    "ALL_EXPERIMENTS",
]
