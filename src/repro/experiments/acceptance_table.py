"""A5 — extension: acceptance ratio vs worst-case utilization.

The standard population-level figure of the schedulability literature: for
each worst-case utilization level, generate many random task sets with
variable demand (UUniFast utilizations, log-uniform periods, two-mode
demand with workload curves) and measure the fraction admitted by the
classic Lehoczky test vs the workload-curve test.  The curve test's
acceptance stays high far beyond ``U_wcet = 1`` because the *long-run*
utilization is what it effectively prices.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, harnessed
from repro.scheduling.generator import random_variable_task_set
from repro.scheduling.rms import rms_test_classic, rms_test_curves
from repro.util.report import TextTable, ascii_xy_plot

__all__ = ["run"]


@harnessed
def run(
    *,
    utilizations: tuple[float, ...] = (0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8),
    sets_per_point: int = 60,
    tasks_per_set: int = 4,
    seed: int = 2004,
) -> ExperimentResult:
    """Sweep the worst-case utilization and measure acceptance ratios."""
    rng = np.random.default_rng(seed)
    table = TextTable(
        ["U (wcet)", "mean U (long-run)", "classic accept", "curves accept"],
        title=(
            f"acceptance ratio over {sets_per_point} random sets per point "
            f"({tasks_per_set} tasks, heavy/light ratio 2-8)"
        ),
    )
    rows = []
    classic_curve = []
    curves_curve = []
    for u in utilizations:
        classic_ok = curves_ok = 0
        long_run = []
        for _ in range(sets_per_point):
            ts = random_variable_task_set(tasks_per_set, u, rng)
            classic_ok += rms_test_classic(ts).schedulable
            curves_ok += rms_test_curves(ts).schedulable
            long_run.append(ts.total_long_run_utilization)
        classic_ratio = classic_ok / sets_per_point
        curves_ratio = curves_ok / sets_per_point
        table.add_row(
            [u, f"{np.mean(long_run):.2f}", f"{classic_ratio:.2f}", f"{curves_ratio:.2f}"]
        )
        rows.append(
            {
                "utilization": u,
                "classic_acceptance": classic_ratio,
                "curves_acceptance": curves_ratio,
            }
        )
        classic_curve.append(classic_ratio)
        curves_curve.append(curves_ratio)
    plot = ascii_xy_plot(
        list(utilizations),
        {"curves": curves_curve, "classic": classic_curve},
        title="acceptance ratio vs worst-case utilization",
        height=12,
    )
    report = "\n".join(
        [
            table.render(),
            "",
            plot,
            "",
            "the workload-curve test's acceptance region extends well past "
            "U_wcet = 1 — the paper's eq. (5) gain at population scale",
        ]
    )
    return ExperimentResult(
        experiment_id="A5",
        title="Acceptance ratio: classic vs workload-curve RMS test",
        paper_reference="population-level view of eq. (5)",
        report=report,
        data={"rows": rows},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
