"""A4 — extension: greedy shaping of the PE1→PE2 stream.

The authors' follow-up work ("On the Use of Greedy Shapers in Real-Time
Embedded Systems") inserts a traffic shaper between producer and consumer
to trade a small shaping buffer and delay for a calmer downstream stream.
This harness quantifies that on the case study: shaping the PE1 output with
a leaky bucket ``σ = (burst, rate)`` lowers the eq. (9) frequency bound of
PE2, at the cost of the shaper's own buffer.

The shaped stream conforms to both its original curve and σ, so
``min(ᾱ, σ)`` is a valid (slightly conservative w.r.t. the exact ``ᾱ ⊗ σ``)
arrival curve of the shaped flow.
"""

from __future__ import annotations

from repro.analysis.frequency import minimum_frequency_curves
from repro.curves.arrival import leaky_bucket
from repro.curves.bounds import backlog_bound
from repro.experiments.common import BUFFER_ONE_FRAME, ExperimentResult, case_study_context, harnessed
from repro.util.report import TextTable, format_quantity

__all__ = ["run"]


@harnessed
def run(
    *,
    frames: int = 72,
    buffer_size: int = BUFFER_ONE_FRAME,
    burst_fractions: tuple[float, ...] = (4.0, 2.0, 1.0, 0.5, 0.25),
    rate_headroom: float = 1.02,
) -> ExperimentResult:
    """Sweep the shaping burst (as a fraction of a frame) and report the
    downstream frequency bound and the shaper's buffer requirement."""
    ctx = case_study_context(frames=frames, buffer_size=buffer_size)
    base = ctx.f_gamma
    shaping_rate = ctx.alpha.final_slope * rate_headroom

    table = TextTable(
        ["shaper burst (frames)", "F_gamma (PE2)", "vs unshaped", "shaper buffer (mb)"],
        title=(
            f"Greedy shaping of the PE1 output (rate = {shaping_rate:.0f} mb/s, "
            f"unshaped F_gamma = {format_quantity(base.frequency, 'Hz')})"
        ),
    )
    rows = []
    for frac in burst_fractions:
        burst = frac * BUFFER_ONE_FRAME
        sigma = leaky_bucket(burst, shaping_rate)
        shaped = ctx.alpha.minimum(sigma)
        f_shaped = minimum_frequency_curves(shaped, ctx.gamma_u, buffer_size)
        # a transparent shaper (σ dominating ᾱ) needs no buffer at all
        shaper_buffer = max(0.0, backlog_bound(ctx.alpha, sigma))
        table.add_row(
            [
                f"{frac:.2f}",
                format_quantity(f_shaped.frequency, "Hz"),
                f"{(f_shaped.frequency / base.frequency - 1) * 100:+.1f}%",
                f"{shaper_buffer:.0f}",
            ]
        )
        rows.append(
            {
                "burst_frames": frac,
                "f_gamma": f_shaped.frequency,
                "shaper_buffer": shaper_buffer,
            }
        )
    report = "\n".join(
        [
            table.render(),
            "",
            "tighter shaping lowers the downstream clock monotonically while "
            "the shaper's own buffer grows — the burst is not destroyed, "
            "only relocated to where memory is cheaper",
        ]
    )
    return ExperimentResult(
        experiment_id="A4",
        title="Greedy shaping of the producer stream",
        paper_reference="follow-up work, built from §3.2 machinery",
        report=report,
        data={"rows": rows, "unshaped_f_gamma": base.frequency},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
