"""E8 — Figure 4: event ↔ cycle curve conversion via ``γ^u``/``γ^{u−1}``.

Demonstrates the composition of Figure 4 on the MPEG-2 curves: converting
the event arrival curve to cycles and the cycle service curve to events,
and checking the Galois sanity ``γ^{u−1}(γ^u(k)) = k`` plus the
conservativeness of the round trip.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.conversion import (
    arrival_events_to_cycles,
    scale_arrival_by_wcet,
    service_cycles_to_events,
)
from repro.curves.service import full_processor
from repro.experiments.common import ExperimentResult, case_study_context, harnessed
from repro.util.report import TextTable

__all__ = ["run"]


@harnessed
def run(*, frames: int = 72) -> ExperimentResult:
    """Run the Figure 4 conversions on the case-study curves."""
    ctx = case_study_context(frames=frames)
    gamma_u = ctx.gamma_u
    # Galois property on a sample of grid points (exact roundtrip holds at
    # the curve's own samples; between sparse grid points the conservative
    # rounding makes the inverse conservative rather than exact)
    grid = gamma_u.k_values
    ks = grid[:: max(1, grid.size // 6)]
    galois_ok = bool(np.all(gamma_u.pseudo_inverse(gamma_u(ks)) == ks))

    deltas = np.array([0.001, 0.01, 0.04, 0.2, 1.0])
    beta = full_processor(ctx.f_gamma.frequency)
    events_served = service_cycles_to_events(beta, gamma_u, deltas)
    alpha_cycles = arrival_events_to_cycles(ctx.alpha, gamma_u)
    alpha_wcet = scale_arrival_by_wcet(ctx.alpha, ctx.wcet)

    table = TextTable(
        ["delta (s)", "alpha events", "alpha cycles (gamma)", "alpha cycles (wcet)", "events served"],
        title="Figure 4 conversions at F_gamma_min",
    )
    for i, d in enumerate(deltas):
        table.add_row(
            [
                d,
                f"{ctx.alpha(d):.0f}",
                f"{alpha_cycles(d):.3e}",
                f"{alpha_wcet(d):.3e}",
                int(events_served[i]),
            ]
        )
    tightening = 1.0 - alpha_cycles(1.0) / alpha_wcet(1.0)
    report = "\n".join(
        [
            f"Galois check gamma_u_inv(gamma_u(k)) == k: {galois_ok}",
            "",
            table.render(),
            "",
            f"cycle-demand tightening of the gamma conversion at delta=1s: "
            f"{tightening * 100:.1f}%",
        ]
    )
    return ExperimentResult(
        experiment_id="E8",
        title="Event/cycle domain conversion",
        paper_reference="Figure 4",
        report=report,
        data={
            "galois_ok": galois_ok,
            "tightening_at_1s": tightening,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
