"""Command-line entry point: regenerate paper experiments.

Usage::

    python -m repro                 # run the light experiments (E1-E3, E8)
    python -m repro all             # run everything (case study: ~1 min)
    python -m repro E5 E6           # run specific experiments
    python -m repro --list          # show available experiment ids
    python -m repro all --frames 24 # faster, lower-fidelity case study
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ALL_EXPERIMENTS

#: Experiments that run in well under a second.
LIGHT = ("E1", "E2", "E3")
#: Experiments needing the full case-study context.
HEAVY = ("E4", "E5", "E6", "E7", "E8", "A1", "A2", "A3", "A4", "A6")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the figures/tables of Maxiaguine et al., DATE 2004.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (E1..E8, A1, A2), 'all', or empty for the light set",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--frames",
        type=int,
        default=72,
        help="frames per clip for the case-study experiments (default 72)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in ALL_EXPERIMENTS:
            print(exp_id)
        return 0

    requested = args.experiments or list(LIGHT)
    if any(e.lower() == "all" for e in requested):
        requested = list(ALL_EXPERIMENTS)
    unknown = [e for e in requested if e not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {', '.join(unknown)}")

    for exp_id in requested:
        run = ALL_EXPERIMENTS[exp_id]
        kwargs = {}
        if exp_id in ("E4", "E5", "E6", "E7", "E8", "A1", "A3", "A4", "A6"):
            kwargs["frames"] = args.frames
        result = run(**kwargs)
        print(result)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
