"""Command-line entry point: regenerate paper experiments.

Usage::

    python -m repro                 # run the light experiments (E1-E3)
    python -m repro all             # run everything (case study: ~1 min)
    python -m repro E5 E6           # run specific experiments
    python -m repro --list          # show available experiment ids
    python -m repro all --frames 24 # faster, lower-fidelity case study

Observability (see ``docs/observability.md``)::

    python -m repro E1 --trace trace.jsonl        # span timeline (JSONL)
    python -m repro E1 --trace t.json --trace-format chrome   # Perfetto
    python -m repro E1 --metrics-out metrics.json # counters/gauges/histograms
    python -m repro E1 --out-dir out/             # E1.txt + E1.manifest.json
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys

from repro.experiments import ALL_EXPERIMENTS
from repro.obs.metrics import registry
from repro.obs.tracing import tracer

#: Experiments that run in well under a second (the no-argument default).
LIGHT = ("E1", "E2", "E3")


def _accepts_frames(run) -> bool:
    """True if *run* takes a ``frames`` keyword (harness wrappers are
    transparent to :func:`inspect.signature`)."""
    return "frames" in inspect.signature(run).parameters


def main(argv: list[str] | None = None) -> int:
    ids = ", ".join(ALL_EXPERIMENTS)
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the figures/tables of Maxiaguine et al., DATE 2004.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiment ids ({ids}), 'all', or empty for the light set "
        f"({', '.join(LIGHT)})",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--frames",
        type=int,
        default=None,
        help="frames per clip for experiments that take a frames parameter "
        "(default: each experiment's own default, typically 72)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="enable tracing and write the span timeline to PATH",
    )
    parser.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="trace file format: 'jsonl' (one span per line) or 'chrome' "
        "(trace_event JSON for Perfetto / about:tracing)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a metrics snapshot (counters/gauges/histograms) to PATH",
    )
    parser.add_argument(
        "--out-dir",
        metavar="DIR",
        default=None,
        help="write each experiment's text report and run manifest into DIR",
    )
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in ALL_EXPERIMENTS:
            print(exp_id)
        return 0

    requested = args.experiments or list(LIGHT)
    if any(e.lower() == "all" for e in requested):
        requested = list(ALL_EXPERIMENTS)
    unknown = [e for e in requested if e not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {', '.join(unknown)} (known: {ids})")

    if args.trace:
        tracer.enable()
        tracer.reset()

    with tracer.span("cli", experiments=",".join(requested)):
        for exp_id in requested:
            run = ALL_EXPERIMENTS[exp_id]
            kwargs = {}
            if args.frames is not None and _accepts_frames(run):
                kwargs["frames"] = args.frames
            result = run(**kwargs)
            print(result)
            print()
            if args.out_dir:
                result.write(args.out_dir)

    if args.trace:
        if args.trace_format == "chrome":
            tracer.export_chrome(args.trace)
        else:
            tracer.export_jsonl(args.trace)
        tracer.disable()
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(registry.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
