"""Command-line entry point: regenerate paper experiments.

Usage::

    python -m repro                 # run the light experiments (E1-E3)
    python -m repro all             # run everything (case study: ~1 min)
    python -m repro E5 E6           # run specific experiments
    python -m repro --list          # show available experiment ids
    python -m repro all --frames 24 # faster, lower-fidelity case study

Parallelism and caching (see ``docs/performance.md``)::

    python -m repro all --parallel 4              # fan out over 4 workers
    python -m repro all --cache-dir .repro-cache  # persistent kernel cache
    python -m repro sweep --buffers 810,1620,3240 --parallel 4
                                                  # frequency/backlog sweep
    python -m repro E5 --max-segments 64 --bisect # budgeted + bisection

Analysis as a service (see ``docs/service.md``)::

    python -m repro serve --socket /tmp/repro.sock --capacity 4000
                                                  # start the job daemon
    python -m repro sweep --service /tmp/repro.sock --buffers 810,1620
                                                  # sweep through the daemon

Observability (see ``docs/observability.md``)::

    python -m repro E1 --trace trace.jsonl        # span timeline (JSONL)
    python -m repro E1 --trace t.json --trace-format chrome   # Perfetto
    python -m repro E1 --metrics-out metrics.json # counters/gauges/histograms
    python -m repro E1 --out-dir out/             # E1.txt + E1.manifest.json

Profiling collected runs (the ``obs`` subcommand family)::

    python -m repro obs report --trace t.jsonl --metrics m.json
                                                  # hottest kernels, dispatch
                                                  # regimes, cache health
    python -m repro obs diff runA.json runB.json  # metric deltas (A/B)
    python -m repro obs flame t.jsonl -o out.folded   # collapsed stacks
"""

from __future__ import annotations

import argparse
import atexit
import inspect
import json
import sys
import time
from pathlib import Path

from repro import obs
from repro.experiments import ALL_EXPERIMENTS
from repro.obs.metrics import registry
from repro.obs.tracing import tracer

#: Experiments that run in well under a second (the no-argument default).
LIGHT = ("E1", "E2", "E3")


def _accepts(run, name: str) -> bool:
    """True if *run* takes keyword *name* (harness wrappers are
    transparent to :func:`inspect.signature`)."""
    return name in inspect.signature(run).parameters


def _add_compact_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared curve-compaction / bisection options."""
    parser.add_argument(
        "--max-segments",
        type=int,
        default=None,
        metavar="N",
        help="conservatively compact analysis curves to at most N segments "
        "(bounds stay valid, only pessimism grows; see docs/performance.md)",
    )
    parser.add_argument(
        "--compact-error",
        type=float,
        default=None,
        metavar="E",
        help="cap the absolute error the compaction may introduce (can be "
        "combined with --max-segments; the error cap always wins)",
    )
    parser.add_argument(
        "--bisect",
        action="store_true",
        help="compute F_gamma_min by monotone feasibility bisection "
        "(eq. (8)) instead of the closed-form eq. (9) scan",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared observability options (trace/metrics/out-dir)."""
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="enable tracing and write the span timeline to PATH",
    )
    parser.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="trace file format: 'jsonl' (one span per line) or 'chrome' "
        "(trace_event JSON for Perfetto / about:tracing)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a metrics snapshot (counters/gauges/histograms) to PATH",
    )
    parser.add_argument(
        "--out-dir",
        metavar="DIR",
        default=None,
        help="write each experiment's text report and run manifest into DIR",
    )


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared parallel-runner options."""
    parser.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="fan the work out over N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="attach the persistent kernel cache at PATH (shared by all "
        "workers and reused by future runs)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed for deterministic per-task reseeding of the global "
        "RNGs in every worker (default: no reseeding)",
    )
    parser.add_argument(
        "--backend",
        metavar="NAME",
        default=None,
        help="min-plus kernel backend for the generic curve algebra "
        "(numpy, soa, numba when installed; see docs/performance.md); "
        "worker processes inherit the choice",
    )


def _apply_backend(args: argparse.Namespace, parser) -> None:
    """Activate ``--backend`` early: validates the name, routes the
    in-process curve algebra, and exports the choice for workers."""
    if args.backend:
        from repro.perf import configure
        from repro.util.validation import ValidationError

        try:
            configure(backend=args.backend)
        except ValidationError as exc:
            parser.error(str(exc))


def _export_obs(args: argparse.Namespace) -> None:
    """Write the trace and metrics files requested on the command line."""
    if args.trace:
        if args.trace_format == "chrome":
            tracer.export_chrome(args.trace)
        else:
            tracer.export_jsonl(args.trace)
        tracer.disable()
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(registry.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def _arm_atexit_export(args: argparse.Namespace) -> None:
    """Best-effort trace export on abnormal exit while ``--trace`` is on.

    The normal path (:func:`_export_obs`) disables the tracer right after
    writing, so the handler fires only when the process dies before
    reaching it (unhandled exception, ``sys.exit`` from a harness, ...) —
    the partial trace lands at the requested path, open spans marked
    ``unfinished``, instead of vanishing with the process."""

    def _flush() -> None:
        if not tracer.enabled:
            return
        try:
            _export_obs(args)
        except Exception:  # noqa: BLE001 - never mask the real exit reason
            pass

    atexit.register(_flush)


def main(argv: list[str] | None = None) -> int:
    """CLI dispatch: ``sweep``/``obs``/``serve`` subcommands or the
    experiment runner."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])
    if argv and argv[0] == "obs":
        return _obs_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.service.server import main as serve_main

        return serve_main(argv[1:])
    return _experiments_main(argv)


def _experiments_main(argv: list[str]) -> int:
    """Run the requested experiments, serially or across a worker pool."""
    ids = ", ".join(ALL_EXPERIMENTS)
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the figures/tables of Maxiaguine et al., DATE 2004. "
        "The 'sweep' subcommand (python -m repro sweep --help) fans a "
        "frequency/backlog grid out across workers.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiment ids ({ids}), 'all', or empty for the light set "
        f"({', '.join(LIGHT)})",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--frames",
        type=int,
        default=None,
        help="frames per clip for experiments that take a frames parameter "
        "(default: each experiment's own default, typically 72)",
    )
    _add_compact_arguments(parser)
    _add_runner_arguments(parser)
    _add_obs_arguments(parser)
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in ALL_EXPERIMENTS:
            print(exp_id)
        return 0

    requested = args.experiments or list(LIGHT)
    if any(e.lower() == "all" for e in requested):
        requested = list(ALL_EXPERIMENTS)
    unknown = [e for e in requested if e not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {', '.join(unknown)} (known: {ids})")
    if args.parallel < 1:
        parser.error("--parallel must be >= 1")
    _apply_backend(args, parser)

    if args.trace:
        tracer.enable()
        tracer.reset()
        _arm_atexit_export(args)

    def kwargs_for(exp_id: str) -> dict:
        run = ALL_EXPERIMENTS[exp_id]
        kwargs: dict = {}
        if args.frames is not None and _accepts(run, "frames"):
            kwargs["frames"] = args.frames
        if args.max_segments is not None and _accepts(run, "max_segments"):
            kwargs["max_segments"] = args.max_segments
        if args.compact_error is not None and _accepts(run, "compact_error"):
            kwargs["compact_error"] = args.compact_error
        if args.bisect and _accepts(run, "bisect"):
            kwargs["bisect"] = True
        if args.backend and _accepts(run, "backend"):
            kwargs["backend"] = args.backend
        return kwargs

    failures: list[str] = []
    t0 = time.perf_counter()
    with tracer.span("cli", experiments=",".join(requested)):
        if args.parallel > 1:
            from repro.runner import run_many
            from repro.runner.tasks import run_experiment_task

            task_results = run_many(
                run_experiment_task,
                [(exp_id, kwargs_for(exp_id)) for exp_id in requested],
                max_workers=args.parallel,
                cache_dir=args.cache_dir,
                seed=args.seed,
            )
            results = []
            for exp_id, task in zip(requested, task_results):
                if not task.ok:
                    failures.append(f"{exp_id}: {task.error}")
                    continue
                results.append(task.value)
        else:
            if args.cache_dir:
                from repro.perf.cache import attach_disk_cache

                attach_disk_cache(args.cache_dir)
            results = []
            for exp_id in requested:
                results.append(ALL_EXPERIMENTS[exp_id](**kwargs_for(exp_id)))

        for result in results:
            print(result)
            print()
            if args.out_dir:
                result.write(args.out_dir)

        if args.parallel > 1 and args.out_dir and results:
            combined = obs.combine_manifests(
                [r.manifest for r in results if r.manifest is not None],
                experiment_id="PARALLEL",
                title="Parallel experiment run",
                parameters={
                    "experiments": requested,
                    "parallel": args.parallel,
                    "frames": args.frames,
                    "max_segments": args.max_segments,
                    "compact_error": args.compact_error,
                    "bisect": args.bisect,
                    "seed": args.seed,
                    "backend": args.backend,
                },
                wall_time_s=time.perf_counter() - t0,
                metrics=registry.snapshot(),
            )
            out_dir = Path(args.out_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            obs.write_manifest(combined, out_dir / "PARALLEL.manifest.json")

    _export_obs(args)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _sweep_main(argv: list[str]) -> int:
    """The ``sweep`` subcommand: fan a frequency/backlog grid out."""
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Sweep the paper's frequency/backlog design space "
        "(eqs. (7), (9), (10)) over a FIFO-size grid, fanned out across "
        "worker processes.",
    )
    parser.add_argument(
        "--buffers",
        default="810,1620,3240",
        metavar="B1,B2,...",
        help="comma-separated FIFO sizes in macroblocks (default: "
        "810,1620,3240 — half/one/two frames)",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=72,
        help="frames per clip for the case-study context (default: 72)",
    )
    parser.add_argument(
        "--dense-limit",
        type=int,
        default=4096,
        help="dense k-grid limit of the curve extraction (fidelity knob)",
    )
    parser.add_argument(
        "--growth",
        type=float,
        default=1.015,
        help="k-grid geometric growth factor (fidelity knob)",
    )
    parser.add_argument(
        "--stream-chunk",
        type=int,
        default=None,
        metavar="N",
        help="extract workload curves from the clip traces in chunks of N "
        "events (bounded-memory streaming fold; identical results)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-point timeout in seconds (enforced inside the worker)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="resubmissions of failed/timed-out points (default: 0)",
    )
    parser.add_argument(
        "--service",
        metavar="SOCKET",
        default=None,
        help="submit the sweep points to a running analysis daemon at "
        "SOCKET (python -m repro serve) instead of a local worker pool; "
        "--parallel/--cache-dir/--seed are then the daemon's concern",
    )
    parser.add_argument(
        "--sim-validate",
        action="store_true",
        help="cross-check each point against the simulation engine: "
        "generate a seeded open-system trace calibrated to the case "
        "study's rates, compute the eq. (7) bound from that trace's own "
        "curves at F_gamma, and replay the same trace through the "
        "vectorized chain — the bound/observed gap lands in the point "
        "data and manifest",
    )
    parser.add_argument(
        "--sim-items",
        type=int,
        default=4096,
        metavar="N",
        help="items per generated validation trace (default: 4096)",
    )
    _add_compact_arguments(parser)
    _add_runner_arguments(parser)
    _add_obs_arguments(parser)
    args = parser.parse_args(argv)

    try:
        buffers = [int(b) for b in args.buffers.split(",") if b.strip()]
    except ValueError:
        parser.error(f"--buffers must be comma-separated integers: {args.buffers!r}")
    if not buffers:
        parser.error("--buffers must name at least one FIFO size")
    if args.parallel < 1:
        parser.error("--parallel must be >= 1")
    _apply_backend(args, parser)

    if args.trace:
        tracer.enable()
        tracer.reset()
        _arm_atexit_export(args)

    from repro.runner import sweep
    from repro.runner.tasks import frequency_backlog_point
    from repro.util.report import TextTable

    t0 = time.perf_counter()
    if args.service:
        with tracer.span("cli", command="sweep-service", points=len(buffers)):
            outcomes = _sweep_via_service(args, buffers)
    else:
        with tracer.span("cli", command="sweep", points=len(buffers)):
            swept = sweep(
                frequency_backlog_point,
                {"buffer_size": buffers},
                fixed={
                    "frames": args.frames,
                    "dense_limit": args.dense_limit,
                    "growth": args.growth,
                    "stream_chunk": args.stream_chunk,
                    "max_segments": args.max_segments,
                    "compact_error": args.compact_error,
                    "backend": args.backend,
                    "bisect": args.bisect,
                    "sim_validate": args.sim_validate,
                    "sim_items": args.sim_items,
                    "sim_seed": args.seed or 0,
                },
                max_workers=args.parallel,
                cache_dir=args.cache_dir,
                seed=args.seed,
                timeout_s=args.timeout,
                retries=args.retries,
            )
        outcomes = [
            (
                point["buffer_size"],
                task.ok,
                None if task.ok else str(task.error),
                task.value if task.ok else None,
            )
            for point, task in zip(swept.points, swept.results)
        ]
    wall = time.perf_counter() - t0

    failures = []
    columns = ["b (MB)", "F_gamma (MHz)", "F_wcet (MHz)", "savings", "backlog (events)"]
    if args.sim_validate:
        columns.append("sim bound/observed")
    table = TextTable(
        columns,
        title=f"Frequency/backlog sweep, frames={args.frames}, "
        + (f"service={args.service}" if args.service else f"workers={args.parallel}"),
    )
    results = []
    for buffer_size, ok, error, result in outcomes:
        if not ok:
            failures.append(f"b={buffer_size}: {error}")
            continue
        results.append(result)
        data = result.data
        row = [
            str(data["buffer_size"]),
            f"{data['f_gamma_hz'] / 1e6:.1f}",
            f"{data['f_wcet_hz'] / 1e6:.1f}",
            f"{data['savings'] * 100:.1f}%",
            f"{data['backlog_events']:.1f}",
        ]
        if args.sim_validate:
            bound = data.get("sim_bound_events")
            row.append(
                ("unbounded" if bound is None else f"{bound:.1f}")
                + f"/{data.get('sim_observed_backlog', '-')}"
            )
        table.add_row(row)
    print(table.render())
    print(f"\n{len(results)}/{len(buffers)} points in {wall:.2f}s")

    if args.out_dir:
        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for result in results:
            result.write(out_dir)
        combined = obs.combine_manifests(
            [r.manifest for r in results if r.manifest is not None],
            experiment_id="SWEEP",
            title="Frequency/backlog sweep",
            parameters={
                "buffers": buffers,
                "frames": args.frames,
                "dense_limit": args.dense_limit,
                "growth": args.growth,
                "stream_chunk": args.stream_chunk,
                "max_segments": args.max_segments,
                "compact_error": args.compact_error,
                "bisect": args.bisect,
                "backend": args.backend,
                "parallel": args.parallel,
                "seed": args.seed,
                "sim_validate": args.sim_validate,
                "sim_items": args.sim_items,
            },
            wall_time_s=wall,
            metrics=registry.snapshot(),
        )
        obs.write_manifest(combined, out_dir / "SWEEP.manifest.json")

    _export_obs(args)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _sweep_via_service(args: argparse.Namespace, buffers: list[int]) -> list:
    """Run the sweep through a live analysis daemon.

    Submits every point first (so the daemon pipelines them across its
    workers), then collects results in order.  Returns
    ``(buffer_size, ok, error, ExperimentResult | None)`` tuples — the
    same outcome shape the local worker-pool path produces, so the
    reporting below is oblivious to how the points were computed.
    """
    from repro.experiments.common import ExperimentResult
    from repro.service.client import ServiceClient, ServiceError

    base = {
        "frames": args.frames,
        "dense_limit": args.dense_limit,
        "growth": args.growth,
        "stream_chunk": args.stream_chunk,
        "max_segments": args.max_segments,
        "compact_error": args.compact_error,
        "backend": args.backend,
        "bisect": args.bisect,
        "sim_validate": args.sim_validate,
        "sim_items": args.sim_items,
        "sim_seed": args.seed or 0,
    }
    outcomes: list = []
    with ServiceClient(args.service) as client:
        submitted: list[tuple[int, dict]] = []
        for buffer_size in buffers:
            try:
                job = client.submit(
                    "frequency", {"buffer_size": buffer_size, **base}
                )
            except ServiceError as exc:
                outcomes.append(
                    (buffer_size, False, f"{exc.error_type}: {exc}", None)
                )
                continue
            submitted.append((buffer_size, job))
        for buffer_size, job in submitted:
            if job["state"] in ("rejected", "shed"):
                outcomes.append(
                    (buffer_size, False, f"admission {job['state']}", None)
                )
                continue
            try:
                done = client.result(job["id"], timeout=args.timeout)
            except ServiceError as exc:
                outcomes.append(
                    (buffer_size, False, f"{exc.error_type}: {exc}", None)
                )
                continue
            if done["state"] != "done":
                outcomes.append(
                    (buffer_size, False, f"{done['state']}: {done.get('error')}", None)
                )
                continue
            payload = done["result"]
            outcomes.append(
                (
                    buffer_size,
                    True,
                    None,
                    ExperimentResult(
                        experiment_id=payload["experiment_id"],
                        title=payload["title"],
                        paper_reference=payload["paper_reference"],
                        report=payload["report"],
                        data=payload["data"],
                        manifest=payload["manifest"],
                    ),
                )
            )
    return outcomes


def _load_json(path: str, parser: argparse.ArgumentParser) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        parser.error(f"cannot read {path}: {exc}")


def _flatten_for_diff(doc: dict) -> dict[str, float]:
    """Flatten any obs artifact into ``{metric key: numeric value}``.

    Understands metrics snapshots (``repro.metrics/1`` — counters and
    gauges keyed ``name{k=v,...}``, histograms as ``.count``/``.mean``),
    run manifests (``repro.run-manifest/1`` — ``wall_time_s`` plus the
    embedded snapshot), trajectory records (``repro.trajectory/1`` — the
    ``metrics`` mapping as-is), and plain BENCH-style section documents.
    """
    from repro.obs.trajectory import flatten_bench

    def series_key(entry: dict) -> str:
        labels = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
        return entry["name"] + ("{" + labels + "}" if labels else "")

    def from_snapshot(snap: dict) -> dict[str, float]:
        out: dict[str, float] = {}
        for entry in snap.get("counters", []) + snap.get("gauges", []):
            out[series_key(entry)] = float(entry["value"])
        for entry in snap.get("histograms", []):
            key = series_key(entry)
            out[key + ".count"] = float(entry["count"])
            if entry["count"]:
                out[key + ".mean"] = entry["sum"] / entry["count"]
        return out

    schema = doc.get("schema", "")
    if schema == obs.METRICS_SCHEMA:
        return from_snapshot(doc)
    if schema == obs.MANIFEST_SCHEMA:
        out = {}
        if doc.get("wall_time_s") is not None:
            out["wall_time_s"] = float(doc["wall_time_s"])
        if isinstance(doc.get("metrics"), dict):
            out.update(from_snapshot(doc["metrics"]))
        return out
    if schema == obs.TRAJECTORY_SCHEMA:
        return {k: float(v) for k, v in doc.get("metrics", {}).items()}
    metrics, _ = flatten_bench("bench", doc)
    return metrics


def _fmt(value: float) -> str:
    return f"{value:g}" if value == int(value) else f"{value:.6g}"


def _obs_report(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.util.report import TextTable

    trace_records = obs.read_trace_jsonl(args.trace) if args.trace else None
    snapshot = _load_json(args.metrics, parser) if args.metrics else None
    if trace_records is None and snapshot is None:
        parser.error("obs report needs --trace and/or --metrics")
    if snapshot is not None and snapshot.get("schema") != obs.METRICS_SCHEMA:
        parser.error(
            f"{args.metrics}: not a {obs.METRICS_SCHEMA} snapshot "
            f"(schema: {snapshot.get('schema')!r})"
        )
    report = obs.profile_report(trace_records, snapshot)
    if args.json:
        obs.write_profile(report, args.json)
        print(f"profile report written to {args.json}")
    if args.prometheus:
        if snapshot is None:
            parser.error("--prometheus needs --metrics")
        with open(args.prometheus, "w", encoding="utf-8") as fh:
            fh.write(obs.prometheus_text(snapshot))
        print(f"prometheus exposition written to {args.prometheus}")

    if trace_records is not None:
        agg = report["trace"]
        table = TextTable(
            ["span", "calls", "self (s)", "total (s)", "max (s)"],
            title=f"Hottest spans by self time "
            f"({agg['span_count']} spans, {agg['total_self_s']:.3f}s self total)",
        )
        hottest = sorted(
            agg["spans"].items(), key=lambda kv: kv[1]["self_s"], reverse=True
        )
        for name, row in hottest[: args.top]:
            flag = f" ({row['unfinished']} unfinished)" if row["unfinished"] else ""
            table.add_row(
                [
                    name + flag,
                    str(row["calls"]),
                    f"{row['self_s']:.4f}",
                    f"{row['total_s']:.4f}",
                    f"{row['max_s']:.4f}",
                ]
            )
        print(table.render())
        for title, group in (("backend", agg["backends"]), ("shape", agg["shapes"])):
            if not group:
                continue
            sub = TextTable(
                [title, "calls", "self (s)"], title=f"Self time by {title}"
            )
            for key, row in sorted(
                group.items(), key=lambda kv: kv[1]["self_s"], reverse=True
            ):
                sub.add_row([key, str(row["calls"]), f"{row['self_s']:.4f}"])
            print()
            print(sub.render())

    if snapshot is not None:
        dispatch = report["dispatch"]
        if trace_records is not None:
            print()
        table = TextTable(
            ["op", "regime", "dispatches"], title="Kernel dispatch regimes"
        )
        total_dispatches = 0
        for op, regimes in dispatch["regimes"].items():
            for regime, count in regimes.items():
                total_dispatches += count
                table.add_row([op, regime, str(count)])
        print(table.render())
        cache = report["cache"]
        print()
        table = TextTable(["tier", "count"], title="Cache tiers")
        for tier in ("memory", "disk", "miss"):
            table.add_row([tier, str(cache[tier])])
        print(table.render())
        tiers_total = cache["memory"] + cache["disk"] + cache["miss"]
        print(
            f"lookups={cache['lookups']} hit_ratio={cache['hit_ratio']:.1%} "
            f"bypasses={cache['bypasses']}"
        )
        memo = dispatch["memo"]
        dispatch_ok = (
            total_dispatches == memo["misses"] - cache["disk"]
            if cache["disk"]
            else total_dispatches == memo["misses"]
        )
        print(
            f"consistency: memory+disk+miss = {tiers_total} "
            f"{'==' if cache['consistent'] else '!='} {cache['lookups']} lookups; "
            f"minplus dispatches = {total_dispatches} "
            f"{'==' if dispatch_ok else '!='} "
            f"{memo['misses']} minplus memo misses"
            + (f" - {cache['disk']} disk promotions" if cache["disk"] else "")
        )
        batch = dispatch["batch"]
        if batch["calls"]:
            print(
                f"batched convolutions: {batch['calls']} calls, "
                f"{batch['fallbacks']} fallbacks "
                f"({batch['fallback_rate']:.1%})"
            )
        service = report["service"]
        if service["submitted"] or service["evalpool"]["misses"]:
            print()
            table = TextTable(
                ["service", "count"], title="Analysis service (admission/outcomes)"
            )
            table.add_row(["submitted", _fmt(float(service["submitted"]))])
            table.add_row(["accepted", _fmt(float(service["accepted"]))])
            for reason, count in service["rejected"].items():
                table.add_row([f"rejected[{reason}]", _fmt(float(count))])
            for state, count in service["completed"].items():
                table.add_row([f"completed[{state}]", _fmt(float(count))])
            if service["retries"]:
                table.add_row(["retries", _fmt(float(service["retries"]))])
            print(table.render())
            admission = service["admission"]
            if admission["capacity"] is not None:
                required = admission["required"]
                print(
                    "admission: required "
                    + ("-" if required is None else f"{required:.1f}")
                    + f" vs capacity {admission['capacity']:.1f} units/s"
                )
            pool = service["evalpool"]
            if pool["hits"] or pool["misses"]:
                print(
                    f"evalpool: {_fmt(float(pool['hits']))} hits, "
                    f"{_fmt(float(pool['misses']))} misses, "
                    f"{_fmt(float(pool['evictions']))} evictions"
                )
        sim = report["simulation"]
        if sim["chain"]["runs"] or sim["fifos"] or sim["workload_items"]:
            print()
            table = TextTable(
                ["simulation", "count"], title="Simulation engine (sim.* family)"
            )
            for impl, count in sim["chain"]["runs"].items():
                table.add_row([f"chain runs[{impl}]", _fmt(float(count))])
            for impl, count in sim["chain"]["item_stages"].items():
                table.add_row([f"chain item-stages[{impl}]", _fmt(float(count))])
            for model, count in sim["workload_items"].items():
                table.add_row([f"workload items[{model}]", _fmt(float(count))])
            print(table.render())
            if sim["chain"]["stages"]:
                sub = TextTable(
                    ["stage", "high water", "overflows", "busy (s)"],
                    title="Chain stages",
                )
                for stage, row in sim["chain"]["stages"].items():
                    sub.add_row(
                        [
                            stage,
                            _fmt(float(row.get("high_water", 0))),
                            _fmt(float(row.get("overflows", 0))),
                            f"{float(row.get('busy_seconds', 0.0)):.4f}",
                        ]
                    )
                print()
                print(sub.render())
            if sim["fifos"]:
                sub = TextTable(
                    ["fifo", "high water", "pushed", "overflows"],
                    title="Pipeline FIFOs",
                )
                for fifo, row in sim["fifos"].items():
                    sub.add_row(
                        [
                            fifo,
                            _fmt(float(row.get("high_water", 0))),
                            _fmt(float(row.get("pushed", 0))),
                            _fmt(float(row.get("overflows", 0))),
                        ]
                    )
                print()
                print(sub.render())
        if report["quantiles"]:
            print()
            table = TextTable(
                ["histogram", "count", "mean", "p50", "p95", "p99"],
                title="Histogram quantiles (bucket-interpolated)",
            )
            for entry in report["quantiles"]:
                labels = ",".join(
                    f"{k}={v}" for k, v in entry["labels"].items()
                )
                name = entry["name"] + ("{" + labels + "}" if labels else "")
                qs = entry["quantiles"]
                table.add_row(
                    [
                        name,
                        str(entry["count"]),
                        _fmt(entry["mean"]),
                        _fmt(qs["p50"]),
                        _fmt(qs["p95"]),
                        _fmt(qs["p99"]),
                    ]
                )
            print(table.render())
    return 0


def _obs_diff(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.util.report import TextTable

    a = _flatten_for_diff(_load_json(args.run_a, parser))
    b = _flatten_for_diff(_load_json(args.run_b, parser))
    keys = sorted(set(a) | set(b))
    table = TextTable(
        ["metric", "A", "B", "delta", "ratio"],
        title=f"obs diff: A={args.run_a}  B={args.run_b}",
    )
    shown = 0
    for key in keys:
        va, vb = a.get(key), b.get(key)
        if va is None or vb is None:
            if args.all:
                table.add_row(
                    [
                        key,
                        "-" if va is None else _fmt(va),
                        "-" if vb is None else _fmt(vb),
                        "-",
                        "-",
                    ]
                )
                shown += 1
            continue
        delta = vb - va
        if not args.all and delta == 0:
            continue
        ratio = f"{vb / va:.3f}x" if va else "-"
        table.add_row([key, _fmt(va), _fmt(vb), f"{delta:+g}", ratio])
        shown += 1
    print(table.render())
    if not shown:
        print("(no differing metrics)")
    return 0


def _obs_flame(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    records = obs.read_trace_jsonl(args.trace)
    if args.out:
        count = obs.write_collapsed(records, args.out)
        print(f"{count} stacks written to {args.out}")
    else:
        for stack, micros in obs.collapsed_stacks(records).items():
            print(f"{stack} {micros}")
    return 0


def _obs_main(argv: list[str]) -> int:
    """The ``obs`` subcommand family: profile collected runs."""
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Profile collected traces and metrics: aggregate "
        "reports, A/B diffs, and flamegraph-compatible collapsed stacks "
        "(see docs/observability.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report",
        help="hottest kernels, dispatch regimes, cache tiers, quantiles",
    )
    report.add_argument(
        "--trace", metavar="PATH", default=None, help="span trace (JSONL)"
    )
    report.add_argument(
        "--metrics", metavar="PATH", default=None, help="metrics snapshot (JSON)"
    )
    report.add_argument(
        "--top", type=int, default=15, help="span rows to show (default: 15)"
    )
    report.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the full repro.profile/1 report to PATH",
    )
    report.add_argument(
        "--prometheus", metavar="PATH", default=None,
        help="also write the metrics in Prometheus text format to PATH",
    )

    diff = sub.add_parser(
        "diff", help="metric deltas between two runs (snapshots, manifests, "
        "trajectory records, or BENCH files)"
    )
    diff.add_argument("run_a", help="baseline artifact (JSON)")
    diff.add_argument("run_b", help="comparison artifact (JSON)")
    diff.add_argument(
        "--all", action="store_true",
        help="show unchanged and one-sided metrics too",
    )

    flame = sub.add_parser(
        "flame", help="collapsed stacks (flamegraph.pl / speedscope input)"
    )
    flame.add_argument("trace", help="span trace (JSONL)")
    flame.add_argument(
        "-o", "--out", metavar="PATH", default=None,
        help="write to PATH instead of stdout",
    )

    args = parser.parse_args(argv)
    if args.command == "report":
        return _obs_report(args, parser)
    if args.command == "diff":
        return _obs_diff(args, parser)
    return _obs_flame(args, parser)


if __name__ == "__main__":
    sys.exit(main())
