"""Batched structure-of-arrays min-plus kernels.

The generic construction in :mod:`repro.curves.minplus` walks the
outer-sum breakpoint grid one cell at a time, building the candidate
configuration lines and sweeping their envelope with a handful of numpy
calls *per cell* — thousands of tiny array operations for a 200-segment
pair.  This module performs the identical construction as a few dozen
large array operations: the operand curves of a whole batch are packed
into shared padded (structure-of-arrays) matrices, every envelope cell of
every pair becomes one row of a candidate-line matrix, and the winner
selection / first-crossing search run as row-wise reductions over all
active cells simultaneously.

Exactness
---------
The kernel replicates the reference construction decision-for-decision:

* the same :func:`~repro.curves.minplus._dedupe_grid`-collapsed cell
  grids, the same synthetic last cell, the same midpoint probes;
* the same candidate lines (breakpoint-pinned configurations plus the
  left-limit jump probes), built from the same float expressions;
* the same envelope tie-breaking — extremal value with ties within
  ``1e-12`` relative broken by flattest (lower) / steepest (upper) slope
  and then by smallest value, the ordering ``np.unique`` induces in the
  reference sweep — and the same ``1e-15`` crossing thresholds.

Infeasible / padded candidate entries are masked with a large finite
sentinel (``±1e300``) on the losing side of the envelope instead of
``inf`` so the line arithmetic never produces NaNs.  The differential
conformance suite (``tests/curves/test_backend_conformance.py``) pins the
agreement with the reference kernel and the brute-force oracles.

Batch contract
--------------
A convolution batch must be homogeneous in tail regime: either every
pair's result saturates (``min(f.final_slope, g.final_slope) == 0`` — a
finite asymptote) or every pair's result grows without bound.  The packed
sweep stamps the shared synthetic last cell and the tail slope uniformly
per batch, so mixed batches are refused with a
:class:`~repro.util.validation.ValidationError`; callers
(:func:`repro.perf.batch.convolve_many`) partition by tail regime and
fall back per-partition, never globally.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.curves.curve import PiecewiseLinearCurve
from repro.curves.minplus import (
    UnboundedCurveError,
    _dedupe_grid,
    _monotone_pwl,
)
from repro.perf.instrument import instrumented
from repro.util.validation import ValidationError

__all__ = ["convolve_batch_soa", "deconvolve_batch_soa"]

#: Sentinel for masked candidate lines: large but finite, so envelope
#: arithmetic stays NaN-free while the entry can never win or overtake.
_BIG = 1e300

#: Magnitude above which a candidate value marks a masked (infeasible)
#: line.  Masked entries keep whatever slope their dummy lookup returned,
#: so the crossing search must ignore them explicitly: within a bounded
#: cell their ~1e299 crossing abscissa falls past the cell edge anyway,
#: but each pair's *last* cell sweeps to infinity, where such a crossing
#: would be taken.  Real curve values sit hundreds of orders of magnitude
#: below this threshold.
_FEAS_LIMIT = 1e250

#: Target element count of one candidate-matrix chunk (cells × lines).
_CHUNK_ELEMS = 1 << 21


class _CurvePack:
    """Padded SoA view of a set of curves (rows padded with ``+inf`` x)."""

    __slots__ = ("x", "y", "s", "left", "n")

    def __init__(self, curves: Sequence[PiecewiseLinearCurve]):
        count = len(curves)
        width = max(c.breakpoints.size for c in curves)
        self.x = np.full((count, width), np.inf)
        self.y = np.zeros((count, width))
        self.s = np.zeros((count, width))
        self.left = np.zeros((count, width))
        self.n = np.empty(count, dtype=np.intp)
        for p, curve in enumerate(curves):
            x = curve.breakpoints
            y = curve.values_at_breakpoints
            s = curve.slopes
            n = x.size
            self.n[p] = n
            self.x[p, :n] = x
            self.y[p, :n] = y
            self.s[p, :n] = s
            self.left[p, 0] = y[0]
            if n > 1:
                self.left[p, 1:n] = y[:-1] + s[:-1] * np.diff(x)

    def eval_rows(self, pid: np.ndarray, t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-row slope and right-continuous value at *t*.

        ``pid`` maps each row of *t* to a curve of the pack; rows are
        grouped in runs of equal pid, so the searchsorted lookups run once
        per run instead of once per row.
        """
        idx = np.empty(t.shape, dtype=np.intp)
        starts = np.concatenate(([0], np.flatnonzero(np.diff(pid)) + 1, [pid.size]))
        for k in range(starts.size - 1):
            lo, hi = starts[k], starts[k + 1]
            p = pid[lo]
            idx[lo:hi] = (
                np.searchsorted(self.x[p], t[lo:hi].ravel(), side="right").reshape(
                    hi - lo, -1
                )
                - 1
            )
        rows = pid[:, None]
        xb = self.x[rows, idx]
        sb = self.s[rows, idx]
        return sb, self.y[rows, idx] + sb * (t - xb)


def _build_cells(grids: list[np.ndarray]):
    """Flatten per-pair grids into global cell arrays (pair-major order).

    Returns ``(pid, a, mid, bcap)``: the owning pair, the cell start, the
    midpoint probe, and the sweep cap (``inf`` for each pair's synthetic
    last cell) — exactly the values the reference per-cell loop derives.
    """
    pids: list[np.ndarray] = []
    a_parts: list[np.ndarray] = []
    mid_parts: list[np.ndarray] = []
    bcap_parts: list[np.ndarray] = []
    for p, grid in enumerate(grids):
        b = np.empty_like(grid)
        b[:-1] = grid[1:]
        last = float(grid[-1])
        b[-1] = last + max(1.0, abs(last))
        mid = 0.5 * (grid + b)
        bcap = b.copy()
        bcap[-1] = math.inf
        pids.append(np.full(grid.size, p, dtype=np.intp))
        a_parts.append(grid)
        mid_parts.append(mid)
        bcap_parts.append(bcap)
    return (
        np.concatenate(pids),
        np.concatenate(a_parts),
        np.concatenate(mid_parts),
        np.concatenate(bcap_parts),
    )


def _envelope_sweep(va, sl, nvalid, a, bcap, *, lower):
    """Vectorized envelope sweep over all cells of a chunk at once.

    Row ``c`` of ``va``/``sl`` holds the candidate lines
    ``value = va + sl·(Δ − a[c])`` of one cell; masked entries carry
    ``+_BIG`` (lower) / ``-_BIG`` (upper).  Returns flat
    ``(cell, x, value, slope)`` arrays of the emitted segments, sorted by
    cell with each cell's segments in sweep order — the reference
    :func:`~repro.curves.minplus._line_envelope_on_interval` replayed for
    every row simultaneously.
    """
    n_cells = a.size
    maxseg = nvalid + 2
    x = a.copy()
    emitted = np.zeros(n_cells, dtype=np.intp)
    active = np.arange(n_cells)
    # per-line constants, hoisted out of the sweep rounds
    m1 = np.maximum(1.0, np.abs(sl))
    out_cell: list[np.ndarray] = []
    out_x: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    out_s: list[np.ndarray] = []
    while active.size:
        xa = x[active]
        aa = a[active]
        ba = bcap[active]
        v = va + sl * (xa - aa)[:, None]
        # winner: in the common case exactly one line attains the
        # extremum within tolerance, and a plain argmin/argmax picks it;
        # the full slope-then-value tie-break runs only on the rare rows
        # with several near-extremal lines
        if lower:
            vbest = v.min(axis=1)
            tol = 1e-12 + 1e-12 * np.abs(vbest)
            near = v <= (vbest + tol)[:, None]
            win = v.argmin(axis=1)
        else:
            vbest = v.max(axis=1)
            tol = 1e-12 + 1e-12 * np.abs(vbest)
            near = v >= (vbest - tol)[:, None]
            win = v.argmax(axis=1)
        rows = np.arange(active.size)
        best_slope = sl[rows, win]
        best_val = v[rows, win]
        multi = np.flatnonzero(near.sum(axis=1) > 1)
        if multi.size:
            nm = near[multi]
            slm = sl[multi]
            vm = v[multi]
            if lower:
                bs = np.where(nm, slm, np.inf).min(axis=1)
            else:
                bs = np.where(nm, slm, -np.inf).max(axis=1)
            tied = nm & (slm == bs[:, None])
            best_slope[multi] = bs
            best_val[multi] = np.where(tied, vm, np.inf).min(axis=1)
        # conservative no-crossing test: an overtaking line that crosses
        # the winner strictly inside [x, b) lies strictly on the winning
        # side of it at b, so comparing the line values at the cell edge
        # (with a generous relative slack absorbing the different
        # rounding of the two expressions) proves most cells cross-free
        # without the expensive crossing search.  Cells with an infinite
        # edge (each pair's last cell) always take the full search.
        finite_b = np.isfinite(ba)
        w_line = np.where(finite_b, ba - aa, 1.0)
        w_win = np.where(finite_b, ba - xa, 1.0)
        vend = va + sl * w_line[:, None]
        bw = best_val + best_slope * w_win
        slack = 1e-6 * np.maximum(1.0, np.abs(bw))
        if lower:
            may_cross = vend.min(axis=1) < bw + slack
        else:
            may_cross = vend.max(axis=1) > bw - slack
        may_cross |= ~finite_b
        next_x = ba.copy()
        need = np.flatnonzero(may_cross)
        if need.size:
            vn = v[need]
            sln = sl[need]
            bsn = best_slope[need][:, None]
            rel = sln - bsn
            thresh = 1e-15 * np.maximum(m1[need], np.abs(bsn))
            overtaking = np.abs(rel) > thresh
            overtaking &= (rel < 0) if lower else (rel > 0)
            overtaking &= np.abs(vn) < _FEAS_LIMIT
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                t = (vn - best_val[need][:, None]) / (-rel)
            overtaking &= t > 1e-15
            tmin = np.where(overtaking, t, np.inf).min(axis=1)
            next_x[need] = np.minimum(next_x[need], xa[need] + tmin)
        out_cell.append(active.copy())
        out_x.append(xa)
        out_v.append(best_val)
        out_s.append(best_slope)
        emitted[active] += 1
        cont = (
            np.isfinite(next_x)
            & (next_x < ba - 1e-18)
            & (emitted[active] < maxseg[active])
        )
        x[active] = next_x
        keep = np.flatnonzero(cont)
        active = active[keep]
        va = va[keep]
        sl = sl[keep]
        m1 = m1[keep]
    cell = np.concatenate(out_cell)
    order = np.argsort(cell, kind="stable")
    return (
        cell[order],
        np.concatenate(out_x)[order],
        np.concatenate(out_v)[order],
        np.concatenate(out_s)[order],
    )


def _assemble(pairs, cell_pid, seg_cell, seg_x, seg_v, seg_s, finals):
    """Split the flat segment stream per pair and build the result curves
    exactly like the reference assembly (clamps, tail restamp,
    :func:`~repro.curves.minplus._monotone_pwl`)."""
    seg_pid = cell_pid[seg_cell]
    bounds = np.searchsorted(seg_pid, np.arange(len(pairs) + 1))
    out: list[PiecewiseLinearCurve] = []
    for p in range(len(pairs)):
        lo, hi = bounds[p], bounds[p + 1]
        ys = np.maximum(seg_v[lo:hi], 0.0)
        ss = np.maximum(seg_s[lo:hi], 0.0)
        ss[-1] = max(finals[p], 0.0)
        out.append(_monotone_pwl(seg_x[lo:hi], ys, ss))
    return out


def _chunks(cell_count: int, line_width: int):
    """Yield ``(lo, hi)`` cell ranges sized to ~:data:`_CHUNK_ELEMS`
    candidate-matrix elements."""
    step = max(1, _CHUNK_ELEMS // max(1, line_width))
    for lo in range(0, cell_count, step):
        yield lo, min(lo + step, cell_count)


@instrumented(
    "minplus.convolve_batch_soa",
    attrs=lambda pairs: {"pairs": len(pairs), "backend": "soa"},
)
def convolve_batch_soa(
    pairs: Sequence[tuple[PiecewiseLinearCurve, PiecewiseLinearCurve]]
) -> list[PiecewiseLinearCurve]:
    """Min-plus convolution of every pair through one packed sweep.

    Exact generic construction (see module docstring); the batch must be
    homogeneous in tail regime or a
    :class:`~repro.util.validation.ValidationError` is raised — callers
    partition (see :func:`repro.perf.batch.convolve_many`).
    """
    pairs = list(pairs)
    if not pairs:
        return []
    finals = [min(f.final_slope, g.final_slope) for f, g in pairs]
    saturating = {final == 0.0 for final in finals}
    if len(saturating) > 1:
        raise ValidationError(
            "convolve_batch_soa needs a tail-homogeneous batch (all finite "
            "or all infinite asymptotes); partition by tail regime first"
        )
    fpack = _CurvePack([f for f, _ in pairs])
    gpack = _CurvePack([g for _, g in pairs])
    grids = [
        _dedupe_grid(np.unique(np.add.outer(f.breakpoints, g.breakpoints).ravel()))
        for f, g in pairs
    ]
    cell_pid, cell_a, cell_mid, cell_bcap = _build_cells(grids)
    seg_parts: list[tuple] = []
    width = 2 * (fpack.x.shape[1] + gpack.x.shape[1])
    for lo, hi in _chunks(cell_a.size, width):
        pid = cell_pid[lo:hi]
        a = cell_a[lo:hi]
        mid = cell_mid[lo:hi]
        half = (mid - a)[:, None]
        a_col = a[:, None]
        mid_col = mid[:, None]
        # feasible breakpoint columns are a prefix of each sorted row; cap
        # the chunk's matrices at the widest prefix any of its cells needs
        amax = float(a.max()) + 1e-15
        kf = int(max(np.searchsorted(fpack.x[p], amax, side="right") for p in set(pid)))
        kg = int(max(np.searchsorted(gpack.x[p], amax, side="right") for p in set(pid)))
        kf, kg = max(kf, 1), max(kg, 1)

        # the interval midpoint clears the cell start by at least half the
        # _dedupe_grid-guaranteed cell width, so the pinned remainders
        # (mid - s) are strictly positive and the reference's t == 0
        # evaluation guard can never fire — it is elided here.
        # the _BIG sentinel is folded into the pinned-value term of every
        # infeasible entry, so the line arithmetic itself produces ~_BIG
        # values there and no post-hoc masking pass is needed; the slope
        # entries of such lines stay whatever the dummy lookup returned,
        # which is provably harmless (a ~_BIG-valued line can neither join
        # the near-winner set nor produce a selectable crossing)
        fx = fpack.x[pid, :kf]
        fy = fpack.y[pid, :kf]
        fleft = fpack.left[pid, :kf]
        feas_f = fx <= a_col + 1e-15
        rest = np.where(feas_f, mid_col - fx, 1.0)
        g_slope, g_val0 = gpack.eval_rows(pid, rest)
        f_at = np.where(feas_f, fy, _BIG)
        f_at[:, 0] = 0.0
        va_f = f_at + g_val0 - g_slope * half
        # left-limit probes only matter where the curve actually jumps;
        # at continuous breakpoints they duplicate the base line exactly,
        # and the reference's np.unique dedup discards such duplicates, so
        # compressing those columns away preserves bit-parity
        jump_f = feas_f & (fx > 0.0) & (fleft != fy)
        jcols_f = np.flatnonzero(jump_f.any(axis=0))
        jump_f = jump_f[:, jcols_f]
        va_fj = (
            np.where(jump_f, fleft[:, jcols_f], _BIG)
            + g_val0[:, jcols_f]
            - g_slope[:, jcols_f] * half
        )

        gx = gpack.x[pid, :kg]
        gy = gpack.y[pid, :kg]
        gleft = gpack.left[pid, :kg]
        feas_g = gx <= a_col + 1e-15
        s_mid = np.where(feas_g, mid_col - gx, 1.0)
        f_slope, f_val0 = fpack.eval_rows(pid, s_mid)
        g_at = np.where(feas_g, gy, _BIG)
        g_at[:, 0] = 0.0
        va_g = f_val0 + g_at - f_slope * half
        jump_g = feas_g & (gx > 0.0) & (gleft != gy)
        jcols_g = np.flatnonzero(jump_g.any(axis=0))
        jump_g = jump_g[:, jcols_g]
        va_gj = (
            np.where(jump_g, gleft[:, jcols_g], _BIG)
            + f_val0[:, jcols_g]
            - f_slope[:, jcols_g] * half
        )

        va = np.concatenate((va_f, va_fj, va_g, va_gj), axis=1)
        sl = np.concatenate(
            (g_slope, g_slope[:, jcols_f], f_slope, f_slope[:, jcols_g]),
            axis=1,
        )
        nvalid = (
            feas_f.sum(axis=1)
            + jump_f.sum(axis=1)
            + feas_g.sum(axis=1)
            + jump_g.sum(axis=1)
        )
        cell, x, v, s = _envelope_sweep(
            va, sl, nvalid, a, cell_bcap[lo:hi], lower=True
        )
        seg_parts.append((cell + lo, x, v, s))
    seg_cell = np.concatenate([p[0] for p in seg_parts])
    seg_x = np.concatenate([p[1] for p in seg_parts])
    seg_v = np.concatenate([p[2] for p in seg_parts])
    seg_s = np.concatenate([p[3] for p in seg_parts])
    return _assemble(pairs, cell_pid, seg_cell, seg_x, seg_v, seg_s, finals)


@instrumented(
    "minplus.deconvolve_batch_soa",
    attrs=lambda pairs: {"pairs": len(pairs), "backend": "soa"},
)
def deconvolve_batch_soa(
    pairs: Sequence[tuple[PiecewiseLinearCurve, PiecewiseLinearCurve]]
) -> list[PiecewiseLinearCurve]:
    """Min-plus deconvolution of every pair through one packed sweep.

    Raises :class:`~repro.curves.minplus.UnboundedCurveError` if any pair
    diverges (``f`` outgrowing ``g``) — divergent pairs must be filtered
    before batching, exactly as the scalar operator rejects them.
    """
    pairs = list(pairs)
    if not pairs:
        return []
    for f, g in pairs:
        if f.final_slope > g.final_slope + 1e-12:
            raise UnboundedCurveError(
                f"deconvolution diverges: arrival rate {f.final_slope:g} "
                f"exceeds service rate {g.final_slope:g}"
            )
    finals = [f.final_slope for f, _ in pairs]
    fpack = _CurvePack([f for f, _ in pairs])
    gpack = _CurvePack([g for _, g in pairs])
    grids = []
    for f, g in pairs:
        diffs = np.unique(np.subtract.outer(f.breakpoints, g.breakpoints).ravel())
        grid = _dedupe_grid(diffs[diffs >= 0.0])
        if grid.size == 0 or grid[0] != 0.0:
            grid = np.concatenate(([0.0], grid))
        grids.append(grid)
    cell_pid, cell_a, cell_mid, cell_bcap = _build_cells(grids)
    seg_parts = []
    width = 2 * gpack.x.shape[1] + fpack.x.shape[1]
    for lo, hi in _chunks(cell_a.size, width):
        pid = cell_pid[lo:hi]
        a = cell_a[lo:hi]
        mid = cell_mid[lo:hi]
        half = (mid - a)[:, None]
        mid_col = mid[:, None]

        # configuration A: u pinned at a g-breakpoint (always feasible).
        # As in the convolve build, the -_BIG sentinel is folded into the
        # pinned-value term (added with the sign that drives the line to
        # the losing side of the upper envelope), so no post-hoc masking
        # pass runs and the dummy slopes of masked entries stay — harmless
        # for the same reasons.
        gx = gpack.x[pid]
        gy = gpack.y[pid]
        gleft = gpack.left[pid]
        valid_g = np.isfinite(gx)
        u = np.where(valid_g, gx, 1.0)
        f_slope, f_shift = fpack.eval_rows(pid, mid_col + u)
        g_at = np.where(valid_g, gy, _BIG)
        g_at[:, 0] = 0.0
        va_a = f_shift - g_at - f_slope * half
        jump_a = valid_g & (gx > 0.0)
        va_aj = f_shift - np.where(jump_a, gleft, _BIG) - f_slope * half

        # configuration B: Δ + u pinned at an f-breakpoint with x_f >= Δ
        fx = fpack.x[pid]
        fy = fpack.y[pid]
        feas_b = np.isfinite(fx) & (fx >= mid_col)
        u_mid = np.where(feas_b, fx - mid_col, 1.0)
        g_slope, g_val = gpack.eval_rows(pid, u_mid)
        g_val0 = np.where(u_mid == 0.0, 0.0, g_val)
        va_b = np.where(feas_b, fy, -_BIG) - g_val0 - g_slope * half

        va = np.concatenate((va_a, va_aj, va_b), axis=1)
        sl = np.concatenate((f_slope, f_slope, g_slope), axis=1)
        nvalid = valid_g.sum(axis=1) + jump_a.sum(axis=1) + feas_b.sum(axis=1)
        cell, x, v, s = _envelope_sweep(
            va, sl, nvalid, a, cell_bcap[lo:hi], lower=False
        )
        seg_parts.append((cell + lo, x, v, s))
    seg_cell = np.concatenate([p[0] for p in seg_parts])
    seg_x = np.concatenate([p[1] for p in seg_parts])
    seg_v = np.concatenate([p[2] for p in seg_parts])
    seg_s = np.concatenate([p[3] for p in seg_parts])
    return _assemble(pairs, cell_pid, seg_cell, seg_x, seg_v, seg_s, finals)
