"""Pluggable kernel backends for the generic min-plus operators.

The structure-aware fast paths of :mod:`repro.curves.minplus` (convex ⊗
convex, concave ⊗ concave, concave ⊘ convex) are closed forms and need no
acceleration; the *generic* per-interval line-envelope construction is the
measured bottleneck on genuinely general curves.  This module makes that
generic kernel pluggable: a :class:`KernelBackend` registry with

* ``numpy`` — the pure-numpy reference kernel (the oracle; always
  available, always the default);
* ``soa`` — a batched structure-of-arrays kernel
  (:mod:`repro.curves.soa`) that packs whole *sets* of curves into shared
  padded arrays and sweeps all their envelope cells in chunked vectorized
  passes; always available (pure numpy);
* ``numba`` — an optional JIT-compiled scalar kernel
  (:mod:`repro.curves._kernels_numba`); registered unavailable, with a
  visible reason, when numba is not importable.

Selection flows through :func:`set_backend` / :func:`use_backend`,
``repro.perf.configure(backend=...)``, and the CLI's ``--backend``.  The
active backend's name is exported in ``REPRO_MINPLUS_BACKEND`` so worker
processes of a parallel sweep inherit it on import.

Soundness
---------
Backends agree with the reference only up to documented ulp bounds (see
``tests/curves/test_backend_conformance.py``), so memoized results must
not be shared across backends: every backend carries a
:attr:`~KernelBackend.compat_tag` that :mod:`repro.curves.minplus` folds
into the kernel-cache key of generic-path operands.  Fast-path results are
backend-independent and keep their untagged keys.

Observability
-------------
Every call through a backend increments the
``minplus.backend.calls{backend=…, op=…}`` counter, and each backend's
kernel carries its own ``kernel.*`` series with the backend name in the
span attributes — a ``--trace`` run shows which backend computed every
generic convolution.

Third-party backends subclass :class:`KernelBackend`, implement
``_convolve``/``_deconvolve`` (and optionally ``_convolve_batch`` with
``supports_batch = True``), and call :func:`register_backend`; the
differential conformance suite picks up every registered backend
automatically.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Sequence

from repro.curves.curve import PiecewiseLinearCurve
from repro.obs.metrics import registry as _metrics
from repro.util.validation import ValidationError

__all__ = [
    "KernelBackend",
    "BackendUnavailableError",
    "register_backend",
    "registered_backends",
    "available_backends",
    "get_backend",
    "active_backend",
    "set_backend",
    "use_backend",
    "BACKEND_ENV_VAR",
]

#: Environment variable carrying the active backend name into worker
#: processes (read once at import; written by :func:`set_backend`).
BACKEND_ENV_VAR = "REPRO_MINPLUS_BACKEND"

_Pair = tuple[PiecewiseLinearCurve, PiecewiseLinearCurve]


class BackendUnavailableError(ValidationError):
    """Raised when selecting a registered backend whose dependency is
    missing (e.g. the numba backend without numba installed)."""


class KernelBackend:
    """One implementation of the generic min-plus kernels.

    Subclasses set :attr:`name` and :attr:`compat_tag` and implement
    ``_convolve``/``_deconvolve``; batched backends additionally set
    ``supports_batch = True`` and implement ``_convolve_batch``.  The
    public entry points meter every call into the
    ``minplus.backend.calls`` counter series.
    """

    #: Registry key and CLI name.
    name = "abstract"
    #: Cache-compatibility tag: two backends may share memoized results
    #: if and only if their tags are equal (see module docstring).
    compat_tag = "abstract"
    #: Whether :meth:`convolve_batch` is a genuine batched kernel (else it
    #: falls back to a per-pair loop).
    supports_batch = False

    def available(self) -> bool:
        """Whether the backend's dependencies are importable here."""
        return True

    def unavailable_reason(self) -> str | None:
        """Human-readable reason when :meth:`available` is false."""
        return None

    # -- metered entry points -------------------------------------------------
    def convolve(self, f: PiecewiseLinearCurve, g: PiecewiseLinearCurve) -> PiecewiseLinearCurve:
        """Generic min-plus convolution ``f ⊗ g`` through this backend."""
        self._count("convolve")
        return self._convolve(f, g)

    def deconvolve(self, f: PiecewiseLinearCurve, g: PiecewiseLinearCurve) -> PiecewiseLinearCurve:
        """Generic min-plus deconvolution ``f ⊘ g`` through this backend.

        The stability gate is part of the backend contract (uniform across
        implementations): divergent pairs raise
        :class:`~repro.curves.minplus.UnboundedCurveError` here, before
        the implementation hook runs.
        """
        from repro.curves.minplus import UnboundedCurveError

        self._count("deconvolve")
        if f.final_slope > g.final_slope + 1e-12:
            raise UnboundedCurveError(
                f"deconvolution diverges: arrival rate {f.final_slope:g} "
                f"exceeds service rate {g.final_slope:g}"
            )
        return self._deconvolve(f, g)

    def convolve_batch(self, pairs: Sequence[_Pair]) -> list[PiecewiseLinearCurve]:
        """Convolve a whole batch of pairs; batched backends vectorize
        across the batch, others loop."""
        self._count("convolve_batch")
        return self._convolve_batch(pairs)

    # -- implementation hooks -------------------------------------------------
    def _convolve(self, f: PiecewiseLinearCurve, g: PiecewiseLinearCurve) -> PiecewiseLinearCurve:
        raise NotImplementedError

    def _deconvolve(self, f: PiecewiseLinearCurve, g: PiecewiseLinearCurve) -> PiecewiseLinearCurve:
        raise NotImplementedError

    def _convolve_batch(self, pairs: Sequence[_Pair]) -> list[PiecewiseLinearCurve]:
        return [self._convolve(f, g) for f, g in pairs]

    def _count(self, op: str) -> None:
        _metrics.counter("minplus.backend.calls", backend=self.name, op=op).inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelBackend {self.name!r}>"


class NumpyBackend(KernelBackend):
    """The pure-numpy reference kernel — the oracle every other backend is
    conformance-tested against."""

    name = "numpy"
    compat_tag = "numpy"

    def _convolve(self, f, g):
        from repro.curves import minplus

        return minplus._convolve_impl(f, g)

    def _deconvolve(self, f, g):
        from repro.curves import minplus

        return minplus._deconvolve_impl(f, g)


class SoABackend(KernelBackend):
    """Batched structure-of-arrays kernel (:mod:`repro.curves.soa`).

    Designed to replicate the reference construction decision-for-decision
    (same grids, same candidate lines, same tie-breaking), so its results
    are bit-compatible in practice — but the compatibility tag stays
    distinct to keep the cache provably sound.
    """

    name = "soa"
    compat_tag = "soa"
    supports_batch = True

    def _convolve(self, f, g):
        from repro.curves import soa

        return soa.convolve_batch_soa([(f, g)])[0]

    def _deconvolve(self, f, g):
        from repro.curves import soa

        return soa.deconvolve_batch_soa([(f, g)])[0]

    def _convolve_batch(self, pairs):
        from repro.curves import soa

        return soa.convolve_batch_soa(pairs)


class NumbaBackend(KernelBackend):
    """JIT-compiled scalar kernel (:mod:`repro.curves._kernels_numba`).

    Registered even when numba is missing so the registry can report *why*
    it is unavailable; selecting it then raises
    :class:`BackendUnavailableError`.  First-call JIT warm-up is amortized
    by numba's on-disk compilation cache (``cache=True``) and by the
    kernel cache memoizing every constructed curve.
    """

    name = "numba"
    compat_tag = "numba"

    def available(self) -> bool:
        """True when numba imported successfully."""
        from repro.curves import _kernels_numba

        return _kernels_numba.NUMBA_AVAILABLE

    def unavailable_reason(self) -> str | None:
        """The numba import failure, verbatim, when unavailable."""
        from repro.curves import _kernels_numba

        if _kernels_numba.NUMBA_AVAILABLE:
            return None
        return _kernels_numba.NUMBA_IMPORT_ERROR

    def _convolve(self, f, g):
        from repro.curves import _kernels_numba

        return _kernels_numba.convolve_numba(f, g)

    def _deconvolve(self, f, g):
        from repro.curves import _kernels_numba

        return _kernels_numba.deconvolve_numba(f, g)


_REGISTRY: dict[str, KernelBackend] = {}
_DEFAULT_BACKEND = "numpy"
_active: KernelBackend | None = None


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register *backend* under ``backend.name`` (replacing any previous
    backend of that name) and return it."""
    if not backend.name or backend.name == "abstract":
        raise ValidationError("backend must define a concrete name")
    _REGISTRY[backend.name] = backend
    return backend


def registered_backends() -> dict[str, KernelBackend]:
    """All registered backends by name, available or not (a copy)."""
    return dict(_REGISTRY)


def available_backends() -> list[KernelBackend]:
    """The registered backends whose dependencies import here, in
    registration order."""
    return [b for b in _REGISTRY.values() if b.available()]


def get_backend(name: str) -> KernelBackend:
    """Look up a backend by name; raises with the known names on a miss."""
    backend = _REGISTRY.get(name)
    if backend is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ValidationError(f"unknown min-plus backend {name!r} (known: {known})")
    return backend


def active_backend() -> KernelBackend:
    """The backend the generic min-plus operators currently route to."""
    assert _active is not None
    return _active


def set_backend(name: str) -> KernelBackend:
    """Select the active backend by name and return it.

    Raises :class:`BackendUnavailableError` (with the import-failure
    reason) when the backend is registered but its dependency is missing.
    The choice is exported in :data:`BACKEND_ENV_VAR` so worker processes
    spawned afterwards inherit it.
    """
    global _active
    backend = get_backend(name)
    if not backend.available():
        raise BackendUnavailableError(
            f"min-plus backend {name!r} is unavailable: {backend.unavailable_reason()}"
        )
    _active = backend
    os.environ[BACKEND_ENV_VAR] = name
    return backend


@contextmanager
def use_backend(name: str | None):
    """Context manager: run the body under backend *name*, then restore.

    ``use_backend(None)`` is a no-op context, so call sites can apply an
    optional backend parameter unconditionally.
    """
    if name is None:
        yield active_backend()
        return
    previous = active_backend().name
    prev_env = os.environ.get(BACKEND_ENV_VAR)
    backend = set_backend(name)
    try:
        yield backend
    finally:
        set_backend(previous)
        if prev_env is None:
            os.environ.pop(BACKEND_ENV_VAR, None)
        else:
            os.environ[BACKEND_ENV_VAR] = prev_env


def _bootstrap() -> None:
    """Register the built-in backends and activate the initial one.

    The initial backend comes from :data:`BACKEND_ENV_VAR` when set (how
    parallel workers inherit the parent's choice); an unknown or
    unavailable name falls back to the numpy reference rather than
    breaking import.
    """
    global _active
    register_backend(NumpyBackend())
    register_backend(SoABackend())
    register_backend(NumbaBackend())
    _active = _REGISTRY[_DEFAULT_BACKEND]
    wanted = os.environ.get(BACKEND_ENV_VAR)
    if wanted and wanted in _REGISTRY and _REGISTRY[wanted].available():
        _active = _REGISTRY[wanted]


_bootstrap()
