"""Min-plus convolution and deconvolution of PWL curves.

Network Calculus composes curves with the min-plus operators

.. math::

    (f ⊗ g)(Δ) = \\inf_{0 \\le s \\le Δ} f(s) + g(Δ - s) \\qquad
    (f ⊘ g)(Δ) = \\sup_{u \\ge 0} f(Δ + u) - g(u)

Convolution concatenates service elements and implements greedy shapers;
deconvolution yields the output arrival curve of a served flow.

Min-plus algebra is defined over the set ``F`` of wide-sense increasing
functions with ``f(0) = 0``; our right-continuous PWL curves store the
*right limit* at 0 (the burst), so the operators here apply the
``f(0) = 0`` convention at the origin.  This recovers the textbook
identities, e.g. the convolution of two leaky buckets is their pointwise
minimum, and a greedy shaper never increases a conforming flow's burst.

Exactness
---------
Both operators are computed exactly for PWL inputs.  The optimizer of the
inner inf/sup is always attained at a breakpoint of ``f`` or a (shifted)
breakpoint of ``g``; between two adjacent points of the breakpoint
sum/difference set every such *configuration* is a straight line, so the
result restricted to that interval is the lower (upper) envelope of a
finite set of lines, which we compute with an exact envelope sweep —
including the crossing breakpoints that do not belong to the sum set.

Performance
-----------
The operators are *structure-aware*: every
:class:`~repro.curves.curve.PiecewiseLinearCurve` carries a cached
convexity/concavity classification (:attr:`~repro.curves.curve
.PiecewiseLinearCurve.shape`), and the curve operators dispatch on it:

* **convex ⊗ convex** — closed-form slope merge in ``O(n + m)``: the
  convolution of convex PWL curves through the origin is their segments
  laid end to end in order of increasing slope;
* **concave ⊗ concave** — pointwise minimum (the textbook leaky-bucket
  identity generalized: for concave ``f, g`` with ``f(0) = g(0) = 0``
  under the min-plus convention, ``f ⊗ g = min(f, g)``);
* **concave ⊘ convex** — a descending-slope merge walk in ``O(n + m)``:
  the inner objective ``f(Δ + u) − g(u)`` is concave in ``u``, so the
  supremum tracks a single slope-crossover point;
* everything else falls back to the generic exact construction
  (:func:`convolve_generic` / :func:`deconvolve_generic`), which is
  ``O(n·m·(n+m))`` and kept as the oracle the fast paths are verified
  against.

The generic candidate-line construction and the envelope sweep are
vectorized (per-interval batch numpy instead of per-breakpoint Python),
and the full curve operators are memoized by operand content digest —
with a structure tag in the key — through :mod:`repro.perf.cache`, so a
design-space sweep that re-convolves the same pair pays for the
construction once.  The generic construction itself is *pluggable*: the
dispatchers route generic-regime operands through the active
:mod:`repro.curves.backends` backend (pure-numpy reference, batched SoA,
or numba JIT), and the cache key of such operands carries the backend's
compatibility tag so memoized results stay sound across backend
switches; fast-path results are backend-independent and keep untagged
keys.  Every kernel body reports call counts and timing
histograms into the :mod:`repro.obs` metrics registry and, when tracing
is enabled, opens a span carrying the operand segment counts.  All paths
are validated against the definitional brute-force implementations in
:mod:`repro.reference` by the differential-oracle suite, and the fast
paths additionally against the generic kernels by the structure property
suite (``tests/curves/test_minplus_structure.py``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.curves.curve import EPS_REL, PiecewiseLinearCurve
from repro.obs.metrics import counter
from repro.perf.cache import kernel_cache
from repro.perf.instrument import instrumented
from repro.util.validation import ValidationError

__all__ = [
    "convolve",
    "deconvolve",
    "convolve_at",
    "deconvolve_at",
    "convolve_generic",
    "deconvolve_generic",
    "self_convolution_fixpoint",
    "UnboundedCurveError",
]


class UnboundedCurveError(ValidationError):
    """Raised when a deconvolution diverges (``f`` grows faster than ``g``).

    In analysis terms: the flow's long-term rate exceeds the long-term
    service rate, so no finite output bound/backlog exists.
    """


def _eps_for(x: float) -> float:
    return EPS_REL * max(1.0, abs(x))


def _eval0(curve: PiecewiseLinearCurve, x: float) -> float:
    """Evaluate under the min-plus convention ``f(0) = 0`` (see module
    docstring)."""
    return 0.0 if x == 0.0 else float(curve(x))


# ---------------------------------------------------------------------------
# point evaluation
# ---------------------------------------------------------------------------

def convolve_at(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve, delta: float) -> float:
    """Exact evaluation of ``(f ⊗ g)(Δ)`` at a single point."""
    if delta < 0:
        raise ValidationError("delta must be >= 0")
    cands: set[float] = {0.0, float(delta)}
    for xf in f.breakpoints:
        for s in (float(xf), float(xf) - _eps_for(xf)):
            if 0.0 <= s <= delta:
                cands.add(s)
    for xg in g.breakpoints:
        for s in (delta - float(xg), delta - float(xg) + _eps_for(xg)):
            if 0.0 <= s <= delta:
                cands.add(s)
    return min(_eval0(f, s) + _eval0(g, delta - s) for s in cands)


def deconvolve_at(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve, delta: float) -> float:
    """Exact evaluation of ``(f ⊘ g)(Δ)`` at a single point.

    Raises :class:`UnboundedCurveError` if ``f`` outgrows ``g``.
    """
    if delta < 0:
        raise ValidationError("delta must be >= 0")
    if f.final_slope > g.final_slope + 1e-12:
        raise UnboundedCurveError(
            f"deconvolution diverges: arrival rate {f.final_slope:g} exceeds "
            f"service rate {g.final_slope:g}"
        )
    cands: set[float] = {0.0}
    for xg in g.breakpoints:
        # probe just below a g-breakpoint: g's left limit is smaller when g
        # jumps, which can only increase the supremum
        for u in (float(xg), float(xg) - _eps_for(xg)):
            if u >= 0.0:
                cands.add(u)
    for xf in f.breakpoints:
        for u in (float(xf) - delta, float(xf) - delta - _eps_for(xf)):
            if u >= 0.0:
                cands.add(u)
    return max(float(f(delta + u)) - _eval0(g, u) for u in cands)


# ---------------------------------------------------------------------------
# exact curve construction via per-interval line envelopes
# ---------------------------------------------------------------------------

class _CurveArrays:
    """Unpacked curve data shared across all intervals of one construction.

    Precomputes the per-breakpoint left limits (used by the jump probes)
    so the per-interval line builders are pure array arithmetic.
    """

    __slots__ = ("x", "y", "s", "left")

    def __init__(self, curve: PiecewiseLinearCurve):
        self.x = curve.breakpoints
        self.y = curve.values_at_breakpoints
        self.s = curve.slopes
        # left limit at each breakpoint; index 0 is never used (probes only
        # exist for breakpoints > 0)
        self.left = np.empty_like(self.y)
        self.left[0] = self.y[0]
        if self.x.size > 1:
            self.left[1:] = self.y[:-1] + self.s[:-1] * np.diff(self.x)

    def eval_at(self, t: np.ndarray) -> np.ndarray:
        """Vectorized right-continuous evaluation (t must be >= 0)."""
        idx = np.searchsorted(self.x, t, side="right") - 1
        return self.y[idx] + self.s[idx] * (t - self.x[idx])

    def eval0_at(self, t: np.ndarray) -> np.ndarray:
        """Evaluation under the min-plus ``f(0) = 0`` convention."""
        return np.where(t == 0.0, 0.0, self.eval_at(t))

    def slope_at(self, t: np.ndarray) -> np.ndarray:
        """Segment slope in effect at each (right-continuous) point."""
        return self.s[np.searchsorted(self.x, t, side="right") - 1]


def _line_envelope_on_interval(
    va: np.ndarray, sl: np.ndarray, a: float, b: float, *, lower: bool
) -> list[tuple[float, float, float]]:
    """Envelope of the lines ``value = va + sl·(Δ − a)`` on ``[a, b)``.

    Returns segments ``(start, value_at_start, slope)`` covering ``[a, b)``
    of the lower (``lower=True``) or upper envelope, exact crossings
    included.  Fully vectorized: the winner selection and the first-crossing
    search are single array reductions per emitted segment.
    """
    if va.size == 0:
        raise ValidationError("envelope needs at least one line")
    # dedup (value-at-a, slope) pairs; keeps the candidate set small
    uniq = np.unique(np.column_stack((va, sl)), axis=0)
    va, sl = uniq[:, 0], uniq[:, 1]
    segments: list[tuple[float, float, float]] = []
    x = a
    max_segments = va.size + 2  # each crossing switches to a new line
    while x < b - 1e-18 and len(segments) < max_segments:
        v = va + sl * (x - a)
        # winning line at x: extremal value, ties (within float noise)
        # broken by slope — flattest wins for lower envelope, steepest for
        # upper, so the chosen segment stays on the envelope just after x
        if lower:
            vbest = float(v.min())
            near = np.flatnonzero(v <= vbest + 1e-12 + 1e-12 * abs(vbest))
            j = near[np.argmin(sl[near])]
        else:
            vbest = float(v.max())
            near = np.flatnonzero(v >= vbest - 1e-12 - 1e-12 * abs(vbest))
            j = near[np.argmax(sl[near])]
        best_val = float(v[j])
        best_slope = float(sl[j])
        # first crossing where another line overtakes the winner.
        # near-parallel lines never produce a meaningful crossing; a
        # denormal slope difference would yield a numerically garbage
        # crossing abscissa, so treat it as parallel
        rel = sl - best_slope
        overtaking = np.abs(rel) > 1e-15 * np.maximum(
            1.0, np.maximum(np.abs(sl), abs(best_slope))
        )
        overtaking &= (rel < 0) if lower else (rel > 0)
        next_x = b
        if np.any(overtaking):
            t = (v[overtaking] - best_val) / (-rel[overtaking])
            t = t[t > 1e-15]
            if t.size and x + float(t.min()) < next_x:
                next_x = x + float(t.min())
        segments.append((x, best_val, best_slope))
        if not math.isfinite(next_x):
            break
        x = next_x
    return segments


def _configuration_lines_convolve(
    f: _CurveArrays, g: _CurveArrays, a: float, mid: float
) -> tuple[np.ndarray, np.ndarray]:
    """All candidate lines for (f⊗g) on an interval with midpoint *mid*.

    Configurations: ``s`` pinned at a breakpoint of f (line follows g), or
    ``Δ − s`` pinned at a breakpoint of g (line follows f).  Only
    configurations feasible throughout the interval contribute.  Returns
    ``(value_at_a, slope)`` arrays.
    """
    vas: list[np.ndarray] = []
    sls: list[np.ndarray] = []
    half = mid - a

    fsel = f.x <= a + 1e-15
    if np.any(fsel):
        s = f.x[fsel]
        rest = mid - s
        slope = g.slope_at(rest)
        g_rest = g.eval0_at(rest)
        f_at = np.where(s == 0.0, 0.0, f.y[fsel])
        vas.append(f_at + g_rest - slope * half)
        sls.append(slope)
        # f is right-continuous: the inf can be approached with s just
        # below the breakpoint, paying f's left limit (matters when f
        # jumps, e.g. staircase arrival curves)
        jump = s > 0.0
        if np.any(jump):
            vas.append(f.left[fsel][jump] + g_rest[jump] - slope[jump] * half)
            sls.append(slope[jump])

    gsel = g.x <= a + 1e-15
    if np.any(gsel):
        r = g.x[gsel]
        s_mid = mid - r
        slope = f.slope_at(s_mid)
        f_smid = f.eval0_at(s_mid)
        g_at = np.where(r == 0.0, 0.0, g.y[gsel])
        vas.append(f_smid + g_at - slope * half)
        sls.append(slope)
        # likewise, Δ − s can sit just below a g-breakpoint, paying g's
        # left limit
        jump = r > 0.0
        if np.any(jump):
            vas.append(f_smid[jump] + g.left[gsel][jump] - slope[jump] * half)
            sls.append(slope[jump])

    if not vas:
        return np.empty(0), np.empty(0)
    return np.concatenate(vas), np.concatenate(sls)


def _budget_compactors(
    direction: str | None, max_segments: int | None, max_error: float | None
):
    """Resolve the (operand, result) compactors of a budgeted operator.

    Returns ``None`` when no budget is requested.  *direction* states what
    the **result** is used as: ``"upper"`` rounds it up (arrival/workload
    curves), ``"lower"`` rounds it down (service curves).  The import is
    deferred — :mod:`repro.curves.compact` builds on this module.
    """
    if max_segments is None and max_error is None:
        if direction is not None:
            raise ValidationError(
                "direction is only meaningful with max_segments or max_error"
            )
        return None
    if direction not in ("upper", "lower"):
        raise ValidationError(
            "a budgeted min-plus operator needs direction='upper' or 'lower'"
        )
    from repro.curves.compact import compact_lower, compact_upper

    same = compact_upper if direction == "upper" else compact_lower
    other = compact_lower if direction == "upper" else compact_upper

    def run(compactor, curve):
        return compactor(
            curve, max_segments=max_segments, max_error=max_error
        ).curve

    return same, other, run


def convolve(
    f: PiecewiseLinearCurve,
    g: PiecewiseLinearCurve,
    *,
    max_segments: int | None = None,
    max_error: float | None = None,
    direction: str | None = None,
) -> PiecewiseLinearCurve:
    """Min-plus convolution ``f ⊗ g`` as a new PWL curve (exact).

    Dispatches on the operands' cached structure classification
    (:attr:`~repro.curves.curve.PiecewiseLinearCurve.shape`):
    convex ⊗ convex and concave ⊗ concave take closed-form ``O(n + m)``
    fast paths, everything else the generic ``O(n·m·(n+m))`` construction
    (:func:`convolve_generic`) — for trace staircases with thousands of
    jumps prefer :func:`convolve_at` on the Δ values you need.  Results
    are memoized by operand content digest plus a structure tag (see
    :mod:`repro.perf.cache`).

    With a segment/error budget (``max_segments``/``max_error``) and a
    *direction*, the operands and the result are conservatively compacted
    (:mod:`repro.curves.compact`) so iterated chains stay O(budget):
    convolution is monotone in both operands, so compacting everything in
    the result's direction keeps the budgeted result a valid bound of the
    exact one.  Each compaction and the inner exact convolution are
    memoized separately (the compaction keys carry the budgets).
    """
    budget = _budget_compactors(direction, max_segments, max_error)
    if budget is not None:
        same, _, run = budget
        out = convolve(run(same, f), run(same, g))
        return run(same, out)
    return kernel_cache.get_or_compute(
        _convolve_key(f, g), lambda: _convolve_dispatch(f, g)
    )


def _is_generic_convolve_pair(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve) -> bool:
    """Whether ``f ⊗ g`` misses every closed-form fast path and therefore
    routes through the active generic-kernel backend."""
    return not (
        (f.is_convex and g.is_convex) or (f.is_concave and g.is_concave)
    )


def _convolve_key(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve) -> tuple:
    """Cache key of ``f ⊗ g``; generic-regime pairs carry the active
    backend's compatibility tag (fast-path results are backend-free)."""
    key = (
        "minplus.convolve",
        f.shape + "*" + g.shape,
        f.content_digest(),
        g.content_digest(),
    )
    if _is_generic_convolve_pair(f, g):
        from repro.curves.backends import active_backend

        key = key + ("backend:" + active_backend().compat_tag,)
    return key


def _count_dispatch(op: str, regime: str) -> None:
    """Count one cache-missed dispatch decision (``minplus.dispatch``
    with ``op``/``regime`` labels) — cache hits never reach a dispatcher,
    so summing the regimes of an op yields exactly its computed calls."""
    counter("minplus.dispatch", op=op, regime=regime).inc()


def _convolve_dispatch(
    f: PiecewiseLinearCurve, g: PiecewiseLinearCurve
) -> PiecewiseLinearCurve:
    if f.is_convex and g.is_convex:
        _count_dispatch("convolve", "convex_fast")
        return _convolve_convex(f, g)
    if f.is_concave and g.is_concave:
        _count_dispatch("convolve", "concave_fast")
        return _convolve_concave(f, g)
    from repro.curves.backends import active_backend

    _count_dispatch("convolve", "generic")
    return active_backend().convolve(f, g)


def convolve_generic(
    f: PiecewiseLinearCurve, g: PiecewiseLinearCurve
) -> PiecewiseLinearCurve:
    """The generic exact convolution, bypassing structure dispatch and cache.

    Kept public as the oracle of the structure property suite: the
    closed-form fast paths must agree with this construction pointwise on
    every operand pair.
    """
    return _convolve_impl(f, g)


def _pair_attrs(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve) -> dict:
    """Span attributes of a binary curve kernel (only built while tracing).

    ``shape`` carries the operands' structure classification pair so the
    profiler (:mod:`repro.obs.profile`) can break kernel self-time down
    by shape class without re-classifying anything."""
    return {
        "f_segments": int(f.breakpoints.size),
        "g_segments": int(g.breakpoints.size),
        "shape": f.shape + "|" + g.shape,
    }


def _generic_attrs(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve) -> dict:
    """Span attributes of the reference generic kernel, tagged with its
    backend name so traces show which backend computed each convolution."""
    return {**_pair_attrs(f, g), "backend": "numpy"}


def _restamp(out: PiecewiseLinearCurve, shape: str) -> PiecewiseLinearCurve:
    """Attach a structure classification known by construction.

    The lazy classifier checks interior continuity with exact float
    equality, which cumsum rounding in the fast-path assembly can defeat;
    the closed forms *prove* the result's structure, so an accidental
    "general" verdict is overridden (a sharper verdict — "affine" — is
    kept).
    """
    if out.shape == "general":
        out._shape = shape
    return out


@instrumented("minplus.convolve_convex", attrs=_pair_attrs)
def _convolve_convex(
    f: PiecewiseLinearCurve, g: PiecewiseLinearCurve
) -> PiecewiseLinearCurve:
    """Closed form for convex operands through the origin, ``O(n + m)``.

    The inf spends each unit of Δ on the cheapest marginal rate still
    available, so ``f ⊗ g`` is all finite segments of both operands laid
    end to end in order of increasing slope, capped by the smaller
    asymptotic rate.
    """
    final = min(f.final_slope, g.final_slope)
    lengths = np.concatenate((np.diff(f.breakpoints), np.diff(g.breakpoints)))
    slopes = np.concatenate((f.slopes[:-1], g.slopes[:-1]))
    # segments at or above the asymptotic rate sort after the infinite
    # tail segment, i.e. they are never reached
    keep = slopes < final
    lengths, slopes = lengths[keep], slopes[keep]
    order = np.argsort(slopes, kind="stable")
    lengths, slopes = lengths[order], slopes[order]
    xs = np.concatenate(([0.0], np.cumsum(lengths)))
    ys = np.concatenate(([0.0], np.cumsum(lengths * slopes)))
    ss = np.concatenate((slopes, [final]))
    return _restamp(PiecewiseLinearCurve(xs, ys, ss).simplified(), "convex")


@instrumented("minplus.convolve_concave", attrs=_pair_attrs)
def _convolve_concave(
    f: PiecewiseLinearCurve, g: PiecewiseLinearCurve
) -> PiecewiseLinearCurve:
    """Closed form for concave operands (bursts allowed), ``O(n + m)``.

    Under the ``f(0) = 0`` convention both operands are star-shaped, so
    ``f ⊗ g`` is their pointwise minimum — the textbook identity that the
    convolution of leaky buckets is the min of the buckets.
    """
    return _restamp(f.minimum(g), "concave")


@instrumented("minplus.convolve", attrs=_generic_attrs)
def _convolve_impl(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve) -> PiecewiseLinearCurve:
    fa = _CurveArrays(f)
    ga = _CurveArrays(g)
    grid = _dedupe_grid(
        np.unique(np.add.outer(fa.x, ga.x).ravel())
    )  # contains 0 (= x_f0 + x_g0)
    xs: list[float] = []
    ys: list[float] = []
    ss: list[float] = []
    final_slope = min(f.final_slope, g.final_slope)
    n_grid = grid.size
    for i in range(n_grid):
        a = float(grid[i])
        last = i + 1 >= n_grid
        b = a + max(1.0, abs(a)) if last else float(grid[i + 1])
        mid = 0.5 * (a + b)
        va, sl = _configuration_lines_convolve(fa, ga, a, mid)
        if last:
            b = math.inf
        # the envelope value at `a` is already the right limit: configurations
        # feasible on [a, b) evaluated at a reproduce the RC value exactly
        for start, val, slope in _line_envelope_on_interval(va, sl, a, b, lower=True):
            xs.append(start)
            ys.append(max(val, 0.0))
            ss.append(max(slope, 0.0))
    ss[-1] = max(final_slope, 0.0)
    return _monotone_pwl(xs, ys, ss)


def _configuration_lines_deconvolve(
    f: _CurveArrays, g: _CurveArrays, a: float, mid: float
) -> tuple[np.ndarray, np.ndarray]:
    """Candidate lines for (f⊘g) on an interval with midpoint *mid*.

    Configurations: ``u`` pinned at a breakpoint of g (line follows f,
    always feasible), or ``Δ + u`` pinned at a breakpoint of f (line slope
    is g's local slope; feasible while ``x_f >= Δ``)."""
    vas: list[np.ndarray] = []
    sls: list[np.ndarray] = []
    half = mid - a

    u = g.x
    slope = f.slope_at(mid + u)
    f_shift = f.eval_at(mid + u)
    g_at = np.where(u == 0.0, 0.0, g.y)
    vas.append(f_shift - g_at - slope * half)
    sls.append(slope)
    # probe just below a g-jump: g's left limit is smaller, which can
    # only increase the supremum (f changes only infinitesimally there
    # unless Δ+u hits an f-breakpoint, which is a grid point)
    jump = u > 0.0
    if np.any(jump):
        vas.append(f_shift[jump] - g.left[jump] - slope[jump] * half)
        sls.append(slope[jump])

    fsel = f.x >= mid  # u = t − Δ stays >= 0 around the midpoint
    if np.any(fsel):
        t = f.x[fsel]
        u_mid = t - mid
        slope = g.slope_at(u_mid)
        g_umid = np.where(u_mid == 0.0, 0.0, g.eval_at(u_mid))
        vas.append(f.y[fsel] - g_umid - slope * half)
        sls.append(slope)

    return np.concatenate(vas), np.concatenate(sls)


def deconvolve(
    f: PiecewiseLinearCurve,
    g: PiecewiseLinearCurve,
    *,
    max_segments: int | None = None,
    max_error: float | None = None,
    direction: str | None = None,
) -> PiecewiseLinearCurve:
    """Min-plus deconvolution ``f ⊘ g`` as a new PWL curve (exact up to
    left-limit epsilon probes at jumps).

    Used for the output arrival curve ``α* = α ⊘ β`` of a served flow.
    Dispatches on operand structure: concave ``f`` over convex ``g`` (the
    dominant case — measured arrival envelope over rate-latency service)
    takes a closed-form ``O(n + m)`` walk, everything else the generic
    construction (:func:`deconvolve_generic`).  Raises
    :class:`UnboundedCurveError` when the result is infinite.  Results are
    memoized by operand content digest plus a structure tag.

    With a budget and a *direction* the operands are compacted before and
    the result after, like :func:`convolve` — but deconvolution is
    monotone *decreasing* in ``g``, so an upper-direction budget compacts
    ``f`` up and ``g`` **down** (and vice versa).  Both compactions
    preserve the asymptotic slopes, so the divergence check is unchanged.
    """
    budget = _budget_compactors(direction, max_segments, max_error)
    if budget is not None:
        same, other, run = budget
        out = deconvolve(run(same, f), run(other, g))
        return run(same, out)
    if f.final_slope > g.final_slope + 1e-12:
        raise UnboundedCurveError(
            f"deconvolution diverges: arrival rate {f.final_slope:g} exceeds "
            f"service rate {g.final_slope:g}"
        )
    return kernel_cache.get_or_compute(
        _deconvolve_key(f, g), lambda: _deconvolve_dispatch(f, g)
    )


def _is_generic_deconvolve_pair(
    f: PiecewiseLinearCurve, g: PiecewiseLinearCurve
) -> bool:
    """Whether ``f ⊘ g`` misses the concave-over-convex fast path and
    therefore routes through the active generic-kernel backend."""
    return not (f.is_concave and g.is_convex and f.final_slope <= g.final_slope)


def _deconvolve_key(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve) -> tuple:
    """Cache key of ``f ⊘ g``; generic-regime pairs carry the active
    backend's compatibility tag (fast-path results are backend-free)."""
    key = (
        "minplus.deconvolve",
        f.shape + "/" + g.shape,
        f.content_digest(),
        g.content_digest(),
    )
    if _is_generic_deconvolve_pair(f, g):
        from repro.curves.backends import active_backend

        key = key + ("backend:" + active_backend().compat_tag,)
    return key


def _deconvolve_dispatch(
    f: PiecewiseLinearCurve, g: PiecewiseLinearCurve
) -> PiecewiseLinearCurve:
    # the fast path needs the supremum's slope crossover to exist exactly,
    # hence the strict (no-epsilon) rate comparison; the sliver of curves
    # admitted by deconvolve()'s tolerant divergence check falls back to
    # the generic construction
    if f.is_concave and g.is_convex and f.final_slope <= g.final_slope:
        _count_dispatch("deconvolve", "concave_convex_fast")
        return _deconvolve_concave_convex(f, g)
    from repro.curves.backends import active_backend

    _count_dispatch("deconvolve", "generic")
    return active_backend().deconvolve(f, g)


def deconvolve_generic(
    f: PiecewiseLinearCurve, g: PiecewiseLinearCurve
) -> PiecewiseLinearCurve:
    """The generic exact deconvolution, bypassing structure dispatch and
    cache.

    Kept public as the oracle of the structure property suite.  Raises
    :class:`UnboundedCurveError` when the result is infinite.
    """
    if f.final_slope > g.final_slope + 1e-12:
        raise UnboundedCurveError(
            f"deconvolution diverges: arrival rate {f.final_slope:g} exceeds "
            f"service rate {g.final_slope:g}"
        )
    return _deconvolve_impl(f, g)


@instrumented("minplus.deconvolve_concave", attrs=_pair_attrs)
def _deconvolve_concave_convex(
    f: PiecewiseLinearCurve, g: PiecewiseLinearCurve
) -> PiecewiseLinearCurve:
    """Closed form for concave ``f`` over convex ``g``, ``O(n + m)``.

    The inner objective ``φ_Δ(u) = f(Δ + u) − g(u)`` is concave in ``u``
    (concave minus convex), so at ``Δ = 0`` its supremum sits at the first
    crossover ``u₀`` where f's slope has dropped to g's.  As Δ grows the
    optimizer walks back down from ``u₀``: each step of the result either
    extends ``Δ + u`` across an f-segment above ``u₀`` or retracts ``u``
    across a g-segment below ``u₀``, whichever offers the larger marginal
    slope.  The result is therefore the merge, in order of *decreasing*
    slope, of f's segments on ``[u₀, ∞)`` with g's segments on
    ``[0, u₀)``, starting from ``(f ⊘ g)(0) = f(u₀) − g(u₀)`` — concave by
    construction, with f's asymptotic rate as its tail.
    """
    fx, fs = f.breakpoints, f.slopes
    gx, gs = g.breakpoints, g.slopes
    # u0: slopes are piecewise constant, f's non-increasing and g's
    # non-decreasing, so probing the merged breakpoints finds the first
    # crossover exactly; the caller's f.final_slope <= g.final_slope
    # check guarantees one exists
    w = np.union1d(fx, gx)
    sf_w = fs[np.searchsorted(fx, w, side="right") - 1]
    sg_w = gs[np.searchsorted(gx, w, side="right") - 1]
    u0 = float(w[np.argmax(sf_w <= sg_w)])
    r0 = float(f(u0)) - (0.0 if u0 == 0.0 else float(g(u0)))
    # finite f-segments on [u0, inf); fs[-1] becomes the result's tail
    i0 = int(np.searchsorted(fx, u0, side="right")) - 1
    f_len = np.diff(np.concatenate(([u0], fx[i0 + 1:])))
    f_slo = fs[i0:-1]
    # g-segments covering [0, u0), walked in reverse
    j0 = int(np.searchsorted(gx, u0, side="left"))
    g_len = np.diff(np.concatenate((gx[:j0], [u0])))
    g_slo = gs[:j0]
    final = f.final_slope
    lengths = np.concatenate((f_len, g_len))
    slopes = np.concatenate((f_slo, g_slo))
    # segments at or below the tail rate sort after the infinite tail
    # segment, i.e. they are never reached
    keep = slopes > final
    lengths, slopes = lengths[keep], slopes[keep]
    order = np.argsort(-slopes, kind="stable")
    lengths, slopes = lengths[order], slopes[order]
    xs = np.concatenate(([0.0], np.cumsum(lengths)))
    ys = r0 + np.concatenate(([0.0], np.cumsum(lengths * slopes)))
    ss = np.concatenate((slopes, [final]))
    return _restamp(PiecewiseLinearCurve(xs, ys, ss).simplified(), "concave")


@instrumented("minplus.deconvolve", attrs=_generic_attrs)
def _deconvolve_impl(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve) -> PiecewiseLinearCurve:
    fa = _CurveArrays(f)
    ga = _CurveArrays(g)
    diffs = np.unique(np.subtract.outer(fa.x, ga.x).ravel())
    grid = _dedupe_grid(diffs[diffs >= 0.0])
    if grid.size == 0 or grid[0] != 0.0:
        grid = np.concatenate(([0.0], grid))
    xs: list[float] = []
    ys: list[float] = []
    ss: list[float] = []
    n_grid = grid.size
    for i in range(n_grid):
        a = float(grid[i])
        last = i + 1 >= n_grid
        b = a + max(1.0, abs(a)) if last else float(grid[i + 1])
        mid = 0.5 * (a + b)
        va, sl = _configuration_lines_deconvolve(fa, ga, a, mid)
        if last:
            b = math.inf
        for start, val, slope in _line_envelope_on_interval(va, sl, a, b, lower=False):
            xs.append(start)
            ys.append(max(val, 0.0))
            ss.append(max(slope, 0.0))
    ss[-1] = max(f.final_slope, 0.0)
    return _monotone_pwl(xs, ys, ss)


def _dedupe_grid(grid: np.ndarray) -> np.ndarray:
    """Collapse near-duplicate cell boundaries of an outer-sum grid.

    Breakpoint sums/differences that coincide mathematically can differ by
    a few ulps in float arithmetic, leaving sliver cells (width ~1e-16)
    whose midpoint configuration selection is numerically meaningless —
    the emitted envelope piece can be arbitrarily wrong.  Such cells carry
    no information (the function is a point there), so boundaries closer
    than 1e-12 relative are merged into one.
    """
    if grid.size <= 1:
        return grid
    keep = np.concatenate(
        ([True], np.diff(grid) > 1e-12 * np.maximum(1.0, np.abs(grid[1:])))
    )
    return grid[keep]


def _monotone_pwl(xs: list[float], ys: list[float], ss: list[float]) -> PiecewiseLinearCurve:
    """Assemble a PWL curve, snapping tiny numerical dips to monotone.

    Dips below a previous segment's left limit of relative size up to 1e-6
    are attributed to floating-point noise in the envelope sweep and snapped
    up; anything larger would indicate a logic error and is surfaced by the
    :class:`PiecewiseLinearCurve` constructor.
    """
    x = np.array(xs)
    y = np.array(ys)
    s = np.array(ss)
    for i in range(1, x.size):
        left = y[i - 1] + s[i - 1] * (x[i] - x[i - 1])
        if y[i] < left and (left - y[i]) <= 1e-6 * max(1.0, abs(left)):
            y[i] = left
    return PiecewiseLinearCurve(x, y, s).simplified()


def self_convolution_fixpoint(
    f: PiecewiseLinearCurve, *, iterations: int = 8
) -> PiecewiseLinearCurve:
    """Sub-additive closure approximation ``f* ≈ min(f, f⊗f, f⊗f⊗f, ...)``.

    Iterates ``h ← min(h, h ⊗ f)`` up to *iterations* times, stopping early
    at a fixpoint; concave curves stabilize after one step, where the result
    is exact.  Memoized on ``(f, iterations)``; the inner convolutions also
    hit the kernel cache individually.
    """
    if iterations < 1:
        raise ValidationError("iterations must be >= 1")
    key = ("minplus.self_fixpoint", f.content_digest(), int(iterations))
    return kernel_cache.get_or_compute(key, lambda: _self_fixpoint_impl(f, iterations))


@instrumented(
    "minplus.self_fixpoint",
    attrs=lambda f, iterations: {
        "segments": int(f.breakpoints.size),
        "iterations": int(iterations),
    },
)
def _self_fixpoint_impl(f: PiecewiseLinearCurve, iterations: int) -> PiecewiseLinearCurve:
    h = f
    for _ in range(iterations):
        nxt = h.minimum(convolve(h, f))
        if nxt == h:
            break
        h = nxt
    return h
