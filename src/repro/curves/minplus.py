"""Min-plus convolution and deconvolution of PWL curves.

Network Calculus composes curves with the min-plus operators

.. math::

    (f ⊗ g)(Δ) = \\inf_{0 \\le s \\le Δ} f(s) + g(Δ - s) \\qquad
    (f ⊘ g)(Δ) = \\sup_{u \\ge 0} f(Δ + u) - g(u)

Convolution concatenates service elements and implements greedy shapers;
deconvolution yields the output arrival curve of a served flow.

Min-plus algebra is defined over the set ``F`` of wide-sense increasing
functions with ``f(0) = 0``; our right-continuous PWL curves store the
*right limit* at 0 (the burst), so the operators here apply the
``f(0) = 0`` convention at the origin.  This recovers the textbook
identities, e.g. the convolution of two leaky buckets is their pointwise
minimum, and a greedy shaper never increases a conforming flow's burst.

Exactness
---------
Both operators are computed exactly for PWL inputs.  The optimizer of the
inner inf/sup is always attained at a breakpoint of ``f`` or a (shifted)
breakpoint of ``g``; between two adjacent points of the breakpoint
sum/difference set every such *configuration* is a straight line, so the
result restricted to that interval is the lower (upper) envelope of a
finite set of lines, which we compute with an exact envelope sweep —
including the crossing breakpoints that do not belong to the sum set.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.curves.curve import EPS_REL, PiecewiseLinearCurve
from repro.util.validation import ValidationError

__all__ = [
    "convolve",
    "deconvolve",
    "convolve_at",
    "deconvolve_at",
    "self_convolution_fixpoint",
    "UnboundedCurveError",
]


class UnboundedCurveError(ValidationError):
    """Raised when a deconvolution diverges (``f`` grows faster than ``g``).

    In analysis terms: the flow's long-term rate exceeds the long-term
    service rate, so no finite output bound/backlog exists.
    """


def _eps_for(x: float) -> float:
    return EPS_REL * max(1.0, abs(x))


def _eval0(curve: PiecewiseLinearCurve, x: float) -> float:
    """Evaluate under the min-plus convention ``f(0) = 0`` (see module
    docstring)."""
    return 0.0 if x == 0.0 else float(curve(x))


# ---------------------------------------------------------------------------
# point evaluation
# ---------------------------------------------------------------------------

def convolve_at(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve, delta: float) -> float:
    """Exact evaluation of ``(f ⊗ g)(Δ)`` at a single point."""
    if delta < 0:
        raise ValidationError("delta must be >= 0")
    cands: set[float] = {0.0, float(delta)}
    for xf in f.breakpoints:
        for s in (float(xf), float(xf) - _eps_for(xf)):
            if 0.0 <= s <= delta:
                cands.add(s)
    for xg in g.breakpoints:
        for s in (delta - float(xg), delta - float(xg) + _eps_for(xg)):
            if 0.0 <= s <= delta:
                cands.add(s)
    return min(_eval0(f, s) + _eval0(g, delta - s) for s in cands)


def deconvolve_at(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve, delta: float) -> float:
    """Exact evaluation of ``(f ⊘ g)(Δ)`` at a single point.

    Raises :class:`UnboundedCurveError` if ``f`` outgrows ``g``.
    """
    if delta < 0:
        raise ValidationError("delta must be >= 0")
    if f.final_slope > g.final_slope + 1e-12:
        raise UnboundedCurveError(
            f"deconvolution diverges: arrival rate {f.final_slope:g} exceeds "
            f"service rate {g.final_slope:g}"
        )
    cands: set[float] = {0.0}
    for xg in g.breakpoints:
        # probe just below a g-breakpoint: g's left limit is smaller when g
        # jumps, which can only increase the supremum
        for u in (float(xg), float(xg) - _eps_for(xg)):
            if u >= 0.0:
                cands.add(u)
    for xf in f.breakpoints:
        for u in (float(xf) - delta, float(xf) - delta - _eps_for(xf)):
            if u >= 0.0:
                cands.add(u)
    return max(float(f(delta + u)) - _eval0(g, u) for u in cands)


# ---------------------------------------------------------------------------
# exact curve construction via per-interval line envelopes
# ---------------------------------------------------------------------------

def _line_envelope_on_interval(
    lines: list[tuple[float, float]], a: float, b: float, *, lower: bool
) -> list[tuple[float, float, float]]:
    """Envelope of ``value = v_mid + slope·(Δ − mid)`` lines on ``[a, b)``.

    Each line is given as ``(value_at_a, slope)``.  Returns segments
    ``(start, value_at_start, slope)`` covering ``[a, b)`` of the lower
    (``lower=True``) or upper envelope, exact crossings included.
    """
    if not lines:
        raise ValidationError("envelope needs at least one line")
    segments: list[tuple[float, float, float]] = []
    x = a
    # pick the winning line at x (ties broken by slope: flattest wins for
    # lower envelope, steepest for upper)
    remaining = sorted(set(lines))
    max_segments = len(remaining) + 2  # each crossing switches to a new line
    while x < b - 1e-18 and len(segments) < max_segments:
        best_val = None
        best_slope = None
        for va, s in remaining:
            v = va + s * (x - a)
            if best_val is None or (v < best_val - 1e-12 if lower else v > best_val + 1e-12):
                best_val, best_slope = v, s
            elif abs(v - best_val) <= 1e-12 + 1e-12 * abs(best_val):
                if (lower and s < best_slope) or (not lower and s > best_slope):
                    best_val, best_slope = v, s
        # find the first crossing where another line overtakes the winner
        next_x = b
        for va, s in remaining:
            rel = s - best_slope
            # near-parallel lines never produce a meaningful crossing; a
            # denormal slope difference would yield a numerically garbage
            # crossing abscissa, so treat it as parallel
            if abs(rel) <= 1e-15 * max(1.0, abs(s), abs(best_slope)):
                continue
            v = va + s * (x - a)
            gap = v - best_val
            # the challenger wins when best_val + best_slope·t crosses it
            if (lower and rel < 0) or (not lower and rel > 0):
                t = gap / (-rel)
                if t > 1e-15 and x + t < next_x:
                    next_x = x + t
        segments.append((x, best_val, best_slope))
        if not math.isfinite(next_x):
            break
        x = next_x
    return segments


def _configuration_lines_convolve(
    f: PiecewiseLinearCurve, g: PiecewiseLinearCurve, a: float, mid: float
) -> list[tuple[float, float]]:
    """All candidate lines for (f⊗g) on an interval with midpoint *mid*.

    Configurations: ``s`` pinned at a breakpoint of f (line follows g), or
    ``Δ − s`` pinned at a breakpoint of g (line follows f).  Only
    configurations feasible throughout the interval contribute.
    """
    lines: list[tuple[float, float]] = []
    for xf in f.breakpoints:
        s = float(xf)
        if s <= a + 1e-15:
            rest = mid - s
            slope = float(g.slopes[np.searchsorted(g.breakpoints, rest, side="right") - 1])
            val_mid = _eval0(f, s) + _eval0(g, rest)
            lines.append((val_mid - slope * (mid - a), slope))
            # f is right-continuous: the inf can be approached with s just
            # below the breakpoint, paying f's left limit (matters when f
            # jumps, e.g. staircase arrival curves)
            if s > 0.0:
                val_mid_left = f.left_limit(s) + _eval0(g, rest)
                lines.append((val_mid_left - slope * (mid - a), slope))
    for xg in g.breakpoints:
        r = float(xg)
        if r <= a + 1e-15:
            s_mid = mid - r
            slope = float(f.slopes[np.searchsorted(f.breakpoints, s_mid, side="right") - 1])
            val_mid = _eval0(f, s_mid) + _eval0(g, r)
            lines.append((val_mid - slope * (mid - a), slope))
            # likewise, Δ − s can sit just below a g-breakpoint, paying g's
            # left limit
            if r > 0.0:
                val_mid_left = _eval0(f, s_mid) + g.left_limit(r)
                lines.append((val_mid_left - slope * (mid - a), slope))
    return lines


def convolve(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve) -> PiecewiseLinearCurve:
    """Min-plus convolution ``f ⊗ g`` as a new PWL curve (exact).

    With ``n`` and ``m`` segments the construction is O(n·m·(n+m)); for
    trace staircases with thousands of jumps prefer :func:`convolve_at` on
    the Δ values you need.
    """
    sums = {float(xa + xb) for xa in f.breakpoints for xb in g.breakpoints}
    sums.add(0.0)
    grid = sorted(sums)
    xs: list[float] = []
    ys: list[float] = []
    ss: list[float] = []
    final_slope = min(f.final_slope, g.final_slope)
    for i, a in enumerate(grid):
        last = i + 1 >= len(grid)
        b = a + max(1.0, abs(a)) if last else grid[i + 1]
        mid = 0.5 * (a + b)
        lines = _configuration_lines_convolve(f, g, a, mid)
        if last:
            b = math.inf
        # the envelope value at `a` is already the right limit: configurations
        # feasible on [a, b) evaluated at a reproduce the RC value exactly
        for start, val, slope in _line_envelope_on_interval(lines, a, b, lower=True):
            xs.append(start)
            ys.append(max(val, 0.0))
            ss.append(max(slope, 0.0))
    ss[-1] = max(final_slope, 0.0)
    return _monotone_pwl(xs, ys, ss)


def _configuration_lines_deconvolve(
    f: PiecewiseLinearCurve, g: PiecewiseLinearCurve, a: float, mid: float
) -> list[tuple[float, float]]:
    """Candidate lines for (f⊘g) on an interval with midpoint *mid*.

    Configurations: ``u`` pinned at a breakpoint of g (line follows f,
    always feasible), or ``Δ + u`` pinned at a breakpoint of f (line slope
    is g's local slope; feasible while ``x_f >= Δ``)."""
    lines: list[tuple[float, float]] = []
    for xg in g.breakpoints:
        u = float(xg)
        slope = float(f.slopes[np.searchsorted(f.breakpoints, mid + u, side="right") - 1])
        val_mid = float(f(mid + u)) - _eval0(g, u)
        lines.append((val_mid - slope * (mid - a), slope))
        # probe just below a g-jump: g's left limit is smaller, which can
        # only increase the supremum (f changes only infinitesimally there
        # unless Δ+u hits an f-breakpoint, which is a grid point)
        if u > 0.0:
            val_mid_left = float(f(mid + u)) - g.left_limit(u)
            lines.append((val_mid_left - slope * (mid - a), slope))
    for xf in f.breakpoints:
        t = float(xf)
        if t >= mid:  # u = t − Δ stays >= 0 around the midpoint
            u_mid = t - mid
            slope = float(g.slopes[np.searchsorted(g.breakpoints, u_mid, side="right") - 1])
            val_mid = float(f(t)) - _eval0(g, u_mid)
            lines.append((val_mid - slope * (mid - a), slope))
    return lines


def deconvolve(f: PiecewiseLinearCurve, g: PiecewiseLinearCurve) -> PiecewiseLinearCurve:
    """Min-plus deconvolution ``f ⊘ g`` as a new PWL curve (exact up to
    left-limit epsilon probes at jumps).

    Used for the output arrival curve ``α* = α ⊘ β`` of a served flow.
    Raises :class:`UnboundedCurveError` when the result is infinite.
    """
    if f.final_slope > g.final_slope + 1e-12:
        raise UnboundedCurveError(
            f"deconvolution diverges: arrival rate {f.final_slope:g} exceeds "
            f"service rate {g.final_slope:g}"
        )
    diffs = {float(xa - xb) for xa in f.breakpoints for xb in g.breakpoints}
    diffs.add(0.0)
    grid = sorted(d for d in diffs if d >= 0.0)
    if grid[0] != 0.0:
        grid.insert(0, 0.0)
    xs: list[float] = []
    ys: list[float] = []
    ss: list[float] = []
    for i, a in enumerate(grid):
        last = i + 1 >= len(grid)
        b = a + max(1.0, abs(a)) if last else grid[i + 1]
        mid = 0.5 * (a + b)
        lines = _configuration_lines_deconvolve(f, g, a, mid)
        if last:
            b = math.inf
        for start, val, slope in _line_envelope_on_interval(lines, a, b, lower=False):
            xs.append(start)
            ys.append(max(val, 0.0))
            ss.append(max(slope, 0.0))
    ss[-1] = max(f.final_slope, 0.0)
    return _monotone_pwl(xs, ys, ss)


def _monotone_pwl(xs: list[float], ys: list[float], ss: list[float]) -> PiecewiseLinearCurve:
    """Assemble a PWL curve, snapping tiny numerical dips to monotone.

    Dips below a previous segment's left limit of relative size up to 1e-6
    are attributed to floating-point noise in the envelope sweep and snapped
    up; anything larger would indicate a logic error and is surfaced by the
    :class:`PiecewiseLinearCurve` constructor.
    """
    x = np.array(xs)
    y = np.array(ys)
    s = np.array(ss)
    for i in range(1, x.size):
        left = y[i - 1] + s[i - 1] * (x[i] - x[i - 1])
        if y[i] < left and (left - y[i]) <= 1e-6 * max(1.0, abs(left)):
            y[i] = left
    return PiecewiseLinearCurve(x, y, s).simplified()


def self_convolution_fixpoint(
    f: PiecewiseLinearCurve, *, iterations: int = 8
) -> PiecewiseLinearCurve:
    """Sub-additive closure approximation ``f* ≈ min(f, f⊗f, f⊗f⊗f, ...)``.

    Iterates ``h ← min(h, h ⊗ f)`` up to *iterations* times, stopping early
    at a fixpoint; concave curves stabilize after one step, where the result
    is exact.
    """
    if iterations < 1:
        raise ValidationError("iterations must be >= 1")
    h = f
    for _ in range(iterations):
        nxt = h.minimum(convolve(h, f))
        if nxt == h:
            break
        h = nxt
    return h
