"""Backlog, delay, and output bounds (paper eq. (6) and Figure 3).

Given arrival curve ``α`` and service curve ``β`` of a flow through one
node:

* **backlog** ``B <= sup_{Δ>=0} (α(Δ) − β(Δ))`` — the maximal vertical
  deviation (eq. (6));
* **delay** ``D <= sup_{Δ>=0} inf{d >= 0 : α(Δ) <= β(Δ + d)}`` — the
  maximal horizontal deviation;
* **output** ``α* = α ⊘ β`` — arrival curve of the departing flow.

All three are exact for PWL curves; staircase jumps are handled via
left-limit probes.
"""

from __future__ import annotations

import numpy as np

from repro.curves.curve import EPS_REL, PiecewiseLinearCurve
from repro.curves.minplus import UnboundedCurveError, deconvolve

__all__ = ["backlog_bound", "delay_bound", "output_arrival_curve", "is_stable"]


def is_stable(alpha: PiecewiseLinearCurve, beta: PiecewiseLinearCurve) -> bool:
    """True if the long-run service rate covers the long-run arrival rate,
    i.e. finite backlog/delay bounds exist."""
    return alpha.final_slope <= beta.final_slope + 1e-12


def _candidate_deltas(
    alpha: PiecewiseLinearCurve, beta: PiecewiseLinearCurve
) -> np.ndarray:
    cands: set[float] = {0.0}
    for bp in np.concatenate((alpha.breakpoints, beta.breakpoints)):
        cands.add(float(bp))
        eps = EPS_REL * max(1.0, abs(bp))
        if bp - eps >= 0.0:
            cands.add(float(bp - eps))
    return np.array(sorted(cands))


def backlog_bound(alpha: PiecewiseLinearCurve, beta: PiecewiseLinearCurve) -> float:
    """Maximal vertical deviation ``sup(α − β)`` (paper eq. (6)).

    Exact for PWL: on every segment the difference is linear, so the sup is
    attained at a breakpoint of either curve (or just before a service-curve
    jump, covered by the left-limit probes).  Raises
    :class:`UnboundedCurveError` for unstable systems.
    """
    if not is_stable(alpha, beta):
        raise UnboundedCurveError(
            f"backlog unbounded: arrival rate {alpha.final_slope:g} exceeds "
            f"service rate {beta.final_slope:g}"
        )
    xs = _candidate_deltas(alpha, beta)
    return float(np.max(alpha(xs) - beta(xs)))


def delay_bound(alpha: PiecewiseLinearCurve, beta: PiecewiseLinearCurve) -> float:
    """Maximal horizontal deviation between ``α`` and ``β``.

    For each candidate Δ (breakpoints of α, left-limit probes, and the
    α-preimages of β's breakpoint levels), the local delay is
    ``β⁻¹(α(Δ)) − Δ``; the bound is the maximum.  Raises
    :class:`UnboundedCurveError` for unstable systems.
    """
    if not is_stable(alpha, beta):
        raise UnboundedCurveError(
            f"delay unbounded: arrival rate {alpha.final_slope:g} exceeds "
            f"service rate {beta.final_slope:g}"
        )
    cands: set[float] = {0.0}
    for bp in alpha.breakpoints:
        cands.add(float(bp))
        eps = EPS_REL * max(1.0, abs(bp))
        if bp - eps >= 0.0:
            cands.add(float(bp - eps))
    # α-preimages of β breakpoint values: between them the local delay is
    # monotone, so extrema live on this candidate set
    for level in beta.values_at_breakpoints:
        try:
            pre = alpha.inverse(float(level))
        except Exception:
            continue
        cands.add(pre)
        eps = EPS_REL * max(1.0, abs(pre))
        if pre - eps >= 0.0:
            cands.add(pre - eps)
    # on the final ray the local delay is linear with slope
    # (α_rate/β_rate − 1) <= 0; when the rates are equal it is *constant*,
    # so a probe beyond every breakpoint is needed to observe it
    far = max(cands) + max(1.0, max(cands))
    for bp in beta.breakpoints:
        far = max(far, float(bp) + 1.0)
    cands.add(far)
    # right-limit probes: where α leaves 0 with positive slope (e.g. a
    # burstless leaky bucket) the sup is approached from the right of a
    # candidate — the candidate itself has demand 0 and is skipped below
    for delta in list(cands):
        cands.add(delta + EPS_REL * max(1.0, abs(delta)))
    worst = 0.0
    for delta in sorted(cands):
        demand = float(alpha(delta))
        if demand <= 0.0:
            continue
        served_at = beta.inverse(demand)
        worst = max(worst, served_at - delta)
    return worst


def output_arrival_curve(
    alpha: PiecewiseLinearCurve, beta: PiecewiseLinearCurve
) -> PiecewiseLinearCurve:
    """Arrival curve of the flow *after* the node: ``α* = α ⊘ β``."""
    return deconvolve(alpha, beta)
