"""Piecewise-linear curves over time intervals ``Δ >= 0``.

Network Calculus (Le Boudec & Thiran; paper §3.2) works with wide-sense
increasing functions of the interval length Δ: *arrival curves* ``α(Δ)``
bound the traffic seen in any window of length Δ, *service curves* ``β(Δ)``
bound the service guaranteed in any window.  This module provides the exact
piecewise-linear (PWL) representation both kinds share.

Representation
--------------
A :class:`PiecewiseLinearCurve` is given by parallel arrays ``x``, ``y``,
``slope``: on segment ``[x[i], x[i+1])`` the curve equals
``y[i] + slope[i]·(Δ − x[i])``; the last slope extends to infinity.  The
curve is right-continuous and may jump upward at breakpoints (this is how
staircase arrival curves are represented: zero slopes plus jumps).  All
curves must be non-negative and wide-sense increasing.

Exactness
---------
All operations (``+``, scalar ``*``, pointwise ``max``/``min``, min-plus
convolution/deconvolution in :mod:`repro.curves.minplus`, and the
backlog/delay bounds in :mod:`repro.curves.bounds`) are *exact* for PWL
curves: results are computed at candidate breakpoints that provably contain
every breakpoint of the true result.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.validation import ValidationError, check_non_negative, check_positive

__all__ = ["PiecewiseLinearCurve", "zero_curve", "linear_curve", "step_curve", "EPS_REL"]

#: Relative epsilon used when probing left limits at breakpoints.
EPS_REL = 1e-9


class PiecewiseLinearCurve:
    """An exact, right-continuous, wide-sense increasing PWL curve on Δ ≥ 0.

    Parameters
    ----------
    x:
        Strictly increasing breakpoints; ``x[0]`` must be ``0``.
    y:
        Curve value at each breakpoint (right limit); non-negative.
    slope:
        Slope of the segment starting at each breakpoint; non-negative.
        ``slope[-1]`` is the asymptotic slope.
    """

    def __init__(self, x: Sequence[float], y: Sequence[float], slope: Sequence[float]):
        xa = np.asarray(x, dtype=float)
        ya = np.asarray(y, dtype=float)
        sa = np.asarray(slope, dtype=float)
        if not (xa.ndim == ya.ndim == sa.ndim == 1) or not (xa.size == ya.size == sa.size):
            raise ValidationError("x, y, slope must be equal-length 1-D sequences")
        if xa.size == 0:
            raise ValidationError("curve needs at least one segment")
        if xa[0] != 0.0:
            raise ValidationError("first breakpoint must be at 0")
        if np.any(np.diff(xa) <= 0):
            raise ValidationError("breakpoints must be strictly increasing")
        if not (np.all(np.isfinite(xa)) and np.all(np.isfinite(ya)) and np.all(np.isfinite(sa))):
            raise ValidationError("curve data must be finite")
        if np.any(ya < 0):
            raise ValidationError("curve must be non-negative")
        if np.any(sa < 0):
            raise ValidationError("slopes must be non-negative (wide-sense increasing)")
        # each breakpoint value must be >= the left limit of the previous segment
        if xa.size > 1:
            left_limits = ya[:-1] + sa[:-1] * np.diff(xa)
            if np.any(ya[1:] < left_limits - 1e-12 * np.maximum(1.0, np.abs(left_limits))):
                raise ValidationError("curve must be wide-sense increasing (downward jump)")
        self._x = xa
        self._y = ya
        self._s = sa
        self._digest: bytes | None = None
        self._hash: int | None = None
        self._shape: str | None = None

    # -- accessors ------------------------------------------------------------------
    @property
    def breakpoints(self) -> np.ndarray:
        """Copy of the breakpoint abscissae."""
        return self._x.copy()

    @property
    def values_at_breakpoints(self) -> np.ndarray:
        """Copy of the right-limit values at breakpoints."""
        return self._y.copy()

    @property
    def slopes(self) -> np.ndarray:
        """Copy of the per-segment slopes."""
        return self._s.copy()

    @property
    def final_slope(self) -> float:
        """Asymptotic growth rate (slope of the last, unbounded segment)."""
        return float(self._s[-1])

    @property
    def n_segments(self) -> int:
        """Number of linear segments."""
        return int(self._x.size)

    # -- structure classification -----------------------------------------------------
    @property
    def shape(self) -> str:
        """Structural class of the curve under the min-plus ``f(0) = 0``
        convention: ``"convex"``, ``"concave"``, ``"affine"`` (both), or
        ``"general"``.

        Classified once per instance and cached alongside the content
        digest; the min-plus operators in :mod:`repro.curves.minplus` use
        it to dispatch to closed-form ``O(n + m)`` fast paths.

        The classification is of the *effective* function ``f̃`` with
        ``f̃(0) = 0`` (the stored ``f(0)`` is the right limit, i.e. the
        burst):

        * **convex** — ``f(0) = 0``, continuous (no jumps anywhere), and
          slopes non-decreasing.  E.g. rate-latency service curves.
        * **concave** — continuous on ``(0, ∞)`` (an upward jump at 0 is
          allowed — ``f̃`` with a burst is still concave in the min-plus
          sense) and slopes non-increasing.  E.g. leaky buckets.
        * **affine** — both of the above: a single rate through the
          origin, such as the full-processor service curve ``F·Δ``.
        * **general** — everything else (staircases, TDMA curves, …).

        Interior continuity is checked with *exact* float equality: a
        curve whose breakpoint values carry rounding noise classifies as
        ``"general"`` and takes the generic (always-correct) kernels, so a
        misclassification can cost speed but never correctness.
        """
        if self._shape is None:
            self._shape = self._classify()
        return self._shape

    def _classify(self) -> str:
        if self._x.size > 1:
            left_limits = self._y[:-1] + self._s[:-1] * np.diff(self._x)
            continuous = bool(np.all(self._y[1:] == left_limits))
        else:
            continuous = True
        if not continuous:
            return "general"
        diffs = np.diff(self._s)
        convex = self._y[0] == 0.0 and bool(np.all(diffs >= 0))
        concave = bool(np.all(diffs <= 0))
        if convex and concave:
            return "affine"
        if convex:
            return "convex"
        if concave:
            return "concave"
        return "general"

    @property
    def is_convex(self) -> bool:
        """True if the curve is convex with ``f(0) = 0`` (see :attr:`shape`)."""
        return self.shape in ("convex", "affine")

    @property
    def is_concave(self) -> bool:
        """True if the effective min-plus function is concave (see
        :attr:`shape`); an upward jump at 0 (a burst) is allowed."""
        return self.shape in ("concave", "affine")

    # -- evaluation -----------------------------------------------------------------
    def __call__(self, delta):
        """Evaluate at Δ (scalar or array-like); Δ must be >= 0."""
        arr = np.asarray(delta, dtype=float)
        if np.any(arr < 0):
            raise ValidationError("delta must be >= 0")
        scalar = arr.ndim == 0
        dd = np.atleast_1d(arr)
        idx = np.searchsorted(self._x, dd, side="right") - 1
        out = self._y[idx] + self._s[idx] * (dd - self._x[idx])
        return float(out[0]) if scalar else out

    def left_limit(self, delta: float) -> float:
        """The left limit ``f(Δ⁻)`` (equals ``f(Δ)`` except at upward jumps).

        ``left_limit(0)`` is defined as ``f(0)``.
        """
        delta = check_non_negative(delta, "delta")
        if delta == 0.0:
            return float(self._y[0])
        i = int(np.searchsorted(self._x, delta, side="left")) - 1
        # delta is strictly inside segment i, or exactly at breakpoint i+1
        return float(self._y[i] + self._s[i] * (delta - self._x[i]))

    def jump_at(self, delta: float) -> float:
        """Size of the upward jump at Δ (0 if continuous there)."""
        return float(self(delta)) - self.left_limit(delta)

    def inverse(self, value: float) -> float:
        """Lower pseudo-inverse ``f⁻¹(v) = inf{Δ >= 0 : f(Δ) >= v}``.

        Raises if *v* is never reached (final slope 0 and v above the
        plateau).
        """
        value = check_non_negative(value, "value")
        if value <= self._y[0]:
            return 0.0
        # find the first segment whose sup >= value
        for i in range(self._x.size):
            seg_end_val = (
                self._y[i] + self._s[i] * (self._x[i + 1] - self._x[i])
                if i + 1 < self._x.size
                else np.inf if self._s[i] > 0 else self._y[i]
            )
            if value <= self._y[i]:
                return float(self._x[i])
            if value <= seg_end_val:
                if self._s[i] > 0:
                    return float(self._x[i] + (value - self._y[i]) / self._s[i])
                return float(self._x[i + 1])  # reached by the jump at next bp
        raise ValidationError(f"curve never reaches value {value!r}")

    # -- arithmetic -----------------------------------------------------------------
    def __add__(self, other: "PiecewiseLinearCurve") -> "PiecewiseLinearCurve":
        if not isinstance(other, PiecewiseLinearCurve):
            return NotImplemented
        xs = np.union1d(self._x, other._x)
        ys = self(xs) + other(xs)
        ss = self._slope_at(xs) + other._slope_at(xs)
        out = PiecewiseLinearCurve(xs, ys, ss).simplified()
        # the sum of curves of one structural class stays in that class
        # (affine + affine is affine); mixed sums prove nothing
        if self.is_convex and other.is_convex:
            shape = "affine" if self.shape == other.shape == "affine" else "convex"
            return _stamp(out, shape)
        if self.is_concave and other.is_concave:
            return _stamp(out, "concave")
        return out

    def __mul__(self, factor: float) -> "PiecewiseLinearCurve":
        factor = check_positive(factor, "factor")
        out = PiecewiseLinearCurve(self._x, self._y * factor, self._s * factor)
        # classify the *original* arrays and carry the verdict over:
        # positive scaling preserves the structural class, while
        # re-classifying the scaled arrays could spuriously fail the
        # exact-equality continuity check on rounded products
        out._shape = self.shape
        return out

    __rmul__ = __mul__

    def shift_up(self, amount: float) -> "PiecewiseLinearCurve":
        """Curve raised by a constant ``amount >= 0``."""
        amount = check_non_negative(amount, "amount")
        if amount == 0.0:
            return self
        out = PiecewiseLinearCurve(self._x, self._y + amount, self._s)
        if self.is_concave:
            # raising a concave/affine curve only grows the burst
            return _stamp(out, "concave")
        return out

    def shift_right(self, amount: float) -> "PiecewiseLinearCurve":
        """Curve delayed by ``amount >= 0``: ``g(Δ) = f(max(0, Δ − amount))``
        clamped at ``f(0)`` before the shift (used to add latency to a
        service curve)."""
        amount = check_non_negative(amount, "amount")
        if amount == 0.0:
            return self
        xs = np.concatenate(([0.0], self._x + amount))
        ys = np.concatenate(([self._y[0]], self._y))
        ss = np.concatenate(([0.0], self._s))
        out = PiecewiseLinearCurve(xs, ys, ss).simplified()
        if self.is_convex:
            # prepending the zero-slope latency segment keeps the slopes
            # sorted and the origin at 0 — rate-latency stays convex
            return _stamp(out, "convex")
        return out

    def maximum(self, other: "PiecewiseLinearCurve") -> "PiecewiseLinearCurve":
        """Exact pointwise maximum."""
        out = self._extremum(other, np.maximum, pick_max=True)
        if self.is_convex and other.is_convex:
            shape = "affine" if self.shape == other.shape == "affine" else "convex"
            return _stamp(out, shape)
        return out

    def minimum(self, other: "PiecewiseLinearCurve") -> "PiecewiseLinearCurve":
        """Exact pointwise minimum."""
        out = self._extremum(other, np.minimum, pick_max=False)
        if self.is_concave and other.is_concave:
            shape = "affine" if self.shape == other.shape == "affine" else "concave"
            return _stamp(out, shape)
        return out

    def _slope_at(self, deltas: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self._x, deltas, side="right") - 1
        return self._s[idx]

    def _extremum(self, other, op, *, pick_max: bool) -> "PiecewiseLinearCurve":
        if not isinstance(other, PiecewiseLinearCurve):
            raise ValidationError("operand must be a PiecewiseLinearCurve")
        xs = set(np.union1d(self._x, other._x).tolist())
        # add interior crossing points of each pair of overlapping segments
        grid = np.array(sorted(xs))
        for a, b in zip(grid[:-1], grid[1:]):
            cross = _segment_crossing(self, other, a, b)
            if cross is not None:
                xs.add(cross)
        # crossing beyond the last breakpoint
        last = grid[-1]
        fa, ga = self(last), other(last)
        sf, sg = self.final_slope, other.final_slope
        if (fa - ga) * (sf - sg) < 0:
            cross = last + (ga - fa) / (sf - sg)
            if cross > last:
                xs.add(float(cross))
        xall = np.array(sorted(xs))
        yall = op(self(xall), other(xall))
        # slope at each breakpoint: slope of the winning curve just after it
        f_vals, g_vals = self(xall), other(xall)
        f_slopes, g_slopes = self._slope_at(xall), other._slope_at(xall)
        # ties must be detected with a *tight* tolerance: a loose absolute
        # tolerance (np.isclose's default 1e-8) classifies genuinely distinct
        # small values as equal and then picks the wrong continuation slope,
        # manufacturing a downward jump at the next crossing point
        tie = np.isclose(f_vals, g_vals, rtol=1e-12, atol=1e-15)
        if pick_max:
            winner_f = f_vals > g_vals
            slopes = np.where(winner_f, f_slopes, g_slopes)
            slopes = np.where(tie, np.maximum(f_slopes, g_slopes), slopes)
        else:
            winner_f = f_vals < g_vals
            slopes = np.where(winner_f, f_slopes, g_slopes)
            slopes = np.where(tie, np.minimum(f_slopes, g_slopes), slopes)
        return PiecewiseLinearCurve(xall, yall, slopes).simplified()

    def simplified(self) -> "PiecewiseLinearCurve":
        """Merge collinear adjacent segments (no value change anywhere)."""
        keep = [0]
        for i in range(1, self._x.size):
            px, py, ps = self._x[keep[-1]], self._y[keep[-1]], self._s[keep[-1]]
            expected = py + ps * (self._x[i] - px)
            # slopes must match in *relative* terms: an absolute tolerance
            # would be amplified by the segment span into a value error the
            # constructor's monotonicity check rejects (e.g. merging slopes
            # 1e-12 and 0 over a span of 3 manufactures a downward jump)
            if np.isclose(expected, self._y[i], rtol=1e-12, atol=1e-12) and np.isclose(
                ps, self._s[i], rtol=1e-12, atol=0.0
            ):
                continue
            keep.append(i)
        if len(keep) == self._x.size:
            return self
        idx = np.array(keep)
        out = PiecewiseLinearCurve(self._x[idx], self._y[idx], self._s[idx])
        # merging collinear segments does not change the function, so a
        # classification already computed for the source stays valid
        out._shape = self._shape
        return out

    # -- comparison --------------------------------------------------------------------
    def dominates(self, other: "PiecewiseLinearCurve") -> bool:
        """True if this curve is >= *other* for every Δ (exact PWL check)."""
        xs = np.union1d(self._x, other._x)
        probe = np.concatenate((xs, xs[1:] - EPS_REL * np.maximum(1.0, xs[1:])))
        probe = probe[probe >= 0]
        if np.any(self(probe) < other(probe) - 1e-9):
            return False
        return self.final_slope >= other.final_slope - 1e-12

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PiecewiseLinearCurve):
            return NotImplemented
        a, b = self.simplified(), other.simplified()
        if a._x.size != b._x.size:
            return False
        return (
            np.allclose(a._x, b._x)
            and np.allclose(a._y, b._y)
            and np.allclose(a._s, b._s)
        )

    def __hash__(self) -> int:
        """Hash consistent with :meth:`__eq__`.

        Equality is *approximate* (``allclose`` on the simplified
        representation), so the hash may only depend on invariants that are
        exactly equal for every pair of equal curves — here the simplified
        segment count, which ``__eq__`` requires to match.  The hash is
        deliberately coarse; within a dict bucket the exact ``__eq__``
        disambiguates.  Exact cache keys use :meth:`content_digest` instead.
        """
        if self._hash is None:
            self._hash = hash(("PiecewiseLinearCurve", self.simplified()._x.size))
        return self._hash

    def content_digest(self) -> bytes:
        """Exact content digest of the stored representation (cache key).

        Bit-identical curves share a digest; ``allclose``-but-not-identical
        curves do not — content-addressed caching therefore never conflates
        two curves that could evaluate differently.
        """
        if self._digest is None:
            from repro.perf.cache import digest_of

            self._digest = digest_of(b"pwl", self._x, self._y, self._s)
        return self._digest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PiecewiseLinearCurve(n_segments={self.n_segments}, "
            f"f(0)={self._y[0]:g}, final_slope={self.final_slope:g})"
        )


def _stamp(out: PiecewiseLinearCurve, shape: str) -> PiecewiseLinearCurve:
    """Attach a structure classification proved by the construction.

    Mirrors :func:`repro.curves.minplus._restamp`: the lazy classifier
    checks interior continuity with exact float equality, which rounding in
    a curve operation can defeat; a construction-proved verdict overrides
    an accidental "general", while a sharper computed verdict ("affine")
    is kept.
    """
    if out.shape == "general":
        out._shape = shape
    return out


def _segment_crossing(
    f: PiecewiseLinearCurve, g: PiecewiseLinearCurve, a: float, b: float
) -> float | None:
    """Interior point in (a, b) where the (linear there) curves cross."""
    fa, ga = f(a), g(a)
    sf = float(f._slope_at(np.array([a]))[0])
    sg = float(g._slope_at(np.array([a]))[0])
    if sf == sg:
        return None
    t = a + (ga - fa) / (sf - sg)
    if a < t < b:
        return float(t)
    return None


def zero_curve() -> PiecewiseLinearCurve:
    """The identically-zero curve."""
    return PiecewiseLinearCurve([0.0], [0.0], [0.0])


def linear_curve(rate: float, *, offset: float = 0.0) -> PiecewiseLinearCurve:
    """``f(Δ) = offset + rate·Δ`` — e.g. the full-processor service curve
    ``β(Δ) = F·Δ`` of the paper's eq. (9)."""
    check_non_negative(rate, "rate")
    check_non_negative(offset, "offset")
    return PiecewiseLinearCurve([0.0], [offset], [rate])


def step_curve(jump_positions: Sequence[float], jump_heights: Sequence[float] | None = None) -> PiecewiseLinearCurve:
    """Right-continuous staircase: at each position the curve jumps by the
    corresponding height (default 1).  Positions must be non-decreasing and
    non-negative; coincident positions merge their heights.

    This is the natural form of a trace-derived arrival curve ``ᾱ(Δ)``.
    """
    pos = np.asarray(jump_positions, dtype=float)
    if pos.ndim != 1 or pos.size == 0:
        raise ValidationError("jump_positions must be a non-empty 1-D sequence")
    if np.any(pos < 0) or np.any(np.diff(pos) < 0):
        raise ValidationError("jump_positions must be non-negative and non-decreasing")
    if jump_heights is None:
        hts = np.ones(pos.size)
    else:
        hts = np.asarray(jump_heights, dtype=float)
        if hts.shape != pos.shape:
            raise ValidationError("jump_heights must match jump_positions")
        if np.any(hts <= 0):
            raise ValidationError("jump heights must be positive")
    # merge coincident positions
    uniq, inverse = np.unique(pos, return_inverse=True)
    merged = np.zeros(uniq.size)
    np.add.at(merged, inverse, hts)
    cumulative = np.cumsum(merged)
    if uniq[0] == 0.0:
        xs = uniq
        ys = cumulative
    else:
        xs = np.concatenate(([0.0], uniq))
        ys = np.concatenate(([0.0], cumulative))
    return PiecewiseLinearCurve(xs, ys, np.zeros(xs.size))
