"""Conservative, direction-aware compaction of piecewise-linear curves.

Iterated min-plus operations grow operand segment counts at every step:
a design-space sweep over trace-derived staircases or a long service
chain quickly drags thousands-of-segment curves through every kernel.
This module trades a *certified* approximation error for a hard segment
budget, in the only direction that keeps Network Calculus sound:

* :func:`compact_upper` returns a curve **pointwise >= the input** — a
  valid (slightly pessimistic) upper arrival/workload curve;
* :func:`compact_lower` returns a curve **pointwise <= the input** — a
  valid (slightly pessimistic) lower service curve.

Both accept a segment budget (``max_segments``), an error budget
(``max_error``, a hard cap on the introduced absolute error), or both,
and report the exact introduced error back
(:attr:`CompactionResult.max_abs_error` / ``max_rel_error``), so callers
can propagate how much pessimism a budgeted pipeline accumulated.

Algorithms (all greedy, smallest-error-first, always preserving the
first breakpoint, the value at 0, the last breakpoint, and the
asymptotic slope — so bursts, divergence checks and tail rates are
untouched):

* **concave up / convex down — line dropping.**  A concave curve is the
  lower envelope (pointwise min) of its segments' support lines, so
  dropping lines can only *raise* it while keeping it concave; dually, a
  convex curve through the origin is the upper envelope (max) of its
  lines, and dropping can only lower it.  The error of a drop is the
  envelope-minus-curve gap at the single new crossing it creates —
  exact, O(1) per candidate.
* **convex up / concave down — chord subsetting.**  Chords of a convex
  curve lie above it (below, for concave), so connecting a subset of the
  original vertices is conservative and shape-preserving.  The error of
  a merged span is the maximum chord-to-curve gap over the original
  vertices inside it — exact, since the gap is piecewise linear between
  them.
* **general curves — plateau merging.**  A merged span ``[x_p, x_q)`` is
  replaced by the constant ``f(x_q^-)`` (its supremum) when compacting
  up, or ``f(x_p)`` (its infimum) when compacting down.  Staircases stay
  staircases — the jump points of a compacted arrival curve remain a
  subset of the original's, so downstream candidate-window enumerations
  (:func:`repro.analysis.frequency._sup_candidates`) stay sound.

Results are memoized through :mod:`repro.perf.cache` under keys carrying
the direction and both budgets, so budgeted pipelines share compactions
across sweep points, and the introduced error is recorded in the
:mod:`repro.obs` metrics registry (``compact.*`` series).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.curves.curve import PiecewiseLinearCurve
from repro.curves.minplus import _line_envelope_on_interval, _restamp
from repro.obs.metrics import registry
from repro.perf.cache import kernel_cache
from repro.util.validation import ValidationError, check_integer

__all__ = ["CompactionResult", "compact_upper", "compact_lower"]

#: Histogram buckets for the relative error introduced by one compaction.
REL_ERROR_BUCKETS = (1e-9, 1e-6, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of one conservative compaction.

    Attributes
    ----------
    curve:
        The compacted curve — the *input instance itself* when it already
        met the budget (no reallocation in tight loops).
    direction:
        ``"upper"`` (result >= input) or ``"lower"`` (result <= input).
    input_segments:
        Segment count of the input curve.
    max_abs_error:
        Certified maximum absolute deviation ``sup |result − input|``,
        computed exactly on the union breakpoint grid (left limits
        included).
    max_rel_error:
        Certified maximum relative deviation against the input, taken
        over points where the input is positive; ``inf`` if the result
        deviates where the input is 0.
    """

    curve: PiecewiseLinearCurve
    direction: str
    input_segments: int
    max_abs_error: float
    max_rel_error: float

    @property
    def output_segments(self) -> int:
        """Segment count of the compacted curve."""
        return self.curve.n_segments

    @property
    def is_noop(self) -> bool:
        """True if the input was returned unchanged."""
        return self.output_segments == self.input_segments


def compact_upper(
    curve: PiecewiseLinearCurve,
    *,
    max_segments: int | None = None,
    max_error: float | None = None,
) -> CompactionResult:
    """Compact *curve* from above: the result is pointwise ``>=`` it.

    Sound wherever a curve is used as an upper bound (arrival curves,
    upper workload curves): every bound derived from the compacted curve
    is still a valid — merely slightly pessimistic — bound.

    ``max_segments`` is the segment target; ``max_error`` a hard cap on
    the introduced absolute error (compaction stops early rather than
    exceed it).  At least one must be given.  A curve already within the
    segment budget is returned as-is (``result.curve is curve``).  On
    general (non-convex, non-concave) curves the span adjacent to 0 is
    never merged — ``f(0)`` is preserved exactly — so the result can hold
    one segment more than a ``max_segments`` of 2.
    """
    return _compact(curve, "upper", max_segments, max_error)


def compact_lower(
    curve: PiecewiseLinearCurve,
    *,
    max_segments: int | None = None,
    max_error: float | None = None,
) -> CompactionResult:
    """Compact *curve* from below: the result is pointwise ``<=`` it.

    Sound wherever a curve is used as a lower bound (service curves,
    lower workload curves).  Same budget semantics as
    :func:`compact_upper`.
    """
    return _compact(curve, "lower", max_segments, max_error)


def _compact(
    curve: PiecewiseLinearCurve,
    direction: str,
    max_segments: int | None,
    max_error: float | None,
) -> CompactionResult:
    if not isinstance(curve, PiecewiseLinearCurve):
        raise ValidationError("compaction needs a PiecewiseLinearCurve")
    if max_segments is None and max_error is None:
        raise ValidationError("compaction needs max_segments and/or max_error")
    if max_segments is not None:
        max_segments = check_integer(max_segments, "max_segments", minimum=2)
    if max_error is not None:
        max_error = float(max_error)
        if not math.isfinite(max_error) or max_error < 0.0:
            raise ValidationError("max_error must be a finite value >= 0")

    n = curve.n_segments
    within_budget = max_segments is not None and n <= max_segments
    if within_budget or n <= 2:
        registry.counter("compact.noop", direction=direction).inc()
        return CompactionResult(curve, direction, n, 0.0, 0.0)

    key = (
        "curves.compact",
        direction,
        curve.shape,
        curve.content_digest(),
        max_segments,
        max_error,
    )
    result = kernel_cache.get_or_compute(
        key, lambda: _compact_impl(curve, direction, max_segments, max_error)
    )
    registry.counter("compact.calls", direction=direction).inc()
    registry.counter("compact.segments_dropped", direction=direction).inc(
        max(0, result.input_segments - result.output_segments)
    )
    if math.isfinite(result.max_rel_error):
        registry.histogram(
            "compact.rel_error", buckets=REL_ERROR_BUCKETS, direction=direction
        ).observe(result.max_rel_error)
    return result


def _compact_impl(
    curve: PiecewiseLinearCurve,
    direction: str,
    max_segments: int | None,
    max_error: float | None,
) -> CompactionResult:
    n_in = curve.n_segments
    base = curve.simplified()
    target = max_segments if max_segments is not None else 2
    if base.n_segments <= max(target, 2):
        # collinear merging alone met the budget: same function, zero error
        return CompactionResult(base, direction, n_in, 0.0, 0.0)

    shape = base.shape
    if direction == "upper":
        if shape in ("concave", "affine"):
            out = _drop_lines(base, target, max_error, upper=True)
        elif shape == "convex":
            out = _chord_subset(base, target, max_error, upper=True)
        else:
            out = _merge_plateaus(base, target, max_error, upper=True)
    else:
        if shape in ("convex", "affine"):
            out = _drop_lines(base, target, max_error, upper=False)
        elif shape == "concave":
            out = _chord_subset(base, target, max_error, upper=False)
        else:
            out = _merge_plateaus(base, target, max_error, upper=False)

    abs_err, rel_err = _certified_error(curve, out, direction)
    return CompactionResult(out, direction, n_in, abs_err, rel_err)


# ---------------------------------------------------------------------------
# greedy engine
# ---------------------------------------------------------------------------

def _greedy_keep(
    n_items: int,
    cost,
    target: int,
    max_error: float | None,
    *,
    first_droppable: int = 1,
) -> np.ndarray:
    """Drop interior items (first/last pinned) greedily by cost.

    *cost(p, i, q)* is the error of dropping item *i* given its current
    live neighbors *p* and *q*; it must be the exact final error of the
    merged span it creates, so stopping when the cheapest candidate
    exceeds *max_error* enforces the cap exactly.  *first_droppable*
    raises the left pin (e.g. 2 protects the span adjacent to 0 as well).
    Returns the sorted indices of the kept items.
    """
    prev = list(range(-1, n_items - 1))
    nxt = list(range(1, n_items + 1))
    removed = [False] * n_items
    version = [0] * n_items
    heap = [(cost(i - 1, i, i + 1), 0, i) for i in range(first_droppable, n_items - 1)]
    heapq.heapify(heap)
    alive = n_items
    while alive > target and heap:
        c, v, i = heapq.heappop(heap)
        if removed[i] or v != version[i]:
            continue
        if max_error is not None and c > max_error:
            break
        removed[i] = True
        alive -= 1
        p, q = prev[i], nxt[i]
        nxt[p], prev[q] = q, p
        for j in (p, q):
            if first_droppable <= j < n_items - 1 and not removed[j]:
                version[j] += 1
                heapq.heappush(
                    heap, (cost(prev[j], j, nxt[j]), version[j], j)
                )
    return np.flatnonzero(~np.asarray(removed))


# ---------------------------------------------------------------------------
# concave-up / convex-down: drop support lines
# ---------------------------------------------------------------------------

def _drop_lines(
    base: PiecewiseLinearCurve, target: int, max_error: float | None, *, upper: bool
) -> PiecewiseLinearCurve:
    x = base.breakpoints
    y = base.values_at_breakpoints
    s = base.slopes
    v = y - s * x  # support-line intercepts
    shape = "concave" if upper else "convex"

    def cost(p: int, i: int, q: int) -> float:
        # dropping line i leaves the p/q crossing as the only new envelope
        # kink; the envelope-to-curve gap there is the exact added error
        z = max(0.0, (v[q] - v[p]) / (s[p] - s[q]))
        gap = (v[p] + s[p] * z) - float(base(z))
        return gap if upper else -gap

    keep = _greedy_keep(x.size, cost, target, max_error)
    segments = _line_envelope_on_interval(
        v[keep], s[keep], 0.0, math.inf, lower=upper
    )
    xs = [seg[0] for seg in segments]
    ys = [max(seg[1], 0.0) for seg in segments]
    ss = [max(seg[2], 0.0) for seg in segments]
    return _restamp(PiecewiseLinearCurve(xs, ys, ss).simplified(), shape)


# ---------------------------------------------------------------------------
# convex-up / concave-down: connect a subset of the vertices by chords
# ---------------------------------------------------------------------------

def _chord_subset(
    base: PiecewiseLinearCurve, target: int, max_error: float | None, *, upper: bool
) -> PiecewiseLinearCurve:
    x = base.breakpoints
    y = base.values_at_breakpoints
    s = base.slopes
    shape = "convex" if upper else "concave"

    def cost(p: int, i: int, q: int) -> float:
        # the chord-to-curve gap is piecewise linear with kinks at the
        # original vertices, so its span maximum sits at one of them
        sl = (y[q] - y[p]) / (x[q] - x[p])
        gap = y[p] + sl * (x[p + 1 : q] - x[p]) - y[p + 1 : q]
        dev = float(gap.max()) if upper else float(-gap.min())
        return max(0.0, dev)

    keep = _greedy_keep(x.size, cost, target, max_error)
    xs = x[keep]
    ys = y[keep]
    ss = np.empty(keep.size)
    ss[-1] = s[-1]
    for k in range(keep.size - 1):
        p, q = keep[k], keep[k + 1]
        # untouched adjacencies reuse the exact original slope (a chord
        # over one segment is that segment, minus rounding noise)
        ss[k] = s[p] if q == p + 1 else (y[q] - y[p]) / (x[q] - x[p])
    return _restamp(PiecewiseLinearCurve(xs, ys, ss).simplified(), shape)


# ---------------------------------------------------------------------------
# general curves: merge breakpoint spans into plateaus
# ---------------------------------------------------------------------------

def _merge_plateaus(
    base: PiecewiseLinearCurve, target: int, max_error: float | None, *, upper: bool
) -> PiecewiseLinearCurve:
    x = base.breakpoints
    y = base.values_at_breakpoints
    s = base.slopes
    # left limit at each breakpoint: the supremum of the span ending there
    left = np.empty_like(y)
    left[0] = y[0]
    left[1:] = y[:-1] + s[:-1] * np.diff(x)

    def cost(p: int, i: int, q: int) -> float:
        # a merged span [x_p, x_q) spans values [y_p, f(x_q^-)]; rounding
        # it to either end costs exactly their gap
        return float(left[q] - y[p])

    # compacting up must never raise f(0): eq. (9)-style candidate
    # enumerations probe jump points only, so a burst silently lifted
    # above the buffer bound would be missed — pin the span at 0 too
    keep = _greedy_keep(
        x.size, cost, target, max_error, first_droppable=2 if upper else 1
    )
    xs = x[keep]
    ys = np.empty(keep.size)
    ss = np.empty(keep.size)
    ys[-1] = y[keep[-1]]
    ss[-1] = s[-1]
    for k in range(keep.size - 1):
        p, q = keep[k], keep[k + 1]
        if q == p + 1:
            ys[k], ss[k] = y[p], s[p]
        elif upper:
            ys[k], ss[k] = left[q], 0.0  # round the whole span up to its sup
        else:
            ys[k], ss[k] = y[p], 0.0  # round the whole span down to its inf
    return PiecewiseLinearCurve(xs, ys, ss).simplified()


# ---------------------------------------------------------------------------
# exact error certification
# ---------------------------------------------------------------------------

def _left_values(curve: PiecewiseLinearCurve, xs: np.ndarray) -> np.ndarray:
    """Vectorized left limits ``f(Δ⁻)`` (``f(0)`` at 0)."""
    x = curve.breakpoints
    y = curve.values_at_breakpoints
    s = curve.slopes
    out = np.empty(xs.size)
    pos = xs > 0.0
    out[~pos] = y[0]
    idx = np.searchsorted(x, xs[pos], side="left") - 1
    out[pos] = y[idx] + s[idx] * (xs[pos] - x[idx])
    return out


def _certified_error(
    original: PiecewiseLinearCurve,
    compacted: PiecewiseLinearCurve,
    direction: str,
) -> tuple[float, float]:
    """Exact ``sup |compacted − original|``, absolute and relative.

    The difference is piecewise linear with kinks only at breakpoints of
    either curve and constant past the last one (the asymptotic slopes
    are preserved by every compaction path), so probing the union grid —
    right values and left limits — is exhaustive.
    """
    xs = np.union1d(original.breakpoints, compacted.breakpoints)
    diff = np.concatenate(
        (
            compacted(xs) - original(xs),
            _left_values(compacted, xs) - _left_values(original, xs),
        )
    )
    ref = np.concatenate((original(xs), _left_values(original, xs)))
    if direction == "lower":
        diff = -diff
    abs_err = max(0.0, float(diff.max()))
    pos = ref > 0.0
    rel_err = max(0.0, float((diff[pos] / ref[pos]).max())) if np.any(pos) else 0.0
    if np.any(diff[~pos] > 1e-12):
        rel_err = math.inf
    return abs_err, rel_err
