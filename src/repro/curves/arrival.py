"""Arrival curves ``ᾱ(Δ)``: standard shapes and trace extraction.

An (upper) arrival curve bounds the number of events seen in any time window
of length Δ (paper §3.2: "gives an upper bound on the number of packets seen
in the flow within any time interval").  The paper generalizes events to any
unit of work — packets, samples, *macroblocks*.

Provided constructors:

* :func:`leaky_bucket` — token-bucket ``b + r·Δ``;
* :func:`periodic_upper` / :func:`periodic_lower` — the (p, j) event model
  (periodic with jitter), as staircases with sound linear tails;
* :func:`from_trace_upper` / :func:`from_trace_lower` — exact staircase
  envelopes of a timestamped trace (the paper's simulation-driven mode).

Structure: a leaky bucket classifies as ``"concave"`` (``"affine"`` when
burstless) under :attr:`~repro.curves.curve.PiecewiseLinearCurve.shape`,
so compositions of buckets ride the closed-form min-plus fast paths; the
staircase constructors produce jumpy ``"general"`` curves that always use
the generic (exact) kernels.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.curves.curve import PiecewiseLinearCurve, step_curve
from repro.util.validation import (
    ValidationError,
    check_integer,
    check_non_negative,
    check_positive,
)

__all__ = [
    "leaky_bucket",
    "periodic_upper",
    "periodic_lower",
    "from_trace_upper",
    "from_trace_lower",
    "minimal_window_lengths",
    "maximal_window_lengths",
]


def leaky_bucket(burst: float, rate: float) -> PiecewiseLinearCurve:
    """Token-bucket arrival curve ``α(Δ) = burst + rate·Δ`` (with
    ``α(0) = burst``, the right-continuous convention)."""
    check_non_negative(burst, "burst")
    check_non_negative(rate, "rate")
    return PiecewiseLinearCurve([0.0], [burst], [rate])


def periodic_upper(period: float, *, jitter: float = 0.0, horizon_periods: int = 64) -> PiecewiseLinearCurve:
    """Upper arrival curve of a periodic-with-jitter stream:
    ``ᾱ(Δ) = ceil((Δ + j) / p)``.

    Represented as an exact staircase for the first *horizon_periods* steps;
    beyond the horizon the curve continues linearly with slope ``1/p`` from
    the last step, which dominates the true staircase (the classical bound
    ``(Δ + j)/p + 1``), so the curve stays a sound upper bound for all Δ.
    """
    p = check_positive(period, "period")
    j = check_non_negative(jitter, "jitter")
    n_steps = check_integer(horizon_periods, "horizon_periods", minimum=1)
    positions = [max(0.0, (n - 1) * p - j) for n in range(1, n_steps + 1)]
    heights = [1.0] * len(positions)
    curve = step_curve(positions, heights)
    xs = curve.breakpoints
    ys = curve.values_at_breakpoints
    ss = curve.slopes
    ss[-1] = 1.0 / p  # sound linear continuation
    return PiecewiseLinearCurve(xs, ys, ss)


def periodic_lower(period: float, *, jitter: float = 0.0, horizon_periods: int = 64) -> PiecewiseLinearCurve:
    """Lower arrival curve of a periodic-with-jitter stream:
    ``α^l(Δ) = max(0, floor((Δ − j) / p))``.

    Staircase steps at ``Δ = n·p + j``; beyond the horizon the curve
    continues with slope ``1/p`` anchored one period after the last step,
    which the true staircase dominates.
    """
    p = check_positive(period, "period")
    j = check_non_negative(jitter, "jitter")
    n_steps = check_integer(horizon_periods, "horizon_periods", minimum=1)
    positions = [n * p + j for n in range(1, n_steps + 1)]
    curve = step_curve(positions)
    xs = list(curve.breakpoints)
    ys = list(curve.values_at_breakpoints)
    ss = list(curve.slopes)
    # anchor the linear tail one period after the last step: the line
    # (Δ - j)/p - 1 passes through (x_last + p, n_steps) with slope 1/p and
    # lies below the staircase everywhere
    xs.append(positions[-1] + p)
    ys.append(float(n_steps))
    ss[-1] = 0.0
    ss.append(1.0 / p)
    return PiecewiseLinearCurve(xs, ys, ss)


def minimal_window_lengths(
    timestamps: Sequence[float], n_values: Sequence[int] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """For each event count ``n`` the minimal window length containing ``n``
    events of the trace: ``d_n = min_i (t[i+n-1] - t[i])``.

    Returns ``(n_values, d)``; *n_values* defaults to ``1..N``.  This is the
    exact information content of the trace's upper arrival curve.
    """
    ts = _check_timestamps(timestamps)
    n_total = ts.size
    if n_values is None:
        ns = np.arange(1, n_total + 1, dtype=np.int64)
    else:
        ns = np.asarray(n_values, dtype=np.int64)
        if ns.size == 0 or np.any(ns < 1) or np.any(ns > n_total) or np.any(np.diff(ns) <= 0):
            raise ValidationError("n_values must be strictly increasing within 1..len(trace)")
    d = np.array([float(np.min(ts[n - 1 :] - ts[: n_total - n + 1])) for n in ns])
    return ns, d


def maximal_window_lengths(
    timestamps: Sequence[float], n_values: Sequence[int] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """For each event count ``n`` the maximal span of ``n`` consecutive
    events: ``D_n = max_i (t[i+n-1] - t[i])`` — the dual of
    :func:`minimal_window_lengths`, used for the lower arrival curve."""
    ts = _check_timestamps(timestamps)
    n_total = ts.size
    if n_values is None:
        ns = np.arange(1, n_total + 1, dtype=np.int64)
    else:
        ns = np.asarray(n_values, dtype=np.int64)
        if ns.size == 0 or np.any(ns < 1) or np.any(ns > n_total) or np.any(np.diff(ns) <= 0):
            raise ValidationError("n_values must be strictly increasing within 1..len(trace)")
    d = np.array([float(np.max(ts[n - 1 :] - ts[: n_total - n + 1])) for n in ns])
    return ns, d


def from_trace_upper(
    timestamps: Sequence[float],
    *,
    n_values: Sequence[int] | None = None,
    final_rate: float | None = None,
) -> PiecewiseLinearCurve:
    """Exact upper arrival curve (staircase) of a timestamped trace.

    ``ᾱ(Δ) = max{n : d_n <= Δ}`` with ``d_n`` from
    :func:`minimal_window_lengths`.  When *n_values* subsamples the counts,
    unsampled counts are attributed to the *earlier* sampled window length,
    which keeps the staircase a sound upper bound (it can only grow).

    *final_rate* sets the slope beyond the largest observed window.  The
    default is the trace's long-run rate ``N / d_N`` — the stationary
    extension the paper implicitly uses when treating a 24-frame window as
    representative.  Pass ``0.0`` to assert "nothing beyond the trace".
    """
    ns, d = minimal_window_lengths(timestamps, n_values)
    # conservative fill for subsampled counts: value at d[i] covers all
    # counts up to the next sampled n minus one
    values = ns.astype(float).copy()
    if ns.size > 1:
        values[:-1] = (ns[1:] - 1).astype(float)
        values = np.maximum(values, ns.astype(float))
    xs: list[float] = []
    ys: list[float] = []
    best = 0.0
    for pos, val in zip(d, values):
        if not xs:
            xs.append(float(pos) if pos == 0.0 else 0.0)
            if pos > 0.0:
                ys.append(0.0)
                xs.append(float(pos))
            ys.append(float(val))
            best = val
            continue
        if val <= best:
            continue
        if pos == xs[-1]:
            ys[-1] = float(val)
        else:
            xs.append(float(pos))
            ys.append(float(val))
        best = val
    slopes = np.zeros(len(xs))
    if final_rate is None:
        final_rate = float(ns[-1]) / float(d[-1]) if d[-1] > 0 else 0.0
    slopes[-1] = check_non_negative(final_rate, "final_rate")
    return PiecewiseLinearCurve(np.array(xs), np.array(ys), slopes)


def from_trace_lower(
    timestamps: Sequence[float],
    *,
    n_values: Sequence[int] | None = None,
) -> PiecewiseLinearCurve:
    """Lower arrival curve (staircase) of a timestamped trace.

    ``α^l(Δ) = min{events in any interior window of length Δ}``; a window of
    length Δ is guaranteed to contain at least ``n`` events once
    ``Δ > D_{n+2} ... `` — we use the safe form ``α^l(Δ) = max{n : D_{n+2}
    <= Δ}`` derived from maximal spans, which under-approximates near the
    trace edges and is therefore sound.  Beyond the trace span the curve is
    flat (no guarantee).
    """
    ts = _check_timestamps(timestamps)
    n_total = ts.size
    if n_total < 3:
        return PiecewiseLinearCurve([0.0], [0.0], [0.0])
    ns, spans = maximal_window_lengths(timestamps, n_values)
    xs: list[float] = [0.0]
    ys: list[float] = [0.0]
    for n, span in zip(ns, spans):
        guaranteed = n - 2  # window longer than the span of n events pinned
        if guaranteed < 1:
            continue
        pos = float(span)
        if pos <= xs[-1]:
            ys[-1] = max(ys[-1], float(guaranteed))
        else:
            xs.append(pos)
            ys.append(float(guaranteed))
    # enforce monotone values (subsampled n can leave plateaus)
    ys = list(np.maximum.accumulate(np.array(ys)))
    slopes = np.zeros(len(xs))
    return PiecewiseLinearCurve(np.array(xs), np.array(ys), slopes).simplified()


def _check_timestamps(timestamps: Sequence[float]) -> np.ndarray:
    ts = np.asarray(timestamps, dtype=float)
    if ts.ndim != 1 or ts.size == 0:
        raise ValidationError("timestamps must be a non-empty 1-D sequence")
    if np.any(~np.isfinite(ts)) or np.any(np.diff(ts) < 0):
        raise ValidationError("timestamps must be finite and non-decreasing")
    return ts
