"""Optional numba-JIT scalar kernels for the generic min-plus operators.

The reference kernel (:mod:`repro.curves.minplus`) is vectorized per grid
cell; this module implements the identical per-cell construction as tight
scalar loops and compiles them with numba when it is importable.  Without
numba the module still imports cleanly — :data:`NUMBA_AVAILABLE` is false,
:data:`NUMBA_IMPORT_ERROR` records why, and the loops run as (slow but
correct) pure Python, which keeps the algorithm unit-testable on
numba-less installs even though the backend registers as unavailable.

JIT warm-up: the kernels compile on first call (``cache=True`` persists
the machine code next to the bytecode cache), and every constructed curve
is memoized by the kernel cache under the backend's compatibility tag, so
a sweep pays compilation once per process at most.

The construction mirrors the reference decision-for-decision (same grids,
candidate lines, tie-breaks, and thresholds — see
:mod:`repro.curves.soa` for the shared exactness notes); the differential
conformance suite gates it against the reference and the brute oracles.
"""

from __future__ import annotations

import math

import numpy as np

from repro.perf.instrument import instrumented

__all__ = [
    "NUMBA_AVAILABLE",
    "NUMBA_IMPORT_ERROR",
    "convolve_numba",
    "deconvolve_numba",
]

try:
    from numba import njit

    NUMBA_AVAILABLE = True
    NUMBA_IMPORT_ERROR = None
except ImportError as exc:  # pragma: no cover - exercised on numba-less CI
    NUMBA_AVAILABLE = False
    NUMBA_IMPORT_ERROR = str(exc) or "numba is not installed"

    def njit(*args, **kwargs):
        """Identity decorator standing in for ``numba.njit``."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


@njit(cache=True)
def _idx_right(x, t, n):
    """``np.searchsorted(x[:n], t, side='right') - 1`` as a scalar loop."""
    lo, hi = 0, n
    while lo < hi:
        m = (lo + hi) // 2
        if x[m] <= t:
            lo = m + 1
        else:
            hi = m
    return lo - 1


@njit(cache=True)
def _envelope_cell(va, sl, k, a, b, out_x, out_v, out_s, n_out, lower):
    """Sweep the envelope of ``k`` lines over ``[a, b)`` into the output
    arrays starting at ``n_out``; returns the new segment count.

    Scalar replay of the reference sweep: extremal value, ties within
    1e-12 relative broken by flattest (lower) / steepest (upper) slope
    then smallest value, crossings past the 1e-15 thresholds.
    """
    x = a
    maxseg = k + 2
    emitted = 0
    while x < b - 1e-18 and emitted < maxseg:
        if lower:
            vbest = math.inf
            for j in range(k):
                vj = va[j] + sl[j] * (x - a)
                if vj < vbest:
                    vbest = vj
        else:
            vbest = -math.inf
            for j in range(k):
                vj = va[j] + sl[j] * (x - a)
                if vj > vbest:
                    vbest = vj
        tol = 1e-12 + 1e-12 * abs(vbest)
        if lower:
            best_slope = math.inf
            for j in range(k):
                vj = va[j] + sl[j] * (x - a)
                if vj <= vbest + tol and sl[j] < best_slope:
                    best_slope = sl[j]
        else:
            best_slope = -math.inf
            for j in range(k):
                vj = va[j] + sl[j] * (x - a)
                if vj >= vbest - tol and sl[j] > best_slope:
                    best_slope = sl[j]
        best_val = math.inf
        for j in range(k):
            vj = va[j] + sl[j] * (x - a)
            if lower:
                near = vj <= vbest + tol
            else:
                near = vj >= vbest - tol
            if near and sl[j] == best_slope and vj < best_val:
                best_val = vj
        next_x = b
        for j in range(k):
            rel = sl[j] - best_slope
            mag = abs(sl[j])
            if abs(best_slope) > mag:
                mag = abs(best_slope)
            if mag < 1.0:
                mag = 1.0
            if abs(rel) > 1e-15 * mag and ((rel < 0) if lower else (rel > 0)):
                vj = va[j] + sl[j] * (x - a)
                t = (vj - best_val) / (-rel)
                if t > 1e-15 and x + t < next_x:
                    next_x = x + t
        out_x[n_out] = x
        out_v[n_out] = best_val
        out_s[n_out] = best_slope
        n_out += 1
        emitted += 1
        if not math.isfinite(next_x):
            break
        x = next_x
    return n_out


@njit(cache=True)
def _convolve_cells(fx, fy, fs, fleft, gx, gy, gs, gleft, grid):
    """All envelope cells of one convolution; returns packed segments."""
    nf = fx.size
    ng = gx.size
    n_grid = grid.size
    kmax = 2 * (nf + ng)
    va = np.empty(kmax)
    sl = np.empty(kmax)
    cap = 4 * n_grid + 16
    out_x = np.empty(cap)
    out_v = np.empty(cap)
    out_s = np.empty(cap)
    n_out = 0
    for i in range(n_grid):
        a = grid[i]
        last = i + 1 >= n_grid
        if last:
            w = abs(a)
            if w < 1.0:
                w = 1.0
            b = a + w
        else:
            b = grid[i + 1]
        mid = 0.5 * (a + b)
        half = mid - a
        k = 0
        for j in range(nf):
            if fx[j] > a + 1e-15:
                break
            rest = mid - fx[j]
            idx = _idx_right(gx, rest, ng)
            slope = gs[idx]
            g_rest = 0.0 if rest == 0.0 else gy[idx] + gs[idx] * (rest - gx[idx])
            f_at = 0.0 if fx[j] == 0.0 else fy[j]
            va[k] = f_at + g_rest - slope * half
            sl[k] = slope
            k += 1
            if fx[j] > 0.0:
                va[k] = fleft[j] + g_rest - slope * half
                sl[k] = slope
                k += 1
        for j in range(ng):
            if gx[j] > a + 1e-15:
                break
            s_mid = mid - gx[j]
            idx = _idx_right(fx, s_mid, nf)
            slope = fs[idx]
            f_smid = 0.0 if s_mid == 0.0 else fy[idx] + fs[idx] * (s_mid - fx[idx])
            g_at = 0.0 if gx[j] == 0.0 else gy[j]
            va[k] = f_smid + g_at - slope * half
            sl[k] = slope
            k += 1
            if gx[j] > 0.0:
                va[k] = f_smid + gleft[j] - slope * half
                sl[k] = slope
                k += 1
        if last:
            b = math.inf
        need = n_out + k + 2
        if need > cap:
            new_cap = cap
            while new_cap < need:
                new_cap *= 2
            nx = np.empty(new_cap)
            nv = np.empty(new_cap)
            ns = np.empty(new_cap)
            nx[:n_out] = out_x[:n_out]
            nv[:n_out] = out_v[:n_out]
            ns[:n_out] = out_s[:n_out]
            out_x, out_v, out_s = nx, nv, ns
            cap = new_cap
        n_out = _envelope_cell(va, sl, k, a, b, out_x, out_v, out_s, n_out, True)
    return out_x[:n_out], out_v[:n_out], out_s[:n_out]


@njit(cache=True)
def _deconvolve_cells(fx, fy, fs, gx, gy, gs, gleft, grid):
    """All envelope cells of one deconvolution; returns packed segments."""
    nf = fx.size
    ng = gx.size
    n_grid = grid.size
    kmax = 2 * ng + nf
    va = np.empty(kmax)
    sl = np.empty(kmax)
    cap = 4 * n_grid + 16
    out_x = np.empty(cap)
    out_v = np.empty(cap)
    out_s = np.empty(cap)
    n_out = 0
    for i in range(n_grid):
        a = grid[i]
        last = i + 1 >= n_grid
        if last:
            w = abs(a)
            if w < 1.0:
                w = 1.0
            b = a + w
        else:
            b = grid[i + 1]
        mid = 0.5 * (a + b)
        half = mid - a
        k = 0
        for j in range(ng):
            u = gx[j]
            idx = _idx_right(fx, mid + u, nf)
            slope = fs[idx]
            f_shift = fy[idx] + fs[idx] * (mid + u - fx[idx])
            g_at = 0.0 if u == 0.0 else gy[j]
            va[k] = f_shift - g_at - slope * half
            sl[k] = slope
            k += 1
            if u > 0.0:
                va[k] = f_shift - gleft[j] - slope * half
                sl[k] = slope
                k += 1
        for j in range(nf):
            if fx[j] < mid:
                continue
            u_mid = fx[j] - mid
            idx = _idx_right(gx, u_mid, ng)
            slope = gs[idx]
            g_umid = 0.0 if u_mid == 0.0 else gy[idx] + gs[idx] * (u_mid - gx[idx])
            va[k] = fy[j] - g_umid - slope * half
            sl[k] = slope
            k += 1
        if last:
            b = math.inf
        need = n_out + k + 2
        if need > cap:
            new_cap = cap
            while new_cap < need:
                new_cap *= 2
            nx = np.empty(new_cap)
            nv = np.empty(new_cap)
            ns = np.empty(new_cap)
            nx[:n_out] = out_x[:n_out]
            nv[:n_out] = out_v[:n_out]
            ns[:n_out] = out_s[:n_out]
            out_x, out_v, out_s = nx, nv, ns
            cap = new_cap
        n_out = _envelope_cell(va, sl, k, a, b, out_x, out_v, out_s, n_out, False)
    return out_x[:n_out], out_v[:n_out], out_s[:n_out]


def _left_limits(curve):
    """Per-breakpoint left limits, as the reference ``_CurveArrays``."""
    x = curve.breakpoints
    y = curve.values_at_breakpoints
    s = curve.slopes
    left = np.empty_like(y)
    left[0] = y[0]
    if x.size > 1:
        left[1:] = y[:-1] + s[:-1] * np.diff(x)
    return left


@instrumented("minplus.convolve_numba", attrs=lambda f, g: {"backend": "numba"})
def convolve_numba(f, g):
    """Generic min-plus convolution via the scalar-loop kernel."""
    from repro.curves.minplus import _dedupe_grid, _monotone_pwl

    grid = _dedupe_grid(np.unique(np.add.outer(f.breakpoints, g.breakpoints).ravel()))
    xs, vs, ss = _convolve_cells(
        f.breakpoints,
        f.values_at_breakpoints,
        f.slopes,
        _left_limits(f),
        g.breakpoints,
        g.values_at_breakpoints,
        g.slopes,
        _left_limits(g),
        grid,
    )
    ys = np.maximum(vs, 0.0)
    ss = np.maximum(ss, 0.0)
    ss[-1] = max(min(f.final_slope, g.final_slope), 0.0)
    return _monotone_pwl(xs, ys, ss)


@instrumented("minplus.deconvolve_numba", attrs=lambda f, g: {"backend": "numba"})
def deconvolve_numba(f, g):
    """Generic min-plus deconvolution via the scalar-loop kernel.

    The caller (dispatch or backend) performs the divergence check; this
    mirrors the reference ``_deconvolve_impl`` exactly.
    """
    from repro.curves.minplus import UnboundedCurveError, _dedupe_grid, _monotone_pwl

    if f.final_slope > g.final_slope + 1e-12:
        raise UnboundedCurveError(
            f"deconvolution diverges: arrival rate {f.final_slope:g} exceeds "
            f"service rate {g.final_slope:g}"
        )
    diffs = np.unique(np.subtract.outer(f.breakpoints, g.breakpoints).ravel())
    grid = _dedupe_grid(diffs[diffs >= 0.0])
    if grid.size == 0 or grid[0] != 0.0:
        grid = np.concatenate(([0.0], grid))
    xs, vs, ss = _deconvolve_cells(
        f.breakpoints,
        f.values_at_breakpoints,
        f.slopes,
        g.breakpoints,
        g.values_at_breakpoints,
        g.slopes,
        _left_limits(g),
        grid,
    )
    ys = np.maximum(vs, 0.0)
    ss = np.maximum(ss, 0.0)
    ss[-1] = max(f.final_slope, 0.0)
    return _monotone_pwl(xs, ys, ss)
