"""Standard parameterized event models as arrival curves.

The paper combines workload curves "with event models, which describe the
temporal behavior of task activation".  This module provides the classical
parameterized models of the real-time calculus / SymTA:S literature as
arrival-curve pairs:

* **periodic** ``(p)``;
* **periodic with jitter** ``(p, j)``;
* **periodic with jitter and minimum distance** ``(p, j, d)`` — jitter may
  cluster events, but never closer than ``d``;
* **sporadic** ``(d)`` — only a minimum inter-arrival distance;
* **periodic bursts** ``(p, b, d)`` — up to ``b`` events per period,
  spaced at least ``d`` inside the burst.

All upper curves use the closed-window convention
(``ᾱ(Δ) = max events in any closed window of length Δ``), matching the
trace extraction in :mod:`repro.curves.arrival`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.curves.arrival import periodic_lower, periodic_upper
from repro.curves.curve import PiecewiseLinearCurve, step_curve
from repro.util.validation import ValidationError, check_integer, check_non_negative, check_positive

__all__ = ["EventModel", "pjd_event_model", "sporadic_event_model", "periodic_burst_event_model"]


@dataclass(frozen=True)
class EventModel:
    """An event stream abstraction: upper and lower arrival curves plus the
    parameters they came from (for reporting)."""

    name: str
    upper: PiecewiseLinearCurve
    lower: PiecewiseLinearCurve

    def __post_init__(self) -> None:
        ds = np.linspace(0.0, 50.0, 101)
        if np.any(self.lower(ds) > self.upper(ds) + 1e-9):
            raise ValidationError("lower arrival curve exceeds upper arrival curve")


def pjd_event_model(
    period: float,
    jitter: float = 0.0,
    min_distance: float = 0.0,
    *,
    horizon_periods: int = 64,
) -> EventModel:
    """The ``(p, j, d)`` model.

    Upper curve: ``min( ⌊(Δ+j)/p⌋ + 1, ⌊Δ/d⌋ + 1 )`` — jitter clusters
    events, the minimum distance ``d`` caps the cluster density.  With
    ``d = 0`` this is the plain ``(p, j)`` model; with ``j = 0`` the strict
    periodic model.
    """
    p = check_positive(period, "period")
    j = check_non_negative(jitter, "jitter")
    d = check_non_negative(min_distance, "min_distance")
    if d > p:
        raise ValidationError("min_distance cannot exceed the period")
    upper = periodic_upper(p, jitter=j, horizon_periods=horizon_periods)
    if d > 0.0:
        cap_steps = [i * d for i in range(horizon_periods)]
        cap = step_curve(cap_steps)
        xs = cap.breakpoints
        ys = cap.values_at_breakpoints
        ss = cap.slopes
        ss[-1] = 1.0 / d  # sound linear continuation of the density cap
        cap = PiecewiseLinearCurve(xs, ys, ss)
        upper = upper.minimum(cap)
    lower = periodic_lower(p, jitter=j, horizon_periods=horizon_periods)
    return EventModel(f"pjd(p={p:g}, j={j:g}, d={d:g})", upper, lower)


def sporadic_event_model(min_distance: float, *, horizon_events: int = 64) -> EventModel:
    """The sporadic model: inter-arrivals at least *min_distance*, no upper
    bound on gaps.  Upper curve ``⌊Δ/d⌋ + 1``; lower curve identically 0."""
    d = check_positive(min_distance, "min_distance")
    n = check_integer(horizon_events, "horizon_events", minimum=1)
    steps = [i * d for i in range(n)]
    upper = step_curve(steps)
    xs = upper.breakpoints
    ys = upper.values_at_breakpoints
    ss = upper.slopes
    ss[-1] = 1.0 / d
    upper = PiecewiseLinearCurve(xs, ys, ss)
    lower = PiecewiseLinearCurve([0.0], [0.0], [0.0])
    return EventModel(f"sporadic(d={d:g})", upper, lower)


def periodic_burst_event_model(
    period: float,
    burst: int,
    min_distance: float,
    *,
    horizon_periods: int = 32,
) -> EventModel:
    """Periodic bursts: up to *burst* events per *period*, events inside a
    burst at least *min_distance* apart.

    Upper curve: ``b·(⌊Δ/p⌋ + 1)`` capped by the in-burst density
    ``⌊Δ/d⌋ + 1``; lower curve: ``b·⌊Δ/p⌋`` minus edge effects (we use the
    sound ``b·max(0, ⌊(Δ − (b−1)d)/p⌋)``).
    """
    p = check_positive(period, "period")
    b = check_integer(burst, "burst", minimum=1)
    d = check_positive(min_distance, "min_distance")
    if (b - 1) * d >= p:
        raise ValidationError("a full burst must fit inside one period")
    # exact construction: event n (0-based) can arrive earliest at
    # (n // b)·p + (n % b)·d — the densest packing starts at a burst
    positions: list[float] = []
    for n in range(horizon_periods * b):
        cycle, inside = divmod(n, b)
        positions.append(cycle * p + inside * d)
    base = np.array(positions)
    # the densest window starts at a burst: minimal window containing n+1
    # events is positions[n] (first event at 0)
    upper = step_curve(base)
    xs = upper.breakpoints
    ys = upper.values_at_breakpoints
    ss = upper.slopes
    ss[-1] = b / p
    upper = PiecewiseLinearCurve(xs, ys, ss)
    # lower: a window is guaranteed b events per full period it spans after
    # losing up to one burst length at each edge
    lower_steps = [(k + 1) * p + (b - 1) * d for k in range(horizon_periods)]
    lower = step_curve(lower_steps, [float(b)] * len(lower_steps))
    return EventModel(f"burst(p={p:g}, b={b}, d={d:g})", upper, lower)
