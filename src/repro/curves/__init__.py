"""Network-calculus substrate: PWL curves, min-plus algebra, bounds.

The paper's §3.2 combines workload curves with the arrival/service-curve
framework of Network Calculus (Le Boudec & Thiran) as generalized to
platform-based designs by Chakraborty, Künzli & Thiele (DATE 2003).  This
subpackage is a self-contained implementation of that substrate:

* :class:`~repro.curves.curve.PiecewiseLinearCurve` — exact PWL curves;
* :mod:`~repro.curves.arrival` — leaky-bucket, periodic-with-jitter and
  trace-derived arrival curves;
* :mod:`~repro.curves.service` — full-processor, rate-latency, TDMA and
  fixed-priority remaining service;
* :mod:`~repro.curves.minplus` — min-plus convolution / deconvolution;
* :mod:`~repro.curves.backends` — pluggable generic-kernel backends
  (numpy reference, batched SoA, optional numba JIT);
* :mod:`~repro.curves.compact` — conservative segment-budgeted compaction;
* :mod:`~repro.curves.bounds` — backlog (eq. (6)), delay and output bounds;
* :mod:`~repro.curves.shaper` — greedy shapers.
"""

from repro.curves.curve import PiecewiseLinearCurve, linear_curve, step_curve, zero_curve
from repro.curves.arrival import (
    leaky_bucket,
    periodic_upper,
    periodic_lower,
    from_trace_upper,
    from_trace_lower,
    minimal_window_lengths,
    maximal_window_lengths,
)
from repro.curves.service import full_processor, rate_latency, tdma, remaining_service_fp
from repro.curves.minplus import (
    convolve,
    deconvolve,
    convolve_at,
    deconvolve_at,
    self_convolution_fixpoint,
    UnboundedCurveError,
)
from repro.curves.backends import (
    KernelBackend,
    BackendUnavailableError,
    active_backend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    set_backend,
    use_backend,
)
from repro.curves.compact import CompactionResult, compact_lower, compact_upper
from repro.curves.bounds import backlog_bound, delay_bound, output_arrival_curve, is_stable
from repro.curves.shaper import GreedyShaper
from repro.curves.event_models import (
    EventModel,
    pjd_event_model,
    sporadic_event_model,
    periodic_burst_event_model,
)

__all__ = [
    "PiecewiseLinearCurve",
    "linear_curve",
    "step_curve",
    "zero_curve",
    "leaky_bucket",
    "periodic_upper",
    "periodic_lower",
    "from_trace_upper",
    "from_trace_lower",
    "minimal_window_lengths",
    "maximal_window_lengths",
    "full_processor",
    "rate_latency",
    "tdma",
    "remaining_service_fp",
    "convolve",
    "deconvolve",
    "convolve_at",
    "deconvolve_at",
    "self_convolution_fixpoint",
    "UnboundedCurveError",
    "KernelBackend",
    "BackendUnavailableError",
    "active_backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "registered_backends",
    "set_backend",
    "use_backend",
    "CompactionResult",
    "compact_upper",
    "compact_lower",
    "backlog_bound",
    "delay_bound",
    "output_arrival_curve",
    "is_stable",
    "GreedyShaper",
    "EventModel",
    "pjd_event_model",
    "sporadic_event_model",
    "periodic_burst_event_model",
]
