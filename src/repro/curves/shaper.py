"""Greedy traffic shapers.

A greedy shaper with shaping curve ``σ`` delays events just enough that its
output has ``σ`` as an arrival curve.  Two classical results (Le Boudec &
Thiran) implemented here:

* the shaper output has arrival curve ``α_out = α ⊗ σ``;
* a greedy shaper is a service element with service curve ``σ``, so the
  shaper's own buffer and delay are bounded by the usual vertical/horizontal
  deviations.

Shapers are not used by the paper's two experiments but are the natural next
block when composing multi-PE streaming analyses with workload curves, and
the "on-chip buffer constraints" follow-up work relies on them.
"""

from __future__ import annotations

from repro.curves.bounds import backlog_bound, delay_bound
from repro.curves.curve import PiecewiseLinearCurve
from repro.curves.minplus import convolve
from repro.util.validation import ValidationError

__all__ = ["GreedyShaper"]


class GreedyShaper:
    """A greedy shaper with sub-additive shaping curve ``σ``.

    Parameters
    ----------
    sigma:
        The shaping curve.  It should satisfy ``σ(0) >= 0`` and be
        wide-sense increasing (guaranteed by
        :class:`~repro.curves.curve.PiecewiseLinearCurve`); concave curves
        (e.g. leaky buckets) are automatically sub-additive.
    """

    def __init__(self, sigma: PiecewiseLinearCurve):
        if not isinstance(sigma, PiecewiseLinearCurve):
            raise ValidationError("sigma must be a PiecewiseLinearCurve")
        self.sigma = sigma

    def output_arrival_curve(self, alpha: PiecewiseLinearCurve) -> PiecewiseLinearCurve:
        """Arrival curve of the shaped flow: ``α ⊗ σ``."""
        return convolve(alpha, self.sigma)

    def buffer_requirement(self, alpha: PiecewiseLinearCurve) -> float:
        """Backlog bound inside the shaper (vertical deviation between the
        input arrival curve and σ viewed as a service curve)."""
        return backlog_bound(alpha, self.sigma)

    def delay_requirement(self, alpha: PiecewiseLinearCurve) -> float:
        """Worst-case delay introduced by the shaper (horizontal
        deviation)."""
        return delay_bound(alpha, self.sigma)

    def is_transparent_for(self, alpha: PiecewiseLinearCurve) -> bool:
        """True if the flow already conforms to σ (shaping is a no-op):
        ``σ`` dominates ``α`` pointwise."""
        return self.sigma.dominates(alpha)
