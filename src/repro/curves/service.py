"""Service curves ``β(Δ)``: guaranteed service over any time window.

A (lower) service curve bounds from below the amount of service a flow
receives from a resource in any window of length Δ (paper §3.2).  For a task
owning a full programmable PE the natural curve is ``β(Δ) = F·Δ`` cycles
(the form used in the paper's eq. (9)); shared resources yield rate-latency,
TDMA, or remaining-service shapes.

Structure: :func:`full_processor` classifies as ``"affine"`` and
:func:`rate_latency` as ``"convex"`` under
:attr:`~repro.curves.curve.PiecewiseLinearCurve.shape`, so deconvolving a
measured (concave) arrival envelope against them takes the closed-form
``O(n + m)`` min-plus fast path; :func:`tdma` alternates slopes and is
``"general"``, falling back to the generic exact kernels.
"""

from __future__ import annotations

import math

import numpy as np

from repro.curves.curve import EPS_REL, PiecewiseLinearCurve
from repro.util.validation import (
    ValidationError,
    check_integer,
    check_non_negative,
    check_positive,
)

__all__ = [
    "full_processor",
    "rate_latency",
    "tdma",
    "remaining_service_fp",
]


def full_processor(frequency: float) -> PiecewiseLinearCurve:
    """Service curve of a dedicated PE at clock *frequency*:
    ``β(Δ) = F·Δ`` cycles (paper: "the full processor resource is devoted to
    the decoding subtasks")."""
    check_positive(frequency, "frequency")
    return PiecewiseLinearCurve([0.0], [0.0], [frequency])


def rate_latency(rate: float, latency: float) -> PiecewiseLinearCurve:
    """Rate-latency service curve ``β(Δ) = rate·max(0, Δ − latency)`` — the
    standard abstraction of a scheduler granting *rate* after an initial
    stall of *latency*."""
    check_positive(rate, "rate")
    check_non_negative(latency, "latency")
    if latency == 0.0:
        return full_processor(rate)
    return PiecewiseLinearCurve([0.0, latency], [0.0, 0.0], [0.0, rate])


def tdma(slot: float, cycle: float, bandwidth: float, *, horizon_cycles: int = 32) -> PiecewiseLinearCurve:
    """Lower service curve of a TDMA resource granting a *slot* of every
    *cycle* at *bandwidth* cycles/second:

    .. math::

        β(Δ) = B·( \\lfloor Δ/c \\rfloor·s + \\max(0, Δ \\bmod c - (c - s)) )

    (worst case: the window opens right after the slot closes).  Exact for
    the first *horizon_cycles* cycles, then extended with the sound linear
    tail of slope ``B·s/c`` anchored at the end of a blackout phase.
    """
    s = check_positive(slot, "slot")
    c = check_positive(cycle, "cycle")
    b = check_positive(bandwidth, "bandwidth")
    if s > c:
        raise ValidationError("slot must not exceed cycle")
    n = check_integer(horizon_cycles, "horizon_cycles", minimum=1)
    if s == c:
        return full_processor(b)
    xs: list[float] = []
    ys: list[float] = []
    ss: list[float] = []
    for k in range(n):
        # blackout segment [k·c, k·c + (c−s)), then active segment
        xs.append(k * c)
        ys.append(b * k * s)
        ss.append(0.0)
        xs.append(k * c + (c - s))
        ys.append(b * k * s)
        ss.append(b)
    # tail: anchor at the end of the last blackout with average slope
    xs.append(n * c)
    ys.append(b * n * s)
    ss.append(0.0)
    xs.append(n * c + (c - s))
    ys.append(b * n * s)
    ss.append(b * s / c)
    return PiecewiseLinearCurve(xs, ys, ss)


def remaining_service_fp(
    beta: PiecewiseLinearCurve, alpha_hp: PiecewiseLinearCurve
) -> PiecewiseLinearCurve:
    """Service left for a lower-priority task under fixed-priority
    scheduling:

    .. math::

        β'(Δ) = \\sup_{0 \\le u \\le Δ} \\big(β(u) - α_{hp}(u)\\big)^+

    where ``α_hp`` is the (cycle-based) arrival curve of all higher-priority
    demand.  The running supremum keeps the result wide-sense increasing.
    Raises if the higher-priority demand saturates the resource
    (``α_hp`` final slope >= ``β`` final slope), since then no long-run
    service remains.
    """
    if alpha_hp.final_slope >= beta.final_slope:
        raise ValidationError(
            "higher-priority demand saturates the resource "
            f"(rate {alpha_hp.final_slope:g} >= service rate {beta.final_slope:g})"
        )
    # candidate interval endpoints: breakpoints of both curves plus
    # left-limit probes (α_hp jumps make the difference drop discontinuously)
    cands: set[float] = {0.0}
    for bp in np.concatenate((beta.breakpoints, alpha_hp.breakpoints)):
        cands.add(float(bp))
        eps = EPS_REL * max(1.0, abs(bp))
        if bp - eps >= 0.0:
            cands.add(float(bp - eps))
    grid = sorted(cands)
    # exact sweep: within each interval the difference d(u) is linear; the
    # running supremum is therefore flat (while d < M), or follows d once it
    # crosses the current maximum M — emit the kink point explicitly
    xs: list[float] = []
    ys: list[float] = []
    ss: list[float] = []

    def emit(x: float, y: float, s: float) -> None:
        if xs and abs(x - xs[-1]) < 1e-18:
            ys[-1] = max(ys[-1], y)
            ss[-1] = s
            return
        xs.append(x)
        ys.append(y)
        ss.append(s)

    running = 0.0
    for i, a in enumerate(grid):
        b = grid[i + 1] if i + 1 < len(grid) else math.inf
        d_a = float(beta(a)) - float(alpha_hp(a))
        idx_b = int(np.searchsorted(beta.breakpoints, a, side="right")) - 1
        idx_a = int(np.searchsorted(alpha_hp.breakpoints, a, side="right")) - 1
        slope = float(beta.slopes[idx_b]) - float(alpha_hp.slopes[idx_a])
        if d_a >= running:
            running = d_a
            emit(a, running, max(slope, 0.0))
            if slope > 0:
                gain = slope * ((b - a) if math.isfinite(b) else 0.0)
                running += gain if math.isfinite(b) else 0.0
                if not math.isfinite(b):
                    break
            continue
        # difference starts below the plateau
        emit(a, running, 0.0)
        if slope > 0:
            cross = a + (running - d_a) / slope
            if cross < b:
                emit(cross, running, slope)
                running += slope * ((b - cross) if math.isfinite(b) else 0.0)
                if not math.isfinite(b):
                    break
    ss[-1] = max(0.0, beta.final_slope - alpha_hp.final_slope)
    return PiecewiseLinearCurve(np.array(xs), np.array(ys), np.array(ss)).simplified()
