"""Warm :class:`~repro.analysis.frequency.FrequencySweepEvaluator` pool.

Building an evaluator is the expensive half of a frequency query: the
case-study context (clip traces, workload/arrival envelopes) plus the
candidate-window hoisting.  Answering a query against a *warm* evaluator
is a handful of vectorized comparisons.  The DVS-flavoured related work
(Berten/Chang/Kuo) motivates exactly this shape: repeated frequency
queries against the same parameterization should stay cheap, so warm
evaluators are kept keyed by the blake2b digest of their parameter set
and evicted LRU when the pool outgrows its bound.

The pool is *generic* over how an evaluator is built — the builder
callable is supplied by the caller (``repro.experiments.common`` builds
from the cached case-study context; tests build synthetic ones), so this
module depends on nothing above the obs layer and every execution tier
(runner workers, the analysis service, the CLI) shares one
implementation.

Counters ``service.evalpool.{hits,misses,evictions}`` and the
``service.evalpool.size`` gauge are published to :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable

from repro.obs.manifest import digest_json
from repro.obs.metrics import registry

__all__ = ["EvaluatorPool", "DEFAULT_POOL_ENTRIES"]

#: Default bound on resident warm evaluators.
DEFAULT_POOL_ENTRIES = 8


class EvaluatorPool:
    """A bounded LRU pool of warm evaluators keyed by parameter digest.

    Thread-safe: lookups and insertions are serialized by one lock, but a
    missed build runs outside it (two racing threads may both build; the
    last insert wins — harmless, the builders are pure).
    """

    def __init__(self, max_entries: int = DEFAULT_POOL_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._store: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()

    @staticmethod
    def digest(params: dict[str, Any]) -> str:
        """Content digest of a parameter mapping (canonical-JSON blake2b,
        the same digest run manifests use for their inputs)."""
        return digest_json(params)

    def get(self, builder: Callable[[], Any], **params: Any) -> Any:
        """The warm evaluator for *params*, building it on first use.

        *builder* is invoked (without arguments) only on a miss; the
        result is stored under the parameter digest and the least
        recently used evaluator is dropped when the pool exceeds its
        bound.
        """
        key = self.digest(params)
        with self._lock:
            evaluator = self._store.get(key)
            if evaluator is not None:
                self.hits += 1
                self._store.move_to_end(key)
                self._publish()
                return evaluator
            self.misses += 1
        evaluator = builder()
        with self._lock:
            self._store[key] = evaluator
            self._store.move_to_end(key)
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self.evictions += 1
            self._publish()
        return evaluator

    def _publish(self) -> None:
        """Mirror the accounting into the metrics registry (lock held)."""
        registry.counter("service.evalpool.hits").set_total(self.hits)
        registry.counter("service.evalpool.misses").set_total(self.misses)
        registry.counter("service.evalpool.evictions").set_total(self.evictions)
        registry.gauge("service.evalpool.size").set(len(self._store))

    def clear(self) -> None:
        """Drop every warm evaluator (counters are kept)."""
        with self._lock:
            self._store.clear()

    def stats(self) -> dict[str, Any]:
        """Snapshot of the pool accounting."""
        with self._lock:
            return {
                "entries": len(self._store),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)
