"""Blocking client of the analysis service.

A thin synchronous wrapper over the JSONL protocol for callers that are
not themselves async — the ``sweep --service`` CLI path, tests, and CI
smokes.  One socket, strictly request/response (the streaming ``events``
op needs a dedicated connection via :meth:`ServiceClient.events`).

Example::

    with ServiceClient("/tmp/repro.sock") as client:
        job = client.submit("frequency", {"buffer_size": 8})
        done = client.result(job["id"], timeout=60)
        print(done["result"]["report"]["f_min_hz"])
"""

from __future__ import annotations

import socket
from typing import Any, Iterator

from repro.service import protocol

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An error response from the service (carries its ``error_type``)."""

    def __init__(self, message: str, error_type: str = "error"):
        super().__init__(message)
        self.error_type = error_type


class ServiceClient:
    """Synchronous JSONL client over a unix socket.

    Parameters
    ----------
    socket_path:
        Path the daemon listens on (``repro serve --socket PATH``).
    timeout:
        Socket timeout in seconds for each request/response round trip
        (None blocks indefinitely — ``result`` waits pass their own
        budget to the server instead).
    """

    def __init__(self, socket_path: str, timeout: float | None = None):
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            self._sock.settimeout(timeout)
        self._sock.connect(socket_path)
        self._file = self._sock.makefile("rb")
        self._rid = 0

    # -- plumbing ----------------------------------------------------------------
    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """One request/response round trip; raises :class:`ServiceError`
        on an error response or a closed connection."""
        self._rid += 1
        message = {"op": op, "rid": self._rid, **fields}
        self._sock.sendall(protocol.encode(message))
        line = self._file.readline()
        if not line:
            raise ServiceError("connection closed by server", "connection")
        response = protocol.decode(line)
        if not response.get("ok", False):
            raise ServiceError(
                response.get("error", "unknown error"),
                response.get("error_type", "error"),
            )
        return response

    # -- API ---------------------------------------------------------------------
    def hello(self) -> dict[str, Any]:
        """Handshake: schema tag, supported ops, and a stats snapshot."""
        return self.request("hello")

    def submit(self, op: str, params: dict[str, Any] | None = None) -> dict[str, Any]:
        """Submit a job; returns its job record (may be terminal already
        when admission rejected or the queue shed it)."""
        return self.request("submit", job={"op": op, "params": params or {}})["job"]

    def status(self, job_id: str) -> dict[str, Any]:
        """The job record without its result payload."""
        return self.request("status", id=job_id)["job"]

    def result(self, job_id: str, timeout: float | None = None) -> dict[str, Any]:
        """Block until the job is terminal; returns the full record."""
        return self.request("result", id=job_id, timeout=timeout)["job"]

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; True when the cancellation took effect."""
        return bool(self.request("cancel", id=job_id)["cancelled"])

    def stats(self) -> dict[str, Any]:
        """The service's stats snapshot (queue depth, states, admission)."""
        return self.request("stats")["stats"]

    def events(self) -> Iterator[dict[str, Any]]:
        """Subscribe this connection to job events and return an iterator
        over them.

        The subscription is registered *before* this returns (not a lazy
        generator — events raced in right after the call are captured).
        The connection becomes a one-way event stream; make a separate
        client for further requests.
        """
        self.request("events")
        return self._event_stream()

    def _event_stream(self) -> Iterator[dict[str, Any]]:
        """Yield events off the (already subscribed) connection."""
        for line in self._file:
            message = protocol.decode(line)
            if "event" in message:
                yield message["event"]

    def shutdown(self, drain: bool = True) -> None:
        """Ask the server to stop (gracefully draining by default)."""
        self.request("shutdown", drain=drain)

    def close(self) -> None:
        """Close the socket (idempotent)."""
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
