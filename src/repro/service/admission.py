"""Self-characterizing admission control — the paper, dogfooded.

The analysis service treats *itself* as a task with variable execution
demand: every arriving request is one "activation", its estimated cost is
the activation's demand, and the rolling history of both is characterized
exactly the way the paper characterizes the MPEG-2 decoder —

* the request timestamps yield an **upper arrival curve** ``ᾱ(Δ)``
  (:func:`repro.curves.arrival.from_trace_upper`);
* the per-request demands, folded chunk-by-chunk through
  :meth:`repro.core.workload.WorkloadCurve.from_demand_stream`, yield an
  **upper workload curve** ``γ^u(k)`` of the service's own demand;
* the service's sustained processing rate is its "clock frequency"
  ``F`` and the bounded job queue of ``b`` slots is its FIFO.

A request is admitted iff the eq. (8) feasibility test

.. math::

    F·Δ \\ge γ^u(\\barα(Δ) - b) \\qquad \\forall Δ \\ge 0

still holds for the characterized load — i.e. the service provably keeps
up without ever overflowing its queue.  When the offered load pushes the
required capacity (eq. (9)) above ``F``, requests are rejected until the
rolling window drains — threshold admission in the spirit of the
utilization-threshold literature (Gopalakrishnan, PAPERS.md), with the
threshold *derived from the measured workload curve* instead of a fixed
utilization constant.

Demands start from per-op estimates and are refined online: the daemon
reports measured execution costs back via :meth:`AdmissionController.
record_cost`, so the characterization tracks what requests actually cost
on this host ("self-characterizing").

Decisions are counted in the :mod:`repro.obs` registry —
``service.accepted`` and ``service.rejected{reason=...}`` — and surfaced
by ``python -m repro obs report`` (admission section).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.analysis.frequency import (
    minimum_frequency_curves,
    verify_service_constraint,
)
from repro.core.workload import WorkloadCurve
from repro.curves.arrival import from_trace_upper
from repro.curves.curve import PiecewiseLinearCurve
from repro.obs.metrics import registry
from repro.util.validation import check_integer, check_positive

__all__ = ["AdmissionController", "AdmissionDecision"]

#: Demands are chunked at this size before the streaming envelope fold.
_DEMAND_CHUNK = 64

#: EMA weight of the newest measured cost sample.
_COST_EMA_ALPHA = 0.2

#: Floor on a metered demand (zero-cost requests would break the
#: positive-demand contract of the workload-curve extraction).
_MIN_DEMAND = 1e-9


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one :meth:`AdmissionController.admit` call."""

    accepted: bool
    reason: str
    capacity: float
    required: float | None
    observed: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable view (attached to rejected jobs)."""
        return {
            "accepted": self.accepted,
            "reason": self.reason,
            "capacity": self.capacity,
            "required": self.required,
            "observed": self.observed,
        }


class AdmissionController:
    """Eq. (8) admission control over the service's own request stream.

    Parameters
    ----------
    capacity:
        Sustained processing rate of the service in demand units per
        second (the service's "frequency" ``F``).  The daemon meters
        demands in estimated milliseconds of work, so one saturated
        worker is ``~1000`` units/s.
    queue_bound:
        The bounded job queue depth ``b`` — the FIFO of eq. (8).
    window:
        Number of recent requests characterized (rolling).
    min_history:
        Below this many observed requests every request is admitted
        (``"bootstrap"``) — two timestamps make no arrival curve.
    refresh_every:
        The curves are re-extracted after this many new observations;
        between refreshes decisions reuse the cached characterization.
    """

    def __init__(
        self,
        *,
        capacity: float,
        queue_bound: int,
        window: int = 512,
        min_history: int = 16,
        refresh_every: int = 16,
    ):
        self.capacity = check_positive(capacity, "capacity")
        self.queue_bound = check_integer(queue_bound, "queue_bound", minimum=1)
        self.window = check_integer(window, "window", minimum=8)
        self.min_history = check_integer(min_history, "min_history", minimum=4)
        self.refresh_every = check_integer(refresh_every, "refresh_every", minimum=1)
        self._times: deque[float] = deque(maxlen=self.window)
        self._chunks: deque[np.ndarray] = deque(
            maxlen=max(1, self.window // _DEMAND_CHUNK)
        )
        self._tail: list[float] = []
        self._stale = 0
        self._alpha: PiecewiseLinearCurve | None = None
        self._gamma_u: WorkloadCurve | None = None
        self._required: float | None = None
        self._cost_ema: dict[str, float] = {}
        self.accepted = 0
        self.rejected = 0

    # -- metering ----------------------------------------------------------------
    def observe(self, demand: float, now: float | None = None) -> None:
        """Meter one arriving request: timestamp + estimated demand.

        Every request is observed — including the ones subsequently
        rejected — because the *offered* load is what the service must
        characterize to know it is overloaded.
        """
        now = time.monotonic() if now is None else float(now)
        if self._times and now < self._times[-1]:
            now = self._times[-1]  # monotonicity guard for injected clocks
        self._times.append(now)
        self._tail.append(max(float(demand), _MIN_DEMAND))
        if len(self._tail) >= _DEMAND_CHUNK:
            self._chunks.append(np.asarray(self._tail, dtype=float))
            self._tail = []
        self._stale += 1

    def record_cost(self, op: str, cost: float) -> None:
        """Fold a *measured* execution cost into the per-op estimate
        (exponential moving average) — the self-characterizing feedback
        loop closed by the daemon after every completed job."""
        cost = max(float(cost), _MIN_DEMAND)
        previous = self._cost_ema.get(op)
        if previous is None:
            self._cost_ema[op] = cost
        else:
            self._cost_ema[op] = (
                _COST_EMA_ALPHA * cost + (1.0 - _COST_EMA_ALPHA) * previous
            )

    def estimate(self, op: str, default: float) -> float:
        """Demand estimate for one *op* request: the measured EMA when
        available, the caller's static *default* otherwise."""
        return self._cost_ema.get(op, max(float(default), _MIN_DEMAND))

    def _demand_stream(self) -> Iterable[np.ndarray]:
        """The rolling demand window as the chunk stream it is stored as."""
        yield from self._chunks
        if self._tail:
            yield np.asarray(self._tail, dtype=float)

    def _characterize(self) -> None:
        """(Re-)extract ``ᾱ`` and ``γ^u`` from the rolling window."""
        demand_total = sum(c.size for c in self._chunks) + len(self._tail)
        times = np.asarray(self._times, dtype=float)
        # the demand window and the timestamp window drift apart by at
        # most one chunk; characterize over the overlap
        self._alpha = from_trace_upper(times)
        self._gamma_u = WorkloadCurve.from_demand_stream(
            self._demand_stream(), "upper", total=demand_total
        )
        bound = minimum_frequency_curves(
            self._alpha, self._gamma_u, self.queue_bound
        )
        self._required = bound.frequency
        self._stale = 0
        registry.gauge("service.admission.required").set(self._required)
        registry.gauge("service.admission.capacity").set(self.capacity)

    # -- characterization views --------------------------------------------------
    @property
    def observed(self) -> int:
        """Number of requests currently in the rolling window."""
        return len(self._times)

    def demand_curve(self) -> WorkloadCurve | None:
        """The current ``γ^u`` of the service's own demand (None until
        enough history has been observed and characterized)."""
        return self._gamma_u

    def arrival_curve(self) -> PiecewiseLinearCurve | None:
        """The current ``ᾱ`` of the request stream."""
        return self._alpha

    def required_capacity(self) -> float | None:
        """Eq. (9) over the self-characterization: the minimum capacity
        that keeps the observed load feasible at the queue bound."""
        return self._required

    def feasible(self) -> bool:
        """Eq. (8) for the current characterization at ``capacity``."""
        if self._alpha is None or self._gamma_u is None:
            return True
        return verify_service_constraint(
            self._alpha, self._gamma_u, self.queue_bound, self.capacity
        )

    # -- decisions ---------------------------------------------------------------
    def admit(self, demand: float, now: float | None = None) -> AdmissionDecision:
        """Meter one request and decide accept/reject by eq. (8).

        The request is observed first (offered load is metered whether or
        not it is admitted), the characterization is refreshed if stale,
        and the decision plus its reason is counted in the registry.
        """
        self.observe(demand, now)
        if self.observed < self.min_history:
            return self._decide(True, "bootstrap")
        if self._stale >= self.refresh_every or self._alpha is None:
            self._characterize()
        if self.feasible():
            return self._decide(True, "feasible")
        return self._decide(False, "infeasible")

    def _decide(self, accepted: bool, reason: str) -> AdmissionDecision:
        if accepted:
            self.accepted += 1
            registry.counter("service.accepted").inc()
        else:
            self.rejected += 1
            registry.counter("service.rejected", reason=reason).inc()
        return AdmissionDecision(
            accepted=accepted,
            reason=reason,
            capacity=self.capacity,
            required=self._required,
            observed=self.observed,
        )

    def stats(self) -> dict[str, Any]:
        """JSON-serializable accounting snapshot (for ``stats`` requests
        and the daemon's own reporting)."""
        return {
            "capacity": self.capacity,
            "queue_bound": self.queue_bound,
            "window": self.window,
            "observed": self.observed,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "required": self._required,
            "feasible": self.feasible(),
            "cost_ema": dict(self._cost_ema),
        }
