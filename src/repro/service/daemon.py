"""The asyncio analysis daemon: :class:`AnalysisService`.

The service owns three moving parts and wires them together:

* a **bounded job queue** drained by asyncio worker tasks that run each
  op on a CPU executor (``ProcessPoolExecutor`` when the platform
  supports it, thread fallback otherwise — the same degradation ladder
  as :func:`repro.runner.pool.run_many`), with per-job timeouts and the
  runner's retry/backoff semantics (``backoff_s * 2**(wave-1)`` capped);
* a **self-characterizing admission controller**
  (:class:`repro.service.admission.AdmissionController`) metering every
  submission and rejecting by the paper's eq. (8) feasibility test when
  the offered load outruns the configured capacity;
* an **event bus** for ``stream`` subscribers: every job state change is
  fanned out to subscriber queues (slow subscribers drop events rather
  than stall the daemon).

Worker processes attach the sharded disk cache
(:class:`repro.perf.diskcache.DiskCache`) on start, so kernel results
are shared across workers and across daemon restarts.

Lifecycle::

    service = AnalysisService(workers=2, queue_limit=64)
    await service.start()
    job = await service.submit("frequency", {"buffer_size": 8})
    result = await service.result(job.id)
    await service.drain()          # graceful: finish queued work, stop

Metrics published to :mod:`repro.obs`: counters ``service.submitted``,
``service.accepted``, ``service.rejected{reason=...}``,
``service.completed{state=...}``, ``service.retries``,
``service.pool_fallbacks``; gauge ``service.queue_depth``; histogram
``service.job_seconds``.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.obs.metrics import registry
from repro.runner.pool import _pick_context, _worker_init
from repro.service import ops
from repro.service.admission import AdmissionController
from repro.service.jobs import Job
from repro.util.seeding import derive_seed
from repro.util.validation import ValidationError, check_integer

__all__ = ["AnalysisService", "ServiceClosed"]

#: Backoff between retry attempts is capped here (matches the runner).
_MAX_BACKOFF_S = 30.0

#: Per-subscriber event queue bound; beyond it events are dropped.
_SUBSCRIBER_QUEUE = 256


class ServiceClosed(RuntimeError):
    """Raised by :meth:`AnalysisService.submit` after shutdown began."""


class AnalysisService:
    """Asyncio job daemon running analysis ops on a CPU executor.

    Parameters
    ----------
    workers:
        CPU executor width (and the number of queue-draining tasks).
    queue_limit:
        Bound of the job queue; submissions beyond it are **shed**.
    timeout_s:
        Per-attempt wall-clock budget of one job (None = unbounded).
    retries:
        Extra attempts after a failure (timeouts are not retried — a
        job that blew its budget once will blow it again).
    backoff_s:
        Base sleep before retry ``n`` is ``backoff_s * 2**(n-1)``,
        capped at 30 s — the runner's wave-backoff schedule.
    seed:
        Base seed; job ``i`` runs under ``derive_seed(seed, i)`` so
        results are independent of worker assignment and arrival order.
    admission:
        An :class:`AdmissionController`, or None to admit everything.
    cache_dir / cache_shards:
        Persistent kernel cache attached in every worker process
        (sharded when ``cache_shards > 1``).
    executor:
        Pre-built executor (tests inject a ``ThreadPoolExecutor``);
        when given the service will not build or own one.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_limit: int = 64,
        timeout_s: float | None = None,
        retries: int = 0,
        backoff_s: float = 0.25,
        seed: int | None = None,
        admission: AdmissionController | None = None,
        cache_dir: str | None = None,
        cache_shards: int | None = None,
        executor: Executor | None = None,
    ):
        self.workers = check_integer(workers, "workers", minimum=1)
        self.queue_limit = check_integer(queue_limit, "queue_limit", minimum=1)
        self.timeout_s = None if timeout_s is None else float(timeout_s)
        self.retries = check_integer(retries, "retries", minimum=0)
        self.backoff_s = float(backoff_s)
        self.seed = seed
        self.admission = admission
        self.cache_dir = cache_dir
        self.cache_shards = cache_shards
        self._executor = executor
        self._owns_executor = executor is None
        self._queue: asyncio.Queue[Job] = asyncio.Queue(maxsize=self.queue_limit)
        self._jobs: dict[str, Job] = {}
        self._tasks: list[asyncio.Task] = []
        self._subscribers: list[asyncio.Queue] = []
        self._counter = 0
        self._started = False
        self._closing = False
        self.started_at: float | None = None

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> None:
        """Build the executor and launch the worker tasks (idempotent)."""
        if self._started:
            return
        if self._executor is None:
            self._executor = self._build_executor()
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._worker_loop(i)) for i in range(self.workers)
        ]
        self._started = True
        self._closing = False
        self.started_at = time.time()

    def _build_executor(self) -> Executor:
        """A process pool when the platform has a usable start method,
        a thread pool otherwise (counted as a fallback)."""
        context = _pick_context(None)
        if context is not None:
            try:
                return ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=context,
                    initializer=_worker_init,
                    initargs=(self.cache_dir, None, self.cache_shards),
                )
            except (OSError, ValueError):
                pass
        registry.counter("service.pool_fallbacks").inc()
        return ThreadPoolExecutor(max_workers=self.workers)

    async def drain(self, timeout_s: float | None = None) -> None:
        """Graceful shutdown: refuse new work, finish what is queued,
        then stop the workers and the executor.

        With a *timeout_s*, work still unfinished when it expires is
        abandoned (the worker tasks are cancelled).
        """
        self._closing = True
        if not self._started:
            return
        try:
            await asyncio.wait_for(self._queue.join(), timeout=timeout_s)
        except asyncio.TimeoutError:
            pass
        await self._stop_workers()

    async def close(self) -> None:
        """Immediate shutdown: cancel workers, drop queued jobs."""
        self._closing = True
        if not self._started:
            return
        while not self._queue.empty():
            try:
                job = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if not job.terminal:
                job.finish("cancelled")
                self._emit(job)
            self._queue.task_done()
        await self._stop_workers()

    async def _stop_workers(self) -> None:
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._started = False

    # -- submission --------------------------------------------------------------
    async def submit(
        self, op: str, params: dict[str, Any] | None = None
    ) -> Job:
        """Submit one request; returns its :class:`Job` immediately.

        The job may already be terminal on return: ``rejected`` when the
        admission controller's eq. (8) test failed, ``shed`` when the
        bounded queue was full.  Unknown ops raise
        :class:`~repro.service.ops.UnknownOperation` synchronously.
        """
        if self._closing or not self._started:
            raise ServiceClosed("service is not accepting jobs")
        if op not in ops.OPS:
            raise ops.UnknownOperation(
                f"unknown op {op!r} (known: {', '.join(sorted(ops.OPS))})"
            )
        params = dict(params or {})
        self._counter += 1
        job = Job(
            id=f"job-{self._counter:06d}",
            op=op,
            params=params,
            seed=derive_seed(self.seed, self._counter),
        )
        self._jobs[job.id] = job
        registry.counter("service.submitted").inc()

        job.demand = ops.estimate_demand(op, params)
        if self.admission is not None:
            job.demand = self.admission.estimate(op, job.demand)
            decision = self.admission.admit(job.demand)
            job.admission = decision.to_dict()
            if not decision.accepted:
                job.finish("rejected")
                self._emit(job)
                return job
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            registry.counter("service.rejected", reason="queue-full").inc()
            job.finish("shed")
            self._emit(job)
            return job
        registry.gauge("service.queue_depth").set(self._queue.qsize())
        self._emit(job)
        return job

    # -- queries -----------------------------------------------------------------
    def status(self, job_id: str) -> Job:
        """The job record for *job_id* (raises ``KeyError`` if unknown)."""
        return self._jobs[job_id]

    async def result(self, job_id: str, timeout_s: float | None = None) -> Job:
        """Wait until *job_id* is terminal and return it."""
        job = self._jobs[job_id]
        if not job.terminal:
            await asyncio.wait_for(job.done_event.wait(), timeout=timeout_s)
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; returns True when it took effect.

        A running job is not interrupted (the executor gives no safe
        preemption) — cancellation of a running or terminal job is a
        no-op returning False.
        """
        job = self._jobs[job_id]
        if job.state != "queued":
            return False
        job.finish("cancelled")
        registry.counter("service.completed", state="cancelled").inc()
        self._emit(job)
        return True

    def stats(self) -> dict[str, Any]:
        """JSON-serializable service snapshot (the ``stats`` response)."""
        states: dict[str, int] = {}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        out: dict[str, Any] = {
            "started_at": self.started_at,
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "queue_depth": self._queue.qsize(),
            "jobs": len(self._jobs),
            "states": states,
            "closing": self._closing,
        }
        if self.admission is not None:
            out["admission"] = self.admission.stats()
        return out

    # -- streaming ---------------------------------------------------------------
    def subscribe(self) -> asyncio.Queue:
        """A queue receiving every subsequent job state change (as job
        dicts without results).  Pair with :meth:`unsubscribe`."""
        queue: asyncio.Queue = asyncio.Queue(maxsize=_SUBSCRIBER_QUEUE)
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        """Detach a subscriber queue obtained from :meth:`subscribe`."""
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    def _emit(self, job: Job) -> None:
        """Fan one job state change out to every subscriber (lossy)."""
        if not self._subscribers:
            return
        event = job.to_dict(with_result=False)
        for queue in self._subscribers:
            try:
                queue.put_nowait(event)
            except asyncio.QueueFull:
                pass

    # -- execution ---------------------------------------------------------------
    async def _worker_loop(self, index: int) -> None:
        """One queue-draining task: pull, execute with retries, resolve."""
        while True:
            job = await self._queue.get()
            try:
                if not job.terminal:  # cancelled jobs pass through
                    await self._run_job(job)
            finally:
                self._queue.task_done()
                registry.gauge("service.queue_depth").set(self._queue.qsize())

    async def _run_job(self, job: Job) -> None:
        """Execute one job on the executor, retrying failed attempts."""
        loop = asyncio.get_running_loop()
        job.state = "running"
        job.started_at = time.time()
        self._emit(job)
        t0 = time.perf_counter()
        last_error: BaseException | None = None
        for attempt in range(1, self.retries + 2):
            job.attempts = attempt
            if attempt > 1:
                registry.counter("service.retries").inc()
                await asyncio.sleep(
                    min(self.backoff_s * 2 ** (attempt - 2), _MAX_BACKOFF_S)
                )
            try:
                future = loop.run_in_executor(
                    self._executor, ops.execute_op, job.op, job.params, job.seed
                )
                job.result = await asyncio.wait_for(future, timeout=self.timeout_s)
                last_error = None
                break
            except asyncio.TimeoutError as exc:
                last_error = exc
                self._finalize(job, "timeout", t0, exc)
                return
            except BrokenProcessPool as exc:
                last_error = exc
                self._restart_executor()
            except ValidationError as exc:
                last_error = exc  # deterministic input error: no retry
                break
            except Exception as exc:  # noqa: BLE001 — worker faults retried
                last_error = exc
        if last_error is not None:
            self._finalize(job, "failed", t0, last_error)
        else:
            self._finalize(job, "done", t0, None)

    def _restart_executor(self) -> None:
        """Replace a broken process pool (thread fallback on failure)."""
        if not self._owns_executor or self._executor is None:
            return
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = self._build_executor()

    def _finalize(
        self, job: Job, state: str, t0: float, error: BaseException | None
    ) -> None:
        """Resolve a job: duration, error record, metrics, feedback."""
        job.duration_s = time.perf_counter() - t0
        if error is not None:
            job.error = str(error) or type(error).__name__
            job.error_type = type(error).__name__
        job.finish(state)
        registry.counter("service.completed", state=state).inc()
        registry.histogram("service.job_seconds").observe(job.duration_s)
        if state == "done" and self.admission is not None:
            # close the self-characterization loop: measured cost in ms
            self.admission.record_cost(job.op, job.duration_s * 1000.0)
        self._emit(job)
