"""Analysis-as-a-service: the repo's long-running query layer.

The packages below turn the batch analysis pipeline into a daemon that
answers curve/frequency/backlog queries over a JSONL protocol, while
*dogfooding the paper*: the service characterizes its own request stream
as a workload curve and admits work by the eq. (8) feasibility test.

Modules
-------
:mod:`~repro.service.daemon`
    :class:`AnalysisService` — asyncio job queue, CPU executor, retries,
    timeouts, graceful drain.
:mod:`~repro.service.admission`
    :class:`AdmissionController` — eq. (8) admission over the service's
    self-characterized arrival/workload curves.
:mod:`~repro.service.evalpool`
    :class:`EvaluatorPool` — warm frequency evaluators, LRU by parameter
    digest.
:mod:`~repro.service.jobs`
    :class:`Job` — the lifecycle record.
:mod:`~repro.service.ops`
    The executable operations and their demand estimates.
:mod:`~repro.service.protocol` / :mod:`~repro.service.server` /
:mod:`~repro.service.client`
    JSONL wire dialect, unix-socket/stdio front-ends, blocking client.
"""

from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import AnalysisService, ServiceClosed
from repro.service.evalpool import DEFAULT_POOL_ENTRIES, EvaluatorPool
from repro.service.jobs import JOB_STATES, TERMINAL_STATES, Job
from repro.service.ops import OPS, UnknownOperation, estimate_demand, execute_op

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AnalysisService",
    "DEFAULT_POOL_ENTRIES",
    "EvaluatorPool",
    "Job",
    "JOB_STATES",
    "OPS",
    "ServiceClient",
    "ServiceClosed",
    "ServiceError",
    "TERMINAL_STATES",
    "UnknownOperation",
    "estimate_demand",
    "execute_op",
]
