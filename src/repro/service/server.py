"""Server front-ends of the analysis service: unix socket and stdio.

``python -m repro serve --socket /tmp/repro.sock`` starts the daemon and
speaks the :mod:`repro.service.protocol` JSONL dialect over a local unix
socket; ``--stdio`` serves a single session over stdin/stdout instead
(handy for spawn-per-session supervisors and for CI smokes without
socket plumbing).  Either way, one :class:`~repro.service.daemon.
AnalysisService` instance backs every connection.

A ``shutdown`` request drains the service (graceful by default) and
stops the server; so does SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
from typing import Any, Awaitable, Callable

from repro.service import protocol
from repro.service.admission import AdmissionController
from repro.service.daemon import AnalysisService, ServiceClosed
from repro.util.validation import ValidationError

__all__ = ["handle_message", "serve_unix", "serve_stdio", "main"]


async def handle_message(
    service: AnalysisService,
    message: dict[str, Any],
    *,
    send: Callable[[dict[str, Any]], Awaitable[None]],
    stop: Callable[[bool], None],
) -> bool:
    """Dispatch one decoded request; returns False to close the session.

    *send* writes one response line; *stop* is invoked with the drain
    flag when a ``shutdown`` request arrives (the front-end decides what
    stopping means).  Raises nothing: every failure becomes an error
    response.
    """
    rid = message.get("rid")
    op = message.get("op")
    try:
        if op == "hello":
            await send(
                protocol.ok_response(
                    rid,
                    schema=protocol.SCHEMA,
                    ops=sorted(protocol.REQUEST_OPS),
                    stats=service.stats(),
                )
            )
        elif op == "submit":
            spec = message.get("job") or {}
            job = await service.submit(spec.get("op", ""), spec.get("params"))
            await send(protocol.ok_response(rid, job=job.to_dict(with_result=False)))
        elif op == "status":
            job = service.status(str(message.get("id")))
            await send(protocol.ok_response(rid, job=job.to_dict(with_result=False)))
        elif op == "result":
            timeout = message.get("timeout")
            job = await service.result(
                str(message.get("id")),
                timeout_s=None if timeout is None else float(timeout),
            )
            await send(protocol.ok_response(rid, job=job.to_dict()))
        elif op == "cancel":
            cancelled = service.cancel(str(message.get("id")))
            await send(protocol.ok_response(rid, cancelled=cancelled))
        elif op == "stats":
            await send(protocol.ok_response(rid, stats=service.stats()))
        elif op == "events":
            # subscribe BEFORE acking so a client that saw the ok can
            # never miss events raced in over another connection
            queue = service.subscribe()
            await send(protocol.ok_response(rid, streaming=True))
            try:
                while True:
                    event = await queue.get()
                    await send({"event": event})
            finally:
                service.unsubscribe(queue)
        elif op == "shutdown":
            await send(protocol.ok_response(rid, stopping=True))
            stop(bool(message.get("drain", True)))
            return False
        else:
            await send(
                protocol.error_response(
                    f"unknown request op {op!r}",
                    error_type="protocol",
                    rid=rid,
                )
            )
    except KeyError:
        await send(
            protocol.error_response(
                f"unknown job id {message.get('id')!r}",
                error_type="unknown-job",
                rid=rid,
            )
        )
    except asyncio.TimeoutError:
        await send(
            protocol.error_response("result wait timed out", error_type="timeout", rid=rid)
        )
    except ServiceClosed as exc:
        await send(protocol.error_response(str(exc), error_type="closed", rid=rid))
    except ValidationError as exc:
        await send(protocol.error_response(str(exc), error_type="validation", rid=rid))
    return True


async def _session(
    service: AnalysisService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    stop: Callable[[bool], None],
) -> None:
    """Serve one JSONL session over a stream pair until EOF/shutdown."""
    lock = asyncio.Lock()  # events task and responses share the writer

    async def send(message: dict[str, Any]) -> None:
        async with lock:
            writer.write(protocol.encode(message))
            await writer.drain()

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                message = protocol.decode(line)
            except protocol.ProtocolError as exc:
                await send(protocol.error_response(str(exc), error_type="protocol"))
                continue
            if not await handle_message(service, message, send=send, stop=stop):
                break
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        with contextlib.suppress(Exception):
            writer.close()
            await writer.wait_closed()


async def serve_unix(
    service: AnalysisService,
    path: str,
    *,
    ready: Callable[[], None] | None = None,
) -> None:
    """Serve the protocol on a unix socket at *path* until shut down.

    *ready* (if given) is called once the socket is listening — the CLI
    prints its readiness line from it.
    """
    stopped = asyncio.Event()
    drain_flag = {"drain": True}

    def stop(drain: bool) -> None:
        drain_flag["drain"] = drain
        stopped.set()

    server = await asyncio.start_unix_server(
        lambda r, w: _session(service, r, w, stop), path=path
    )
    await service.start()
    if ready is not None:
        ready()
    try:
        async with server:
            await stopped.wait()
    finally:
        if drain_flag["drain"]:
            await service.drain()
        else:
            await service.close()


async def serve_stdio(service: AnalysisService) -> None:
    """Serve one session over stdin/stdout, then drain."""
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
    )
    transport, proto = await loop.connect_write_pipe(
        asyncio.streams.FlowControlMixin, sys.stdout
    )
    writer = asyncio.StreamWriter(transport, proto, reader, loop)
    await service.start()

    def stop(drain: bool) -> None:
        reader.feed_eof()

    try:
        await _session(service, reader, writer, stop)
    finally:
        await service.drain()


def build_service(args: argparse.Namespace) -> AnalysisService:
    """An :class:`AnalysisService` configured from parsed CLI *args*."""
    admission = None
    if args.capacity is not None:
        admission = AdmissionController(
            capacity=args.capacity,
            queue_bound=args.queue_bound or args.queue_limit,
            window=args.admission_window,
        )
    return AnalysisService(
        workers=args.workers,
        queue_limit=args.queue_limit,
        timeout_s=args.timeout,
        retries=args.retries,
        seed=args.seed,
        admission=admission,
        cache_dir=args.cache_dir,
        cache_shards=args.cache_shards,
    )


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the analysis service daemon (JSONL protocol).",
    )
    parser.add_argument("--socket", help="unix socket path to listen on")
    parser.add_argument(
        "--stdio", action="store_true", help="serve one session over stdin/stdout"
    )
    parser.add_argument("--workers", type=int, default=2, help="executor width")
    parser.add_argument(
        "--queue-limit", type=int, default=64, help="bounded job queue depth"
    )
    parser.add_argument(
        "--timeout", type=float, default=None, help="per-attempt job timeout (s)"
    )
    parser.add_argument(
        "--retries", type=int, default=0, help="retry attempts per failed job"
    )
    parser.add_argument(
        "--capacity",
        type=float,
        default=None,
        help="admission capacity in demand units/s (enables eq. (8) control)",
    )
    parser.add_argument(
        "--queue-bound",
        type=int,
        default=None,
        help="admission queue bound b (defaults to --queue-limit)",
    )
    parser.add_argument(
        "--admission-window",
        type=int,
        default=512,
        help="requests characterized by the rolling admission window",
    )
    parser.add_argument("--cache-dir", help="persistent kernel cache directory")
    parser.add_argument(
        "--cache-shards", type=int, default=None, help="disk cache shard count"
    )
    parser.add_argument("--seed", type=int, default=None, help="base RNG seed")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point of ``python -m repro serve``."""
    args = _parser().parse_args(argv)
    if not args.socket and not args.stdio:
        print("serve: one of --socket PATH or --stdio is required", file=sys.stderr)
        return 2
    service = build_service(args)
    try:
        if args.stdio:
            asyncio.run(serve_stdio(service))
        else:

            def ready() -> None:
                print(f"listening on {args.socket}", flush=True)

            asyncio.run(serve_unix(service, args.socket, ready=ready))
    except KeyboardInterrupt:
        pass
    return 0
