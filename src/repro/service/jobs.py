"""Job model of the analysis service.

A job is one client request travelling through the daemon: submitted,
admission-checked, queued, executed (with retries) on the worker
executor, and finally resolved to a result or an error.  The dataclass
here is the single source of truth for that lifecycle; the JSONL
protocol serializes it with :meth:`Job.to_dict`.

State machine::

    submit ──► rejected            (eq. (8) admission says no)
          ──► shed                 (bounded queue is full)
          ──► queued ──► running ──► done
                     │          ├─► failed    (retries exhausted)
                     │          └─► timeout   (per-job budget exceeded)
                     └─► cancelled (cancelled while still queued)

``rejected``/``shed``/``done``/``failed``/``timeout``/``cancelled`` are
terminal.  Timestamps are wall-clock (``time.time``) for protocol
friendliness; durations are measured with the monotonic clock.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Job", "JOB_STATES", "TERMINAL_STATES"]

#: Every state a job can be observed in, in lifecycle order.
JOB_STATES = (
    "queued",
    "running",
    "done",
    "failed",
    "timeout",
    "cancelled",
    "rejected",
    "shed",
)

#: States a job never leaves.
TERMINAL_STATES = frozenset(
    {"done", "failed", "timeout", "cancelled", "rejected", "shed"}
)


@dataclass
class Job:
    """One request's full lifecycle record inside the daemon."""

    id: str
    op: str
    params: dict[str, Any]
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    duration_s: float = 0.0
    attempts: int = 0
    seed: int | None = None
    demand: float = 0.0
    result: Any = None
    error: str | None = None
    error_type: str | None = None
    admission: dict[str, Any] | None = None
    done_event: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    @property
    def terminal(self) -> bool:
        """True once the job can no longer change state."""
        return self.state in TERMINAL_STATES

    def finish(self, state: str) -> None:
        """Move to a terminal *state* and wake every waiter."""
        self.state = state
        self.finished_at = time.time()
        self.done_event.set()

    def to_dict(self, *, with_result: bool = True) -> dict[str, Any]:
        """JSON-serializable view of the job (the protocol's job object).

        ``with_result=False`` drops the (possibly large) result payload —
        used by ``status`` responses and stream events.
        """
        out: dict[str, Any] = {
            "id": self.id,
            "op": self.op,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "duration_s": self.duration_s,
            "attempts": self.attempts,
            "demand": self.demand,
        }
        if self.seed is not None:
            out["seed"] = self.seed
        if self.error is not None:
            out["error"] = self.error
            out["error_type"] = self.error_type
        if self.admission is not None:
            out["admission"] = self.admission
        if with_result and self.state == "done":
            out["result"] = self.result
        return out
