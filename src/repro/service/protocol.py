"""JSONL wire protocol of the analysis service (``repro.service/1``).

One request or response per line, each a JSON object.  Requests carry an
``op`` and an optional client-chosen ``rid`` (request id) that the
matching response echoes, so clients may pipeline.  Responses carry
``ok`` (bool) plus either the payload fields or an ``error``/
``error_type`` pair.  ``events`` responses are followed by a stream of
``{"event": ...}`` lines until the connection closes.

Request ops::

    {"op": "hello"}                              → schema + server info
    {"op": "submit", "job": {"op": ..., "params": {...}}} → job record
    {"op": "status", "id": "job-000001"}          → job record (no result)
    {"op": "result", "id": "job-000001", "timeout": 5.0} → job record
    {"op": "cancel", "id": "job-000001"}          → {"cancelled": bool}
    {"op": "stats"}                               → service snapshot
    {"op": "events"}                              → subscribe to job events
    {"op": "shutdown", "drain": true}             → ack, then server exits

The framing is deliberately the same newline-delimited JSON used by the
repo's trajectory store — greppable, append-friendly, no binary deps.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "SCHEMA",
    "ProtocolError",
    "encode",
    "decode",
    "ok_response",
    "error_response",
    "REQUEST_OPS",
]

#: Protocol schema tag, echoed by ``hello`` and checked by the client.
SCHEMA = "repro.service/1"

#: Ops a request line may carry.
REQUEST_OPS = (
    "hello",
    "submit",
    "status",
    "result",
    "cancel",
    "stats",
    "events",
    "shutdown",
)


class ProtocolError(ValueError):
    """A malformed request or response line."""


def encode(message: dict[str, Any]) -> bytes:
    """Serialize one protocol message to a newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n").encode()


def decode(line: bytes | str) -> dict[str, Any]:
    """Parse one line into a message dict.

    Raises
    ------
    ProtocolError
        If the line is not valid JSON or not a JSON object.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty protocol line")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("protocol line must be a JSON object")
    return message


def ok_response(rid: Any = None, **payload: Any) -> dict[str, Any]:
    """A success response, echoing *rid* when the request carried one."""
    out: dict[str, Any] = {"ok": True, **payload}
    if rid is not None:
        out["rid"] = rid
    return out


def error_response(
    message: str, *, error_type: str = "error", rid: Any = None
) -> dict[str, Any]:
    """A failure response with a stable ``error_type`` discriminator."""
    out: dict[str, Any] = {"ok": False, "error": message, "error_type": error_type}
    if rid is not None:
        out["rid"] = rid
    return out
