"""Executable operations of the analysis service.

The daemon runs CPU-bound work on a process-pool executor, which pickles
the entry point *by reference* — so the single entry point
(:func:`execute_op`) and every op implementation live here at module
level, exactly like :mod:`repro.runner.tasks` does for the batch runner.

Ops (the ``op`` field of a ``submit`` request):

``curve``
    Extract workload curves from a posted per-event demand array via the
    bounded-memory streaming fold
    (:meth:`~repro.core.workload.WorkloadCurvePair.from_demand_stream`).
``frequency``
    One frequency/backlog design-space point (paper eqs. (7), (9), (10))
    over the case-study context — the op behind ``sweep --service``.
    Rides the warm evaluator pool, so repeated queries with the same
    parameterization skip the context build entirely.
``backlog``
    Eq. (7) event backlog at a given frequency over the same context.
``sleep``
    Synthetic latency (tests and benchmarks of queueing/timeout paths).

Every op returns a JSON-serializable dict — results travel over the JSONL
protocol unchanged.  :func:`estimate_demand` gives the static per-op
demand estimates (in milliseconds of nominal work) that seed the
admission controller before measured costs take over.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.util.seeding import reseed
from repro.util.validation import ValidationError, check_integer, check_positive

__all__ = ["OPS", "execute_op", "estimate_demand", "UnknownOperation"]


class UnknownOperation(ValidationError):
    """Raised when a request names an op that is not registered."""


def _op_sleep(params: dict[str, Any]) -> dict[str, Any]:
    """Block for ``seconds`` and return it (synthetic latency)."""
    seconds = float(params.get("seconds", 0.0))
    if seconds < 0:
        raise ValidationError("seconds must be >= 0")
    time.sleep(seconds)
    return {"slept_s": seconds}


def _op_curve(params: dict[str, Any]) -> dict[str, Any]:
    """Workload-curve extraction from a posted demand array.

    ``params``: ``demands`` (list of positive numbers), optional
    ``chunk`` (streaming fold chunk size, default 4096).
    """
    import numpy as np

    from repro.core.workload import WorkloadCurvePair

    demands = np.asarray(params.get("demands", ()), dtype=float)
    if demands.size == 0:
        raise ValidationError("curve op needs a non-empty 'demands' array")
    chunk = check_integer(params.get("chunk", 4096), "chunk", minimum=1)
    chunks = (
        demands[start : start + chunk] for start in range(0, demands.size, chunk)
    )
    pair = WorkloadCurvePair.from_demand_stream(chunks, total=int(demands.size))
    return {
        "events": int(demands.size),
        "wcet": pair.wcet,
        "bcet": pair.bcet,
        "k": [int(k) for k in pair.upper.k_values],
        "gamma_u": [float(v) for v in pair.upper.values],
        "gamma_l": [float(v) for v in pair.lower.values],
    }


def _context_kwargs(params: dict[str, Any]) -> dict[str, Any]:
    """The case-study-context portion of an op's parameters."""
    return {
        "frames": int(params.get("frames", 72)),
        "dense_limit": int(params.get("dense_limit", 4096)),
        "growth": float(params.get("growth", 1.015)),
        "stream_chunk": params.get("stream_chunk"),
        "max_segments": params.get("max_segments"),
        "compact_error": params.get("compact_error"),
        "backend": params.get("backend"),
    }


def _op_frequency(params: dict[str, Any]) -> dict[str, Any]:
    """One frequency/backlog sweep point, serialized for the protocol.

    Same computation and manifest as
    :func:`repro.runner.tasks.frequency_backlog_point` (the batch
    runner's op), so a sweep through the service is byte-comparable to a
    local one.
    """
    from repro.runner.tasks import frequency_backlog_point

    result = frequency_backlog_point(
        buffer_size=check_integer(params.get("buffer_size"), "buffer_size", minimum=1),
        bisect=bool(params.get("bisect", False)),
        sim_validate=bool(params.get("sim_validate", False)),
        sim_items=int(params.get("sim_items", 4096)),
        sim_seed=int(params.get("sim_seed", 0)),
        **_context_kwargs(params),
    )
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "paper_reference": result.paper_reference,
        "report": result.report,
        "data": result.data,
        "manifest": result.manifest,
    }


def _op_backlog(params: dict[str, Any]) -> dict[str, Any]:
    """Eq. (7) event backlog at ``frequency`` over the warm evaluator."""
    from repro.experiments.common import sweep_frequency_evaluator

    frequency = check_positive(float(params.get("frequency", 0.0)), "frequency")
    evaluator = sweep_frequency_evaluator(**_context_kwargs(params))
    return {
        "frequency": frequency,
        "backlog_events": float(evaluator.backlog_events(frequency)),
    }


#: Registered operations: op name -> implementation.
OPS: dict[str, Callable[[dict[str, Any]], dict[str, Any]]] = {
    "sleep": _op_sleep,
    "curve": _op_curve,
    "frequency": _op_frequency,
    "backlog": _op_backlog,
}

#: Static demand estimates (milliseconds of nominal work) seeding the
#: admission controller until measured costs take over.
_STATIC_DEMAND_MS = {
    "sleep": 1.0,
    "curve": 5.0,
    "frequency": 200.0,
    "backlog": 50.0,
}


def estimate_demand(op: str, params: dict[str, Any]) -> float:
    """Static demand estimate of one request, in milliseconds of work.

    ``sleep`` scales with the requested duration, ``curve`` with the
    posted trace length; the context-bound ops use flat priors (the
    admission controller's measured EMA replaces them after the first
    few completions — see
    :meth:`repro.service.admission.AdmissionController.record_cost`).
    """
    base = _STATIC_DEMAND_MS.get(op, 10.0)
    if op == "sleep":
        return max(base, float(params.get("seconds", 0.0)) * 1000.0)
    if op == "curve":
        return max(base, 0.01 * len(params.get("demands", ())))
    return base


def execute_op(op: str, params: dict[str, Any], seed: int | None = None) -> dict[str, Any]:
    """Execute one op in the current process (the executor entry point).

    Reseeds the global RNGs with the job's derived seed first — the same
    :mod:`repro.util.seeding` contract as the batch runner — so a job's
    result is independent of which worker runs it.
    """
    impl = OPS.get(op)
    if impl is None:
        raise UnknownOperation(f"unknown op {op!r} (known: {', '.join(sorted(OPS))})")
    reseed(seed)
    return impl(dict(params or {}))
