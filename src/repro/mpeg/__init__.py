"""Synthetic MPEG-2 decoder workload substrate (paper §3.2 case study).

The paper maps an MPEG-2 decoder onto two PEs (Figure 5): VLD+IQ on PE1 and
IDCT+MC on PE2, connected by a macroblock FIFO.  This subpackage replaces
the authors' real clips and SimpleScalar/SystemC measurement stack with a
calibrated synthetic substrate:

* :mod:`~repro.mpeg.macroblock` / :mod:`~repro.mpeg.gop` — stream structure;
* :mod:`~repro.mpeg.demand` — per-stage cycle-cost models with SPI-style
  per-type ``[bcet, wcet]`` intervals;
* :mod:`~repro.mpeg.bitstream` — seeded clip generator with a CBR front end
  producing the bursty PE1-output timing the case study exhibits;
* :mod:`~repro.mpeg.clips` — the 14 standard content presets.
"""

from repro.mpeg.macroblock import (
    FrameType,
    CodingClass,
    Macroblock,
    MACROBLOCKS_PER_FRAME_PAL,
)
from repro.mpeg.gop import GopStructure
from repro.mpeg.demand import ClassCost, StageDemandModel, VLD_IQ_MODEL, IDCT_MC_MODEL
from repro.mpeg.bitstream import ClipProfile, ClipData, SyntheticClip
from repro.mpeg.clips import CLIP_PROFILES, standard_clips
from repro.mpeg.stats import FrameTypeStats, ClipStats, clip_statistics

__all__ = [
    "FrameType",
    "CodingClass",
    "Macroblock",
    "MACROBLOCKS_PER_FRAME_PAL",
    "GopStructure",
    "ClassCost",
    "StageDemandModel",
    "VLD_IQ_MODEL",
    "IDCT_MC_MODEL",
    "ClipProfile",
    "ClipData",
    "SyntheticClip",
    "CLIP_PROFILES",
    "standard_clips",
    "FrameTypeStats",
    "ClipStats",
    "clip_statistics",
]
