"""Group-of-pictures structure.

MPEG-2 organizes frames into GOPs; the classical broadcast pattern is
``N = 12`` frames per GOP with ``M = 3`` (an anchor every 3rd frame):
``I B B P B B P B B P B B`` in display order.  The decoder sees frames in
*coded* order (anchors before the B-frames that reference them), which is
the order that matters for decode-side workload analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.mpeg.macroblock import FrameType
from repro.util.validation import ValidationError, check_integer

__all__ = ["GopStructure"]


@dataclass(frozen=True)
class GopStructure:
    """GOP with *n* frames and anchor distance *m* (``m - 1`` B-frames
    between anchors).

    ``n`` must be a positive multiple of ``m``; ``m = 1`` yields an
    IPPP... stream without B-frames.
    """

    n: int = 12
    m: int = 3

    def __post_init__(self) -> None:
        check_integer(self.n, "n", minimum=1)
        check_integer(self.m, "m", minimum=1)
        if self.n % self.m != 0:
            raise ValidationError("GOP length n must be a multiple of the anchor distance m")

    def display_order(self) -> list[FrameType]:
        """Frame types of one GOP in display order."""
        types: list[FrameType] = []
        for i in range(self.n):
            if i == 0:
                types.append(FrameType.I)
            elif i % self.m == 0:
                types.append(FrameType.P)
            else:
                types.append(FrameType.B)
        return types

    def coded_order(self) -> list[FrameType]:
        """Frame types of one GOP in coded (bitstream/decode) order: each
        anchor precedes the B-frames displayed before it."""
        display = self.display_order()
        coded: list[FrameType] = []
        pending_b: list[FrameType] = []
        for ft in display:
            if ft is FrameType.B:
                pending_b.append(ft)
            else:
                coded.append(ft)
                coded.extend(pending_b)
                pending_b = []
        coded.extend(pending_b)
        return coded

    def frame_types(self, num_frames: int, *, order: str = "coded") -> list[FrameType]:
        """Frame types for *num_frames* consecutive frames (GOP repeated).

        *order* is ``"coded"`` (decode order, default — what the PEs see) or
        ``"display"``.
        """
        num_frames = check_integer(num_frames, "num_frames", minimum=1)
        if order == "coded":
            pattern = self.coded_order()
        elif order == "display":
            pattern = self.display_order()
        else:
            raise ValidationError(f"order must be 'coded' or 'display', got {order!r}")
        reps = -(-num_frames // self.n)
        return (pattern * reps)[:num_frames]

    @property
    def frames_per_gop(self) -> dict[FrameType, int]:
        """Count of each frame type in one GOP."""
        display = self.display_order()
        return {ft: display.count(ft) for ft in FrameType}
