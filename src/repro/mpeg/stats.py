"""Descriptive statistics of synthetic clips.

Reporting helpers used by examples and sanity checks: per-frame-type demand
and bit breakdowns, coding-class mix, and the demand histogram that shows
the variability the workload curves capture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpeg.bitstream import SyntheticClip
from repro.util.report import TextTable
from repro.util.validation import ValidationError

__all__ = ["FrameTypeStats", "ClipStats", "clip_statistics"]

_FRAME_NAMES = ["I", "P", "B"]
_CODING_NAMES = ["intra", "inter", "skipped"]


@dataclass(frozen=True)
class FrameTypeStats:
    """Per-frame-type aggregates."""

    frame_type: str
    macroblocks: int
    mean_bits: float
    mean_pe1_cycles: float
    mean_pe2_cycles: float
    coding_mix: dict[str, float]


@dataclass(frozen=True)
class ClipStats:
    """Whole-clip aggregates plus the per-frame-type breakdown."""

    name: str
    n_macroblocks: int
    duration: float
    bit_rate: float
    mean_pe2_cycles: float
    max_pe2_cycles: float
    wcet_over_mean: float
    per_frame_type: tuple[FrameTypeStats, ...]

    def render(self) -> str:
        """Human-readable report."""
        table = TextTable(
            ["frame type", "macroblocks", "mean bits", "mean PE1 cyc", "mean PE2 cyc",
             "intra%", "inter%", "skip%"],
            title=(
                f"clip {self.name!r}: {self.n_macroblocks} macroblocks, "
                f"{self.bit_rate / 1e6:.2f} Mbit/s, "
                f"PE2 WCET/mean = {self.wcet_over_mean:.2f}"
            ),
        )
        for s in self.per_frame_type:
            table.add_row(
                [
                    s.frame_type,
                    s.macroblocks,
                    f"{s.mean_bits:.0f}",
                    f"{s.mean_pe1_cycles:.0f}",
                    f"{s.mean_pe2_cycles:.0f}",
                    f"{s.coding_mix['intra'] * 100:.1f}",
                    f"{s.coding_mix['inter'] * 100:.1f}",
                    f"{s.coding_mix['skipped'] * 100:.1f}",
                ]
            )
        return table.render()


def clip_statistics(clip: SyntheticClip) -> ClipStats:
    """Compute :class:`ClipStats` for a (generated) clip."""
    if not isinstance(clip, SyntheticClip):
        raise ValidationError("clip must be a SyntheticClip")
    data = clip.generate()
    per_type: list[FrameTypeStats] = []
    for code, name in enumerate(_FRAME_NAMES):
        sel = data.frame_type_code == code
        count = int(sel.sum())
        if count == 0:
            continue
        mix = {
            cname: float(np.mean(data.coding_code[sel] == ccode))
            for ccode, cname in enumerate(_CODING_NAMES)
        }
        per_type.append(
            FrameTypeStats(
                frame_type=name,
                macroblocks=count,
                mean_bits=float(data.bits[sel].mean()),
                mean_pe1_cycles=float(data.pe1_cycles[sel].mean()),
                mean_pe2_cycles=float(data.pe2_cycles[sel].mean()),
                coding_mix=mix,
            )
        )
    mean_pe2 = float(data.pe2_cycles.mean())
    return ClipStats(
        name=clip.profile.name,
        n_macroblocks=data.n_macroblocks,
        duration=clip.duration(),
        bit_rate=float(data.bits.sum()) / clip.duration(),
        mean_pe2_cycles=mean_pe2,
        max_pe2_cycles=float(data.pe2_cycles.max()),
        wcet_over_mean=float(data.pe2_cycles.max()) / mean_pe2,
        per_frame_type=tuple(per_type),
    )
