"""Cycle-demand models for the two decoder stages (paper Figure 5).

The paper measures per-macroblock cycle counts with a SimpleScalar ISS
(MIPS3000-like, PE1 with bitstream-access hardware, PE2 with IDCT
acceleration and block-based memory access).  We replace the ISS with
explicit cost models: each stage charges a macroblock a deterministic
function of its coding attributes,

.. math::

    cycles = base(class) + c_{blk}(class)·coded\\_blocks
           + c_{mot}(class)·motion + c_{tex}(class)·texture
           + c_{bit}(class)·bits

with per-coding-class coefficients.  The coefficients below are calibrated
so that the PE2 stage reproduces the paper's qualitative numbers: a
WCET-to-average demand ratio around 2, hence roughly the >50 % frequency
saving of eq. (9) vs eq. (10).

The models also export the per-event-type ``[bcet, wcet]`` intervals (the
SPI-style characterization of §2.1) derived from the attribute ranges, so
profile-based *and* measurement-based workload curves can be built from the
same substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.events import ExecutionInterval, ExecutionProfile
from repro.mpeg.macroblock import CodingClass, FrameType, Macroblock
from repro.util.validation import ValidationError, check_non_negative

__all__ = ["ClassCost", "StageDemandModel", "VLD_IQ_MODEL", "IDCT_MC_MODEL"]

#: Attribute ranges per coding class: (coded_blocks_min, coded_blocks_max).
_CBC_RANGE = {
    CodingClass.INTRA: (1, 6),
    CodingClass.INTER: (0, 6),
    CodingClass.SKIPPED: (0, 0),
}


@dataclass(frozen=True)
class ClassCost:
    """Cost coefficients of one coding class for one stage."""

    base: float
    per_coded_block: float = 0.0
    motion_weight: float = 0.0
    texture_weight: float = 0.0
    per_bit: float = 0.0
    max_bits: float = 0.0  # bits bound used only for the WCET interval

    def __post_init__(self) -> None:
        check_non_negative(self.base, "base")
        check_non_negative(self.per_coded_block, "per_coded_block")
        check_non_negative(self.motion_weight, "motion_weight")
        check_non_negative(self.texture_weight, "texture_weight")
        check_non_negative(self.per_bit, "per_bit")
        check_non_negative(self.max_bits, "max_bits")
        if self.base <= 0:
            raise ValidationError("base cost must be positive (every macroblock costs cycles)")


class StageDemandModel:
    """Per-macroblock cycle cost of one pipeline stage.

    Parameters
    ----------
    name:
        Stage label, e.g. ``"VLD+IQ"``.
    costs:
        Mapping from :class:`CodingClass` to :class:`ClassCost`; all three
        classes must be present.
    jitter:
        Multiplicative execution jitter ``(lo, hi)`` applied per macroblock
        (cache effects, data-dependent branches).
    stall_probability / stall_extra:
        With this probability a macroblock additionally suffers a stall
        burst of up to ``stall_extra`` times its nominal cost (worst-case
        memory-system alignment).  This is the "worst case happens rarely"
        phenomenon the paper's introduction stresses: it inflates the WCET
        far above any sustained window average.
    """

    def __init__(
        self,
        name: str,
        costs: Mapping[CodingClass, ClassCost],
        *,
        jitter: tuple[float, float] = (0.88, 1.08),
        stall_probability: float = 0.02,
        stall_extra: float = 0.70,
    ):
        if not isinstance(name, str) or not name:
            raise ValidationError("stage name must be a non-empty string")
        missing = set(CodingClass) - set(costs)
        if missing:
            raise ValidationError(f"missing cost classes: {sorted(c.value for c in missing)}")
        lo, hi = jitter
        if not (0.0 < lo <= hi):
            raise ValidationError("jitter must satisfy 0 < lo <= hi")
        if not (0.0 <= stall_probability <= 1.0):
            raise ValidationError("stall_probability must be in [0, 1]")
        check_non_negative(stall_extra, "stall_extra")
        self.name = name
        self._costs = dict(costs)
        self.jitter = (float(lo), float(hi))
        self.stall_probability = float(stall_probability)
        self.stall_extra = float(stall_extra)

    def cost(self, coding: CodingClass) -> ClassCost:
        """Coefficients of one coding class."""
        return self._costs[coding]

    # -- scalar and vectorized evaluation ------------------------------------------
    def cycles(self, mb: Macroblock) -> float:
        """Cycle demand of a single macroblock."""
        c = self._costs[mb.coding]
        return (
            c.base
            + c.per_coded_block * mb.coded_blocks
            + c.motion_weight * mb.motion_complexity
            + c.texture_weight * mb.texture_complexity
            + c.per_bit * mb.bits
        )

    def cycles_array(
        self,
        coding: np.ndarray,
        coded_blocks: np.ndarray,
        motion: np.ndarray,
        texture: np.ndarray,
        bits: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`cycles`.

        *coding* is an integer array of :class:`CodingClass` codes
        (0 = intra, 1 = inter, 2 = skipped, the order of the enum).
        """
        classes = list(CodingClass)
        base = np.empty(coding.shape)
        pcb = np.empty(coding.shape)
        mot = np.empty(coding.shape)
        tex = np.empty(coding.shape)
        pbit = np.empty(coding.shape)
        for code, cls in enumerate(classes):
            c = self._costs[cls]
            sel = coding == code
            base[sel] = c.base
            pcb[sel] = c.per_coded_block
            mot[sel] = c.motion_weight
            tex[sel] = c.texture_weight
            pbit[sel] = c.per_bit
        return base + pcb * coded_blocks + mot * motion + tex * texture + pbit * bits

    def apply_execution_jitter(
        self, rng: "np.random.Generator", cycles: np.ndarray
    ) -> np.ndarray:
        """Per-macroblock multiplicative jitter plus rare stall bursts."""
        factor = rng.uniform(self.jitter[0], self.jitter[1], cycles.shape)
        if self.stall_probability > 0.0 and self.stall_extra > 0.0:
            stalls = rng.random(cycles.shape) < self.stall_probability
            factor = factor + stalls * rng.uniform(
                0.3 * self.stall_extra, self.stall_extra, cycles.shape
            )
        return cycles * factor

    # -- interval characterization ----------------------------------------------------
    def interval(self, coding: CodingClass) -> ExecutionInterval:
        """``[bcet, wcet]`` over the attribute ranges of *coding*, including
        the execution-jitter and stall envelope."""
        c = self._costs[coding]
        lo_cbc, hi_cbc = _CBC_RANGE[coding]
        bcet = (c.base + c.per_coded_block * lo_cbc) * self.jitter[0]
        wcet = (
            c.base
            + c.per_coded_block * hi_cbc
            + c.motion_weight
            + c.texture_weight
            + c.per_bit * c.max_bits
        ) * (self.jitter[1] + self.stall_extra)
        return ExecutionInterval(bcet, wcet)

    def profile(self) -> ExecutionProfile:
        """Execution profile over the full typed-event alphabet
        ``{I,P,B} × {intra,inter,skipped}`` (minus the impossible
        I/inter, I/skipped combinations)."""
        intervals: dict[str, ExecutionInterval] = {}
        for ft in FrameType:
            for cls in CodingClass:
                if ft is FrameType.I and cls is not CodingClass.INTRA:
                    continue
                intervals[f"{ft.value}/{cls.value}"] = self.interval(cls)
        return ExecutionProfile(intervals)

    @property
    def wcet(self) -> float:
        """Global single-macroblock WCET over all classes."""
        return max(self.interval(cls).wcet for cls in CodingClass)

    @property
    def bcet(self) -> float:
        """Global single-macroblock BCET over all classes."""
        return min(self.interval(cls).bcet for cls in CodingClass)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StageDemandModel({self.name!r}, wcet={self.wcet:g}, bcet={self.bcet:g})"


#: PE1 stage: variable-length decoding and inverse quantization.  Dominated
#: by the bit-serial VLD (hardware bitstream access keeps the per-bit cost
#: low); IQ adds a per-coded-block term.
VLD_IQ_MODEL = StageDemandModel(
    "VLD+IQ",
    {
        CodingClass.INTRA: ClassCost(
            base=600.0, per_coded_block=260.0, texture_weight=350.0,
            per_bit=4.5, max_bits=6000.0,
        ),
        CodingClass.INTER: ClassCost(
            base=520.0, per_coded_block=230.0, motion_weight=180.0,
            texture_weight=250.0, per_bit=4.5, max_bits=4000.0,
        ),
        CodingClass.SKIPPED: ClassCost(base=140.0, per_bit=4.5, max_bits=400.0),
    },
)

#: PE2 stage: inverse DCT and motion compensation.  The paper's PE2 has
#: hardware IDCT acceleration and block-based memory access: the IDCT cost
#: is dominated by the fixed per-macroblock transform setup (weak
#: dependence on the coded-block count), while motion compensation — the
#: software part — grows steeply with interpolation complexity
#: (half-pel/bidirectional prediction).  This makes low-bit high-motion
#: B-macroblocks the expensive ones, decoupling the cycle demand from the
#: compressed size.
IDCT_MC_MODEL = StageDemandModel(
    "IDCT+MC",
    {
        CodingClass.INTRA: ClassCost(
            base=4800.0, per_coded_block=650.0, texture_weight=1400.0,
        ),
        CodingClass.INTER: ClassCost(
            base=2700.0, per_coded_block=400.0, motion_weight=6000.0,
            texture_weight=400.0,
        ),
        CodingClass.SKIPPED: ClassCost(base=900.0, motion_weight=300.0),
    },
)
