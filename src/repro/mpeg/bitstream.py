"""Synthetic MPEG-2 clip generator.

The paper's experiments decode 14 real video clips (CBR 9.78 Mbit/s, main
profile at main level, 25 fps, 720×576 → 1620 macroblocks/frame).  Without
the clips, we generate *synthetic* streams whose macroblock-level statistics
exercise the same analysis machinery:

* GOP structure (IBBP...) in coded order;
* a slowly-varying per-frame *content activity* process (AR(1)) with
  occasional scene cuts that temporarily raise intra coding;
* per-macroblock coding decisions, coded-block patterns, motion and texture
  complexities whose distributions depend on frame type and activity;
* per-macroblock compressed-bit counts normalized so the whole clip is
  exactly CBR at the configured bit rate;
* per-macroblock cycle demands for both stages from
  :mod:`repro.mpeg.demand`;
* the *timing* of macroblocks leaving PE1 — the arrival process of the FIFO
  in front of PE2 — from a two-constraint recursion: a macroblock can start
  VLD only once its bits have arrived (CBR front end) and once PE1 is free.

All randomness flows from a single seed per clip, so every experiment is
exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.events import Event
from repro.core.trace import EventTrace
from repro.mpeg.demand import IDCT_MC_MODEL, VLD_IQ_MODEL, StageDemandModel
from repro.mpeg.gop import GopStructure
from repro.mpeg.macroblock import (
    MACROBLOCKS_PER_FRAME_PAL,
    CodingClass,
    FrameType,
    Macroblock,
)
from repro.util.validation import (
    ValidationError,
    check_in_range,
    check_integer,
    check_positive,
)

__all__ = ["ClipProfile", "ClipData", "SyntheticClip"]

_FRAME_CODE = {FrameType.I: 0, FrameType.P: 1, FrameType.B: 2}
_CLASS_OF_CODE = list(CodingClass)  # 0=intra, 1=inter, 2=skipped
#: Relative frame bit budgets.  At the paper's high 9.78 Mbit/s rate the
#: allocation is much flatter than at distribution rates: B-frames still
#: carry substantial coefficient data.
_BIT_WEIGHT = {FrameType.I: 2.4, FrameType.P: 1.4, FrameType.B: 0.85}
_MIN_BITS_PER_MB = 24.0
#: Fraction of every frame's bit budget that the rate control distributes
#: uniformly regardless of content.  At 9.78 Mbit/s the encoder pads quiet
#: content with quality (finer quantizer) rather than emitting fewer bits,
#: so frame budgets are nearly constant — the dominant smoothing effect.
_UNIFORM_BUDGET_FRACTION = 0.78


@dataclass(frozen=True)
class ClipProfile:
    """Content characteristics of one synthetic clip.

    Parameters
    ----------
    name:
        Label used in reports (e.g. ``"football"``).
    seed:
        RNG seed; fixes the clip completely.
    activity:
        Baseline spatial/temporal activity in [0, 1] — raises coded-block
        counts and bit demand.
    motion:
        Motion intensity in [0, 1] — raises MC cost and inter coding.
    texture:
        Texture richness in [0, 1] — raises coefficient density.
    scene_cut_rate:
        Probability per frame of a scene cut (activity burst + intra
        refresh).
    """

    name: str
    seed: int
    activity: float
    motion: float
    texture: float
    scene_cut_rate: float = 0.02

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValidationError("clip name must be a non-empty string")
        check_integer(self.seed, "seed", minimum=0)
        check_in_range(self.activity, "activity", 0.0, 1.0)
        check_in_range(self.motion, "motion", 0.0, 1.0)
        check_in_range(self.texture, "texture", 0.0, 1.0)
        check_in_range(self.scene_cut_rate, "scene_cut_rate", 0.0, 1.0)


@dataclass
class ClipData:
    """Fully generated clip: flat per-macroblock arrays in decode order."""

    frame_index: np.ndarray        # int, per macroblock
    frame_type_code: np.ndarray    # 0=I 1=P 2=B
    coding_code: np.ndarray        # 0=intra 1=inter 2=skipped
    coded_blocks: np.ndarray       # int 0..6
    motion: np.ndarray             # float [0,1]
    texture: np.ndarray            # float [0,1]
    bits: np.ndarray               # compressed bits per macroblock
    pe1_cycles: np.ndarray         # VLD+IQ demand
    pe2_cycles: np.ndarray         # IDCT+MC demand
    bit_arrival: np.ndarray        # time the macroblock's last bit arrives
    pe1_output: np.ndarray         # time the macroblock leaves PE1 (FIFO arrival)

    @property
    def n_macroblocks(self) -> int:
        """Total number of macroblocks in the clip."""
        return int(self.frame_index.size)


class SyntheticClip:
    """A reproducible synthetic MPEG-2 clip (see module docstring).

    Parameters
    ----------
    profile:
        Content characteristics.
    frames:
        Clip length in frames.
    fps:
        Frame rate (paper: 25).
    bit_rate:
        CBR bit rate in bit/s (paper: 9.78 Mbit/s).
    mb_per_frame:
        Macroblocks per frame (paper: 1620 for 720×576).
    gop:
        GOP structure (default IBBP..., N=12, M=3).
    pe1_frequency:
        Clock of PE1 in Hz; with the default demand model ~150 MHz keeps
        PE1 comfortably ahead of the CBR front end while preserving the
        bursty output the case study exhibits.
    """

    def __init__(
        self,
        profile: ClipProfile,
        *,
        frames: int = 30,
        fps: float = 25.0,
        bit_rate: float = 9.78e6,
        mb_per_frame: int = MACROBLOCKS_PER_FRAME_PAL,
        gop: GopStructure | None = None,
        pe1_frequency: float = 150e6,
        pe1_model: StageDemandModel = VLD_IQ_MODEL,
        pe2_model: StageDemandModel = IDCT_MC_MODEL,
    ):
        if not isinstance(profile, ClipProfile):
            raise ValidationError("profile must be a ClipProfile")
        self.profile = profile
        self.frames = check_integer(frames, "frames", minimum=1)
        self.fps = check_positive(fps, "fps")
        self.bit_rate = check_positive(bit_rate, "bit_rate")
        self.mb_per_frame = check_integer(mb_per_frame, "mb_per_frame", minimum=1)
        self.gop = gop if gop is not None else GopStructure()
        self.pe1_frequency = check_positive(pe1_frequency, "pe1_frequency")
        self.pe1_model = pe1_model
        self.pe2_model = pe2_model
        self._data: ClipData | None = None

    # -- generation --------------------------------------------------------------------
    def generate(self) -> ClipData:
        """Generate (or return the cached) clip data."""
        if self._data is None:
            self._data = self._generate()
        return self._data

    def _generate(self) -> ClipData:
        rng = np.random.default_rng(self.profile.seed)
        ftypes = self.gop.frame_types(self.frames, order="coded")
        activity, scene_motion = self._activity_process(rng)

        n = self.frames * self.mb_per_frame
        frame_index = np.repeat(np.arange(self.frames), self.mb_per_frame)
        frame_code = np.repeat([_FRAME_CODE[ft] for ft in ftypes], self.mb_per_frame)
        act_mb = np.repeat(activity, self.mb_per_frame)
        motion_mb = np.repeat(scene_motion, self.mb_per_frame)

        coding = self._coding_decisions(rng, frame_code, act_mb, motion_mb)
        coded_blocks = self._coded_blocks(rng, coding, act_mb)
        motion = self._motion(rng, coding, motion_mb)
        motion = self._boost_b_frame_motion(rng, frame_code, coding, motion, motion_mb)
        texture = self._texture(rng, act_mb)
        bits = self._bits(rng, ftypes, frame_index, coding, coded_blocks, act_mb)
        # keep every macroblock inside its class's declared bit bound so
        # measured demands stay within the SPI intervals of the profile
        for code, cls in enumerate(_CLASS_OF_CODE):
            cap = self.pe1_model.cost(cls).max_bits
            if cap > 0:
                sel = coding == code
                bits[sel] = np.minimum(bits[sel], cap)

        pe1 = self.pe1_model.cycles_array(coding, coded_blocks, motion, texture, bits)
        pe1 = self.pe1_model.apply_execution_jitter(rng, pe1)
        pe2 = self.pe2_model.cycles_array(coding, coded_blocks, motion, texture, bits)
        pe2 = self.pe2_model.apply_execution_jitter(rng, pe2)

        bit_arrival = np.cumsum(bits) / self.bit_rate
        pe1_output = _front_end_recursion(bit_arrival, pe1 / self.pe1_frequency)

        return ClipData(
            frame_index=frame_index,
            frame_type_code=frame_code,
            coding_code=coding,
            coded_blocks=coded_blocks,
            motion=motion,
            texture=texture,
            bits=bits,
            pe1_cycles=pe1,
            pe2_cycles=pe2,
            bit_arrival=bit_arrival,
            pe1_output=pe1_output,
        )

    def _activity_process(self, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Scene-structured per-frame (activity, motion) in [0.05, 1].

        Content is a sequence of *scenes*: each cut draws a new scene
        intensity around the clip's baseline (wide spread — a sports
        broadcast alternates play and close-ups), plus a short burst right
        at the cut (intra refresh, encoder recovering).  Within a scene an
        AR(1) process adds small fluctuations.  This non-stationarity is
        what lets the simulated backlogs of heavy clips approach the
        analytic bound: sustained heavy scenes, not single frames, fill the
        FIFO.
        """
        base = 0.15 + 0.75 * self.profile.activity
        m_base = self.profile.motion
        scene_level = np.clip(base + rng.normal(0.0, 0.22), 0.05, 1.0)
        scene_motion = np.clip(m_base + rng.normal(0.0, 0.20), 0.02, 1.0)
        act = np.empty(self.frames)
        motion = np.empty(self.frames)
        level = scene_level
        cut_boost = 0.0
        for f in range(self.frames):
            if rng.random() < self.profile.scene_cut_rate:
                scene_level = np.clip(base + rng.normal(0.0, 0.25), 0.05, 1.0)
                scene_motion = np.clip(m_base + rng.normal(0.0, 0.22), 0.02, 1.0)
                cut_boost = 0.35
            level = 0.85 * level + 0.15 * scene_level + rng.normal(0.0, 0.03)
            act[f] = np.clip(level + cut_boost, 0.05, 1.0)
            motion[f] = scene_motion
            cut_boost *= 0.5  # cuts decay over a few frames
        return act, motion

    def _coding_decisions(
        self, rng: np.random.Generator, frame_code: np.ndarray, act: np.ndarray, scene_motion: np.ndarray
    ) -> np.ndarray:
        """Per-macroblock coding class: I-frames all intra; P/B mix intra,
        inter and skipped with activity-dependent proportions."""
        n = frame_code.size
        u = rng.random(n)
        coding = np.full(n, 1, dtype=np.int64)  # inter by default
        is_i = frame_code == 0
        is_p = frame_code == 1
        is_b = frame_code == 2
        coding[is_i] = 0
        p_intra_p = 0.04 + 0.22 * act
        p_skip_p = np.clip(0.36 - 0.14 * act - 0.22 * scene_motion, 0.02, 1.0)
        coding[is_p & (u < p_intra_p)] = 0
        coding[is_p & (u > 1.0 - p_skip_p)] = 2
        p_intra_b = 0.015 + 0.05 * act
        p_skip_b = np.clip(0.42 - 0.10 * act - 0.30 * scene_motion, 0.04, 1.0)
        coding[is_b & (u < p_intra_b)] = 0
        coding[is_b & (u > 1.0 - p_skip_b)] = 2
        return coding

    def _coded_blocks(
        self, rng: np.random.Generator, coding: np.ndarray, act: np.ndarray
    ) -> np.ndarray:
        """Coded-block counts: intra 1..6, inter 0..6, skipped 0."""
        n = coding.size
        # coded-coefficient density: content raises it, but so does the CBR
        # quantizer feedback — quiet material is coded with a finer quantizer
        # at a fixed high bit rate, so more blocks cross the coding threshold
        quality_boost = 0.30 * (1.0 - act)
        density = np.clip(
            0.22 + 0.42 * self.profile.texture * act + quality_boost
            + rng.normal(0, 0.06, n),
            0.02,
            0.98,
        )
        cbc = rng.binomial(6, density)
        cbc = np.where(coding == 0, np.maximum(cbc, 1), cbc)
        inter_density = np.clip(density * 0.7, 0.02, 0.98)
        cbc_inter = rng.binomial(6, inter_density)
        cbc = np.where(coding == 1, cbc_inter, cbc)
        cbc = np.where(coding == 2, 0, cbc)
        return cbc.astype(np.int64)

    def _motion(
        self, rng: np.random.Generator, coding: np.ndarray, scene_motion: np.ndarray
    ) -> np.ndarray:
        """Motion complexity: zero for intra, small for skipped, broad for
        inter around the scene's motion intensity."""
        n = coding.size
        motion = np.zeros(n)
        inter = coding == 1
        skipped = coding == 2
        motion[inter] = scene_motion[inter] * rng.uniform(0.55, 1.15, int(inter.sum()))
        motion[skipped] = scene_motion[skipped] * rng.uniform(0.0, 0.25, int(skipped.sum()))
        return np.clip(motion, 0.0, 1.0)

    def _boost_b_frame_motion(
        self,
        rng: np.random.Generator,
        frame_code: np.ndarray,
        coding: np.ndarray,
        motion: np.ndarray,
        scene_motion: np.ndarray,
    ) -> np.ndarray:
        """B-frame inter macroblocks interpolate two references, roughly
        doubling the MC work — modelled as a floor on their motion
        complexity, scaled by the scene's motion intensity."""
        b_inter = (frame_code == 2) & (coding == 1)
        floor = (0.30 + 0.55 * scene_motion) * rng.uniform(0.9, 1.1, motion.size)
        boosted = np.maximum(motion, floor)
        return np.where(b_inter, np.clip(boosted, 0.0, 1.0), motion)

    def _texture(self, rng: np.random.Generator, act: np.ndarray) -> np.ndarray:
        """Texture complexity per macroblock."""
        n = act.size
        return np.clip(
            self.profile.texture * (0.35 + 0.65 * act) + rng.normal(0, 0.08, n), 0.0, 1.0
        )

    def _bits(
        self,
        rng: np.random.Generator,
        ftypes: list[FrameType],
        frame_index: np.ndarray,
        coding: np.ndarray,
        coded_blocks: np.ndarray,
        act: np.ndarray,
    ) -> np.ndarray:
        """Per-macroblock compressed bits, normalized to exact CBR.

        A two-level model of the encoder's rate control: frame budgets are a
        blend of a uniform share and a content-proportional share (the VBV
        keeps even skip-heavy frames from collapsing to headers only), then
        each frame's budget is split over its macroblocks proportionally to
        their raw coefficient payload.
        """
        # raw weight: headers plus coefficient payload; activity modulates the
        # payload only mildly — at 9.78 Mbit/s the rate control flattens the
        # allocation
        raw = 52.0 + 46.0 * coded_blocks * (0.8 + 0.4 * act)
        raw = raw + np.where(coding == 0, 120.0, 0.0)  # intra overhead
        raw = raw * rng.uniform(0.85, 1.15, raw.size)
        fweights = np.array([_BIT_WEIGHT[ft] for ft in ftypes])
        raw = raw * fweights[frame_index]
        # frame budgets: blend uniform and proportional shares
        frame_raw = np.bincount(frame_index, weights=raw, minlength=self.frames)
        total_budget = self.bit_rate * self.frames / self.fps
        uniform = total_budget / self.frames
        proportional = frame_raw * (total_budget / frame_raw.sum())
        frame_budget = (
            _UNIFORM_BUDGET_FRACTION * uniform
            + (1.0 - _UNIFORM_BUDGET_FRACTION) * proportional
        )
        scale = frame_budget / frame_raw
        bits = raw * scale[frame_index]
        return np.maximum(bits, _MIN_BITS_PER_MB)

    # -- trace / object access ------------------------------------------------------------
    def duration(self) -> float:
        """Nominal clip duration in seconds."""
        return self.frames / self.fps

    def macroblocks(self) -> Iterator[Macroblock]:
        """Object-level view of the generated stream (lazy, decode order)."""
        data = self.generate()
        ftypes = list(FrameType)
        for i in range(data.n_macroblocks):
            yield Macroblock(
                frame_index=int(data.frame_index[i]),
                index_in_frame=int(i % self.mb_per_frame),
                frame_type=ftypes[int(data.frame_type_code[i])],
                coding=_CLASS_OF_CODE[int(data.coding_code[i])],
                coded_blocks=int(data.coded_blocks[i]),
                motion_complexity=float(data.motion[i]),
                texture_complexity=float(data.texture[i]),
                bits=float(data.bits[i]),
            )

    def _type_names(self, data: ClipData) -> list[str]:
        ftypes = list(FrameType)
        return [
            f"{ftypes[int(fc)].value}/{_CLASS_OF_CODE[int(cc)].value}"
            for fc, cc in zip(data.frame_type_code, data.coding_code)
        ]

    def pe1_trace(self) -> EventTrace:
        """Typed, timed, measured-demand trace of the PE1 stage: events are
        macroblocks becoming available at the CBR front end, demands are
        VLD+IQ cycles."""
        data = self.generate()
        names = self._type_names(data)
        events = [
            Event(names[i], timestamp=float(data.bit_arrival[i]), demand=float(data.pe1_cycles[i]))
            for i in range(data.n_macroblocks)
        ]
        return EventTrace(events, self.pe1_model.profile())

    def pe2_trace(self) -> EventTrace:
        """Typed, timed, measured-demand trace of the PE2 stage: events are
        macroblocks arriving in the FIFO (timestamp = PE1 completion),
        demands are IDCT+MC cycles — the trace the paper's Figure 6 curves
        are extracted from."""
        data = self.generate()
        names = self._type_names(data)
        events = [
            Event(names[i], timestamp=float(data.pe1_output[i]), demand=float(data.pe2_cycles[i]))
            for i in range(data.n_macroblocks)
        ]
        return EventTrace(events, self.pe2_model.profile())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SyntheticClip({self.profile.name!r}, frames={self.frames}, "
            f"mb_per_frame={self.mb_per_frame})"
        )


def _front_end_recursion(available: np.ndarray, service_time: np.ndarray) -> np.ndarray:
    """Completion times of a work-conserving single server: item *i* starts
    at ``max(available[i], done[i-1])`` and takes ``service_time[i]``."""
    done = np.empty(available.size)
    prev = 0.0
    for i in range(available.size):
        start = available[i] if available[i] > prev else prev
        prev = start + service_time[i]
        done[i] = prev
    return done
