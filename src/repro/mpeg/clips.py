"""The 14 synthetic video clips of the case study.

The paper evaluates 14 video clips, all encoded at CBR 9.78 Mbit/s, main
profile at main level, 25 fps, 720×576.  We define 14 content presets
spanning the variability axes of the demand model — from a static talking
head to high-motion sports and noisy handheld footage — each pinned to a
fixed seed, so "clip k" means the same stream in every experiment.
"""

from __future__ import annotations

from repro.mpeg.bitstream import ClipProfile, SyntheticClip
from repro.util.validation import check_integer

__all__ = ["CLIP_PROFILES", "standard_clips"]

#: Content presets for the 14 clips.  Activity/motion/texture span the model
#: ranges; scene-cut rates separate edited material (trailer, music video)
#: from continuous takes (interview, surveillance).
CLIP_PROFILES: tuple[ClipProfile, ...] = (
    ClipProfile("talking-head", seed=101, activity=0.18, motion=0.10, texture=0.30, scene_cut_rate=0.005),
    ClipProfile("news-studio", seed=102, activity=0.25, motion=0.15, texture=0.40, scene_cut_rate=0.02),
    ClipProfile("interview", seed=103, activity=0.22, motion=0.12, texture=0.55, scene_cut_rate=0.01),
    ClipProfile("surveillance", seed=104, activity=0.12, motion=0.08, texture=0.45, scene_cut_rate=0.0),
    ClipProfile("drama", seed=105, activity=0.40, motion=0.30, texture=0.60, scene_cut_rate=0.03),
    ClipProfile("documentary", seed=106, activity=0.45, motion=0.35, texture=0.70, scene_cut_rate=0.025),
    ClipProfile("cartoon", seed=107, activity=0.55, motion=0.45, texture=0.25, scene_cut_rate=0.05),
    ClipProfile("music-video", seed=108, activity=0.70, motion=0.65, texture=0.65, scene_cut_rate=0.12),
    ClipProfile("trailer", seed=109, activity=0.75, motion=0.70, texture=0.70, scene_cut_rate=0.15),
    ClipProfile("football", seed=110, activity=0.70, motion=0.88, texture=0.55, scene_cut_rate=0.03),
    ClipProfile("basketball", seed=111, activity=0.72, motion=0.92, texture=0.50, scene_cut_rate=0.04),
    ClipProfile("motor-race", seed=112, activity=0.68, motion=0.97, texture=0.42, scene_cut_rate=0.04),
    ClipProfile("handheld-street", seed=113, activity=0.78, motion=0.80, texture=0.90, scene_cut_rate=0.06),
    ClipProfile("concert-crowd", seed=114, activity=0.95, motion=0.75, texture=0.95, scene_cut_rate=0.08),
)


def standard_clips(*, frames: int = 30, **clip_kwargs) -> list[SyntheticClip]:
    """The 14 standard clips, each *frames* long.

    Extra keyword arguments are forwarded to
    :class:`~repro.mpeg.bitstream.SyntheticClip` (e.g. ``mb_per_frame`` to
    scale experiments down).
    """
    check_integer(frames, "frames", minimum=1)
    return [SyntheticClip(p, frames=frames, **clip_kwargs) for p in CLIP_PROFILES]
