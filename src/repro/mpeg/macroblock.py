"""Macroblock-level model of an MPEG-2 video stream.

The paper's case study decodes MPEG-2 main-profile/main-level CBR video:
each frame is a grid of 16×16 *macroblocks*; each macroblock is decoded by
VLD+IQ on PE1 and IDCT+MC on PE2 (Figure 5).  The execution demand of both
stages varies strongly with the macroblock's coding decisions, which is
exactly the variability workload curves capture.

We model the attributes that drive the demand:

* the *frame type* (I/P/B) of the enclosing picture,
* the *coding class* (intra / inter / skipped),
* the number of *coded blocks* (0–6 of the 4 luma + 2 chroma 8×8 blocks
  carry coefficients; the MPEG-2 coded-block-pattern),
* a *motion complexity* in [0, 1] (half-pel interpolation, field/frame
  prediction mix — drives the MC cost),
* a *texture complexity* in [0, 1] (coefficient density — drives VLD and
  IDCT cost),
* the number of compressed *bits* the macroblock occupies (drives the CBR
  front-end timing on PE1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.util.validation import ValidationError, check_in_range, check_integer, check_non_negative

__all__ = ["FrameType", "CodingClass", "Macroblock", "MACROBLOCKS_PER_FRAME_PAL"]

#: 720×576 (PAL, main level) → 45×36 macroblocks, the paper's 1620 per frame.
MACROBLOCKS_PER_FRAME_PAL = 1620


class FrameType(Enum):
    """MPEG-2 picture coding type."""

    I = "I"
    P = "P"
    B = "B"


class CodingClass(Enum):
    """Macroblock coding decision."""

    INTRA = "intra"
    INTER = "inter"
    SKIPPED = "skipped"


@dataclass(frozen=True)
class Macroblock:
    """One macroblock with the attributes that determine its decode cost."""

    frame_index: int
    index_in_frame: int
    frame_type: FrameType
    coding: CodingClass
    coded_blocks: int
    motion_complexity: float
    texture_complexity: float
    bits: float

    def __post_init__(self) -> None:
        check_integer(self.frame_index, "frame_index", minimum=0)
        check_integer(self.index_in_frame, "index_in_frame", minimum=0)
        if not isinstance(self.frame_type, FrameType):
            raise ValidationError("frame_type must be a FrameType")
        if not isinstance(self.coding, CodingClass):
            raise ValidationError("coding must be a CodingClass")
        check_integer(self.coded_blocks, "coded_blocks", minimum=0)
        if self.coded_blocks > 6:
            raise ValidationError("coded_blocks must be <= 6 (4 luma + 2 chroma)")
        if self.coding is CodingClass.INTRA and self.coded_blocks == 0:
            raise ValidationError("intra macroblocks always carry coefficients")
        if self.coding is CodingClass.SKIPPED and self.coded_blocks != 0:
            raise ValidationError("skipped macroblocks carry no coefficients")
        if self.coding is CodingClass.SKIPPED and self.frame_type is FrameType.I:
            raise ValidationError("I-frames cannot contain skipped macroblocks")
        if self.coding is CodingClass.INTRA and self.motion_complexity != 0.0:
            raise ValidationError("intra macroblocks perform no motion compensation")
        check_in_range(self.motion_complexity, "motion_complexity", 0.0, 1.0)
        check_in_range(self.texture_complexity, "texture_complexity", 0.0, 1.0)
        check_non_negative(self.bits, "bits")

    @property
    def type_name(self) -> str:
        """Event-type label combining frame type and coding class, e.g.
        ``"P/inter"`` — the typed-event alphabet of the §2.1 model."""
        return f"{self.frame_type.value}/{self.coding.value}"
