"""repro — workload curves for tasks with variable execution demand.

A full reproduction of A. Maxiaguine, S. Künzli, L. Thiele, *Workload
Characterization Model for Tasks with Variable Execution Demand*
(DATE 2004), including every substrate the paper's evaluation rests on:

* :mod:`repro.core` — workload curves ``γ^u``/``γ^l`` (Definition 1),
  typed-event traces, analytical constructions, curve algebra;
* :mod:`repro.curves` — Network Calculus: PWL arrival/service curves,
  min-plus algebra, backlog/delay bounds, shapers;
* :mod:`repro.scheduling` — RMS (Lehoczky) / EDF / response-time analysis,
  classic and workload-curve variants, plus a scheduler simulator;
* :mod:`repro.mpeg` — the synthetic MPEG-2 decoder workload substrate;
* :mod:`repro.simulation` — transaction-level two-PE pipeline simulation;
* :mod:`repro.analysis` — eqs. (6)–(10): conversions, backlog, minimum
  frequency, buffer sizing, delay;
* :mod:`repro.experiments` — harnesses regenerating every paper figure
  and table.

Quickstart::

    from repro.core import ExecutionProfile, EventTrace, WorkloadCurvePair
    profile = ExecutionProfile({"a": (2, 4), "b": (1, 3)})
    trace = EventTrace.from_type_names("abab", profile)
    curves = WorkloadCurvePair.from_trace(trace)
    curves.upper(2)   # worst-case cycles of any 2 consecutive activations
"""

__version__ = "1.0.0"

from repro.core import (
    Event,
    ExecutionInterval,
    ExecutionProfile,
    EventTrace,
    WorkloadCurve,
    WorkloadCurvePair,
)

__all__ = [
    "__version__",
    "Event",
    "ExecutionInterval",
    "ExecutionProfile",
    "EventTrace",
    "WorkloadCurve",
    "WorkloadCurvePair",
]
