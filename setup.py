"""Setup shim: metadata lives in pyproject.toml; this file enables legacy
editable installs on environments whose setuptools lacks PEP 660 support."""
from setuptools import setup

setup()
