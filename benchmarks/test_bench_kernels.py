"""Micro-benchmarks of the computational kernels.

These are the pieces whose cost scales with trace length or curve size:
workload-curve extraction, pseudo-inversion, arrival-curve extraction,
min-plus convolution, and the pipeline replay.  Multiple rounds give real
timing statistics (unlike the one-shot experiment regenerations).
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

import repro.perf as perf
from repro.core.workload import WorkloadCurve
from repro.curves.arrival import from_trace_upper, leaky_bucket, periodic_upper
from repro.curves.minplus import convolve, deconvolve
from repro.curves.service import rate_latency
from repro.simulation.pipeline import replay_pipeline
from repro.util.staircase import make_k_grid

RNG = np.random.default_rng(12345)
DEMANDS = RNG.uniform(1_000.0, 15_000.0, 50_000)
TIMESTAMPS = np.cumsum(RNG.exponential(25e-6, 50_000))


def test_bench_workload_curve_extraction(benchmark):
    grid = make_k_grid(DEMANDS.size, dense_limit=1024, growth=1.05)
    curve = benchmark(
        WorkloadCurve.from_demand_array, DEMANDS, "upper", k_values=grid
    )
    assert curve.horizon == DEMANDS.size


def test_bench_pseudo_inverse(benchmark):
    curve = WorkloadCurve.from_demand_array(DEMANDS[:10_000], "upper")
    budgets = np.linspace(0.0, float(curve(curve.horizon)) * 2, 10_000)

    out = benchmark(curve.pseudo_inverse, budgets)
    assert out.shape == budgets.shape


def test_bench_arrival_curve_extraction(benchmark):
    grid = make_k_grid(TIMESTAMPS.size, dense_limit=1024, growth=1.05)
    alpha = benchmark(from_trace_upper, TIMESTAMPS, n_values=grid)
    assert alpha.final_slope > 0


def test_bench_minplus_convolve(benchmark):
    f = leaky_bucket(50.0, 3.0)
    g = rate_latency(8.0, 2.0)
    result = benchmark(convolve, f, g)
    assert result.final_slope == pytest.approx(3.0)


def test_bench_minplus_deconvolve(benchmark):
    f = leaky_bucket(50.0, 3.0)
    g = rate_latency(8.0, 2.0)
    result = benchmark(deconvolve, f, g)
    assert result.final_slope == pytest.approx(3.0)


def test_bench_pipeline_replay(benchmark):
    freq = DEMANDS.mean() / 25e-6 * 1.2
    result = benchmark(replay_pipeline, TIMESTAMPS, DEMANDS, freq)
    assert result.max_backlog >= 1


def _sweep_pairs():
    """A design-space-sweep workload: a handful of distinct curve pairs,
    each re-convolved many times (as a buffer/frequency sweep does)."""
    pairs = []
    for i in range(8):
        alpha = periodic_upper(1.0 + 0.25 * i, jitter=0.4 * i, horizon_periods=24)
        beta = rate_latency(30.0 + 2.0 * i, 0.5 + 0.1 * i)
        pairs.append((alpha, beta))
    return pairs


def _run_sweep(pairs, repeats):
    total = 0.0
    for _ in range(repeats):
        for f, g in pairs:
            total += convolve(f, g)(5.0)
    return total


def test_bench_convolve_sweep_cached(benchmark):
    pairs = _sweep_pairs()
    perf.reset()
    perf.configure(enabled=True)
    total = benchmark(_run_sweep, pairs, 25)
    assert total > 0


def test_bench_convolve_sweep_uncached(benchmark):
    pairs = _sweep_pairs()
    perf.configure(enabled=False)
    try:
        total = benchmark(_run_sweep, pairs, 25)
    finally:
        perf.configure(enabled=True)
    assert total > 0


def test_cache_speedup_on_sweep_workload():
    """Acceptance gate: the memo cache yields >= 3x on repeated-convolution
    sweeps.  Runs as a plain test (no --benchmark-only needed) and dumps the
    kernel instrumentation report to BENCH_kernels.json.
    """
    pairs = _sweep_pairs()
    repeats = 25

    perf.reset()
    perf.configure(enabled=False)
    t0 = time.perf_counter()
    baseline_total = _run_sweep(pairs, repeats)
    cold_seconds = time.perf_counter() - t0

    perf.reset()
    perf.configure(enabled=True)
    t0 = time.perf_counter()
    cached_total = _run_sweep(pairs, repeats)
    warm_seconds = time.perf_counter() - t0

    assert cached_total == baseline_total  # cache must not change results
    stats = perf.cache_stats()
    assert stats["misses"] == len(pairs)
    assert stats["hits"] == len(pairs) * (repeats - 1)

    speedup = cold_seconds / warm_seconds
    report = {
        "sweep": {
            "pairs": len(pairs),
            "repeats": repeats,
            "uncached_seconds": cold_seconds,
            "cached_seconds": warm_seconds,
            "speedup": speedup,
        },
        "perf_report": perf.report(),
    }
    out = Path(__file__).parent / "BENCH_kernels.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    assert speedup >= 3.0, f"cache speedup {speedup:.1f}x below the 3x gate"


def test_bench_scheduler_simulation(benchmark):
    from repro.scheduling import PeriodicTask, TaskSet, simulate

    tasks = TaskSet(
        [
            PeriodicTask("t1", 4.0, 1.0),
            PeriodicTask("t2", 5.0, 1.5),
            PeriodicTask("t3", 10.0, 2.0),
            PeriodicTask("t4", 20.0, 2.0),
        ]
    )
    result = benchmark(simulate, tasks, 2000.0)
    assert result.deadline_misses() == 0
