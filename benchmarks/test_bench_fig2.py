"""E2 — regenerate Figure 2 (polling-task workload curves)."""

import numpy as np

from repro.experiments import fig2_polling


def test_bench_fig2(benchmark):
    result = benchmark(fig2_polling.run, k_max=24)
    u = np.array(result.data["gamma_u"])
    w = np.array(result.data["wcet_line"])
    assert np.all(u <= w + 1e-9)
    assert result.data["gain_at_12"] > 0.3
    print("\n" + str(result))
