"""Benchmark fixtures.

The full-fidelity case-study context (14 clips × 72 frames, the paper's
scale) is built once per benchmark session and shared by every case-study
benchmark; building it is itself benchmarked by
``test_bench_prepare_case_study``.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import case_study_context

#: Full-fidelity settings used by all case-study benchmarks.
FRAMES = 72


@pytest.fixture(scope="session")
def full_context():
    """The paper-scale case-study context (built once, ~30 s)."""
    return case_study_context(frames=FRAMES)
