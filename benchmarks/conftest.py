"""Benchmark fixtures and the trajectory-store session hook.

The full-fidelity case-study context (14 clips × 72 frames, the paper's
scale) is built once per benchmark session and shared by every case-study
benchmark; building it is itself benchmarked by
``test_bench_prepare_case_study``.

Every *successful* benchmark session additionally appends one record to
the append-only trajectory store (``benchmarks/TRAJECTORY.jsonl``): the
flattened ``BENCH_*.json`` metrics (every report in the directory —
``BENCH_sim.json``'s chain-replay and bulk-load speedups fold in like
the rest), which backend produced each section, and an environment
fingerprint.  ``scripts/check_trajectory.py`` gates
the latest record against the rolling median, so the perf history across
PRs is both durable and enforced (see docs/observability.md).  Set
``REPRO_NO_TRAJECTORY=1`` to suppress the append (used by tests that run
benchmark files in throwaway checkouts).
"""

from __future__ import annotations

import os
from datetime import datetime, timezone

import pytest

from repro.experiments.common import case_study_context
from repro.obs import trajectory

#: Full-fidelity settings used by all case-study benchmarks.
FRAMES = 72


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    """Append this session's BENCH numbers to the trajectory store.

    Skipped on failed sessions (a half-written BENCH file must not become
    a baseline), on collect-only runs, and when ``REPRO_NO_TRAJECTORY``
    is set.
    """
    if exitstatus != 0 or session.config.option.collectonly:
        return
    if os.environ.get("REPRO_NO_TRAJECTORY"):
        return
    bench_dir = os.path.dirname(os.path.abspath(__file__))
    record = trajectory.build_record(
        bench_dir,
        run_id=os.environ.get("GITHUB_RUN_ID"),
        timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
    )
    if not record["metrics"]:
        return
    trajectory.append_record(
        record, os.path.join(bench_dir, "TRAJECTORY.jsonl")
    )


@pytest.fixture(scope="session")
def full_context():
    """The paper-scale case-study context (built once, ~30 s)."""
    return case_study_context(frames=FRAMES)
