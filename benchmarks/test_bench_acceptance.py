"""A5 — acceptance-ratio sweep benchmark."""

from repro.experiments import acceptance_table


def test_bench_acceptance_table(benchmark):
    result = benchmark.pedantic(
        lambda: acceptance_table.run(sets_per_point=40), rounds=1, iterations=1
    )
    rows = result.data["rows"]
    assert all(r["curves_acceptance"] >= r["classic_acceptance"] for r in rows)
    # the population-level gain: a visible acceptance gap past U = 1
    gaps = [
        r["curves_acceptance"] - r["classic_acceptance"]
        for r in rows
        if r["utilization"] > 1.0
    ]
    assert max(gaps) > 0.3
    print("\n" + str(result))
