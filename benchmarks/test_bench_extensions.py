"""A3/A4 extension experiments and the chain analysis as benchmarks."""

import numpy as np

from benchmarks.conftest import FRAMES
from repro.experiments import power_table, shaper_table


def test_bench_power_table(benchmark, full_context):
    result = benchmark.pedantic(
        lambda: power_table.run(frames=FRAMES), rounds=1, iterations=1
    )
    rows = {r["exponent"]: r["power_saving"] for r in result.data["rows"]}
    assert rows[3.0] > rows[2.0] > rows[1.0] > 0.4
    print("\n" + str(result))


def test_bench_shaper_table(benchmark, full_context):
    result = benchmark.pedantic(
        lambda: shaper_table.run(frames=FRAMES), rounds=1, iterations=1
    )
    rows = result.data["rows"]
    freqs = [r["f_gamma"] for r in rows]
    assert all(a >= b - 1e-6 for a, b in zip(freqs, freqs[1:]))
    print("\n" + str(result))


def test_bench_chain_analysis(benchmark, full_context):
    """Compositional two-node analysis on the full-fidelity curves."""
    from repro.analysis.chain import ProcessingNode, StreamingChain
    from repro.curves.service import full_processor

    ctx = full_context
    chain = StreamingChain(
        [
            ProcessingNode(
                "PE2", full_processor(ctx.f_gamma.frequency * 1.05), ctx.gamma_u
            )
        ]
    )
    report = benchmark(chain.analyze, ctx.alpha)
    assert report.nodes[0].backlog_events <= ctx.buffer_size * 4
    assert report.nodes[0].utilization < 1.0


def test_bench_ladder_table(benchmark, full_context):
    from repro.experiments import ladder_table

    result = benchmark.pedantic(
        lambda: ladder_table.run(frames=FRAMES), rounds=1, iterations=1
    )
    f_mins = [r["f_min"] for r in result.data["rows"]]
    assert f_mins[0] >= f_mins[1] >= f_mins[2]
    print("\n" + str(result))
