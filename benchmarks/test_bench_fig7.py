"""E6 — regenerate Figure 7 (simulated FIFO backlogs at F_gamma_min)."""

from benchmarks.conftest import FRAMES
from repro.experiments import fig7_backlogs


def test_bench_fig7(benchmark, full_context):
    result = benchmark.pedantic(
        lambda: fig7_backlogs.run(frames=FRAMES), rounds=1, iterations=1
    )
    norms = result.data["normalized_backlogs"]
    assert len(norms) == 14
    # the guarantee: no clip may overflow the buffer at F_gamma_min
    assert not result.data["any_overflow"]
    assert max(norms) <= 1.0
    # the bound is exercised: busy clips use a visible share of the buffer
    # while quiet clips stay near zero (the Figure 7 spread)
    assert max(norms) > 0.05
    assert min(norms) < 0.05
    print("\n" + str(result))
