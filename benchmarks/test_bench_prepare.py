"""Substrate benchmark: building the full case-study context.

Generates 14 synthetic clips at the paper's scale (72 frames, 1620
macroblocks/frame), extracts per-clip workload and arrival curves, forms
the cross-clip envelopes and solves both frequency bounds — the complete
§3.2 preparation pipeline.
"""

from benchmarks.conftest import FRAMES
from repro.experiments.common import _CONTEXT_CACHE, case_study_context


def test_bench_prepare_case_study(benchmark):
    def build():
        # measure a cold build: clear only this configuration's cache entry
        for key in list(_CONTEXT_CACHE):
            if key[0] == FRAMES:
                del _CONTEXT_CACHE[key]
        return case_study_context(frames=FRAMES)

    ctx = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(ctx.clips) == 14
    assert ctx.f_gamma.frequency < ctx.f_wcet.frequency
    print(
        f"\ncontext: {ctx.frames} frames/clip, wcet={ctx.wcet:.0f} cycles, "
        f"F_gamma={ctx.f_gamma.frequency / 1e6:.1f} MHz, "
        f"F_w={ctx.f_wcet.frequency / 1e6:.1f} MHz"
    )
