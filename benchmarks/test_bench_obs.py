"""Acceptance gates for the observability layer (profiler + trajectory).

Load-bearing properties gated in CI:

* **profiler overhead < 5 %** on the BENCH_minplus general-pair case:
  tracing + metrics must stay cheap enough to leave on for any run worth
  profiling — the whole premise of the continuous observatory is that
  observation does not distort what it observes;
* **trajectory round-trip**: two consecutive benchmark "runs" append two
  records to a store and the rolling-baseline gate passes on them, while
  a synthetic 2x regression fails it (exit-status semantics of
  ``scripts/check_trajectory.py`` are covered in
  ``tests/obs/test_trajectory.py``).

Both gates merge their measurements into ``benchmarks/BENCH_obs.json``.
"""

import json
import time
from pathlib import Path

import numpy as np

import repro.perf as perf
from repro.curves.curve import PiecewiseLinearCurve
from repro.curves.minplus import convolve_generic
from repro.obs import registry, trajectory, tracer

BENCH_PATH = Path(__file__).parent / "BENCH_obs.json"

#: General-pair size of the overhead gate: the same regime as the
#: BENCH_minplus general-pair case but sized so one call is ~1 s, not
#: ~24 s — three timed pairs keep the gate's wall clock reasonable while
#: the per-call work is still far above tracing granularity.
SEGMENTS = 80


def _merge_report(section: str, payload: dict) -> None:
    report = {}
    if BENCH_PATH.exists():
        report = json.loads(BENCH_PATH.read_text())
    report[section] = payload
    BENCH_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def _random_general(rng: np.random.Generator, n: int) -> PiecewiseLinearCurve:
    gaps = rng.uniform(0.5, 2.0, n - 1)
    xs = np.concatenate(([0.0], np.cumsum(gaps)))
    ss = rng.uniform(0.1, 10.0, n)
    ys = np.cumsum(np.concatenate(([0.0], np.diff(xs) * ss[:-1])))
    return PiecewiseLinearCurve(xs, ys, ss)


def _time_generic_pair(f, g, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        convolve_generic(f, g)
        best = min(best, time.perf_counter() - t0)
    return best


def test_profiler_overhead_gate():
    """Full observation (tracing enabled + metrics) must cost < 5 % on
    the general-pair generic kernel — the observatory must not distort
    the workload it characterizes."""
    rng = np.random.default_rng(424242)
    f = _random_general(rng, SEGMENTS)
    g = _random_general(rng, SEGMENTS)
    assert not (f.is_convex or f.is_concave)

    perf.configure(enabled=False)  # time the kernel, not the memo cache
    was_enabled = tracer.enabled
    try:
        tracer.disable()
        _time_generic_pair(f, g, repeats=1)  # warm numpy/allocator
        off_seconds = _time_generic_pair(f, g)

        tracer.enable()
        tracer.reset()
        on_seconds = _time_generic_pair(f, g)
        span_count = len(tracer.records())
        tracer.disable()
        tracer.reset()
    finally:
        if was_enabled:
            tracer.enable()
        perf.configure(enabled=True)

    assert span_count > 0, "tracing was on but the kernel recorded no spans"
    overhead = on_seconds / off_seconds - 1.0
    _merge_report(
        "profiler_overhead",
        {
            "segments": SEGMENTS,
            "untraced_seconds": off_seconds,
            "traced_seconds": on_seconds,
            "overhead_fraction": overhead,
            "spans_per_call": span_count // 3 or span_count,
        },
    )
    assert overhead < 0.05, (
        f"tracing overhead {overhead:.1%} breaches the 5% gate "
        f"({off_seconds:.3f}s -> {on_seconds:.3f}s)"
    )


def test_trajectory_two_runs_gate(tmp_path):
    """Two consecutive runs append two records and the rolling gate
    passes; a synthetic 2x regression on a gated ratio fails it."""
    store = tmp_path / "TRAJECTORY.jsonl"
    bench_dir = tmp_path / "bench"
    bench_dir.mkdir()
    (bench_dir / "BENCH_demo.json").write_text(
        json.dumps({"pair": {"backend": "soa", "speedup": 8.0, "seconds": 1.0}})
    )

    for run in ("one", "two"):
        record = trajectory.build_record(bench_dir, run_id=run)
        trajectory.append_record(record, store)
    records = trajectory.read_records(store)
    assert len(records) == 2
    assert [r["run_id"] for r in records] == ["one", "two"]
    assert records[-1]["backends"] == {"demo.pair": "soa"}
    verdict = trajectory.check_records(records)
    assert verdict["ok"] and verdict["checked"] == 1

    regressed = json.loads(json.dumps(records[-1]))
    regressed["metrics"]["demo.pair.speedup"] /= 2.0  # the 2x regression
    verdict = trajectory.check_records(records + [regressed])
    assert not verdict["ok"]
    assert verdict["violations"][0]["metric"] == "demo.pair.speedup"

    _merge_report(
        "trajectory_roundtrip",
        {
            "records": len(records),
            "gated_metrics": 1,
            "regression_detected": True,
        },
    )


def test_report_generation_fast():
    """Building a profile report over a 10k-span trace stays sub-second —
    ``obs report`` must be usable in the inner dev loop."""
    from repro.obs import profile_report

    rng = np.random.default_rng(7)
    records = []
    for i in range(10_000):
        records.append(
            {
                "name": f"kernel.{i % 7}",
                "ts": float(i) * 1e-4,
                "dur": float(rng.uniform(1e-5, 1e-3)),
                "id": i,
                "parent": None if i % 5 == 0 else i - 1,
                "thread": 1,
                "attrs": {"backend": ("numpy", "soa")[i % 2]},
            }
        )
    snapshot = registry.snapshot()
    t0 = time.perf_counter()
    report = profile_report(records, snapshot)
    seconds = time.perf_counter() - t0
    assert report["trace"]["span_count"] == 10_000
    _merge_report(
        "report_generation",
        {"spans": 10_000, "seconds": seconds},
    )
    assert seconds < 1.0, f"profile_report took {seconds:.2f}s on 10k spans"
