"""Benchmark gates for the analysis service layer.

Three acceptance gates, all written to ``BENCH_service.json``:

* **warm evaluator pool** — answering a frequency query against a warm
  :class:`~repro.service.evalpool.EvaluatorPool` entry must be at least
  3x faster than the cold path (context build + candidate-window
  hoisting). This is the economics of the service: the first query of a
  parameterization pays, every later one rides.
* **sharded cache throughput** — concurrent writers into an
  eviction-pressured 8-shard :class:`~repro.perf.diskcache.DiskCache`
  must sustain at least 2x the put throughput of the single-directory
  layout, because writes and eviction scans serialize per shard instead
  of globally.
* **admission control under overload** — a synthetic request storm past
  an :class:`~repro.service.daemon.AnalysisService` with eq. (8)
  admission must shed load (nonzero rejections, visible in the
  ``service.rejected`` counters and the ``obs report`` service section)
  while a feasible trickle is fully accepted.
"""

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.obs.metrics import registry
from repro.obs.profile import service_breakdown
from repro.perf.diskcache import DiskCache
from repro.service.admission import AdmissionController
from repro.service.daemon import AnalysisService

BENCH_PATH = Path(__file__).parent / "BENCH_service.json"

#: Warm-pool gate shape: cold rebuilds vs warm queries of one sweep point.
COLD_BUILDS = 3
WARM_QUERIES = 25
WARM_SPEEDUP_GATE = 3.0

#: Sharded-cache gate shape: concurrent writers under eviction pressure.
CACHE_THREADS = 4
PUTS_PER_THREAD = 250
PAYLOAD_BYTES = 4096
CACHE_SHARDS = 8
SHARD_SPEEDUP_GATE = 2.0

#: Admission gate shape: offered load far past the configured capacity.
STORM_REQUESTS = 120


def _merge_report(section: str, payload: dict) -> None:
    report = {}
    if BENCH_PATH.exists():
        report = json.loads(BENCH_PATH.read_text())
    report[section] = payload
    BENCH_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def test_warm_evaluator_pool_speedup_gate():
    """Warm pool hits must be >= 3x faster than cold evaluator builds."""
    from repro.experiments import common

    params = dict(frames=12, dense_limit=512, growth=1.05)
    frequency = 500e6

    def query():
        evaluator = common.sweep_frequency_evaluator(**params)
        return evaluator.verify(810, frequency)

    def go_cold():
        # drop both warmth levels: the evaluator pool and the context cache
        common._evaluator_pool().clear()
        common._CONTEXT_CACHE.clear()

    # -- cold: every query rebuilds context + evaluator --------------------
    cold_results = []
    t0 = time.perf_counter()
    for _ in range(COLD_BUILDS):
        go_cold()
        cold_results.append(query())
    cold_seconds = (time.perf_counter() - t0) / COLD_BUILDS

    # -- warm: every query hits the resident evaluator ---------------------
    query()  # populate
    warm_results = []
    t0 = time.perf_counter()
    for _ in range(WARM_QUERIES):
        warm_results.append(query())
    warm_seconds = (time.perf_counter() - t0) / WARM_QUERIES

    assert all(r == cold_results[0] for r in cold_results + warm_results)
    speedup = cold_seconds / warm_seconds
    stats = common._evaluator_pool().stats()
    assert stats["hits"] >= WARM_QUERIES

    _merge_report(
        "warm_evaluator",
        {
            "cold_builds": COLD_BUILDS,
            "warm_queries": WARM_QUERIES,
            "cold_seconds_per_query": cold_seconds,
            "warm_seconds_per_query": warm_seconds,
            "speedup": speedup,
            "pool_hits": stats["hits"],
            "pool_misses": stats["misses"],
        },
    )
    print(
        f"warm evaluator: cold {cold_seconds * 1e3:.1f} ms/query, "
        f"warm {warm_seconds * 1e6:.1f} us/query ({speedup:.1f}x)"
    )
    assert speedup >= WARM_SPEEDUP_GATE, (
        f"warm evaluator pool only {speedup:.2f}x faster than cold builds "
        f"(gate: {WARM_SPEEDUP_GATE}x)"
    )


def _hammer(cache: DiskCache, salt: str) -> float:
    """Concurrent put storm; returns sustained puts/second."""
    payload = "x" * PAYLOAD_BYTES
    barrier = threading.Barrier(CACHE_THREADS)

    def writer(tid: int) -> None:
        barrier.wait()
        for i in range(PUTS_PER_THREAD):
            cache.put((salt, tid, i), payload)

    threads = [
        threading.Thread(target=writer, args=(tid,)) for tid in range(CACHE_THREADS)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    return (CACHE_THREADS * PUTS_PER_THREAD) / elapsed


def test_sharded_cache_concurrent_throughput_gate(tmp_path):
    """8-shard concurrent put throughput must be >= 2x the flat layout.

    The cap is sized so the store runs under continuous eviction
    pressure — the regime where the flat layout serializes every writer
    behind one lock and one whole-store eviction scan.
    """
    max_bytes = CACHE_THREADS * PUTS_PER_THREAD * PAYLOAD_BYTES // 8

    flat = DiskCache(tmp_path / "flat", max_bytes=max_bytes, shards=1)
    flat_rate = _hammer(flat, "flat")

    sharded = DiskCache(
        tmp_path / "sharded", max_bytes=max_bytes, shards=CACHE_SHARDS
    )
    sharded_rate = _hammer(sharded, "sharded")

    assert flat.stats()["evictions"] > 0, "gate must run under eviction pressure"
    assert sharded.stats()["evictions"] > 0
    assert sharded.stats()["errors"] == 0

    speedup = sharded_rate / flat_rate
    _merge_report(
        "sharded_cache",
        {
            "threads": CACHE_THREADS,
            "puts_per_thread": PUTS_PER_THREAD,
            "payload_bytes": PAYLOAD_BYTES,
            "shards": CACHE_SHARDS,
            "flat_puts_per_second": flat_rate,
            "sharded_puts_per_second": sharded_rate,
            "flat_evictions": flat.stats()["evictions"],
            "sharded_evictions": sharded.stats()["evictions"],
            "speedup": speedup,
        },
    )
    print(
        f"sharded cache: flat {flat_rate:.0f} puts/s, "
        f"sharded {sharded_rate:.0f} puts/s ({speedup:.1f}x)"
    )
    assert speedup >= SHARD_SPEEDUP_GATE, (
        f"sharded cache only {speedup:.2f}x the flat layout "
        f"(gate: {SHARD_SPEEDUP_GATE}x)"
    )


def test_admission_control_sheds_overload_gate():
    """Eq. (8) admission must shed a synthetic storm and pass a trickle."""
    registry.reset("service.")

    async def storm() -> dict:
        admission = AdmissionController(
            capacity=50.0, queue_bound=4, min_history=8, refresh_every=4
        )
        service = AnalysisService(
            workers=2,
            queue_limit=8,
            admission=admission,
            executor=ThreadPoolExecutor(2),
        )
        await service.start()
        outcomes = {"rejected": 0, "accepted": 0}
        for _ in range(STORM_REQUESTS):
            job = await service.submit("sleep", {"seconds": 0.05})
            if job.state == "rejected":
                outcomes["rejected"] += 1
            else:
                outcomes["accepted"] += 1
        stats = service.stats()["admission"]
        await service.close()
        outcomes["required"] = stats["required"]
        outcomes["capacity"] = stats["capacity"]
        outcomes["feasible"] = stats["feasible"]
        return outcomes

    outcome = asyncio.run(storm())
    assert outcome["rejected"] > 0, "storm past capacity must shed load"
    assert outcome["required"] > outcome["capacity"]
    assert not outcome["feasible"]

    # the decisions are visible exactly where obs report reads them
    breakdown = service_breakdown(registry.snapshot())
    assert breakdown["rejected"].get("infeasible", 0) == outcome["rejected"]

    async def trickle() -> int:
        admission = AdmissionController(
            capacity=100_000.0, queue_bound=8, min_history=8, refresh_every=4
        )
        service = AnalysisService(
            workers=2,
            queue_limit=64,
            admission=admission,
            executor=ThreadPoolExecutor(2),
        )
        await service.start()
        accepted = 0
        for _ in range(30):
            job = await service.submit("sleep", {"seconds": 0.001})
            if job.state != "rejected":
                accepted += 1
            await asyncio.sleep(0.01)
        await service.drain()
        return accepted

    accepted = asyncio.run(trickle())
    assert accepted == 30, "feasible load must pass untouched"

    _merge_report(
        "admission_control",
        {
            "storm_requests": STORM_REQUESTS,
            "storm_accepted": outcome["accepted"],
            "storm_rejected": outcome["rejected"],
            "required_capacity": outcome["required"],
            "configured_capacity": outcome["capacity"],
            "trickle_requests": 30,
            "trickle_accepted": accepted,
        },
    )
    print(
        f"admission: storm {outcome['rejected']}/{STORM_REQUESTS} shed "
        f"(required {outcome['required']:.0f} vs capacity "
        f"{outcome['capacity']:.0f} units/s), trickle {accepted}/30 accepted"
    )
