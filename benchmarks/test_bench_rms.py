"""E3 — regenerate the §3.1 RMS comparison table."""

from repro.experiments import rms_table


def test_bench_rms_table(benchmark):
    result = benchmark(rms_table.run)
    rows = result.data["rows"]
    # the paper's eq. (5): the curve test is never more pessimistic
    assert all(r["L_curves"] <= r["L_classic"] + 1e-12 for r in rows)
    # and strictly gains schedulability on variable-demand sets
    assert any(r["curves_schedulable"] and not r["classic_schedulable"] for r in rows)
    # scheduler simulation confirms every admitted set
    assert all(r["sim_misses"] == 0 for r in rows if r["curves_schedulable"])
    print("\n" + str(result))
