"""A1/A2 — ablations: buffer-size sweep and demand-variability sweep."""

from benchmarks.conftest import FRAMES
from repro.experiments import ablation_buffer, ablation_variability


def test_bench_ablation_buffer(benchmark, full_context):
    result = benchmark.pedantic(
        lambda: ablation_buffer.run(frames=FRAMES), rounds=1, iterations=1
    )
    rows = result.data["rows"]
    # larger buffer -> lower (or equal) frequency, both methods
    f_gammas = [r["f_gamma"] for r in rows]
    f_wcets = [r["f_wcet"] for r in rows]
    assert all(a >= b - 1e-6 for a, b in zip(f_gammas, f_gammas[1:]))
    assert all(a >= b - 1e-6 for a, b in zip(f_wcets, f_wcets[1:]))
    assert all(r["f_gamma"] <= r["f_wcet"] + 1e-6 for r in rows)
    print("\n" + str(result))


def test_bench_ablation_variability(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_variability.run(frames=24), rounds=1, iterations=1
    )
    rows = result.data["rows"]
    # more variability -> higher WCET ratio -> larger saving
    assert rows[-1]["wcet_ratio"] > rows[0]["wcet_ratio"]
    assert rows[-1]["savings"] > rows[0]["savings"]
    print("\n" + str(result))
