"""E1 — regenerate Figure 1 (typed sequence, windowed demand sums)."""

from repro.experiments import fig1_sequence


def test_bench_fig1(benchmark):
    result = benchmark(fig1_sequence.run)
    assert result.data["gamma_b_3_4"] == 5.0
    assert result.data["gamma_w_3_4"] == 13.0
    print("\n" + str(result))
