"""Benchmark suite: one module per paper figure/table plus micro-benchmarks
of the core kernels.  Run with ``pytest benchmarks/ --benchmark-only``."""
