"""E8 — Figure 4: event/cycle conversion composition."""

from benchmarks.conftest import FRAMES
from repro.experiments import conversion_demo


def test_bench_conversion(benchmark, full_context):
    result = benchmark.pedantic(
        lambda: conversion_demo.run(frames=FRAMES), rounds=1, iterations=1
    )
    assert result.data["galois_ok"]
    assert result.data["tightening_at_1s"] > 0.2
    print("\n" + str(result))
