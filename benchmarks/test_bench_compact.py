"""Acceptance gates for segment-budgeted compaction and bisection sweeps.

Two performance claims of the compaction layer are load-bearing enough to
gate in CI, with measurements merged into ``benchmarks/BENCH_compact.json``:

* a >= 6-stage min-plus convolution chain over general (staircase-ish)
  service curves must run >= 10x faster with a 64-segment budget than
  unbudgeted — budgets exist precisely to stop the multiplicative
  breakpoint growth that drags ever-larger operands through the generic
  O(n·m) kernel — while staying conservative (pointwise <= the exact
  result, ``direction="lower"``);
* the monotone feasibility bisection must agree with a dense frequency
  scan to 0.1% while spending >= 5x fewer eq. (8) evaluations, counted
  through the ``frequency.verify_calls`` obs counter.
"""

import json
import time
from pathlib import Path

import numpy as np

import repro.perf as perf
from repro.analysis.frequency import VERIFY_CALLS_METRIC, FrequencySweepEvaluator
from repro.core.workload import WorkloadCurve
from repro.curves.arrival import periodic_upper
from repro.curves.curve import PiecewiseLinearCurve
from repro.obs.metrics import registry
from repro.perf.batch import convolve_reduce

BENCH_PATH = Path(__file__).parent / "BENCH_compact.json"

STAGES = 6
SEGMENTS = 110
BUDGET = 64


def _merge_report(section: str, payload: dict) -> None:
    report = {}
    if BENCH_PATH.exists():
        report = json.loads(BENCH_PATH.read_text())
    report[section] = payload
    BENCH_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def _random_general(rng: np.random.Generator, n: int) -> PiecewiseLinearCurve:
    """A staircase-with-drifts service curve that classifies 'general', so
    every pairwise convolution takes the generic O(n·m) kernel."""
    gaps = rng.uniform(0.5, 2.0, n - 1)
    xs = np.concatenate(([0.0], np.cumsum(gaps)))
    ss = rng.uniform(0.0, 3.0, n)
    jumps = rng.uniform(0.0, 2.0, n)
    jumps[0] = 0.0
    ys = np.cumsum(np.concatenate(([0.0], np.diff(xs) * ss[:-1] + jumps[1:])))
    return PiecewiseLinearCurve(xs, ys, ss)


def test_budgeted_chain_speedup_gate():
    """A 64-segment budget must make a 6-stage general-curve convolution
    chain >= 10x faster than the unbudgeted exact reduction, and the
    budgeted result must stay a valid (pointwise <=) service bound."""
    rng = np.random.default_rng(20240406)
    betas = [_random_general(rng, SEGMENTS) for _ in range(STAGES)]
    assert all(b.shape == "general" for b in betas)

    perf.configure(enabled=False)  # time the kernels, not the memo cache
    try:
        t0 = time.perf_counter()
        exact = convolve_reduce(betas)
        exact_seconds = time.perf_counter() - t0

        budgeted_seconds = np.inf
        for _ in range(2):
            t0 = time.perf_counter()
            budgeted = convolve_reduce(
                betas, max_segments=BUDGET, direction="lower"
            )
            budgeted_seconds = min(budgeted_seconds, time.perf_counter() - t0)
    finally:
        perf.configure(enabled=True)

    assert budgeted.n_segments <= BUDGET
    pts = np.linspace(0.0, float(exact.breakpoints[-1]) * 1.5, 4_096)
    gap = exact(pts) - budgeted(pts)
    scale = max(1.0, float(np.max(np.abs(exact(pts)))))
    assert np.all(gap >= -1e-9 * scale), "budgeted chain result above the exact one"

    speedup = exact_seconds / budgeted_seconds
    _merge_report(
        "budgeted_chain",
        {
            "stages": STAGES,
            "segments_per_stage": SEGMENTS,
            "budget": BUDGET,
            "exact_segments": int(exact.n_segments),
            "budgeted_segments": int(budgeted.n_segments),
            "exact_seconds": exact_seconds,
            "budgeted_seconds": budgeted_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= 10.0, f"budgeted chain {speedup:.1f}x below the 10x gate"


def test_bisection_vs_dense_eval_count_gate():
    """The bisection must match a dense scan to 0.1% of F_min while
    spending >= 5x fewer eq. (8) evaluations (obs-counted)."""
    rng = np.random.default_rng(7)
    alpha = periodic_upper(1.0, jitter=3.0, horizon_periods=96)
    gamma_u = WorkloadCurve.from_demand_array(rng.uniform(1.0, 8.0, 64), "upper")
    ev = FrequencySweepEvaluator(alpha, gamma_u)
    buffer_size = 6
    counter = registry.counter(VERIFY_CALLS_METRIC)

    before = counter.value
    bisected = ev.bisect(buffer_size, rel_tol=1e-5)
    bisect_evals = counter.value - before

    # sweep a sane range — [0, 2x the closed-form bound] — with a grid
    # fine enough (~0.05% steps) that the dense answer is itself within
    # 0.1% of F_min: the comparison measures search strategies, not grid
    # quantization (the default demand/min-delta bracket is ~1000x F_min)
    f_hi = 2.0 * ev.bound_curves(buffer_size).frequency
    before = counter.value
    dense = ev.dense(buffer_size, n_grid=4_096, f_hi=f_hi)
    dense_evals = counter.value - before

    rel_gap = abs(bisected.frequency - dense.frequency) / dense.frequency
    _merge_report(
        "bisection_vs_dense",
        {
            "buffer_size": buffer_size,
            "bisect_evals": int(bisect_evals),
            "dense_evals": int(dense_evals),
            "eval_ratio": dense_evals / bisect_evals,
            "bisect_frequency": bisected.frequency,
            "dense_frequency": dense.frequency,
            "rel_gap": rel_gap,
        },
    )
    assert rel_gap <= 1e-3, f"bisection {rel_gap:.2%} away from the dense scan"
    assert dense_evals >= 5 * bisect_evals, (
        f"bisection spent {bisect_evals} evals vs {dense_evals} dense — "
        "below the 5x gate"
    )
