"""Acceptance gates for the structure-aware min-plus layer.

Load-bearing properties gated in CI:

* the convex ⊗ convex slope-merge fast path must beat the generic
  per-interval envelope kernel by >= 10x on large (>= 200-segment)
  operands — that is the regime where design-space sweeps spend their
  time, and a dispatch regression would silently fall back to the
  O(n·m) kernel;
* the streaming workload extraction must process a million-event demand
  trace in bounded memory — a small multiple of the chunk size, not of
  the trace — while returning bit-identical envelopes to the one-shot
  kernel;
* the batched SoA backend must beat the numpy reference kernel by >= 5x
  on a 200-segment *general* pair (no fast path applies — the regime the
  backend exists for) and by >= 2.5x on a ``convolve_many`` batch of 32
  distinct general pairs, with envelope-identical results.  The report
  records which backend produced the numbers.

All gates run as plain tests (no ``--benchmark-only`` needed) and merge
their measurements into ``benchmarks/BENCH_minplus.json``.
"""

import json
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

import repro.perf as perf
from repro.curves.backends import get_backend, use_backend
from repro.curves.curve import PiecewiseLinearCurve
from repro.curves.minplus import convolve, convolve_generic
from repro.perf.batch import convolve_many
from repro.util.staircase import (
    cumulative_envelope_minmax,
    make_k_grid,
    streaming_envelope_minmax,
)

BENCH_PATH = Path(__file__).parent / "BENCH_minplus.json"

SEGMENTS = 200
STREAM_EVENTS = 1_000_000
STREAM_CHUNK = 8_192


def _merge_report(section: str, payload: dict) -> None:
    report = {}
    if BENCH_PATH.exists():
        report = json.loads(BENCH_PATH.read_text())
    report[section] = payload
    BENCH_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def _random_convex(rng: np.random.Generator, n: int) -> PiecewiseLinearCurve:
    gaps = rng.uniform(0.5, 2.0, n - 1)
    xs = np.concatenate(([0.0], np.cumsum(gaps)))
    ss = np.sort(rng.uniform(0.1, 10.0, n))
    ys = np.cumsum(np.concatenate(([0.0], np.diff(xs) * ss[:-1])))
    return PiecewiseLinearCurve(xs, ys, ss)


def _stream_chunks():
    rng = np.random.default_rng(42)
    for start in range(0, STREAM_EVENTS, STREAM_CHUNK):
        yield rng.uniform(1e3, 1.5e4, min(STREAM_CHUNK, STREAM_EVENTS - start))


def test_convex_fast_path_speedup_gate():
    """The slope merge must be >= 10x faster than the generic kernel on
    200-segment convex operands, with pointwise-identical results."""
    rng = np.random.default_rng(12345)
    f = _random_convex(rng, SEGMENTS)
    g = _random_convex(rng, SEGMENTS)
    assert f.is_convex and g.is_convex

    perf.configure(enabled=False)  # time the kernels, not the memo cache
    try:
        t0 = time.perf_counter()
        oracle = convolve_generic(f, g)
        generic_seconds = time.perf_counter() - t0

        fast_seconds = np.inf
        for _ in range(5):
            t0 = time.perf_counter()
            fast = convolve(f, g)
            fast_seconds = min(fast_seconds, time.perf_counter() - t0)
    finally:
        perf.configure(enabled=True)

    pts = np.linspace(0.0, float(fast.breakpoints[-1]) * 1.5, 4_096)
    np.testing.assert_allclose(fast(pts), oracle(pts), rtol=1e-12, atol=1e-12)
    assert fast.is_convex

    speedup = generic_seconds / fast_seconds
    _merge_report(
        "convex_convolve",
        {
            "segments": SEGMENTS,
            "generic_seconds": generic_seconds,
            "fast_seconds": fast_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= 10.0, f"convex fast path {speedup:.1f}x below the 10x gate"


def test_streaming_extraction_bounded_memory_gate():
    """A 1M-event trace must stream through the extraction fold with peak
    memory a fraction of the materialized trace, bit-identically."""
    ks = make_k_grid(4_096, dense_limit=256, growth=1.1)
    trace_bytes = STREAM_EVENTS * 8

    tracemalloc.start()
    t0 = time.perf_counter()
    lo, hi = streaming_envelope_minmax(_stream_chunks(), ks, total=STREAM_EVENTS)
    stream_seconds = time.perf_counter() - t0
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    full = np.concatenate(list(_stream_chunks()))
    lo1, hi1 = cumulative_envelope_minmax(full, ks)
    assert np.array_equal(lo, lo1)
    assert np.array_equal(hi, hi1)

    _merge_report(
        "streaming_extraction",
        {
            "events": STREAM_EVENTS,
            "chunk": STREAM_CHUNK,
            "k_grid": int(ks.size),
            "k_max": int(ks[-1]),
            "seconds": stream_seconds,
            "peak_bytes": peak_bytes,
            "trace_bytes": trace_bytes,
        },
    )
    assert peak_bytes < trace_bytes / 4, (
        f"streaming peak {peak_bytes / 1e6:.2f} MB is not bounded well below "
        f"the {trace_bytes / 1e6:.0f} MB materialized trace"
    )


def _random_general(rng: np.random.Generator, n: int) -> PiecewiseLinearCurve:
    """A continuous *general* curve: random unsorted slopes, so neither
    convexity nor concavity holds and no closed-form fast path applies."""
    gaps = rng.uniform(0.5, 2.0, n - 1)
    xs = np.concatenate(([0.0], np.cumsum(gaps)))
    ss = rng.uniform(0.1, 10.0, n)
    ys = np.cumsum(np.concatenate(([0.0], np.diff(xs) * ss[:-1])))
    return PiecewiseLinearCurve(xs, ys, ss)


def test_general_backend_speedup_gate():
    """The batched SoA backend must be >= 5x faster than the numpy
    reference on one 200-segment general pair, envelope-identically."""
    rng = np.random.default_rng(20240808)
    f = _random_general(rng, SEGMENTS)
    g = _random_general(rng, SEGMENTS)
    assert not (f.is_convex or f.is_concave)
    assert not (g.is_convex or g.is_concave)

    soa = get_backend("soa")
    perf.configure(enabled=False)  # time the kernels, not the memo cache
    try:
        t0 = time.perf_counter()
        oracle = convolve_generic(f, g)
        generic_seconds = time.perf_counter() - t0

        soa_seconds = np.inf
        for _ in range(3):
            t0 = time.perf_counter()
            out = soa.convolve(f, g)
            soa_seconds = min(soa_seconds, time.perf_counter() - t0)
    finally:
        perf.configure(enabled=True)

    pts = np.linspace(0.0, float(oracle.breakpoints[-1]) * 1.5, 4_096)
    np.testing.assert_allclose(out(pts), oracle(pts), rtol=1e-12, atol=1e-12)

    speedup = generic_seconds / soa_seconds
    _merge_report(
        "general_backend",
        {
            "backend": soa.name,
            "segments": SEGMENTS,
            "generic_seconds": generic_seconds,
            "backend_seconds": soa_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= 5.0, f"soa backend {speedup:.1f}x below the 5x gate"


def test_batched_convolve_many_gate():
    """``convolve_many`` on 32 distinct general pairs under the SoA
    backend must be >= 2.5x faster than the per-pair reference loop."""
    rng = np.random.default_rng(99)
    pairs = [
        (_random_general(rng, 60), _random_general(rng, 60)) for _ in range(32)
    ]

    perf.configure(enabled=False)  # no memoization: every pair is distinct
    try:
        t0 = time.perf_counter()
        with use_backend("numpy"):
            expected = convolve_many(pairs)
        loop_seconds = time.perf_counter() - t0

        batch_seconds = np.inf
        for _ in range(3):
            t0 = time.perf_counter()
            with use_backend("soa"):
                got = convolve_many(pairs)
            batch_seconds = min(batch_seconds, time.perf_counter() - t0)
    finally:
        perf.configure(enabled=True)

    pts = np.linspace(0.0, 60.0, 257)
    for e, o in zip(expected, got):
        np.testing.assert_allclose(o(pts), e(pts), rtol=1e-12, atol=1e-12)

    speedup = loop_seconds / batch_seconds
    _merge_report(
        "batched_convolve_many",
        {
            "backend": "soa",
            "batch": len(pairs),
            "segments": 60,
            "loop_seconds": loop_seconds,
            "batch_seconds": batch_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= 2.5, f"batched convolve_many {speedup:.1f}x below the 2.5x gate"


def test_bench_convex_convolve_fast(benchmark):
    rng = np.random.default_rng(7)
    f = _random_convex(rng, SEGMENTS)
    g = _random_convex(rng, SEGMENTS)
    perf.configure(enabled=False)
    try:
        result = benchmark(convolve, f, g)
    finally:
        perf.configure(enabled=True)
    assert result.is_convex


def test_bench_streaming_fold(benchmark):
    ks = make_k_grid(1_024, dense_limit=128, growth=1.1)
    rng = np.random.default_rng(3)
    chunks = [rng.uniform(1e3, 1.5e4, 4_096) for _ in range(16)]
    # a fresh iterator per round: the fold consumes its input
    lo, hi = benchmark(lambda: streaming_envelope_minmax(iter(chunks), ks))
    assert np.all(lo <= hi)
