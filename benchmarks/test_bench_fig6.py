"""E4 — regenerate Figure 6 (MPEG-2 workload curves vs WCET/BCET)."""

import numpy as np

from benchmarks.conftest import FRAMES
from repro.experiments import fig6_workload_curves


def test_bench_fig6(benchmark, full_context):
    result = benchmark.pedantic(
        lambda: fig6_workload_curves.run(frames=FRAMES), rounds=1, iterations=1
    )
    ks = np.array(result.data["k"])
    u = np.array(result.data["gamma_u"])
    l = np.array(result.data["gamma_l"])
    # Figure 6 shape: gamma curves nest strictly inside the WCET/BCET cone
    assert np.all(l <= u + 1e-6)
    assert np.all(u <= ks * result.data["wcet"] + 1e-6)
    assert np.all(l >= ks * result.data["bcet"] - 1e-6)
    # strong variability: WCET well above the long-run per-event demand
    assert result.data["wcet_ratio"] > 1.8
    print("\n" + str(result))
