"""Benchmark gates for the parallel runner and the persistent kernel cache.

Two acceptance gates, both written to ``BENCH_runner.json``:

* **fan-out speedup** — a 4-worker :func:`repro.runner.run_many` sweep of
  latency-bound tasks must finish at least 2x faster than the serial run.
  The tasks block rather than burn CPU, so the gate measures what the
  pool controls — chunking, dispatch, and result collection overhead —
  and holds even on a single-core CI machine.
* **warm cache beats cold** — a convolution sweep against a fresh disk
  cache (cold: every kernel computes and writes through) must be slower
  than the rerun after the in-memory cache is dropped (warm: every
  kernel loads from disk), proving a persisted cache outlives the
  process-local memo table.
"""

import json
import time
from pathlib import Path

import repro.perf as perf
from repro.runner import run_many
from repro.runner.tasks import convolution_workload, sleep_task

#: Fan-out shape of the speedup gate: 8 tasks x 150 ms.
TASKS = 8
TASK_SECONDS = 0.15
WORKERS = 4


def test_runner_parallel_speedup_and_warm_cache(tmp_path):
    """Acceptance gate: >= 2x fan-out speedup and a warm-cache win."""
    # -- gate 1: 4-worker fan-out vs serial --------------------------------
    items = [TASK_SECONDS] * TASKS

    t0 = time.perf_counter()
    serial = run_many(sleep_task, items, max_workers=1)
    serial_seconds = time.perf_counter() - t0
    assert all(r.ok for r in serial)

    t0 = time.perf_counter()
    parallel = run_many(sleep_task, items, max_workers=WORKERS)
    parallel_seconds = time.perf_counter() - t0
    assert all(r.ok for r in parallel)
    assert [r.value for r in parallel] == [r.value for r in serial]

    speedup = serial_seconds / parallel_seconds

    # -- gate 2: cold disk cache vs warm rerun -----------------------------
    spec = (10, 3)  # 10 distinct convolutions, re-requested 3 times
    cache_dir = tmp_path / "kernel-cache"

    perf.reset()
    perf.configure(disk_dir=cache_dir)
    try:
        t0 = time.perf_counter()
        cold_total = convolution_workload(spec)
        cold_seconds = time.perf_counter() - t0
        cold_stats = perf.cache_stats()["disk"]

        perf.clear_cache()  # drop the in-memory level, keep the disk level
        t0 = time.perf_counter()
        warm_total = convolution_workload(spec)
        warm_seconds = time.perf_counter() - t0
        warm_stats = perf.cache_stats()["disk"]
    finally:
        perf.configure(disk_dir=False)

    assert warm_total == cold_total  # the disk level must not change results
    assert cold_stats["writes"] == spec[0]
    assert warm_stats["hits"] >= cold_stats["hits"] + spec[0]

    warm_speedup = cold_seconds / warm_seconds
    report = {
        "fan_out": {
            "tasks": TASKS,
            "task_seconds": TASK_SECONDS,
            "workers": WORKERS,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
        },
        "disk_cache": {
            "distinct_kernels": spec[0],
            "repeats": spec[1],
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_speedup": warm_speedup,
            "cold": cold_stats,
            "warm": warm_stats,
        },
    }
    out = Path(__file__).parent / "BENCH_runner.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    assert speedup >= 2.0, f"fan-out speedup {speedup:.1f}x below the 2x gate"
    assert warm_speedup > 1.0, (
        f"warm cache ({warm_seconds:.3f}s) did not beat cold ({cold_seconds:.3f}s)"
    )
