"""E7 — backlog bounds: eq. (6) closed form and the eq. (7) refinement."""

import math

from benchmarks.conftest import FRAMES
from repro.experiments import backlog_bounds


def test_bench_backlog_bounds(benchmark, full_context):
    result = benchmark.pedantic(
        lambda: backlog_bounds.run(frames=FRAMES), rounds=1, iterations=1
    )
    assert result.data["analytic"] == result.data["expected"]
    # ordering: simulation <= curve bound <= wcet bound (possibly infinite)
    assert result.data["sim_max"] <= result.data["bound_curves"] + 1e-9
    assert result.data["bound_curves"] <= result.data["bound_wcet"] + 1e-9
    print("\n" + str(result))
