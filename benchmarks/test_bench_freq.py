"""E5 — the headline table: F_gamma_min vs F_wcet_min (eqs. (9)/(10)).

Paper: 340 MHz vs 710 MHz, "over 50% of savings".
"""

from benchmarks.conftest import FRAMES
from repro.experiments import freq_table


def test_bench_freq_table(benchmark, full_context):
    result = benchmark.pedantic(
        lambda: freq_table.run(frames=FRAMES), rounds=1, iterations=1
    )
    f_gamma = result.data["f_gamma_hz"]
    f_wcet = result.data["f_wcet_hz"]
    # shape reproduction: the curve bound roughly halves the frequency
    assert f_gamma < f_wcet
    assert result.data["savings"] > 0.45
    assert 1.8 < f_wcet / f_gamma < 2.6
    # absolute scale lands in the paper's regime (hundreds of MHz)
    assert 2.0e8 < f_gamma < 6.0e8
    assert 5.0e8 < f_wcet < 1.2e9
    assert result.data["constraint_ok"]
    print("\n" + str(result))
