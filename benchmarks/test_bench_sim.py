"""Benchmark gates for the vectorized simulation engine.

Two acceptance gates, both written to ``BENCH_sim.json`` (and from there
folded into the trajectory store like every other BENCH file):

* **chain replay** — the vectorized max-plus replay
  (:func:`~repro.simulation.chain.replay_chain`) of a 4-stage tandem
  chain over 250k items (one million stage-events) must be at least 20x
  faster than the event-driven oracle, *and* bit-identical to it: the
  benchmark inputs are dyadic rationals, so both float computations are
  exact and the departures matrices must be ``array_equal``.
* **sorted bulk loading** — draining one million pre-sorted events
  bulk-loaded through
  :meth:`~repro.simulation.kernel.Simulator.schedule_sorted` (the
  constant-memory lazy cursor) must beat one million individual
  :meth:`~repro.simulation.kernel.Simulator.schedule` pushes by at least
  1.5x end to end (load + drain).
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.simulation import Simulator, replay_chain, simulate_chain

BENCH_PATH = Path(__file__).parent / "BENCH_sim.json"

#: Chain gate shape: 4 stages x 250k items = 1M stage-events.
CHAIN_STAGES = 4
CHAIN_ITEMS = 250_000
CHAIN_SPEEDUP_GATE = 20.0

#: Kernel gate shape: 1M pre-sorted events, bulk vs per-event loading.
KERNEL_EVENTS = 1_000_000
KERNEL_SPEEDUP_GATE = 1.5


def _merge_report(section: str, payload: dict) -> None:
    report = {}
    if BENCH_PATH.exists():
        report = json.loads(BENCH_PATH.read_text())
    report[section] = payload
    BENCH_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def _dyadic_chain_trace() -> tuple[np.ndarray, np.ndarray]:
    """A 4-stage trace whose times are all exact in float64.

    Gaps are multiples of 1/4 and demands multiples of 1/16 against
    power-of-two frequencies, so the sequential oracle and the cumsum
    replay compute identical floats — the speedup gate can then also
    assert bitwise agreement instead of a tolerance.
    """
    rng = np.random.default_rng(20240607)
    arrivals = np.cumsum(rng.integers(0, 8, CHAIN_ITEMS) / 4.0)
    demands = rng.integers(1, 64, (CHAIN_STAGES, CHAIN_ITEMS)) / 16.0
    return arrivals, demands


def test_chain_replay_speedup_gate():
    """Vectorized N-stage replay must be >= 20x the event-driven oracle."""
    arrivals, demands = _dyadic_chain_trace()
    frequencies = [2.0, 1.0, 2.0, 4.0]
    capacities = [64, None, 64, None]

    t0 = time.perf_counter()
    oracle = simulate_chain(arrivals, demands, frequencies, capacities=capacities)
    event_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    replay = replay_chain(arrivals, demands, frequencies, capacities=capacities)
    replay_seconds = time.perf_counter() - t0

    # same trace, same floats: the replay must agree with the oracle
    # bit for bit, not merely within tolerance
    assert np.array_equal(replay.departures, oracle.departures)
    assert replay.stage_stats == oracle.stage_stats

    speedup = event_seconds / replay_seconds
    _merge_report(
        "chain_replay",
        {
            "stages": CHAIN_STAGES,
            "items": CHAIN_ITEMS,
            "stage_events": CHAIN_STAGES * CHAIN_ITEMS,
            "event_driven_seconds": event_seconds,
            "replay_seconds": replay_seconds,
            "speedup": speedup,
            "max_backlogs": list(replay.max_backlogs),
        },
    )
    print(
        f"chain replay: event-driven {event_seconds:.2f}s, "
        f"replay {replay_seconds * 1e3:.1f}ms ({speedup:.0f}x)"
    )
    assert speedup >= CHAIN_SPEEDUP_GATE, (
        f"chain replay only {speedup:.1f}x faster than the event-driven "
        f"oracle (gate: {CHAIN_SPEEDUP_GATE}x)"
    )


def test_schedule_sorted_bulk_load_gate():
    """Bulk-loading 1M sorted events must beat per-event pushes >= 1.5x."""
    times = np.cumsum(
        np.random.default_rng(7).integers(0, 8, KERNEL_EVENTS) / 4.0
    )
    fired = [0]

    def on_event() -> None:
        fired[0] += 1

    def on_indexed(index: int) -> None:
        fired[0] += 1

    t0 = time.perf_counter()
    eager = Simulator()
    for t in times.tolist():
        eager.schedule(t, on_event)
    eager.run()
    eager_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    bulk = Simulator()
    assert bulk.schedule_sorted(times, on_indexed) == KERNEL_EVENTS
    assert bulk.pending == KERNEL_EVENTS
    bulk.run()
    bulk_seconds = time.perf_counter() - t0

    assert fired[0] == 2 * KERNEL_EVENTS
    assert bulk.pending == 0
    assert bulk.now == eager.now

    speedup = eager_seconds / bulk_seconds
    _merge_report(
        "schedule_sorted",
        {
            "events": KERNEL_EVENTS,
            "per_event_seconds": eager_seconds,
            "bulk_seconds": bulk_seconds,
            "speedup": speedup,
        },
    )
    print(
        f"schedule_sorted: per-event {eager_seconds:.2f}s, "
        f"bulk {bulk_seconds:.2f}s ({speedup:.1f}x)"
    )
    assert speedup >= KERNEL_SPEEDUP_GATE, (
        f"bulk loading only {speedup:.2f}x faster than per-event pushes "
        f"(gate: {KERNEL_SPEEDUP_GATE}x)"
    )
