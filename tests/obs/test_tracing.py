"""Tests for repro.obs.tracing: spans, nesting, export formats."""

import json
import threading

import pytest

from repro.obs.tracing import TRACE_SCHEMA, Tracer, tracer


@pytest.fixture
def t():
    """A fresh, enabled tracer (not the process-wide one)."""
    fresh = Tracer()
    fresh.enable()
    return fresh


class TestSpanCollection:
    def test_disabled_by_default_records_nothing(self):
        fresh = Tracer()
        with fresh.span("work", x=1):
            pass
        assert len(fresh) == 0

    def test_global_tracer_starts_disabled(self):
        assert tracer.enabled is False

    def test_basic_record_fields(self, t):
        with t.span("work", kind="demo"):
            pass
        (record,) = t.records()
        assert record["name"] == "work"
        assert record["attrs"] == {"kind": "demo"}
        assert record["parent"] is None
        assert record["dur"] >= 0
        assert record["ts"] >= 0
        assert record["thread"] == threading.get_ident()

    def test_nesting_links_parent_ids(self, t):
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("inner2"):
                pass
        by_name = {r["name"]: r for r in t.records()}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["inner2"]["parent"] == by_name["outer"]["id"]
        # children close (and are recorded) before their parent
        names = [r["name"] for r in t.records()]
        assert names.index("inner") < names.index("outer")

    def test_set_and_rename_mutate_until_close(self, t):
        with t.span("provisional") as span:
            span.set("result", 42)
            span.rename("final")
        (record,) = t.records()
        assert record["name"] == "final"
        assert record["attrs"]["result"] == 42

    def test_span_records_even_on_exception(self, t):
        with pytest.raises(RuntimeError):
            with t.span("failing"):
                raise RuntimeError("boom")
        assert [r["name"] for r in t.records()] == ["failing"]

    def test_bounded_buffer_counts_drops(self):
        fresh = Tracer(max_spans=2)
        fresh.enable()
        for i in range(5):
            with fresh.span(f"s{i}"):
                pass
        assert len(fresh) == 2
        assert fresh.dropped == 3

    def test_reset_clears_records_and_drops(self, t):
        with t.span("a"):
            pass
        t.reset()
        assert len(t) == 0
        assert t.dropped == 0

    def test_disable_keeps_existing_records(self, t):
        with t.span("kept"):
            pass
        t.disable()
        with t.span("ignored"):
            pass
        assert [r["name"] for r in t.records()] == ["kept"]

    def test_threads_get_independent_stacks(self, t):
        def worker():
            with t.span("child-thread"):
                pass

        with t.span("main-thread"):
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        by_name = {r["name"]: r for r in t.records()}
        # the other thread's span must NOT parent into this thread's stack
        assert by_name["child-thread"]["parent"] is None
        assert by_name["child-thread"]["thread"] != by_name["main-thread"]["thread"]


class TestExport:
    def test_jsonl_roundtrip(self, t, tmp_path):
        with t.span("outer", n=3):
            with t.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        assert t.export_jsonl(path) == 2
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert {r["name"] for r in records} == {"outer", "inner"}
        for r in records:
            assert set(r) == {"name", "ts", "dur", "id", "parent", "thread", "attrs"}

    def test_chrome_trace_format(self, t):
        with t.span("work", items=7):
            pass
        trace = t.chrome_trace()
        assert trace["otherData"]["schema"] == TRACE_SCHEMA
        (event,) = trace["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["args"] == {"items": 7}
        # microseconds, so duration scales 1e6 relative to the JSONL record
        (record,) = t.records()
        assert event["dur"] == pytest.approx(record["dur"] * 1e6)

    def test_export_chrome_writes_valid_json(self, t, tmp_path):
        with t.span("work"):
            pass
        path = tmp_path / "trace.json"
        assert t.export_chrome(path) == 1
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == 1


class TestUnfinishedSpans:
    def test_records_excludes_open_spans_by_default(self, t):
        with t.span("open"):
            assert t.records() == []

    def test_include_open_marks_unfinished(self, t):
        with t.span("outer"):
            with t.span("inner"):
                records = t.records(include_open=True)
        by_name = {r["name"]: r for r in records}
        assert by_name["outer"]["unfinished"] is True
        assert by_name["inner"]["unfinished"] is True
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["inner"]["dur"] >= 0
        # closed normally afterwards: the final records carry no marker
        final = t.records()
        assert len(final) == 2
        assert all("unfinished" not in r for r in final)

    def test_export_jsonl_flushes_open_spans(self, t, tmp_path):
        path = tmp_path / "trace.jsonl"
        with t.span("closed"):
            pass
        with t.span("stuck", task=3):
            assert t.export_jsonl(path) == 2
        records = [json.loads(line) for line in path.read_text().splitlines()]
        by_name = {r["name"]: r for r in records}
        assert "unfinished" not in by_name["closed"]
        assert by_name["stuck"]["unfinished"] is True
        assert by_name["stuck"]["attrs"] == {"task": 3}

    def test_chrome_trace_folds_marker_into_args(self, t):
        with t.span("stuck", worker=1):
            (event,) = t.chrome_trace()["traceEvents"]
        assert event["args"] == {"worker": 1, "unfinished": True}

    def test_snapshot_does_not_mutate_open_span(self, t):
        with t.span("open") as span:
            first = t.records(include_open=True)
            span.set("late", True)
        (record,) = t.records()
        assert record["attrs"] == {"late": True}
        assert first[0]["attrs"] == {}

    def test_reset_drops_open_spans(self, t):
        with t.span("doomed"):
            t.reset()
            assert t.records(include_open=True) == []

    def test_forget_thread_drops_inherited_open_spans(self, t):
        # simulates a forked worker inheriting the parent's open stack
        with t.span("parent-side"):
            t.forget_thread()
            assert t.records(include_open=True) == []


class TestIngest:
    def test_empty_worker_snapshot_is_noop(self, t):
        assert t.ingest([]) == 0
        assert t.records() == []

    def test_disabled_tracer_ignores_records(self):
        fresh = Tracer()
        assert fresh.ingest([{"id": 0, "parent": None, "ts": 0.0}]) == 0

    def test_duplicate_span_ids_across_two_workers_stay_distinct(self, t):
        worker = [
            {"name": "task", "ts": 0.0, "dur": 1.0, "id": 0, "parent": None,
             "thread": 1, "attrs": {}},
            {"name": "sub", "ts": 0.1, "dur": 0.5, "id": 1, "parent": 0,
             "thread": 1, "attrs": {}},
        ]
        assert t.ingest(worker, extra_attrs={"worker": 1}) == 2
        assert t.ingest(worker, extra_attrs={"worker": 2}) == 2
        records = t.records()
        assert len({r["id"] for r in records}) == 4
        # each sub still parents onto its own worker's task span
        for sub in (r for r in records if r["name"] == "sub"):
            (task,) = [
                r for r in records
                if r["name"] == "task"
                and r["attrs"]["worker"] == sub["attrs"]["worker"]
            ]
            assert sub["parent"] == task["id"]

    def test_negative_ts_shift_clamps_at_zero(self, t):
        # worker clock behind the parent epoch: ts must not go negative
        worker = [
            {"name": "early", "ts": 0.05, "dur": 0.01, "id": 0, "parent": None,
             "thread": 1, "attrs": {}},
            {"name": "later", "ts": 5.0, "dur": 0.01, "id": 1, "parent": None,
             "thread": 1, "attrs": {}},
        ]
        assert t.ingest(worker, ts_offset=-1.0) == 2
        by_name = {r["name"]: r for r in t.records()}
        assert by_name["early"]["ts"] == 0.0
        assert by_name["later"]["ts"] == pytest.approx(4.0)

    def test_roots_reparent_onto_local_span(self, t):
        worker = [
            {"name": "task", "ts": 0.0, "dur": 1.0, "id": 0, "parent": None,
             "thread": 1, "attrs": {}},
        ]
        with t.span("chunk") as chunk:
            t.ingest(worker, parent_id=t.current_span_id())
        by_name = {r["name"]: r for r in t.records()}
        assert by_name["task"]["parent"] == chunk.span_id

    def test_unfinished_worker_records_survive_ingest(self, t):
        worker = [
            {"name": "stuck", "ts": 0.0, "dur": 0.2, "id": 0, "parent": None,
             "thread": 1, "attrs": {}, "unfinished": True},
        ]
        assert t.ingest(worker) == 1
        (record,) = t.records()
        assert record["unfinished"] is True
