"""Tests for repro.obs.profile: span aggregation, stacks, quantiles,
dispatch/cache breakdowns, Prometheus exposition."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    PROFILE_SCHEMA,
    aggregate_spans,
    cache_tiers,
    collapsed_stacks,
    dispatch_breakdown,
    histogram_quantile,
    histogram_quantiles,
    profile_report,
    prometheus_text,
    read_trace_jsonl,
    service_breakdown,
    simulation_breakdown,
    write_collapsed,
    write_profile,
)


def _span(name, ts, dur, sid, parent=None, attrs=None, **extra):
    return {
        "name": name,
        "ts": ts,
        "dur": dur,
        "id": sid,
        "parent": parent,
        "thread": 1,
        "attrs": attrs or {},
        **extra,
    }


class TestAggregateSpans:
    def test_self_time_subtracts_direct_children(self):
        records = [
            _span("child", 0.1, 0.3, 1, parent=0),
            _span("root", 0.0, 1.0, 0),
        ]
        agg = aggregate_spans(records)
        assert agg["spans"]["root"]["self_s"] == pytest.approx(0.7)
        assert agg["spans"]["root"]["total_s"] == pytest.approx(1.0)
        assert agg["spans"]["child"]["self_s"] == pytest.approx(0.3)
        assert agg["total_self_s"] == pytest.approx(1.0)
        assert agg["span_count"] == 2

    def test_self_time_clamped_for_unfinished_parent(self):
        # an unfinished parent can report less time than finished children
        records = [
            _span("child", 0.0, 1.0, 1, parent=0),
            _span("root", 0.0, 0.2, 0, unfinished=True),
        ]
        agg = aggregate_spans(records)
        assert agg["spans"]["root"]["self_s"] == 0.0
        assert agg["spans"]["root"]["unfinished"] == 1

    def test_grandchildren_only_count_against_direct_parent(self):
        records = [
            _span("a", 0.0, 1.0, 0),
            _span("b", 0.0, 0.6, 1, parent=0),
            _span("c", 0.0, 0.4, 2, parent=1),
        ]
        agg = aggregate_spans(records)
        assert agg["spans"]["a"]["self_s"] == pytest.approx(0.4)
        assert agg["spans"]["b"]["self_s"] == pytest.approx(0.2)

    def test_backend_and_shape_breakdowns(self):
        records = [
            _span("k", 0, 0.5, 0, attrs={"backend": "soa", "shape": "general|convex"}),
            _span("k", 0, 0.25, 1, attrs={"backend": "soa"}),
            _span("k", 0, 1.0, 2, attrs={"backend": "numpy"}),
            _span("other", 0, 1.0, 3),
        ]
        agg = aggregate_spans(records)
        assert agg["backends"]["soa"]["calls"] == 2
        assert agg["backends"]["soa"]["self_s"] == pytest.approx(0.75)
        assert agg["backends"]["numpy"]["min_s"] == pytest.approx(1.0)
        assert agg["shapes"] == {
            "general|convex": agg["shapes"]["general|convex"]
        }
        assert agg["shapes"]["general|convex"]["calls"] == 1

    def test_empty_trace(self):
        agg = aggregate_spans([])
        assert agg["span_count"] == 0
        assert agg["spans"] == {}
        assert agg["total_self_s"] == 0.0


class TestCollapsedStacks:
    def test_stack_reconstruction_and_weights(self):
        records = [
            _span("leaf", 0.0, 0.25, 2, parent=1),
            _span("mid", 0.0, 0.5, 1, parent=0),
            _span("root", 0.0, 1.0, 0),
        ]
        stacks = collapsed_stacks(records)
        assert stacks == {
            "root": 500_000,
            "root;mid": 250_000,
            "root;mid;leaf": 250_000,
        }

    def test_identical_stacks_accumulate(self):
        records = [
            _span("k", 0.0, 0.001, 0),
            _span("k", 0.5, 0.002, 1),
        ]
        assert collapsed_stacks(records) == {"k": 3_000}

    def test_zero_weight_stacks_dropped(self):
        records = [_span("instant", 0.0, 1e-9, 0)]
        assert collapsed_stacks(records) == {}

    def test_dangling_parent_truncates_stack(self):
        # a worker record re-parented onto a span the export didn't keep
        records = [_span("leaf", 0.0, 0.1, 5, parent=999)]
        assert collapsed_stacks(records) == {"leaf": 100_000}

    def test_write_collapsed_format(self, tmp_path):
        records = [_span("a", 0.0, 0.5, 0), _span("b", 0.0, 0.25, 1, parent=0)]
        path = tmp_path / "out.folded"
        assert write_collapsed(records, path) == 2
        lines = path.read_text().splitlines()
        assert lines == ["a 250000", "a;b 250000"]


class TestHistogramQuantile:
    def _entry(self, buckets, counts, **extra):
        total = sum(counts)
        return {
            "name": "h",
            "labels": {},
            "buckets": list(buckets),
            "counts": list(counts),
            "count": total,
            "sum": extra.pop("sum", 1.0),
            "min": extra.pop("min", None),
            "max": extra.pop("max", None),
            **extra,
        }

    def test_interpolates_within_bucket(self):
        # 10 observations uniform in the (1.0, 2.0] bucket
        entry = self._entry([1.0, 2.0], [0, 10, 0])
        assert histogram_quantile(entry, 0.5) == pytest.approx(1.5)
        assert histogram_quantile(entry, 0.95) == pytest.approx(1.95)

    def test_clamps_to_observed_min_max(self):
        entry = self._entry([1.0, 2.0], [0, 10, 0], min=1.4, max=1.6)
        assert histogram_quantile(entry, 0.01) == pytest.approx(1.4)
        assert histogram_quantile(entry, 0.99) == pytest.approx(1.6)

    def test_overflow_bucket_reports_max(self):
        entry = self._entry([1.0], [0, 5], max=7.5)
        assert histogram_quantile(entry, 0.9) == pytest.approx(7.5)

    def test_empty_histogram_is_none(self):
        entry = self._entry([1.0], [0, 0])
        assert histogram_quantile(entry, 0.5) is None

    def test_out_of_range_q_is_none(self):
        entry = self._entry([1.0], [1, 0])
        assert histogram_quantile(entry, 1.5) is None
        assert histogram_quantile(entry, -0.1) is None

    def test_quantiles_are_monotone(self):
        entry = self._entry([0.1, 1.0, 10.0], [3, 17, 9, 1], max=12.0)
        qs = [histogram_quantile(entry, q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_registry_roundtrip(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.2, 0.3, 0.5, 2.0):
            h.observe(v)
        (summary,) = histogram_quantiles(reg.snapshot())
        assert summary["count"] == 5
        assert summary["mean"] == pytest.approx(3.05 / 5)
        assert set(summary["quantiles"]) == {"p50", "p95", "p99"}
        assert summary["quantiles"]["p50"] <= summary["quantiles"]["p95"]


class TestDispatchAndCache:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("minplus.dispatch", op="convolve", regime="convex_fast").inc(5)
        reg.counter("minplus.dispatch", op="convolve", regime="generic").inc(2)
        reg.counter("minplus.dispatch", op="deconvolve", regime="generic").inc(1)
        reg.counter("minplus.backend.calls", backend="soa", op="convolve").inc(2)
        reg.counter("minplus.backend.calls", backend="soa", op="convolve_batch").inc(4)
        reg.counter("minplus.batch.fallback", backend="soa").inc(1)
        reg.counter("cache.calls").inc(20)
        reg.counter("cache.hits").inc(8)
        reg.counter("cache.misses").inc(12)
        reg.counter("diskcache.hits").inc(4)
        reg.counter("cache.op.hits", op="minplus.convolve").inc(8)
        reg.counter("cache.op.misses", op="minplus.convolve").inc(12)
        return reg

    def test_dispatch_regimes_and_batch_rate(self):
        dispatch = dispatch_breakdown(self._registry().snapshot())
        assert dispatch["regimes"]["convolve"] == {
            "convex_fast": 5,
            "generic": 2,
        }
        assert dispatch["regimes"]["deconvolve"] == {"generic": 1}
        assert dispatch["batch"]["calls"] == 4
        assert dispatch["batch"]["fallback_rate"] == pytest.approx(0.25)
        assert dispatch["memo"] == {"lookups": 20, "hits": 8, "misses": 12}

    def test_cache_tiers_sum_to_lookups(self):
        cache = cache_tiers(self._registry().snapshot())
        assert cache["memory"] == 8
        assert cache["disk"] == 4
        assert cache["miss"] == 8
        assert cache["memory"] + cache["disk"] + cache["miss"] == cache["lookups"]
        assert cache["consistent"] is True
        assert cache["hit_ratio"] == pytest.approx(12 / 20)

    def test_worker_origin_series_fold_in(self):
        reg = self._registry()
        reg.counter("cache.calls", origin="worker").inc(10)
        reg.counter("cache.hits", origin="worker").inc(10)
        cache = cache_tiers(reg.snapshot())
        assert cache["lookups"] == 30
        assert cache["memory"] == 18
        assert cache["consistent"] is True

    def test_empty_snapshot(self):
        cache = cache_tiers(MetricsRegistry().snapshot())
        assert cache["lookups"] == 0
        assert cache["hit_ratio"] == 0.0
        assert cache["consistent"] is True


class TestServiceBreakdown:
    def test_admission_and_outcomes(self):
        reg = MetricsRegistry()
        reg.counter("service.submitted").inc(10)
        reg.counter("service.accepted").inc(6)
        reg.counter("service.rejected", reason="infeasible").inc(3)
        reg.counter("service.rejected", reason="queue-full").inc(1)
        reg.counter("service.completed", state="done").inc(5)
        reg.counter("service.completed", state="failed").inc(1)
        reg.counter("service.retries").inc(2)
        reg.gauge("service.admission.required").set(4200.0)
        reg.gauge("service.admission.capacity").set(1000.0)
        reg.counter("service.evalpool.hits").inc(7)
        reg.counter("service.evalpool.misses").inc(2)
        service = service_breakdown(reg.snapshot())
        assert service["submitted"] == 10
        assert service["accepted"] == 6
        assert service["rejected"] == {"infeasible": 3, "queue-full": 1}
        assert service["completed"] == {"done": 5, "failed": 1}
        assert service["retries"] == 2
        assert service["admission"]["required"] == 4200.0
        assert service["admission"]["capacity"] == 1000.0
        assert service["evalpool"]["hits"] == 7

    def test_empty_snapshot_is_all_zeros(self):
        service = service_breakdown(MetricsRegistry().snapshot())
        assert service["submitted"] == 0
        assert service["rejected"] == {}
        assert service["admission"]["capacity"] is None


class TestSimulationBreakdown:
    def test_groups_chain_fifo_and_workload_series(self):
        reg = MetricsRegistry()
        reg.counter("sim.chain.runs", impl="replay").inc(2)
        reg.counter("sim.chain.runs", impl="event-driven").inc(1)
        reg.counter("sim.chain.items", impl="replay").inc(600)
        reg.gauge("sim.chain.high_water", stage=0).set_max(7)
        reg.gauge("sim.chain.high_water", stage=1).set_max(3)
        reg.counter("sim.chain.overflows", stage=0).inc(4)
        reg.counter("sim.chain.busy_seconds", stage=1).add(2.5)
        reg.gauge("sim.fifo.high_water", fifo="input").set_max(9)
        reg.counter("sim.fifo.pushed", fifo="input").inc(100)
        reg.counter("sim.workload.items", model="poisson").inc(512)
        sim = simulation_breakdown(reg.snapshot())
        assert sim["chain"]["runs"] == {"replay": 2, "event-driven": 1}
        assert sim["chain"]["item_stages"] == {"replay": 600}
        assert sim["chain"]["stages"]["0"]["high_water"] == 7
        assert sim["chain"]["stages"]["0"]["overflows"] == 4
        assert sim["chain"]["stages"]["1"]["busy_seconds"] == 2.5
        assert sim["fifos"]["input"] == {"high_water": 9, "pushed": 100}
        assert sim["workload_items"] == {"poisson": 512}

    def test_empty_snapshot_is_empty(self):
        sim = simulation_breakdown(MetricsRegistry().snapshot())
        assert sim["chain"]["runs"] == {}
        assert sim["chain"]["stages"] == {}
        assert sim["fifos"] == {}
        assert sim["workload_items"] == {}


class TestProfileReport:
    def test_schema_and_sections(self, tmp_path):
        records = [_span("k", 0.0, 0.5, 0)]
        reg = MetricsRegistry()
        reg.counter("cache.calls").inc()
        report = profile_report(records, reg.snapshot())
        assert report["schema"] == PROFILE_SCHEMA
        assert set(report) == {
            "schema", "trace", "stacks", "dispatch", "cache", "service",
            "simulation", "quantiles",
        }
        path = tmp_path / "profile.json"
        write_profile(report, path)
        assert json.loads(path.read_text())["schema"] == PROFILE_SCHEMA

    def test_trace_only_and_metrics_only(self):
        trace_only = profile_report([_span("k", 0.0, 0.5, 0)], None)
        assert "dispatch" not in trace_only and "trace" in trace_only
        metrics_only = profile_report(None, MetricsRegistry().snapshot())
        assert "trace" not in metrics_only and "cache" in metrics_only

    def test_read_trace_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [_span("a", 0.0, 0.1, 0), _span("b", 0.1, 0.2, 1)]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n\n")
        assert read_trace_jsonl(path) == records


class TestPrometheusText:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits", op="minplus.convolve").inc(3)
        reg.gauge("cache.entries").set(7)
        h = reg.histogram("kernel.seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = prometheus_text(reg.snapshot())
        lines = text.splitlines()
        assert "# TYPE cache_hits_total counter" in lines
        assert 'cache_hits_total{op="minplus.convolve"} 3' in lines
        assert "# TYPE cache_entries gauge" in lines
        assert "cache_entries 7" in lines
        assert "# TYPE kernel_seconds histogram" in lines
        assert 'kernel_seconds_bucket{le="0.1"} 1' in lines
        assert 'kernel_seconds_bucket{le="1.0"} 2' in lines
        assert 'kernel_seconds_bucket{le="+Inf"} 3' in lines
        assert "kernel_seconds_count 3" in lines
        assert any(line.startswith("kernel_seconds_sum ") for line in lines)

    def test_bucket_series_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0, 3.0))
        for v in (0.5, 1.5, 1.6, 2.5, 10.0):
            h.observe(v)
        text = prometheus_text(reg.snapshot())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("h_bucket")
        ]
        assert counts == [1, 3, 4, 5]
        assert counts == sorted(counts)

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", tag='say "hi"').inc()
        text = prometheus_text(reg.snapshot())
        assert 'c_total{tag="say \\"hi\\""} 1' in text

    def test_empty_snapshot_renders_empty(self):
        assert prometheus_text(MetricsRegistry().snapshot()) == ""

    def test_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("a.b", x=1).inc()
        reg.counter("a.b", x=2).inc()
        assert prometheus_text(reg.snapshot()) == prometheus_text(reg.snapshot())
