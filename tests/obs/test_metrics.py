"""Tests for repro.obs.metrics: instruments, registry, snapshots."""

import json

import pytest

from repro.obs.metrics import METRICS_SCHEMA, MetricsRegistry


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_int_increments_stay_int(self, reg):
        c = reg.counter("calls")
        c.inc()
        c.inc(2)
        assert c.value == 3
        assert isinstance(c.value, int)

    def test_float_increment_promotes(self, reg):
        c = reg.counter("seconds")
        c.add(0.25)
        c.add(0.5)
        assert c.value == pytest.approx(0.75)

    def test_negative_increment_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.counter("calls").inc(-1)

    def test_set_total_overwrites(self, reg):
        c = reg.counter("cache.hits")
        c.inc(5)
        c.set_total(17)
        assert c.value == 17


class TestGauge:
    def test_set_and_set_max(self, reg):
        g = reg.gauge("backlog")
        g.set(10)
        g.set_max(7)  # lower: ignored
        assert g.value == 10
        g.set_max(42)
        assert g.value == 42
        g.set(3)  # plain set always overwrites
        assert g.value == 3


class TestHistogram:
    def test_bucketing_and_overflow(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        snap = h._snapshot()
        # 0.5 and 1.0 land in <=1.0; 5.0 in <=10.0; 100.0 overflows
        assert snap["counts"] == [2, 1, 1]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(106.5)
        assert snap["min"] == 0.5
        assert snap["max"] == 100.0

    def test_empty_histogram_serializes_null_min_max(self, reg):
        snap = reg.histogram("lat", buckets=(1.0,))._snapshot()
        assert snap["min"] is None and snap["max"] is None
        json.dumps(snap)  # must be strictly valid JSON (no Infinity)

    def test_bad_buckets_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.histogram("lat", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("lat2", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_series(self, reg):
        assert reg.counter("n", op="a") is reg.counter("n", op="a")

    def test_labels_distinguish_series(self, reg):
        a = reg.counter("n", op="a")
        b = reg.counter("n", op="b")
        assert a is not b
        a.inc()
        assert b.value == 0
        assert len(reg.series("n")) == 2

    def test_label_order_is_irrelevant(self, reg):
        assert reg.counter("n", x=1, y=2) is reg.counter("n", y=2, x=1)

    def test_kind_conflict_rejected(self, reg):
        reg.counter("n")
        with pytest.raises(ValueError):
            reg.gauge("n")
        with pytest.raises(ValueError):
            reg.gauge("n", other="label")

    def test_snapshot_shape_and_sorting(self, reg):
        reg.counter("b.count").inc()
        reg.counter("a.count", op="z").inc(2)
        reg.gauge("depth").set(3)
        reg.histogram("time", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["schema"] == METRICS_SCHEMA
        assert [c["name"] for c in snap["counters"]] == ["a.count", "b.count"]
        assert snap["counters"][0] == {"name": "a.count", "labels": {"op": "z"}, "value": 2}
        assert [g["name"] for g in snap["gauges"]] == ["depth"]
        assert [h["name"] for h in snap["histograms"]] == ["time"]
        json.dumps(snap)

    def test_collectors_run_at_snapshot_time(self, reg):
        source = {"hits": 0}

        def publish(r):
            r.counter("src.hits").set_total(source["hits"])

        reg.register_collector(publish)
        source["hits"] = 9
        snap = reg.snapshot()
        assert snap["counters"][0]["value"] == 9
        # registering the same function twice is idempotent
        reg.register_collector(publish)
        assert len(reg.snapshot()["counters"]) == 1

    def test_reset_zeroes_in_place_keeping_handles(self, reg):
        c = reg.counter("n")
        c.inc(5)
        reg.reset()
        assert c.value == 0
        c.inc()  # the held handle still feeds the registered series
        assert reg.counter("n").value == 1

    def test_reset_with_prefix_is_selective(self, reg):
        reg.counter("kernel.calls").inc(3)
        reg.counter("cache.hits").inc(4)
        reg.reset(prefix="kernel.")
        assert reg.counter("kernel.calls").value == 0
        assert reg.counter("cache.hits").value == 4

    def test_clear_drops_series(self, reg):
        reg.counter("n").inc()
        reg.clear()
        assert len(reg) == 0
