"""Tests for repro.obs.metrics: instruments, registry, snapshots."""

import json

import pytest

from repro.obs.metrics import METRICS_SCHEMA, MetricsRegistry


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_int_increments_stay_int(self, reg):
        c = reg.counter("calls")
        c.inc()
        c.inc(2)
        assert c.value == 3
        assert isinstance(c.value, int)

    def test_float_increment_promotes(self, reg):
        c = reg.counter("seconds")
        c.add(0.25)
        c.add(0.5)
        assert c.value == pytest.approx(0.75)

    def test_negative_increment_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.counter("calls").inc(-1)

    def test_set_total_overwrites(self, reg):
        c = reg.counter("cache.hits")
        c.inc(5)
        c.set_total(17)
        assert c.value == 17


class TestGauge:
    def test_set_and_set_max(self, reg):
        g = reg.gauge("backlog")
        g.set(10)
        g.set_max(7)  # lower: ignored
        assert g.value == 10
        g.set_max(42)
        assert g.value == 42
        g.set(3)  # plain set always overwrites
        assert g.value == 3


class TestHistogram:
    def test_bucketing_and_overflow(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        snap = h._snapshot()
        # 0.5 and 1.0 land in <=1.0; 5.0 in <=10.0; 100.0 overflows
        assert snap["counts"] == [2, 1, 1]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(106.5)
        assert snap["min"] == 0.5
        assert snap["max"] == 100.0

    def test_empty_histogram_serializes_null_min_max(self, reg):
        snap = reg.histogram("lat", buckets=(1.0,))._snapshot()
        assert snap["min"] is None and snap["max"] is None
        json.dumps(snap)  # must be strictly valid JSON (no Infinity)

    def test_bad_buckets_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.histogram("lat", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("lat2", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_series(self, reg):
        assert reg.counter("n", op="a") is reg.counter("n", op="a")

    def test_labels_distinguish_series(self, reg):
        a = reg.counter("n", op="a")
        b = reg.counter("n", op="b")
        assert a is not b
        a.inc()
        assert b.value == 0
        assert len(reg.series("n")) == 2

    def test_label_order_is_irrelevant(self, reg):
        assert reg.counter("n", x=1, y=2) is reg.counter("n", y=2, x=1)

    def test_kind_conflict_rejected(self, reg):
        reg.counter("n")
        with pytest.raises(ValueError):
            reg.gauge("n")
        with pytest.raises(ValueError):
            reg.gauge("n", other="label")

    def test_snapshot_shape_and_sorting(self, reg):
        reg.counter("b.count").inc()
        reg.counter("a.count", op="z").inc(2)
        reg.gauge("depth").set(3)
        reg.histogram("time", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["schema"] == METRICS_SCHEMA
        assert [c["name"] for c in snap["counters"]] == ["a.count", "b.count"]
        assert snap["counters"][0] == {"name": "a.count", "labels": {"op": "z"}, "value": 2}
        assert [g["name"] for g in snap["gauges"]] == ["depth"]
        assert [h["name"] for h in snap["histograms"]] == ["time"]
        json.dumps(snap)

    def test_collectors_run_at_snapshot_time(self, reg):
        source = {"hits": 0}

        def publish(r):
            r.counter("src.hits").set_total(source["hits"])

        reg.register_collector(publish)
        source["hits"] = 9
        snap = reg.snapshot()
        assert snap["counters"][0]["value"] == 9
        # registering the same function twice is idempotent
        reg.register_collector(publish)
        assert len(reg.snapshot()["counters"]) == 1

    def test_reset_zeroes_in_place_keeping_handles(self, reg):
        c = reg.counter("n")
        c.inc(5)
        reg.reset()
        assert c.value == 0
        c.inc()  # the held handle still feeds the registered series
        assert reg.counter("n").value == 1

    def test_reset_with_prefix_is_selective(self, reg):
        reg.counter("kernel.calls").inc(3)
        reg.counter("cache.hits").inc(4)
        reg.reset(prefix="kernel.")
        assert reg.counter("kernel.calls").value == 0
        assert reg.counter("cache.hits").value == 4

    def test_clear_drops_series(self, reg):
        reg.counter("n").inc()
        reg.clear()
        assert len(reg) == 0


class TestDeterministicOrdering:
    def _populate(self, reg, order):
        for op in order:
            reg.counter("minplus.dispatch", op=op, regime="generic").inc()
        reg.counter("cache.hits").inc()
        reg.gauge("depth", queue="b").set(1)
        reg.gauge("depth", queue="a").set(2)

    def test_insertion_order_is_irrelevant(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        self._populate(a, ["convolve", "deconvolve"])
        self._populate(b, ["deconvolve", "convolve"])
        assert json.dumps(a.snapshot(), sort_keys=True) == json.dumps(
            b.snapshot(), sort_keys=True
        )

    def test_series_sorted_by_name_then_labels(self, reg):
        reg.counter("z").inc()
        reg.counter("a", op="y").inc()
        reg.counter("a", op="x").inc()
        snap = reg.snapshot()
        assert [(c["name"], c["labels"].get("op")) for c in snap["counters"]] == [
            ("a", "x"),
            ("a", "y"),
            ("z", None),
        ]

    def test_header_labels_key_sorted(self, reg):
        reg.counter("c", zeta=1, alpha=2).inc()
        (entry,) = reg.snapshot()["counters"]
        assert list(entry["labels"]) == ["alpha", "zeta"]

    def test_mixed_type_label_values_do_not_raise(self, reg):
        # ('op', 1) < ('op', 'a') raises TypeError under a naive tuple sort
        reg.counter("c", op=1).inc()
        reg.counter("c", op="a").inc()
        reg.counter("c", op=1.5).inc()
        snap = reg.snapshot()
        assert len(snap["counters"]) == 3
        assert json.dumps(snap)  # serializable, deterministic

    def test_snapshot_byte_stable_across_calls(self, reg):
        self._populate(reg, ["convolve", "deconvolve"])
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        first = json.dumps(reg.snapshot(), sort_keys=True)
        second = json.dumps(reg.snapshot(), sort_keys=True)
        assert first == second


class TestHistogramMerge:
    def test_merge_accumulates(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        other = MetricsRegistry()
        oh = other.histogram("lat", buckets=(1.0, 2.0))
        oh.observe(1.5)
        oh.observe(5.0)
        (entry,) = other.snapshot()["histograms"]
        h.merge(entry)
        (merged,) = reg.snapshot()["histograms"]
        assert merged["count"] == 3
        assert merged["counts"] == [1, 1, 1]
        assert merged["min"] == 0.5
        assert merged["max"] == 5.0

    def test_mismatched_bucket_layout_raises_and_preserves(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        other = MetricsRegistry()
        oh = other.histogram("lat", buckets=(1.0, 4.0))
        oh.observe(3.0)
        (entry,) = other.snapshot()["histograms"]
        with pytest.raises(ValueError, match="mismatched buckets"):
            h.merge(entry)
        # the failed merge must not have corrupted the target
        (unchanged,) = reg.snapshot()["histograms"]
        assert unchanged["count"] == 1
        assert unchanged["counts"] == [1, 0, 0]

    def test_merge_snapshot_rejects_unknown_schema(self, reg):
        with pytest.raises(ValueError, match="schema"):
            reg.merge_snapshot({"schema": "something/else"})

    def test_merge_snapshot_with_origin_label_keeps_series_distinct(self, reg):
        reg.counter("cache.hits").inc(5)
        worker = MetricsRegistry()
        worker.counter("cache.hits").inc(3)
        reg.merge_snapshot(worker.snapshot(), origin="worker")
        values = {
            (c["labels"].get("origin")): c["value"]
            for c in reg.snapshot()["counters"]
        }
        assert values == {None: 5, "worker": 3}
