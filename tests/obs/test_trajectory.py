"""Tests for repro.obs.trajectory and scripts/check_trajectory.py."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.trajectory import (
    TRAJECTORY_SCHEMA,
    append_record,
    build_record,
    check_records,
    env_fingerprint,
    flatten_bench,
    metric_direction,
    read_records,
)

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "check_trajectory.py"


def _record(metrics, run_id=None):
    return {
        "schema": TRAJECTORY_SCHEMA,
        "run_id": run_id,
        "timestamp": None,
        "metrics": metrics,
        "backends": {},
        "env": env_fingerprint(),
    }


class TestFlatten:
    def test_numeric_leaves_become_dotted_metrics(self):
        metrics, backends = flatten_bench(
            "minplus",
            {"pair": {"speedup": 7.5, "segments": 200, "backend": "soa"}},
        )
        assert metrics == {
            "minplus.pair.speedup": 7.5,
            "minplus.pair.segments": 200.0,
        }
        assert backends == {"minplus.pair": "soa"}

    def test_booleans_and_strings_excluded(self):
        metrics, backends = flatten_bench(
            "x", {"s": {"ok": True, "note": "fast", "v": 1}}
        )
        assert metrics == {"x.s.v": 1.0}
        assert backends == {}

    def test_non_dict_sections_skipped(self):
        metrics, _ = flatten_bench("x", {"schema": "v1", "s": {"v": 2}})
        assert metrics == {"x.s.v": 2.0}


class TestBuildAppendRead:
    def test_roundtrip(self, tmp_path):
        bench = tmp_path / "bench"
        bench.mkdir()
        (bench / "BENCH_a.json").write_text(
            json.dumps({"s": {"speedup": 3.0, "backend": "numba"}})
        )
        (bench / "not_a_bench.json").write_text("{}")
        store = tmp_path / "T.jsonl"
        record = build_record(bench, run_id="r1", timestamp="2026-08-08T00:00:00Z")
        append_record(record, store)
        append_record(build_record(bench, run_id="r2"), store)
        records = read_records(store)
        assert [r["run_id"] for r in records] == ["r1", "r2"]
        assert records[0]["schema"] == TRAJECTORY_SCHEMA
        assert records[0]["metrics"] == {"a.s.speedup": 3.0}
        assert records[0]["backends"] == {"a.s": "numba"}
        assert records[0]["timestamp"] == "2026-08-08T00:00:00Z"

    def test_missing_store_is_empty_history(self, tmp_path):
        assert read_records(tmp_path / "absent.jsonl") == []

    def test_malformed_line_raises_with_location(self, tmp_path):
        store = tmp_path / "T.jsonl"
        store.write_text('{"schema": "repro.trajectory/1"}\n{broken\n')
        with pytest.raises(ValueError, match=r"T\.jsonl:2"):
            read_records(store)

    def test_env_fingerprint_fields(self):
        env = env_fingerprint()
        assert env["python"]
        assert env["numpy"]  # numpy is a hard dependency of the repo
        assert env["cpu_count"] >= 1
        assert "numba" in env and "git_sha" in env


class TestDirections:
    def test_gated_patterns(self):
        assert metric_direction("minplus.general_backend.speedup") == "higher"
        assert metric_direction("compact.bisection_vs_dense.eval_ratio") == "higher"
        assert metric_direction("minplus.streaming_extraction.peak_bytes") == "lower"

    def test_seconds_not_gated(self):
        assert metric_direction("minplus.general_backend.backend_seconds") is None
        assert metric_direction("obs.report_generation.seconds") is None


class TestCheckRecords:
    def test_empty_and_single_record_pass(self):
        assert check_records([])["ok"] is True
        verdict = check_records([_record({"a.b.speedup": 5.0})])
        assert verdict["ok"] is True
        assert verdict["new"] == ["a.b.speedup"]
        assert verdict["checked"] == 0

    def test_stable_history_passes(self):
        records = [_record({"a.b.speedup": 5.0 + 0.1 * i}) for i in range(6)]
        verdict = check_records(records)
        assert verdict["ok"] is True
        assert verdict["checked"] == 1

    def test_2x_regression_fails(self):
        records = [_record({"a.b.speedup": 8.0}) for _ in range(3)]
        records.append(_record({"a.b.speedup": 4.0}))
        verdict = check_records(records)
        assert verdict["ok"] is False
        (violation,) = verdict["violations"]
        assert violation["metric"] == "a.b.speedup"
        assert violation["baseline"] == pytest.approx(8.0)
        assert violation["ratio"] == pytest.approx(0.5)
        assert violation["direction"] == "higher"

    def test_noise_within_threshold_passes(self):
        records = [_record({"a.b.speedup": 8.0}) for _ in range(3)]
        records.append(_record({"a.b.speedup": 8.0 * 0.75}))  # -25% < 40%
        assert check_records(records)["ok"] is True

    def test_lower_better_regression(self):
        records = [_record({"x.peak_bytes": 1000.0}) for _ in range(3)]
        records.append(_record({"x.peak_bytes": 2000.0}))
        verdict = check_records(records)
        assert verdict["ok"] is False
        assert verdict["violations"][0]["direction"] == "lower"

    def test_improvement_never_fails(self):
        records = [_record({"a.b.speedup": 8.0}) for _ in range(3)]
        records.append(_record({"a.b.speedup": 80.0}))
        assert check_records(records)["ok"] is True

    def test_window_limits_baseline(self):
        # old slow records age out of the window: median tracks the recent 5
        records = [_record({"a.b.speedup": 2.0}) for _ in range(5)]
        records += [_record({"a.b.speedup": 8.0}) for _ in range(4)]
        records.append(_record({"a.b.speedup": 4.5}))
        assert check_records(records, window=5)["ok"] is False
        assert check_records(records, window=9)["ok"] is True

    def test_ungated_metrics_ignored(self):
        records = [_record({"a.b.seconds": 1.0}) for _ in range(3)]
        records.append(_record({"a.b.seconds": 100.0}))
        verdict = check_records(records)
        assert verdict["ok"] is True
        assert verdict["checked"] == 0

    def test_metric_missing_from_history_is_new(self):
        records = [_record({"a.b.speedup": 8.0})]
        records.append(_record({"c.d.speedup": 3.0}))
        verdict = check_records(records)
        assert verdict["ok"] is True
        assert verdict["new"] == ["c.d.speedup"]


class TestCheckTrajectoryScript:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, str(SCRIPT), *args],
            capture_output=True,
            text=True,
            cwd=SCRIPT.parent.parent,
        )

    def _store(self, tmp_path, metrics_list):
        store = tmp_path / "T.jsonl"
        for metrics in metrics_list:
            append_record(_record(metrics), store)
        return store

    def test_two_good_runs_pass(self, tmp_path):
        store = self._store(
            tmp_path, [{"a.b.speedup": 8.0}, {"a.b.speedup": 7.9}]
        )
        proc = self._run("--path", str(store))
        assert proc.returncode == 0, proc.stderr
        assert "trajectory gate passed" in proc.stdout

    def test_synthetic_2x_regression_fails(self, tmp_path):
        store = self._store(
            tmp_path,
            [{"a.b.speedup": 8.0}, {"a.b.speedup": 8.1}, {"a.b.speedup": 4.0}],
        )
        proc = self._run("--path", str(store))
        assert proc.returncode == 1
        assert "REGRESSION: a.b.speedup" in proc.stderr

    def test_empty_store_passes(self, tmp_path):
        proc = self._run("--path", str(tmp_path / "absent.jsonl"))
        assert proc.returncode == 0
        assert "nothing to gate" in proc.stdout

    def test_malformed_store_exits_2(self, tmp_path):
        store = tmp_path / "T.jsonl"
        store.write_text("{broken\n")
        proc = self._run("--path", str(store))
        assert proc.returncode == 2

    def test_threshold_flag(self, tmp_path):
        store = self._store(
            tmp_path, [{"a.b.speedup": 8.0}, {"a.b.speedup": 7.0}]
        )
        proc = self._run("--path", str(store), "--threshold", "0.05")
        assert proc.returncode == 1

    def test_committed_store_passes(self):
        proc = self._run()
        assert proc.returncode == 0, proc.stdout + proc.stderr
