"""Tests for repro.obs.manifest: input collection, digests, stable views."""

import json

import pytest

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    TIMING_FIELDS,
    build_manifest,
    collecting_inputs,
    combine_manifests,
    digest_json,
    record_input,
    stable_view,
    write_manifest,
)


class TestInputCollection:
    def test_collects_while_open(self):
        with collecting_inputs() as inputs:
            record_input("trace", b"\x01\x02")
        assert inputs == {"trace": "0102"}

    def test_hex_string_passthrough(self):
        with collecting_inputs() as inputs:
            record_input("ctx", "abcdef")
        assert inputs == {"ctx": "abcdef"}

    def test_noop_when_no_collection_open(self):
        record_input("ignored", b"\x00")  # must not raise

    def test_nested_collections_both_see_inputs(self):
        with collecting_inputs() as outer:
            with collecting_inputs() as inner:
                record_input("shared", "aa")
            record_input("outer_only", "bb")
        assert inner == {"shared": "aa"}
        assert outer == {"shared": "aa", "outer_only": "bb"}

    def test_collection_closes_on_exception(self):
        with pytest.raises(RuntimeError):
            with collecting_inputs():
                raise RuntimeError("boom")
        record_input("after", "cc")  # the dead frame must be gone


class TestDigestJson:
    def test_deterministic_and_key_order_independent(self):
        assert digest_json({"a": 1, "b": [2, 3]}) == digest_json({"b": [2, 3], "a": 1})

    def test_distinguishes_content(self):
        assert digest_json({"a": 1}) != digest_json({"a": 2})


class TestBuildManifest:
    def manifest(self, **overrides):
        kwargs = dict(
            experiment_id="E1",
            title="demo",
            paper_reference="Figure 1",
            parameters={"frames": 72, "grid": (1, 2)},
            inputs={"ctx": "ff00"},
            seed=7,
            wall_time_s=0.5,
            metrics={"schema": "repro.metrics/1"},
            data_digest="aa",
        )
        kwargs.update(overrides)
        return build_manifest(**kwargs)

    def test_schema_and_fields(self):
        manifest = self.manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["experiment_id"] == "E1"
        assert manifest["seed"] == 7
        # tuples are canonicalized to lists so the manifest is plain JSON
        assert manifest["parameters"]["grid"] == [1, 2]
        json.dumps(manifest)

    def test_version_defaults_to_package_version(self):
        import repro

        assert self.manifest()["version"] == repro.__version__

    def test_stable_view_drops_exactly_timing_fields(self):
        manifest = self.manifest()
        view = stable_view(manifest)
        assert set(manifest) - set(view) == set(TIMING_FIELDS)

    def test_stable_view_equal_across_reruns(self):
        a = self.manifest(wall_time_s=0.1, metrics={"x": 1})
        b = self.manifest(wall_time_s=9.9, metrics={"x": 2})
        assert a != b
        assert stable_view(a) == stable_view(b)

    def test_write_manifest_roundtrip(self, tmp_path):
        manifest = self.manifest()
        path = tmp_path / "E1.manifest.json"
        write_manifest(manifest, path)
        assert json.loads(path.read_text()) == manifest


class TestCombineManifests:
    def child(self, exp_id, *, inputs=None, data_digest="dd", seed=None):
        return build_manifest(
            experiment_id=exp_id,
            inputs=inputs or {},
            seed=seed,
            data_digest=data_digest,
        )

    def test_empty_children_still_yields_valid_manifest(self):
        combined = combine_manifests([], experiment_id="PARALLEL")
        assert combined["schema"] == MANIFEST_SCHEMA
        assert combined["children"] == []
        assert combined["inputs"] == {}
        assert combined["data_digest"] == digest_json([])
        json.dumps(combined)

    def test_inputs_union_without_conflicts(self):
        combined = combine_manifests(
            [
                self.child("E1", inputs={"ctx": "aa"}),
                self.child("E2", inputs={"trace": "bb"}),
            ],
            experiment_id="PARALLEL",
        )
        assert combined["inputs"] == {"ctx": "aa", "trace": "bb"}

    def test_conflicting_digest_qualified_with_child_id(self):
        combined = combine_manifests(
            [
                self.child("E1", inputs={"ctx": "aa"}),
                self.child("E2", inputs={"ctx": "bb"}),
            ],
            experiment_id="PARALLEL",
        )
        assert combined["inputs"] == {"ctx": "aa", "ctx[E2]": "bb"}

    def test_same_digest_shared_name_not_qualified(self):
        combined = combine_manifests(
            [
                self.child("E1", inputs={"ctx": "aa"}),
                self.child("E2", inputs={"ctx": "aa"}),
            ],
            experiment_id="PARALLEL",
        )
        assert combined["inputs"] == {"ctx": "aa"}

    def test_children_summaries_sorted_by_experiment_id(self):
        combined = combine_manifests(
            [
                self.child("E9", seed=9, data_digest="d9"),
                self.child("E1", seed=1, data_digest="d1"),
            ],
            experiment_id="PARALLEL",
        )
        assert [c["experiment_id"] for c in combined["children"]] == ["E1", "E9"]
        assert combined["children"][0] == {
            "experiment_id": "E1",
            "data_digest": "d1",
            "seed": 1,
        }

    def test_combined_digest_independent_of_child_order(self):
        children = [self.child("E1", data_digest="d1"), self.child("E2", data_digest="d2")]
        a = combine_manifests(children, experiment_id="P")
        b = combine_manifests(list(reversed(children)), experiment_id="P")
        assert a["data_digest"] == b["data_digest"]

    def test_combined_digest_tracks_child_digests(self):
        a = combine_manifests(
            [self.child("E1", data_digest="d1")], experiment_id="P"
        )
        b = combine_manifests(
            [self.child("E1", data_digest="d2")], experiment_id="P"
        )
        assert a["data_digest"] != b["data_digest"]

    def test_child_missing_optional_keys(self):
        # a degraded child (e.g. deserialized from an old version) with no
        # inputs/seed keys must not break the fold
        bare = {"experiment_id": "E1", "data_digest": "dd"}
        combined = combine_manifests([bare], experiment_id="P")
        assert combined["children"] == [
            {"experiment_id": "E1", "data_digest": "dd", "seed": None}
        ]
