"""Unit tests for the GOP structure."""

import pytest

from repro.mpeg.gop import GopStructure
from repro.mpeg.macroblock import FrameType
from repro.util.validation import ValidationError


class TestGop:
    def test_default_display_order(self):
        gop = GopStructure()
        pattern = "".join(ft.value for ft in gop.display_order())
        assert pattern == "IBBPBBPBBPBB"

    def test_coded_order_anchors_first(self):
        gop = GopStructure()
        pattern = "".join(ft.value for ft in gop.coded_order())
        assert pattern == "IPBBPBBPBBBB"[: len(pattern)] or pattern.startswith("IP")
        # each B in coded order must be preceded by its anchors: first two
        # frames are I then P (the B-frames displayed between them follow)
        assert pattern[0] == "I"
        assert pattern[1] == "P"
        assert pattern.count("B") == 8

    def test_frames_per_gop(self):
        counts = GopStructure().frames_per_gop
        assert counts[FrameType.I] == 1
        assert counts[FrameType.P] == 3
        assert counts[FrameType.B] == 8

    def test_m1_no_b_frames(self):
        gop = GopStructure(n=6, m=1)
        pattern = "".join(ft.value for ft in gop.display_order())
        assert pattern == "IPPPPP"
        assert gop.coded_order() == gop.display_order()

    def test_frame_types_repeats_pattern(self):
        gop = GopStructure(n=4, m=2)
        types = gop.frame_types(10, order="display")
        assert len(types) == 10
        assert types[0] == types[4] == types[8] == FrameType.I

    def test_n_multiple_of_m_required(self):
        with pytest.raises(ValidationError):
            GopStructure(n=10, m=3)

    def test_bad_order_rejected(self):
        with pytest.raises(ValidationError):
            GopStructure().frame_types(5, order="sideways")
