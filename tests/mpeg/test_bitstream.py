"""Unit tests for the synthetic clip generator."""

import numpy as np
import pytest

from repro.core.workload import WorkloadCurvePair
from repro.mpeg.bitstream import ClipProfile, SyntheticClip
from repro.mpeg.macroblock import CodingClass, FrameType
from repro.util.validation import ValidationError

PROFILE = ClipProfile("test", seed=42, activity=0.6, motion=0.7, texture=0.5)


@pytest.fixture(scope="module")
def clip():
    c = SyntheticClip(PROFILE, frames=12)
    c.generate()
    return c


class TestProfile:
    def test_ranges_validated(self):
        with pytest.raises(ValidationError):
            ClipProfile("x", seed=1, activity=1.5, motion=0.5, texture=0.5)

    def test_name_required(self):
        with pytest.raises(ValidationError):
            ClipProfile("", seed=1, activity=0.5, motion=0.5, texture=0.5)


class TestGeneration:
    def test_deterministic(self):
        a = SyntheticClip(PROFILE, frames=3).generate()
        b = SyntheticClip(PROFILE, frames=3).generate()
        assert np.array_equal(a.pe2_cycles, b.pe2_cycles)
        assert np.array_equal(a.pe1_output, b.pe1_output)

    def test_different_seeds_differ(self):
        other = ClipProfile("other", seed=43, activity=0.6, motion=0.7, texture=0.5)
        a = SyntheticClip(PROFILE, frames=3).generate()
        b = SyntheticClip(other, frames=3).generate()
        assert not np.array_equal(a.pe2_cycles, b.pe2_cycles)

    def test_size(self, clip):
        data = clip.generate()
        assert data.n_macroblocks == 12 * 1620

    def test_cached(self, clip):
        assert clip.generate() is clip.generate()

    def test_cbr_total(self, clip):
        data = clip.generate()
        rate = data.bits.sum() / clip.duration()
        assert rate == pytest.approx(9.78e6, rel=0.05)

    def test_i_frames_all_intra(self, clip):
        data = clip.generate()
        i_mbs = data.frame_type_code == 0
        assert np.all(data.coding_code[i_mbs] == 0)

    def test_skipped_have_no_blocks(self, clip):
        data = clip.generate()
        skipped = data.coding_code == 2
        assert np.all(data.coded_blocks[skipped] == 0)

    def test_intra_have_blocks(self, clip):
        data = clip.generate()
        intra = data.coding_code == 0
        assert np.all(data.coded_blocks[intra] >= 1)

    def test_timing_monotone_and_causal(self, clip):
        data = clip.generate()
        assert np.all(np.diff(data.bit_arrival) >= 0)
        assert np.all(np.diff(data.pe1_output) > 0)
        assert np.all(data.pe1_output >= data.bit_arrival - 1e-12)

    def test_pe1_keeps_up_roughly(self, clip):
        data = clip.generate()
        # output ends close to the nominal duration: PE1 is provisioned to
        # keep up with the CBR front end
        assert data.pe1_output[-1] < clip.duration() * 1.2

    def test_demands_positive(self, clip):
        data = clip.generate()
        assert np.all(data.pe1_cycles > 0)
        assert np.all(data.pe2_cycles > 0)


class TestTraces:
    def test_pe2_trace_consistent(self):
        small = SyntheticClip(PROFILE, frames=1)
        trace = small.pe2_trace()
        data = small.generate()
        assert len(trace) == data.n_macroblocks
        assert np.allclose(trace.measured_demands(), data.pe2_cycles)
        assert np.allclose(trace.timestamps, data.pe1_output)

    def test_pe1_trace_timestamps_are_bit_arrivals(self):
        small = SyntheticClip(PROFILE, frames=1)
        trace = small.pe1_trace()
        data = small.generate()
        assert np.allclose(trace.timestamps, data.bit_arrival)

    def test_demands_within_profile_intervals(self):
        # EventTrace validates every event against the profile intervals
        small = SyntheticClip(PROFILE, frames=2)
        small.pe1_trace()
        small.pe2_trace()  # would raise on violation

    def test_macroblock_objects(self):
        small = SyntheticClip(PROFILE, frames=1)
        mbs = list(small.macroblocks())
        assert len(mbs) == 1620
        assert all(mb.frame_type is FrameType.I for mb in mbs)  # first frame

    def test_workload_curve_extraction(self):
        small = SyntheticClip(PROFILE, frames=2)
        data = small.generate()
        pair = WorkloadCurvePair.from_demand_array(data.pe2_cycles)
        assert pair.wcet == pytest.approx(data.pe2_cycles.max())
        assert pair.bcet == pytest.approx(data.pe2_cycles.min())


class TestScaling:
    def test_custom_mb_per_frame(self):
        tiny = SyntheticClip(PROFILE, frames=2, mb_per_frame=99)
        assert tiny.generate().n_macroblocks == 198

    def test_frames_validated(self):
        with pytest.raises(ValidationError):
            SyntheticClip(PROFILE, frames=0)
