"""Unit tests for the stage demand models."""

import numpy as np
import pytest

from repro.mpeg.demand import IDCT_MC_MODEL, VLD_IQ_MODEL, ClassCost, StageDemandModel
from repro.mpeg.macroblock import CodingClass, FrameType, Macroblock
from repro.util.validation import ValidationError


class TestClassCost:
    def test_base_required_positive(self):
        with pytest.raises(ValidationError):
            ClassCost(base=0.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValidationError):
            ClassCost(base=1.0, motion_weight=-1.0)


class TestStageDemandModel:
    def test_all_classes_required(self):
        with pytest.raises(ValidationError, match="missing cost classes"):
            StageDemandModel("x", {CodingClass.INTRA: ClassCost(base=1.0)})

    def test_scalar_matches_vector(self):
        mb = Macroblock(0, 0, FrameType.P, CodingClass.INTER, 3, 0.5, 0.4, 200.0)
        scalar = IDCT_MC_MODEL.cycles(mb)
        vector = IDCT_MC_MODEL.cycles_array(
            np.array([1]), np.array([3]), np.array([0.5]), np.array([0.4]), np.array([200.0])
        )
        assert scalar == pytest.approx(vector[0])

    def test_interval_contains_all_attribute_combos(self):
        rng = np.random.default_rng(0)
        for model in (VLD_IQ_MODEL, IDCT_MC_MODEL):
            for cls, code in [(CodingClass.INTRA, 0), (CodingClass.INTER, 1), (CodingClass.SKIPPED, 2)]:
                iv = model.interval(cls)
                lo_cbc = 1 if cls is CodingClass.INTRA else 0
                hi_cbc = 0 if cls is CodingClass.SKIPPED else 6
                for _ in range(200):
                    cbc = rng.integers(lo_cbc, hi_cbc + 1)
                    motion = rng.uniform() if cls is not CodingClass.INTRA else 0.0
                    tex = rng.uniform()
                    bits = rng.uniform(0, model.cost(cls).max_bits)
                    nominal = model.cycles_array(
                        np.array([code]), np.array([cbc]), np.array([motion]),
                        np.array([tex]), np.array([bits]),
                    )[0]
                    lo_j, hi_j = model.jitter
                    assert nominal * lo_j >= iv.bcet - 1e-9
                    assert nominal * (hi_j + model.stall_extra) <= iv.wcet + 1e-9

    def test_jitter_within_envelope(self):
        rng = np.random.default_rng(1)
        cycles = np.full(10_000, 1000.0)
        jittered = IDCT_MC_MODEL.apply_execution_jitter(rng, cycles)
        lo, hi = IDCT_MC_MODEL.jitter
        assert np.all(jittered >= 1000.0 * lo - 1e-9)
        assert np.all(jittered <= 1000.0 * (hi + IDCT_MC_MODEL.stall_extra) + 1e-9)

    def test_stalls_are_rare_but_present(self):
        rng = np.random.default_rng(2)
        cycles = np.full(50_000, 1000.0)
        jittered = IDCT_MC_MODEL.apply_execution_jitter(rng, cycles)
        hi = IDCT_MC_MODEL.jitter[1]
        stalled = np.mean(jittered > 1000.0 * hi)
        assert 0.005 < stalled < 0.05  # ~ stall_probability

    def test_profile_covers_alphabet(self):
        profile = IDCT_MC_MODEL.profile()
        assert "I/intra" in profile
        assert "P/inter" in profile
        assert "B/skipped" in profile
        assert "I/skipped" not in profile  # impossible combination

    def test_wcet_bcet_global(self):
        assert IDCT_MC_MODEL.wcet > IDCT_MC_MODEL.bcet > 0

    def test_wcet_ratio_calibration(self):
        """The calibrated PE2 model must exhibit the strong WCET/average
        variability the paper's case study exploits (ratio around 2+)."""
        assert IDCT_MC_MODEL.wcet / IDCT_MC_MODEL.interval(CodingClass.INTER).wcet < 1.5
        assert IDCT_MC_MODEL.wcet > 15_000

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValidationError):
            StageDemandModel(
                "x",
                {c: ClassCost(base=1.0) for c in CodingClass},
                jitter=(1.5, 1.0),
            )
