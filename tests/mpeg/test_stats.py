"""Unit tests for clip statistics."""

import pytest

from repro.mpeg.stats import clip_statistics
from repro.util.validation import ValidationError


class TestClipStatistics:
    def test_basic_aggregates(self, small_clip):
        stats = clip_statistics(small_clip)
        data = small_clip.generate()
        assert stats.n_macroblocks == data.n_macroblocks
        assert stats.mean_pe2_cycles == pytest.approx(data.pe2_cycles.mean())
        assert stats.max_pe2_cycles == pytest.approx(data.pe2_cycles.max())
        assert stats.wcet_over_mean > 1.5

    def test_cbr_rate(self, small_clip):
        stats = clip_statistics(small_clip)
        assert stats.bit_rate == pytest.approx(9.78e6, rel=0.06)

    def test_frame_type_breakdown(self, small_clip):
        stats = clip_statistics(small_clip)
        by_type = {s.frame_type: s for s in stats.per_frame_type}
        assert set(by_type) == {"I", "P", "B"}
        # I-frames are all intra and carry the most bits per macroblock
        assert by_type["I"].coding_mix["intra"] == pytest.approx(1.0)
        assert by_type["I"].mean_bits > by_type["B"].mean_bits

    def test_macroblock_counts_sum(self, small_clip):
        stats = clip_statistics(small_clip)
        assert sum(s.macroblocks for s in stats.per_frame_type) == stats.n_macroblocks

    def test_render_contains_table(self, small_clip):
        text = clip_statistics(small_clip).render()
        assert "frame type" in text
        assert small_clip.profile.name in text

    def test_type_checked(self):
        with pytest.raises(ValidationError):
            clip_statistics("not a clip")
