"""Unit tests for repro.mpeg.macroblock."""

import pytest

from repro.mpeg.macroblock import (
    MACROBLOCKS_PER_FRAME_PAL,
    CodingClass,
    FrameType,
    Macroblock,
)
from repro.util.validation import ValidationError


def make_mb(**overrides):
    defaults = dict(
        frame_index=0,
        index_in_frame=0,
        frame_type=FrameType.P,
        coding=CodingClass.INTER,
        coded_blocks=3,
        motion_complexity=0.5,
        texture_complexity=0.4,
        bits=200.0,
    )
    defaults.update(overrides)
    return Macroblock(**defaults)


class TestMacroblock:
    def test_pal_constant(self):
        assert MACROBLOCKS_PER_FRAME_PAL == 1620  # 45 x 36 for 720x576

    def test_valid(self):
        mb = make_mb()
        assert mb.type_name == "P/inter"

    def test_coded_blocks_bounds(self):
        with pytest.raises(ValidationError, match="<= 6"):
            make_mb(coded_blocks=7)

    def test_intra_needs_coefficients(self):
        with pytest.raises(ValidationError, match="always carry"):
            make_mb(coding=CodingClass.INTRA, coded_blocks=0, motion_complexity=0.0)

    def test_skipped_carries_none(self):
        with pytest.raises(ValidationError, match="no coefficients"):
            make_mb(coding=CodingClass.SKIPPED, coded_blocks=1)

    def test_no_skipped_in_i_frames(self):
        with pytest.raises(ValidationError, match="I-frames"):
            make_mb(
                frame_type=FrameType.I,
                coding=CodingClass.SKIPPED,
                coded_blocks=0,
                motion_complexity=0.1,
            )

    def test_intra_has_no_motion(self):
        with pytest.raises(ValidationError, match="no motion"):
            make_mb(coding=CodingClass.INTRA, coded_blocks=2, motion_complexity=0.5)

    def test_motion_range(self):
        with pytest.raises(ValidationError):
            make_mb(motion_complexity=1.5)

    def test_type_name_alphabet(self):
        mb = make_mb(
            frame_type=FrameType.B,
            coding=CodingClass.SKIPPED,
            coded_blocks=0,
            motion_complexity=0.1,
        )
        assert mb.type_name == "B/skipped"
