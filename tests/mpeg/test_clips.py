"""Unit tests for the 14 standard clip presets."""

import numpy as np
import pytest

from repro.mpeg.clips import CLIP_PROFILES, standard_clips


class TestClipPresets:
    def test_fourteen_clips(self):
        assert len(CLIP_PROFILES) == 14

    def test_unique_names_and_seeds(self):
        names = [p.name for p in CLIP_PROFILES]
        seeds = [p.seed for p in CLIP_PROFILES]
        assert len(set(names)) == 14
        assert len(set(seeds)) == 14

    def test_diversity(self):
        activities = [p.activity for p in CLIP_PROFILES]
        motions = [p.motion for p in CLIP_PROFILES]
        assert max(activities) - min(activities) > 0.5
        assert max(motions) - min(motions) > 0.5

    def test_standard_clips_factory(self):
        clips = standard_clips(frames=2)
        assert len(clips) == 14
        assert all(c.frames == 2 for c in clips)

    def test_kwargs_forwarded(self):
        clips = standard_clips(frames=2, mb_per_frame=45)
        assert clips[0].generate().n_macroblocks == 90

    def test_busy_clips_demand_more(self):
        quiet = standard_clips(frames=6)[0]   # talking-head
        busy = standard_clips(frames=6)[11]   # motor-race
        assert busy.generate().pe2_cycles.mean() > quiet.generate().pe2_cycles.mean()
