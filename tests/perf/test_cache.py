"""Cache-correctness suite: counter accounting, opt-out parity, mutation
safety, eviction, and configuration of the kernel memo cache."""

from __future__ import annotations

import numpy as np
import pytest

import repro.perf as perf
from repro.core.workload import WorkloadCurve
from repro.curves.arrival import leaky_bucket
from repro.curves.curve import PiecewiseLinearCurve, step_curve
from repro.curves.minplus import convolve, deconvolve, self_convolution_fixpoint
from repro.curves.service import rate_latency
from repro.perf.cache import KernelCache, digest_of, kernel_cache
from repro.util.staircase import (
    cumulative_envelope_max,
    cumulative_envelope_min,
    cumulative_envelope_minmax,
)


@pytest.fixture(autouse=True)
def fresh_perf_state():
    """Each test starts and ends with an empty, enabled cache."""
    perf.reset()
    perf.configure(enabled=True, max_entries=4096)
    yield
    perf.reset()
    perf.configure(enabled=True, max_entries=4096)


def _curves():
    return leaky_bucket(10.0, 2.0), rate_latency(5.0, 1.5)


class TestCounterAccounting:
    def test_hits_plus_misses_equals_calls(self):
        f, g = _curves()
        for _ in range(5):
            convolve(f, g)
        stats = perf.cache_stats()
        assert stats["hits"] + stats["misses"] == stats["calls"]
        per_op = stats["per_op"]["minplus.convolve"]
        assert per_op["misses"] == 1
        assert per_op["hits"] == 4

    def test_per_op_counters_are_separate(self):
        f, g = _curves()
        convolve(f, g)
        convolve(f, g)
        deconvolve(f, g)
        per_op = perf.cache_stats()["per_op"]
        assert per_op["minplus.convolve"] == {"hits": 1, "misses": 1}
        assert per_op["minplus.deconvolve"] == {"hits": 0, "misses": 1}

    def test_disabled_counts_bypasses_not_calls(self):
        f, g = _curves()
        perf.configure(enabled=False)
        convolve(f, g)
        convolve(f, g)
        stats = perf.cache_stats()
        assert stats["calls"] == 0
        assert stats["bypasses"] == 2

    def test_instrumentation_counts_only_real_computes(self):
        f, g = _curves()
        convolve(f, g)
        convolve(f, g)  # hit: the kernel body must not run again
        kernels = perf.report()["kernels"]
        assert kernels["minplus.convolve"]["calls"] == 1
        assert kernels["minplus.convolve"]["seconds"] >= 0.0


class TestDisabledParity:
    """Cache off must produce values identical to cache on (purity)."""

    @pytest.mark.parametrize(
        "op",
        [
            lambda f, g: convolve(f, g),
            lambda f, g: deconvolve(f, g),
            lambda f, g: self_convolution_fixpoint(f),
        ],
    )
    def test_minplus_identical_outputs(self, op):
        f, g = _curves()
        cached = op(f, g)
        perf.configure(enabled=False)
        plain = op(f, g)
        assert np.array_equal(cached.breakpoints, plain.breakpoints)
        assert np.array_equal(cached.values_at_breakpoints, plain.values_at_breakpoints)
        assert np.array_equal(cached.slopes, plain.slopes)

    def test_envelope_identical_outputs(self):
        rng = np.random.default_rng(7)
        demands = rng.uniform(1.0, 9.0, 200)
        ks = np.arange(1, 201)
        lo1, hi1 = cumulative_envelope_minmax(demands, ks)
        perf.configure(enabled=False)
        lo2, hi2 = cumulative_envelope_minmax(demands, ks)
        assert np.array_equal(lo1, lo2)
        assert np.array_equal(hi1, hi2)

    def test_workload_combine_and_inverse_identical(self):
        rng = np.random.default_rng(11)
        a = WorkloadCurve.from_demand_array(rng.uniform(1, 5, 60), "upper")
        b = WorkloadCurve.from_demand_array(rng.uniform(1, 5, 60), "upper")
        budgets = np.linspace(0.0, float(a(120)), 37)
        combined = a.max_with(b)
        inverted = a.pseudo_inverse(budgets)
        perf.configure(enabled=False)
        assert a.max_with(b) == combined
        assert np.array_equal(a.pseudo_inverse(budgets), inverted)


class TestMutationSafety:
    def test_curve_results_expose_only_copies(self):
        f, g = _curves()
        first = convolve(f, g)
        # the accessors hand out copies: scribbling over them must not
        # poison the cached master
        first.breakpoints[:] = -1.0
        first.values_at_breakpoints[:] = -1.0
        first.slopes[:] = -1.0
        second = convolve(f, g)
        assert np.all(second.breakpoints >= 0.0)
        assert np.all(second.values_at_breakpoints >= 0.0)

    def test_envelope_arrays_are_defensive_copies(self):
        demands = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        ks = np.array([1, 2, 3])
        out = cumulative_envelope_max(demands, ks)
        out[:] = -999.0
        again = cumulative_envelope_max(demands, ks)
        assert np.array_equal(again, np.array([5.0, 6.0, 10.0]))

    def test_pseudo_inverse_array_is_defensive_copy(self):
        curve = WorkloadCurve("upper", [1, 2, 3], [2.0, 4.0, 6.0])
        budgets = np.array([0.0, 2.0, 5.0])
        out = curve.pseudo_inverse(budgets)
        out[:] = -7
        assert np.array_equal(curve.pseudo_inverse(budgets), np.array([0, 1, 2]))

    def test_input_mutation_cannot_alias_cache(self):
        # step_curve copies its inputs into the immutable curve, and the
        # digest is taken from the curve's own arrays — mutating the
        # original input array afterwards must not change what is cached
        positions = np.array([1.0, 2.0, 3.0])
        alpha = step_curve(positions)
        beta = rate_latency(4.0, 0.5)
        first = convolve(alpha, beta)
        positions[:] = 99.0
        assert convolve(alpha, beta) == first


class TestEvictionAndConfig:
    def test_lru_eviction_counts(self):
        cache = KernelCache(max_entries=2)
        for i in range(4):
            cache.get_or_compute(("op", i), lambda i=i: i * 10)
        assert cache.evictions == 2
        assert len(cache) == 2
        # oldest entries are gone: recompute is a miss
        cache.get_or_compute(("op", 0), lambda: 0)
        assert cache.misses == 5

    def test_lru_order_refreshed_by_hits(self):
        cache = KernelCache(max_entries=2)
        cache.get_or_compute(("op", "a"), lambda: 1)
        cache.get_or_compute(("op", "b"), lambda: 2)
        cache.get_or_compute(("op", "a"), lambda: 1)  # refresh a
        cache.get_or_compute(("op", "c"), lambda: 3)  # evicts b, not a
        assert cache.get_or_compute(("op", "a"), lambda: -1) == 1
        assert cache.hits == 2

    def test_clear_drops_entries_keeps_counters(self):
        f, g = _curves()
        convolve(f, g)
        perf.clear_cache()
        stats = perf.cache_stats()
        assert stats["entries"] == 0
        assert stats["misses"] == 1
        convolve(f, g)
        assert perf.cache_stats()["misses"] == 2

    def test_configure_rejects_bad_size(self):
        with pytest.raises(ValueError):
            perf.configure(max_entries=0)

    def test_report_shape(self):
        f, g = _curves()
        convolve(f, g)
        report = perf.report()
        assert set(report) == {"kernels", "cache"}
        assert "minplus.convolve" in report["kernels"]
        assert report["cache"]["entries"] >= 1


class TestDigests:
    def test_digest_distinguishes_dtype_and_shape(self):
        a = np.array([1.0, 2.0])
        assert digest_of(a) != digest_of(a.astype(np.int64))
        assert digest_of(np.zeros(4)) != digest_of(np.zeros((2, 2)))

    def test_digest_distinguishes_operand_order(self):
        f, g = _curves()
        assert digest_of(f.content_digest(), g.content_digest()) != digest_of(
            g.content_digest(), f.content_digest()
        )

    def test_allclose_curves_do_not_collide(self):
        a = PiecewiseLinearCurve([0.0], [1.0], [2.0])
        b = PiecewiseLinearCurve([0.0], [1.0 + 1e-12], [2.0])
        assert a == b  # approximate equality...
        assert a.content_digest() != b.content_digest()  # ...exact digests

    def test_envelope_cache_shared_between_min_and_max(self):
        demands = np.arange(1.0, 41.0)
        ks = np.arange(1, 41)
        cumulative_envelope_max(demands, ks)
        cumulative_envelope_min(demands, ks)  # same key: pure hit
        per_op = perf.cache_stats()["per_op"]["staircase.envelope_minmax"]
        assert per_op == {"hits": 1, "misses": 1}
