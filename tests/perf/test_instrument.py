"""Tests for repro.perf.instrument and its obs-registry backing."""

import json

import pytest

import repro.perf as perf
from repro.obs.metrics import registry
from repro.obs.tracing import tracer
from repro.perf.instrument import (
    CALLS_METRIC,
    HISTOGRAM_METRIC,
    SECONDS_METRIC,
    instrumented,
    record,
    snapshot,
)


@pytest.fixture(autouse=True)
def fresh_state():
    perf.reset()
    yield
    perf.reset()
    tracer.disable()


@instrumented("test.kernel")
def _work(x):
    return x * 2


class TestInstrumented:
    def test_counts_calls_and_time(self):
        assert _work(3) == 6
        assert _work(4) == 8
        snap = snapshot()
        assert snap["test.kernel"]["calls"] == 2
        assert snap["test.kernel"]["seconds"] >= 0

    def test_calls_is_int_in_exported_json(self):
        _work(1)
        payload = json.dumps(snapshot())
        assert '"calls": 1' in payload  # not 1.0

    def test_snapshot_without_reset_roundtrips(self):
        _work(1)
        first = snapshot(reset=False)
        second = snapshot(reset=False)
        assert first == second
        assert second["test.kernel"]["calls"] == 1

    def test_snapshot_with_reset_zeroes(self):
        _work(1)
        assert snapshot(reset=True)["test.kernel"]["calls"] == 1
        assert snapshot() == {}

    def test_registry_series_are_labeled(self):
        _work(1)
        (calls,) = [
            s for s in registry.series(CALLS_METRIC) if s.labels == {"kernel": "test.kernel"}
        ]
        assert calls.value == 1
        (secs,) = [
            s
            for s in registry.series(SECONDS_METRIC)
            if s.labels == {"kernel": "test.kernel"}
        ]
        assert secs.value >= 0
        (hist,) = [
            s
            for s in registry.series(HISTOGRAM_METRIC)
            if s.labels == {"kernel": "test.kernel"}
        ]
        assert hist.count == 1

    def test_emits_span_only_when_tracing(self):
        tracer.reset()
        _work(1)
        assert len(tracer) == 0
        tracer.enable()
        try:
            _work(1)
        finally:
            tracer.disable()
        names = [r["name"] for r in tracer.records()]
        assert "test.kernel" in names
        tracer.reset()

    def test_attrs_callable_runs_only_when_tracing(self):
        calls = []

        @instrumented("test.attrs", attrs=lambda x: calls.append(x) or {"x": x})
        def g(x):
            return x

        g(1)
        assert calls == []  # tracing off: attrs never evaluated
        tracer.enable()
        tracer.reset()
        try:
            g(2)
        finally:
            tracer.disable()
        assert calls == [2]
        (rec,) = [r for r in tracer.records() if r["name"] == "test.attrs"]
        assert rec["attrs"] == {"x": 2}
        tracer.reset()

    def test_record_accumulates(self):
        record("test.manual", 0.5)
        record("test.manual", 0.25)
        snap = snapshot()
        assert snap["test.manual"]["calls"] == 2
        assert snap["test.manual"]["seconds"] == pytest.approx(0.75)


class TestPerfReportCompat:
    def test_report_shape(self):
        _work(1)
        report = perf.report()
        assert set(report) == {"kernels", "cache"}
        assert report["kernels"]["test.kernel"]["calls"] == 1
        for key in ("hits", "misses", "evictions", "bypasses", "calls"):
            assert key in report["cache"]

    def test_cache_counters_visible_in_registry_snapshot(self):
        snap = registry.snapshot()
        names = {c["name"] for c in snap["counters"]}
        assert {"cache.hits", "cache.misses", "cache.evictions", "cache.bypasses"} <= names
        gauges = {g["name"] for g in snap["gauges"]}
        assert {"cache.entries", "cache.max_entries", "cache.enabled"} <= gauges
