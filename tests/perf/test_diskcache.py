"""Tests for the persistent on-disk kernel cache.

Covers the satellite checklist explicitly: LRU eviction order, crash
simulation via truncated files, and concurrent writers — plus the
integration under the in-memory level and the metrics publication.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

import repro.perf as perf
from repro.obs.metrics import registry
from repro.perf.cache import kernel_cache
from repro.perf.diskcache import DiskCache


def entry_path(cache: DiskCache, key: tuple):
    """Filesystem path of *key*'s entry."""
    return cache._path_for(cache.key_hex(key))


class TestDiskCacheBasics:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = ("op", b"digest", 3)
        hit, value = cache.get(key)
        assert not hit and value is None
        assert cache.put(key, {"answer": 42})
        hit, value = cache.get(key)
        assert hit and value == {"answer": 42}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["writes"] == 1

    def test_numpy_values_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        array = np.linspace(0.0, 1.0, 257)
        cache.put(("arr",), array)
        hit, value = cache.get(("arr",))
        assert hit
        np.testing.assert_array_equal(value, array)

    def test_distinct_keys_do_not_alias(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(("op", 1), "one")
        cache.put(("op", 2), "two")
        assert cache.get(("op", 1)) == (True, "one")
        assert cache.get(("op", 2)) == (True, "two")
        assert len(cache) == 2

    def test_persistence_across_instances(self, tmp_path):
        DiskCache(tmp_path).put(("k",), [1, 2, 3])
        reopened = DiskCache(tmp_path)
        assert reopened.get(("k",)) == (True, [1, 2, 3])

    def test_unpicklable_value_is_swallowed(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert not cache.put(("bad",), lambda: None)  # lambdas don't pickle
        assert cache.stats()["errors"] == 1
        assert cache.get(("bad",))[0] is False


class TestEviction:
    def test_lru_eviction_order(self, tmp_path):
        payload = b"x" * 4096
        cache = DiskCache(tmp_path, max_bytes=3 * 5000)
        now = time.time()
        # backdated, distinct mtimes even on coarse-granularity filesystems
        for age, name in ((100, "a"), (99, "b"), (98, "c")):
            assert cache.put((name,), payload)
            os.utime(entry_path(cache, (name,)), (now - age, now - age))
        # touch "a" so "b" becomes the least recently used
        os.utime(entry_path(cache, ("a",)), (now - 50, now - 50))
        assert cache.put(("d",), payload)  # pushes the store over the cap
        assert cache.get(("b",))[0] is False, "LRU entry should be evicted"
        assert cache.get(("a",))[0] is True
        assert cache.get(("d",))[0] is True
        assert cache.stats()["evictions"] >= 1

    def test_eviction_keeps_store_under_cap(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=10_000)
        for i in range(20):
            cache.put((i,), b"y" * 2048)
        assert cache._scan_bytes() <= 10_000


class TestCorruption:
    def test_truncated_file_reads_as_miss_and_heals(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = ("will-truncate",)
        cache.put(key, list(range(1000)))
        path = entry_path(cache, key)
        path.write_bytes(path.read_bytes()[:7])  # simulate a torn write
        hit, value = cache.get(key)
        assert not hit and value is None
        assert cache.stats()["errors"] == 1
        assert not path.exists(), "corrupt entry must be removed"
        # the slot heals on the next write
        cache.put(key, "fresh")
        assert cache.get(key) == (True, "fresh")

    def test_garbage_bytes_read_as_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = ("garbage",)
        cache.put(key, "value")
        entry_path(cache, key).write_bytes(b"\x00\xffnot a pickle")
        assert cache.get(key)[0] is False

    def test_stale_tmp_files_are_swept(self, tmp_path):
        stale = tmp_path / "tmp.999.1"
        stale.write_bytes(b"half-written")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        DiskCache(tmp_path)
        assert not stale.exists()


class TestConcurrency:
    def test_concurrent_writers_and_readers(self, tmp_path):
        cache = DiskCache(tmp_path)
        errors: list[BaseException] = []

        def worker(worker_id: int) -> None:
            try:
                for i in range(30):
                    key = ("shared", i % 7)
                    cache.put(key, {"worker": worker_id, "i": i % 7})
                    hit, value = cache.get(key)
                    if hit:
                        assert value["i"] == i % 7
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.stats()["errors"] == 0
        for i in range(7):
            hit, value = cache.get(("shared", i))
            assert hit and value["i"] == i

    def test_concurrent_instances_share_the_store(self, tmp_path):
        a = DiskCache(tmp_path)
        b = DiskCache(tmp_path)
        a.put(("x",), "from-a")
        assert b.get(("x",)) == (True, "from-a")


class TestKernelCacheIntegration:
    @pytest.fixture(autouse=True)
    def _detach(self):
        yield
        perf.configure(disk_dir=False)
        perf.reset()

    def test_disk_level_serves_after_memory_clear(self, tmp_path):
        perf.reset()
        perf.configure(disk_dir=tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return np.arange(5.0)

        key = ("test.op", b"k1")
        first = kernel_cache.get_or_compute(key, compute, copy=True)
        perf.clear_cache()  # drop the memory level only
        second = kernel_cache.get_or_compute(key, compute, copy=True)
        np.testing.assert_array_equal(first, second)
        assert len(calls) == 1, "disk hit must not recompute"
        assert kernel_cache.stats()["disk"]["hits"] == 1

    def test_disabled_cache_bypasses_disk_too(self, tmp_path):
        perf.reset()
        perf.configure(disk_dir=tmp_path, enabled=False)
        calls = []
        key = ("test.op", b"k2")
        kernel_cache.get_or_compute(key, lambda: calls.append(1) or 1)
        kernel_cache.get_or_compute(key, lambda: calls.append(1) or 1)
        assert len(calls) == 2
        perf.configure(enabled=True)

    def test_stats_and_metrics_publication(self, tmp_path):
        perf.reset()
        perf.configure(disk_dir=tmp_path)
        kernel_cache.get_or_compute(("test.op", b"k3"), lambda: 7)
        stats = perf.cache_stats()
        assert stats["disk"]["writes"] == 1
        snapshot = registry.snapshot()
        names = {c["name"] for c in snapshot["counters"]}
        assert {"diskcache.hits", "diskcache.misses", "diskcache.writes"} <= names
        gauges = {g["name"]: g["value"] for g in snapshot["gauges"]}
        assert gauges["diskcache.entries"] == 1

    def test_reset_keeps_disk_entries(self, tmp_path):
        perf.configure(disk_dir=tmp_path)
        kernel_cache.get_or_compute(("test.op", b"k4"), lambda: 9)
        perf.reset()
        assert kernel_cache.disk is not None
        assert len(kernel_cache.disk) == 1
        assert kernel_cache.disk.stats()["writes"] == 0  # counters zeroed
