"""Satellite bugfix: curve classes define __eq__ AND a consistent __hash__.

Before this change ``WorkloadCurve`` and ``PiecewiseLinearCurve`` defined
``__eq__`` without ``__hash__``, so instances were unhashable and could not
serve as dict keys / set members (or cache-key components).
"""

from __future__ import annotations

import numpy as np

from repro.core.workload import WorkloadCurve
from repro.curves.curve import PiecewiseLinearCurve, linear_curve, step_curve


def _wc(kind="upper"):
    return WorkloadCurve(kind, [1, 2, 4], [2.0, 4.0, 7.0])


class TestWorkloadCurveHash:
    def test_equal_curves_hash_equal(self):
        a, b = _wc(), _wc()
        assert a == b
        assert hash(a) == hash(b)

    def test_allclose_values_hash_equal(self):
        # __eq__ is allclose on values, so equal curves with tiny value
        # noise must still land in the same hash bucket
        a = _wc()
        b = WorkloadCurve("upper", [1, 2, 4], [2.0, 4.0, 7.0 + 1e-9])
        assert a == b
        assert hash(a) == hash(b)

    def test_usable_in_sets_and_dicts(self):
        a, b, c = _wc(), _wc(), _wc("lower")
        assert len({a, b}) == 1
        table = {a: "first"}
        table[b] = "second"  # same key: overwrites
        table[c] = "lower"
        assert table[a] == "second"
        assert len(table) == 2

    def test_different_kind_or_grid_not_equal(self):
        upper = _wc()
        other_grid = WorkloadCurve("upper", [1, 2, 5], [2.0, 4.0, 7.0])
        assert upper != _wc("lower")
        assert upper != other_grid


class TestPiecewiseLinearCurveHash:
    def test_equal_curves_hash_equal(self):
        a = linear_curve(2.0, offset=1.0)
        b = linear_curve(2.0, offset=1.0)
        assert a == b
        assert hash(a) == hash(b)

    def test_unsimplified_representation_hashes_like_simplified(self):
        # two representations of the same function: one with a redundant
        # collinear breakpoint; __eq__ simplifies, so hash must agree
        plain = PiecewiseLinearCurve([0.0], [0.0], [2.0])
        redundant = PiecewiseLinearCurve([0.0, 1.0], [0.0, 2.0], [2.0, 2.0])
        assert plain == redundant
        assert hash(plain) == hash(redundant)

    def test_usable_in_sets_and_dicts(self):
        a = step_curve([1.0, 2.0])
        b = step_curve([1.0, 2.0])
        assert len({a, b}) == 1
        assert {a: "x"}[b] == "x"

    def test_hash_is_cached_and_stable(self):
        a = step_curve([1.0, 2.0, 3.0])
        assert hash(a) == hash(a)

    def test_numpy_array_equal_roundtrip_preserves_equality_and_hash(self):
        a = step_curve([1.0, 2.0])
        b = PiecewiseLinearCurve(a.breakpoints, a.values_at_breakpoints, a.slopes)
        assert a == b
        assert hash(a) == hash(b)
        assert np.array_equal(a.breakpoints, b.breakpoints)
