"""Batch kernels: convolve_many / evaluate_at_many / convolve_reduce."""

from __future__ import annotations

import numpy as np
import pytest

import repro.perf as perf
from repro.curves.arrival import leaky_bucket, periodic_upper
from repro.curves.curve import linear_curve, step_curve, zero_curve
from repro.curves.minplus import convolve
from repro.curves.service import rate_latency
from repro.perf.batch import convolve_many, convolve_reduce, evaluate_at_many
from repro.util.validation import ValidationError


@pytest.fixture(autouse=True)
def fresh_perf_state():
    perf.reset()
    perf.configure(enabled=True)
    yield
    perf.reset()


def test_convolve_many_matches_scalar_calls():
    pairs = [
        (leaky_bucket(10.0, 2.0), rate_latency(5.0, 1.5)),
        (leaky_bucket(3.0, 1.0), rate_latency(9.0, 4.0)),
        (step_curve([1.0, 2.0, 3.0]), linear_curve(2.0)),
    ]
    batch = convolve_many(pairs)
    for (f, g), got in zip(pairs, batch):
        assert got == convolve(f, g)


def test_convolve_many_dedups_repeated_pairs():
    f, g = leaky_bucket(10.0, 2.0), rate_latency(5.0, 1.5)
    convolve_many([(f, g)] * 6)
    per_op = perf.cache_stats()["per_op"]["minplus.convolve"]
    assert per_op["misses"] == 1
    assert per_op["hits"] == 5


def test_evaluate_at_many_matches_scalar_evaluation():
    curves = [
        leaky_bucket(4.0, 1.0),
        rate_latency(3.0, 2.0),
        step_curve([0.5, 1.5, 2.5]),
        zero_curve(),
    ]
    deltas = np.linspace(0.0, 5.0, 23)
    out = evaluate_at_many(curves, deltas)
    assert out.shape == (4, 23)
    for i, curve in enumerate(curves):
        expected = [curve(float(d)) for d in deltas]
        assert np.array_equal(out[i], np.array(expected))


def test_evaluate_at_many_scalar_delta_and_validation():
    out = evaluate_at_many([linear_curve(2.0)], 3.0)
    assert out.shape == (1, 1)
    assert out[0, 0] == 6.0
    with pytest.raises(ValidationError):
        evaluate_at_many([linear_curve(1.0)], [-1.0])
    with pytest.raises(ValidationError):
        evaluate_at_many([object()], [1.0])  # type: ignore[list-item]


def test_convolve_reduce_matches_left_fold():
    curves = [
        leaky_bucket(10.0, 2.0),
        rate_latency(5.0, 1.5),
        leaky_bucket(6.0, 1.2),
        rate_latency(2.0, 3.0),
        periodic_upper(1.0, horizon_periods=8),
    ]
    tree = convolve_reduce(curves)
    fold = curves[0]
    for c in curves[1:]:
        fold = convolve(fold, c)
    # associativity: identical curves up to representation noise
    deltas = np.linspace(0.0, 20.0, 101)
    assert np.allclose(tree(deltas), fold(deltas), rtol=1e-9, atol=1e-9)


def test_convolve_reduce_single_and_empty():
    only = leaky_bucket(1.0, 1.0)
    assert convolve_reduce([only]) is only
    with pytest.raises(ValidationError):
        convolve_reduce([])
