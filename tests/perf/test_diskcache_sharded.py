"""Tests for the sharded disk-cache layout.

Covers the satellite checklist explicitly: concurrent writers across
shards, torn-write recovery per shard, and transparent migration from
the legacy flat (single-directory) layout — plus per-shard eviction
budgets and the configuration plumbing.
"""

from __future__ import annotations

import threading

import pytest

from repro.perf.cache import attach_disk_cache, detach_disk_cache
from repro.perf.diskcache import _SHARD_PREFIX, DiskCache


class TestShardedLayout:
    def test_shards_create_directories(self, tmp_path):
        cache = DiskCache(tmp_path, shards=4)
        names = sorted(p.name for p in tmp_path.iterdir() if p.is_dir())
        assert names == [f"{_SHARD_PREFIX}{i:02x}" for i in range(4)]
        assert cache.stats()["shards"] == 4

    def test_single_shard_is_legacy_layout(self, tmp_path):
        cache = DiskCache(tmp_path, shards=1)
        cache.put(("k",), "v")
        hexkey = cache.key_hex(("k",))
        # entry sits directly under <root>/<hex[:2]>/, no shard directory
        assert (tmp_path / hexkey[:2] / f"{hexkey}.pkl").exists()
        assert not list(tmp_path.glob(f"{_SHARD_PREFIX}*"))

    def test_entries_spread_across_shards(self, tmp_path):
        cache = DiskCache(tmp_path, shards=8)
        for i in range(64):
            cache.put(("key", i), i)
        populated = sum(
            1
            for d in tmp_path.glob(f"{_SHARD_PREFIX}*")
            if any(d.glob("*/*.pkl"))
        )
        assert populated > 1  # 64 blake2b digests never land in one shard
        assert len(cache) == 64
        for i in range(64):
            assert cache.get(("key", i)) == (True, i)

    def test_shard_count_validated(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCache(tmp_path, shards=0)
        with pytest.raises(ValueError):
            DiskCache(tmp_path, shards=257)


class TestConcurrentWriters:
    def test_parallel_writers_across_shards(self, tmp_path):
        cache = DiskCache(tmp_path, shards=8)
        per_thread, threads = 50, 6
        errors: list[Exception] = []

        def writer(tid: int) -> None:
            try:
                for i in range(per_thread):
                    key = ("w", tid, i)
                    assert cache.put(key, (tid, i))
                    hit, value = cache.get(key)
                    assert hit and value == (tid, i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [
            threading.Thread(target=writer, args=(tid,)) for tid in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert not errors
        assert cache.stats()["errors"] == 0
        assert len(cache) == per_thread * threads
        # every entry is still readable after the storm
        for tid in range(threads):
            for i in range(per_thread):
                assert cache.get(("w", tid, i)) == (True, (tid, i))


class TestTornWrites:
    def test_truncated_entry_is_a_healed_miss_per_shard(self, tmp_path):
        cache = DiskCache(tmp_path, shards=4)
        for i in range(16):
            cache.put(("t", i), list(range(i)))
        victim_key = ("t", 3)
        path = cache._path_for(cache.key_hex(victim_key))
        path.write_bytes(path.read_bytes()[:7])  # simulate a torn write
        hit, value = cache.get(victim_key)
        assert not hit and value is None
        assert not path.exists()  # bad entry removed so the slot heals
        assert cache.stats()["errors"] == 1
        # the other shards (and the rest of this one) are untouched
        for i in range(16):
            if i == 3:
                continue
            assert cache.get(("t", i)) == (True, list(range(i)))

    def test_stale_tmp_files_swept_per_shard(self, tmp_path):
        cache = DiskCache(tmp_path, shards=2)
        stale = cache._shards[1].directory / "tmp.999.1"
        stale.write_bytes(b"half-written")
        import os
        import time

        old = time.time() - 3600
        os.utime(stale, (old, old))
        DiskCache(tmp_path, shards=2)
        assert not stale.exists()


class TestMigration:
    def test_flat_store_migrates_to_sharded(self, tmp_path):
        flat = DiskCache(tmp_path, shards=1)
        for i in range(20):
            flat.put(("m", i), {"i": i})
        sharded = DiskCache(tmp_path, shards=8)
        assert sharded.migrated == 20
        assert sharded.stats()["migrated"] == 20
        for i in range(20):
            assert sharded.get(("m", i)) == (True, {"i": i})
        # the legacy fan-out directories at the root are drained away
        from repro.perf.diskcache import _is_legacy_fanout

        leftovers = [
            p for p in tmp_path.iterdir() if p.is_dir() and _is_legacy_fanout(p.name)
        ]
        assert leftovers == []

    def test_sharded_store_migrates_back_to_flat(self, tmp_path):
        sharded = DiskCache(tmp_path, shards=8)
        for i in range(12):
            sharded.put(("b", i), i * i)
        flat = DiskCache(tmp_path, shards=1)
        assert flat.migrated == 12
        for i in range(12):
            assert flat.get(("b", i)) == (True, i * i)
        assert not list(tmp_path.glob(f"{_SHARD_PREFIX}*"))

    def test_resharding_between_counts(self, tmp_path):
        four = DiskCache(tmp_path, shards=4)
        for i in range(15):
            four.put(("r", i), i)
        two = DiskCache(tmp_path, shards=2)
        # only entries homed in shard-02/shard-03 needed to move
        assert 0 < two.migrated <= 15
        for i in range(15):
            assert two.get(("r", i)) == (True, i)

    def test_migration_preserves_values_bit_for_bit(self, tmp_path):
        import numpy as np

        flat = DiskCache(tmp_path, shards=1)
        array = np.linspace(0.0, 5.0, 1001)
        flat.put(("arr",), array)
        sharded = DiskCache(tmp_path, shards=16)
        hit, value = sharded.get(("arr",))
        assert hit
        np.testing.assert_array_equal(value, array)


class TestPerShardEviction:
    def test_eviction_budget_is_per_shard(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=20_000, shards=4)
        payload = "x" * 1000
        for i in range(200):
            cache.put(("e", i), payload)
        stats = cache.stats()
        assert stats["evictions"] > 0
        # each shard respects its own budget (max_bytes / shards)
        for shard in cache._shards:
            resident = sum(s for _, s, _ in cache._shard_entries(shard))
            assert resident <= cache.max_bytes // cache.shards

    def test_eviction_keeps_other_shards_intact(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=1_000_000, shards=2)
        # place one tiny entry, then overflow the *other* shard only
        keys = [("probe", i) for i in range(50)]
        probe = next(k for k in keys if cache._shard_for(cache.key_hex(k)) is cache._shards[0])
        cache.put(probe, "keep me")
        big = "y" * 400_000
        stuffed = 0
        for i in range(30):
            key = ("stuff", i)
            if cache._shard_for(cache.key_hex(key)) is cache._shards[1]:
                cache.put(key, big)
                stuffed += 1
        assert stuffed > 1  # enough volume to trigger shard-1 eviction
        assert cache.stats()["evictions"] > 0
        assert cache.get(probe) == (True, "keep me")


class TestConfiguration:
    def test_attach_disk_cache_shards(self, tmp_path):
        try:
            cache = attach_disk_cache(tmp_path, shards=4)
            assert cache.shards == 4
            assert sorted(p.name for p in tmp_path.iterdir() if p.is_dir()) == [
                f"{_SHARD_PREFIX}{i:02x}" for i in range(4)
            ]
        finally:
            detach_disk_cache()

    def test_attach_disk_cache_default_stays_flat(self, tmp_path):
        try:
            cache = attach_disk_cache(tmp_path)
            assert cache.shards == 1
        finally:
            detach_disk_cache()
