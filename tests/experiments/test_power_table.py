"""Tests for the A3 power-savings experiment."""

import pytest

from repro.experiments import power_table


class TestPowerTable:
    def test_savings_monotone_in_exponent(self, small_context):
        result = power_table.run(frames=small_context.frames)
        rows = result.data["rows"]
        savings = [r["power_saving"] for r in rows]
        assert savings == sorted(savings)

    def test_cubic_saving_large(self, small_context):
        result = power_table.run(frames=small_context.frames)
        cubic = [r for r in result.data["rows"] if r["exponent"] == 3.0][0]
        assert cubic["power_saving"] > 0.7

    def test_models_internally_consistent(self, small_context):
        # all rows share the same frequency ratio r: saving_e = 1 − r^e
        result = power_table.run(frames=small_context.frames)
        rows = {r["exponent"]: r["power_saving"] for r in result.data["rows"]}
        r = 1 - rows[1.0]
        assert rows[2.0] == pytest.approx(1 - r**2)
        assert rows[3.0] == pytest.approx(1 - r**3)
