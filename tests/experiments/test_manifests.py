"""Golden-manifest tests: same parameters + seed → identical stable view."""

import json

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.acceptance_table import run as run_a5
from repro.experiments.conversion_demo import run as run_e8
from repro.experiments.fig2_polling import run as run_e2
from repro.obs.manifest import TIMING_FIELDS, stable_view


class TestManifestAttachment:
    def test_every_harnessed_run_attaches_a_manifest(self):
        result = run_e2(k_max=6)
        manifest = result.manifest
        assert manifest is not None
        assert manifest["schema"] == "repro.run-manifest/1"
        assert manifest["experiment_id"] == result.experiment_id == "E2"
        assert manifest["parameters"] == {"k_max": 6}
        assert manifest["wall_time_s"] >= 0
        assert manifest["metrics"]["schema"] == "repro.metrics/1"
        json.dumps(manifest, default=str)

    def test_parameters_capture_defaults(self):
        manifest = run_e2().manifest
        assert manifest["parameters"] == {"k_max": 20}

    def test_seed_surfaced_from_parameters(self):
        result = run_a5(utilizations=(0.6,), sets_per_point=2, seed=11)
        assert result.manifest["seed"] == 11
        assert result.manifest["parameters"]["seed"] == 11

    def test_case_study_inputs_are_digested(self):
        from repro.experiments import case_study_context

        result = run_e8(frames=12)
        inputs = result.manifest["inputs"]
        assert "case_study_context" in inputs
        # E8 consumed the default-parameter 12-frame context; the digest in
        # the manifest must match the one stamped on that context
        ctx = case_study_context(frames=12)
        assert inputs["case_study_context"] == ctx.input_digest
        assert len(inputs["case_study_context"]) == 32  # blake2b-16 hex

    def test_write_emits_report_and_manifest(self, tmp_path):
        result = run_e2(k_max=4)
        report_path, manifest_path = result.write(tmp_path)
        assert report_path.read_text().startswith("[E2]")
        assert json.loads(manifest_path.read_text())["experiment_id"] == "E2"


class TestGoldenManifests:
    def assert_stable(self, first, second):
        assert stable_view(first.manifest) == stable_view(second.manifest)
        # the dropped fields are exactly the timing ones
        assert set(first.manifest) - set(stable_view(first.manifest)) == set(
            TIMING_FIELDS
        )

    def test_same_seed_runs_agree_up_to_timing(self):
        kwargs = dict(utilizations=(0.6, 1.0), sets_per_point=3, seed=2004)
        self.assert_stable(run_a5(**kwargs), run_a5(**kwargs))

    def test_case_study_experiment_is_stable(self, small_context):
        self.assert_stable(run_e8(frames=12), run_e8(frames=12))

    def test_data_digest_tracks_content(self):
        a = run_e2(k_max=4)
        b = run_e2(k_max=6)
        assert a.manifest["data_digest"] != b.manifest["data_digest"]

    def test_all_light_experiments_produce_valid_manifests(self):
        for exp_id in ("E1", "E2", "E3"):
            manifest = ALL_EXPERIMENTS[exp_id]().manifest
            assert manifest["experiment_id"] == exp_id
            assert manifest["version"]
            assert manifest["data_digest"]
