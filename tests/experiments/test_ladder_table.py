"""Tests for the A6 characterization-ladder experiment."""

import pytest

from repro.experiments import ladder_table


class TestLadder:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return ladder_table.run(frames=small_context.frames)

    def test_three_rungs(self, result):
        assert len(result.data["rows"]) == 3

    def test_monotone_refinement(self, result):
        f_mins = [r["f_min"] for r in result.data["rows"]]
        assert f_mins[0] >= f_mins[1] >= f_mins[2]

    def test_measured_rung_dominant(self, result):
        rows = result.data["rows"]
        assert rows[2]["saving"] > 0.4

    def test_interval_rung_modest(self, result):
        """With the coarse 7-type alphabet the interval rung buys only a
        little — the scientific observation the experiment exists to make:
        the analytic mode's gain is driven by type granularity."""
        rows = result.data["rows"]
        assert 0.0 <= rows[1]["saving"] < rows[2]["saving"]
