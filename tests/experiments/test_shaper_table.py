"""Tests for the A4 greedy-shaping experiment."""

import pytest

from repro.experiments import shaper_table


class TestShaperTable:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return shaper_table.run(frames=small_context.frames)

    def test_frequency_monotone_in_shaping(self, result):
        rows = result.data["rows"]  # bursts listed large -> small
        freqs = [r["f_gamma"] for r in rows]
        assert all(a >= b - 1e-6 for a, b in zip(freqs, freqs[1:]))

    def test_shaped_never_above_unshaped(self, result):
        base = result.data["unshaped_f_gamma"]
        assert all(r["f_gamma"] <= base + 1e-6 for r in result.data["rows"])

    def test_shaper_buffer_grows_with_tightness(self, result):
        rows = result.data["rows"]
        buffers = [r["shaper_buffer"] for r in rows]
        assert all(a <= b + 1e-9 for a, b in zip(buffers, buffers[1:]))
        assert all(b >= 0.0 for b in buffers)

    def test_tight_shaping_actually_helps(self, result):
        rows = result.data["rows"]
        base = result.data["unshaped_f_gamma"]
        assert rows[-1]["f_gamma"] < base * 0.999
