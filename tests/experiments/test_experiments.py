"""Tests for the experiment harnesses (reduced-size runs).

The light experiments (E1-E3) run at full fidelity; the case-study
experiments run on the shared 12-frame context so the whole file stays
fast, checking the *shape* claims: who wins, orderings, safety.
"""

import numpy as np
import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    ablation_buffer,
    ablation_variability,
    backlog_bounds,
    conversion_demo,
    fig1_sequence,
    fig2_polling,
    fig6_workload_curves,
    fig7_backlogs,
    freq_table,
    rms_table,
)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
            "A1", "A2", "A3", "A4", "A5", "A6",
        }


class TestFig1:
    def test_paper_values(self):
        result = fig1_sequence.run()
        assert result.data["gamma_b_3_4"] == 5.0
        assert result.data["gamma_w_3_4"] == 13.0
        assert "Figure 1" in result.paper_reference


class TestFig2:
    def test_curve_ordering(self):
        result = fig2_polling.run(k_max=16)
        u = np.array(result.data["gamma_u"])
        l = np.array(result.data["gamma_l"])
        w = np.array(result.data["wcet_line"])
        b = np.array(result.data["bcet_line"])
        assert np.all(b <= l + 1e-9)
        assert np.all(l <= u + 1e-9)
        assert np.all(u <= w + 1e-9)
        assert result.data["gain_at_12"] > 0.3  # substantial grey area


class TestRmsTable:
    def test_curve_test_never_worse(self):
        result = rms_table.run(loads=(0.5, 1.0))
        for row in result.data["rows"]:
            assert row["L_curves"] <= row["L_classic"] + 1e-12

    def test_admitted_sets_never_miss(self):
        result = rms_table.run(loads=(0.5, 0.8, 1.0))
        for row in result.data["rows"]:
            if row["curves_schedulable"]:
                assert row["sim_misses"] == 0

    def test_some_set_gained(self):
        result = rms_table.run()
        gained = [
            r for r in result.data["rows"]
            if r["curves_schedulable"] and not r["classic_schedulable"]
        ]
        assert gained  # the paper's headline: strictly more permissive


@pytest.mark.usefixtures("small_context")
class TestCaseStudy:
    def test_fig6_shape(self, small_context):
        result = fig6_workload_curves.run(frames=small_context.frames)
        ks = np.array(result.data["k"])
        u = np.array(result.data["gamma_u"])
        l = np.array(result.data["gamma_l"])
        assert np.all(l <= u + 1e-9)
        assert np.all(u <= ks * result.data["wcet"] + 1e-6)
        assert result.data["wcet_ratio"] > 1.5  # strong variability

    def test_freq_headline_shape(self, small_context):
        result = freq_table.run(frames=small_context.frames)
        assert result.data["f_gamma_hz"] < result.data["f_wcet_hz"]
        assert result.data["savings"] > 0.35
        assert result.data["constraint_ok"]

    def test_fig7_all_bars_safe(self, small_context):
        result = fig7_backlogs.run(frames=small_context.frames)
        norms = result.data["normalized_backlogs"]
        assert len(norms) == 14
        assert not result.data["any_overflow"]
        assert max(norms) <= 1.0 + 1e-9

    def test_backlog_ordering(self, small_context):
        result = backlog_bounds.run(frames=small_context.frames)
        assert result.data["analytic"] == pytest.approx(result.data["expected"])
        assert result.data["sim_max"] <= result.data["bound_curves"] + 1e-9
        assert result.data["bound_curves"] <= result.data["bound_wcet"] + 1e-9

    def test_conversion_galois(self, small_context):
        result = conversion_demo.run(frames=small_context.frames)
        assert result.data["galois_ok"]
        assert result.data["tightening_at_1s"] > 0.0

    def test_buffer_ablation_monotone(self, small_context):
        result = ablation_buffer.run(
            frames=small_context.frames, buffer_sizes=(405, 1620, 6480)
        )
        rows = result.data["rows"]
        f_gammas = [r["f_gamma"] for r in rows]
        assert all(a >= b for a, b in zip(f_gammas, f_gammas[1:]))
        for r in rows:
            assert r["f_gamma"] <= r["f_wcet"] + 1e-6


class TestVariabilityAblation:
    def test_savings_grow_with_variability(self):
        result = ablation_variability.run(
            frames=12, stall_levels=(0.0, 1.4), n_clips=3
        )
        rows = result.data["rows"]
        assert rows[-1]["wcet_ratio"] > rows[0]["wcet_ratio"]
        assert rows[-1]["savings"] > rows[0]["savings"]
